"""Fleet serving: sprinting as a tail-latency weapon under real traffic.

The paper's single-device story — sprinting turns idle thermal headroom
into burst responsiveness — becomes a serving story at fleet scale.  This
example uses :mod:`repro.traffic` to show three things:

1. **Degenerate case**: a fleet of one device under deterministic periodic
   arrivals reproduces :meth:`repro.core.pacing.SprintPacer.simulate_periodic`
   exactly, so the fleet simulator is a strict generalisation of the
   single-device pacing model.
2. **p99 latency vs arrival rate**: for a 4-device fleet under Poisson
   traffic, sprinting holds the p99 latency near the sprinted service time
   until the thermal budget saturates, while a no-sprint fleet sits at the
   sustained service time and collapses much earlier.
3. **Error bars on the headline claim**: the sprint-vs-no-sprint p99 gap
   replicated under common random numbers
   (:mod:`repro.traffic.experiments`), reported as a paired delta with a
   confidence interval and sign test instead of two bare numbers.
4. **Dispatch policies under bursty load**: a policy × fleet-size sweep
   (run across worker processes) showing thermal-aware dispatch beating
   round-robin and least-loaded on tail latency.
5. **Central queue vs immediate dispatch at overload**: when demand
   exceeds fleet capacity, a bounded central queue (admission control)
   keeps the served p99 flat by shedding load, while immediate dispatch's
   backlog — and tail — grows without bound.
6. **Deadlines and abandonment**: an earliest-deadline-first central queue
   under per-request latency budgets, reporting abandonment and
   deadline-miss rates against FIFO.

Run with::

    python examples/fleet_serving.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import SystemConfig
from repro.core.pacing import SprintPacer
from repro.traffic import (
    DeterministicArrivals,
    FixedService,
    FleetSimulator,
    GammaService,
    PoissonArrivals,
    Scenario,
    SweepSpec,
    compare,
    generate_requests,
    run_sweep,
)

TASK_SUSTAINED_S = 5.0
SPRINT_SPEEDUP = 10.0
REQUESTS = 200
ARRIVAL_RATES_HZ = (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7)
FLEET_SIZE = 4
SLO_S = 2.0
SWEEP_WORKERS = 4
OVERLOAD_RATE_HZ = 2.0
QUEUE_BOUND = 8
DEADLINE_S = 15.0
ERROR_BAR_RATE_HZ = 0.3
REPLICATIONS = 8


def degenerate_case(config: SystemConfig) -> None:
    """A 1-device fleet under periodic arrivals == the single-device pacer."""
    print("-- degenerate case: 1 device, deterministic arrivals --")
    pacer = SprintPacer(config, sprint_speedup=SPRINT_SPEEDUP)
    interarrival = pacer.minimum_interarrival_s(TASK_SUSTAINED_S) * 0.6
    tasks = min(REQUESTS, 40)

    reference = pacer.simulate_periodic(interarrival, TASK_SUSTAINED_S, tasks)
    requests = generate_requests(
        DeterministicArrivals(interarrival), FixedService(TASK_SUSTAINED_S), tasks
    )
    fleet = FleetSimulator(
        config, n_devices=1, policy="round_robin", sprint_speedup=SPRINT_SPEEDUP
    )
    result = fleet.run(requests)

    pacer_latencies = np.array(
        [o.queueing_delay_s + o.response_time_s for o in reference.outcomes]
    )
    match = np.allclose(result.latencies_s, pacer_latencies)
    print(
        f"spacing {interarrival:.1f}s, {tasks} tasks: per-request latencies "
        f"{'MATCH' if match else 'DIVERGE'} the SprintPacer periodic result "
        f"(sprint fraction {result.summary().sprint_fraction * 100:.0f}% vs "
        f"{reference.sprint_fraction * 100:.0f}%)\n"
    )


def latency_vs_rate(config: SystemConfig) -> None:
    """p99 latency and SLO attainment as Poisson traffic intensifies."""
    print(
        f"-- {FLEET_SIZE}-device fleet, Poisson arrivals, "
        f"{TASK_SUSTAINED_S:.0f}s tasks, SLO {SLO_S:.0f}s --"
    )
    print(
        f"{'rate':>9} {'p50':>8} {'p99':>8} {'SLO%':>6} {'full%':>7}"
        f"   {'p50':>8} {'p99':>8} {'SLO%':>6}"
    )
    print(f"{'':>9} {'---- sprinting fleet ----':>31}   {'---- no-sprint fleet ----':>25}")
    for rate in ARRIVAL_RATES_HZ:
        requests = generate_requests(
            PoissonArrivals(rate), FixedService(TASK_SUSTAINED_S), REQUESTS, seed=17
        )
        rows = []
        for sprint_enabled in (True, False):
            fleet = FleetSimulator(
                config,
                n_devices=FLEET_SIZE,
                policy="least_loaded",
                sprint_speedup=SPRINT_SPEEDUP,
                sprint_enabled=sprint_enabled,
            )
            rows.append(fleet.run(requests).summary(slo_s=SLO_S))
        s, ns = rows
        print(
            f"{rate:8.2f}/s {s.p50_latency_s:7.2f}s {s.p99_latency_s:7.2f}s "
            f"{s.slo_attainment * 100:5.0f}% {s.mean_sprint_fullness * 100:6.0f}% "
            f"  {ns.p50_latency_s:7.2f}s {ns.p99_latency_s:7.2f}s "
            f"{ns.slo_attainment * 100:5.0f}%"
        )
    print()


def latency_error_bars(config: SystemConfig) -> None:
    """The sprint-vs-no-sprint p99 gap, with a CI instead of two bare numbers.

    The table above compares single replications; this replays the
    comparison at one rate as a common-random-numbers paired experiment,
    so the claimed gap carries a confidence interval and a sign test.
    """
    print(
        f"-- error bars: sprint vs no-sprint at {ERROR_BAR_RATE_HZ:.1f}/s, "
        f"{REPLICATIONS} CRN-paired replications --"
    )
    sprinting = Scenario(
        arrivals=PoissonArrivals(ERROR_BAR_RATE_HZ),
        service=GammaService(mean_s=TASK_SUSTAINED_S, cv=0.5),
        n_requests=REQUESTS,
        n_devices=FLEET_SIZE,
        sprint_speedup=SPRINT_SPEEDUP,
        slo_s=SLO_S,
    )
    duel = compare(
        sprinting.with_options(sprint_enabled=False),
        sprinting,
        n_replications=REPLICATIONS,
        config=config,
        workers=SWEEP_WORKERS,
    )
    for label, arm in (("no-sprint", duel.baseline), ("sprint", duel.treatment)):
        p99 = arm.estimate("p99_latency_s")
        slo = arm.estimate("slo_attainment")
        print(
            f"{label:>10}: p99 {p99.mean:6.2f}s ± {p99.half_width:4.2f}s   "
            f"SLO {slo.mean * 100:5.1f}% ± {slo.half_width * 100:4.1f}%"
        )
    delta = duel.delta("p99_latency_s")
    print(
        f"sprinting moves p99 by {delta.mean_delta:+.2f}s ± {delta.half_width:.2f}s "
        f"(95% CI, sign test p={delta.sign_test_p:.3g}) — "
        f"{'significant' if delta.significant else 'not significant'} "
        f"at this replication budget\n"
    )


def dispatch_policy_sweep(config: SystemConfig) -> None:
    """Policy × fleet-size grid under bursty on-off traffic, run in parallel."""
    print("-- dispatch policies under bursty traffic (parallel sweep) --")
    spec = SweepSpec(
        policies=("round_robin", "least_loaded", "thermal_aware"),
        arrival_rates_hz=(0.15,),
        fleet_sizes=(2, 4),
        n_requests=REQUESTS,
        arrival_kind="bursty",
        burst_factor=5.0,
        service_mean_s=TASK_SUSTAINED_S,
        sprint_speedup=SPRINT_SPEEDUP,
        slo_s=SLO_S,
        base_seed=3,
    )
    result = run_sweep(spec, config, workers=SWEEP_WORKERS)
    print(result.format_table())
    best = result.best_cell("p99_latency_s")
    print(
        f"\nbest p99: {best.summary.p99_latency_s:.2f}s with "
        f"{best.cell.policy} on {best.cell.n_devices} devices"
    )


def overload_requests(seed: int = 42):
    """Heavy-tailed demand arriving well above fleet capacity."""
    return generate_requests(
        PoissonArrivals(OVERLOAD_RATE_HZ),
        GammaService(mean_s=TASK_SUSTAINED_S, cv=1.0),
        REQUESTS,
        seed=seed,
    )


def central_queue_at_overload(config: SystemConfig) -> None:
    """Immediate vs central-queue dispatch when demand exceeds capacity."""
    print(
        "\n-- central queue vs immediate dispatch at overload "
        f"({OVERLOAD_RATE_HZ:.1f}/s into {FLEET_SIZE} devices) --"
    )
    requests = overload_requests()
    scenarios = [
        ("immediate round_robin", dict(policy="round_robin")),
        ("immediate least_loaded", dict(policy="least_loaded")),
        ("central fifo (unbounded)", dict(mode="central_queue")),
        (
            f"central fifo (bound {QUEUE_BOUND})",
            dict(mode="central_queue", queue_bound=QUEUE_BOUND),
        ),
    ]
    print(f"{'dispatch':>26} {'p50':>8} {'p99':>9} {'served':>7} {'rejected':>9}")
    summaries = {}
    for label, kwargs in scenarios:
        fleet = FleetSimulator(
            config, n_devices=FLEET_SIZE, sprint_speedup=SPRINT_SPEEDUP, **kwargs
        )
        s = fleet.run(requests).summary()
        summaries[label] = s
        print(
            f"{label:>26} {s.p50_latency_s:7.2f}s {s.p99_latency_s:8.2f}s "
            f"{s.request_count:7d} {s.rejected_count:9d}"
        )
    bounded = summaries[f"central fifo (bound {QUEUE_BOUND})"]
    immediate = summaries["immediate least_loaded"]
    verdict = "BEATS" if bounded.p99_latency_s < immediate.p99_latency_s else "trails"
    print(
        f"\nadmission control {verdict} immediate dispatch on served p99 "
        f"({bounded.p99_latency_s:.2f}s vs {immediate.p99_latency_s:.2f}s) by "
        f"shedding {bounded.rejected_count}/{bounded.offered_count} requests"
    )


def deadline_scenario(config: SystemConfig) -> None:
    """Per-request deadlines in a central queue: abandonment and miss rates.

    Two request classes share the fleet: interactive requests with a tight
    latency budget and batch requests that can wait four times longer.
    FIFO ignores urgency; EDF pulls interactive requests forward, so fewer
    of them give up in the queue.
    """
    print(
        f"\n-- deadlines at overload: interactive ({DEADLINE_S:.0f}s budget) "
        f"vs batch ({4 * DEADLINE_S:.0f}s), central queue --"
    )
    requests = [
        replace(r, deadline_s=DEADLINE_S if r.index % 2 == 0 else 4 * DEADLINE_S)
        for r in overload_requests()
    ]
    interactive = {r.index for r in requests if r.deadline_s == DEADLINE_S}
    print(
        f"{'discipline':>12} {'served':>7} {'abandoned':>10} {'late':>5} "
        f"{'miss%':>7} {'interactive-miss%':>18}"
    )
    for discipline in ("fifo", "edf"):
        fleet = FleetSimulator(
            config,
            n_devices=FLEET_SIZE,
            sprint_speedup=SPRINT_SPEEDUP,
            mode="central_queue",
            discipline=discipline,
        )
        result = fleet.run(requests)
        s = result.summary()
        missed = s.abandoned_count + s.deadline_miss_count
        interactive_missed = sum(
            1 for r in result.abandoned if r.index in interactive
        ) + sum(
            1
            for served in result.served
            if served.request.index in interactive and served.missed_deadline
        )
        print(
            f"{discipline:>12} {s.request_count:7d} {s.abandoned_count:10d} "
            f"{s.deadline_miss_count:5d} {missed / s.offered_count * 100:6.1f}% "
            f"{interactive_missed / len(interactive) * 100:17.1f}%"
        )
    print(
        "(abandoned = gave up waiting in the queue; late = served but past "
        "the deadline)"
    )


def main() -> None:
    config = SystemConfig.paper_default()
    print(
        f"platform: {config.machine.n_cores} cores, TDP "
        f"{config.sustainable_power_w:.1f} W, sprint {config.sprint_power_w:.0f} W, "
        f"PCM {config.package.pcm_mass_g * 1000:.0f} mg\n"
    )
    degenerate_case(config)
    latency_vs_rate(config)
    latency_error_bars(config)
    dispatch_policy_sweep(config)
    central_queue_at_overload(config)
    deadline_scenario(config)


if __name__ == "__main__":
    main()
