"""Fleet serving: sprinting as a tail-latency weapon under real traffic.

The paper's single-device story — sprinting turns idle thermal headroom
into burst responsiveness — becomes a serving story at fleet scale.  This
example uses :mod:`repro.traffic` to show three things:

1. **Degenerate case**: a fleet of one device under deterministic periodic
   arrivals reproduces :meth:`repro.core.pacing.SprintPacer.simulate_periodic`
   exactly, so the fleet simulator is a strict generalisation of the
   single-device pacing model.
2. **p99 latency vs arrival rate**: for a 4-device fleet under Poisson
   traffic, sprinting holds the p99 latency near the sprinted service time
   until the thermal budget saturates, while a no-sprint fleet sits at the
   sustained service time and collapses much earlier.
3. **Dispatch policies under bursty load**: a policy × fleet-size sweep
   (run across worker processes) showing thermal-aware dispatch beating
   round-robin and least-loaded on tail latency.

Run with::

    python examples/fleet_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import SystemConfig
from repro.core.pacing import SprintPacer
from repro.traffic import (
    DeterministicArrivals,
    FixedService,
    FleetSimulator,
    PoissonArrivals,
    SweepSpec,
    generate_requests,
    run_sweep,
)

TASK_SUSTAINED_S = 5.0
SPRINT_SPEEDUP = 10.0
REQUESTS = 200
ARRIVAL_RATES_HZ = (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7)
FLEET_SIZE = 4
SLO_S = 2.0
SWEEP_WORKERS = 4


def degenerate_case(config: SystemConfig) -> None:
    """A 1-device fleet under periodic arrivals == the single-device pacer."""
    print("-- degenerate case: 1 device, deterministic arrivals --")
    pacer = SprintPacer(config, sprint_speedup=SPRINT_SPEEDUP)
    interarrival = pacer.minimum_interarrival_s(TASK_SUSTAINED_S) * 0.6
    tasks = min(REQUESTS, 40)

    reference = pacer.simulate_periodic(interarrival, TASK_SUSTAINED_S, tasks)
    requests = generate_requests(
        DeterministicArrivals(interarrival), FixedService(TASK_SUSTAINED_S), tasks
    )
    fleet = FleetSimulator(
        config, n_devices=1, policy="round_robin", sprint_speedup=SPRINT_SPEEDUP
    )
    result = fleet.run(requests)

    pacer_latencies = np.array(
        [o.queueing_delay_s + o.response_time_s for o in reference.outcomes]
    )
    match = np.allclose(result.latencies_s, pacer_latencies)
    print(
        f"spacing {interarrival:.1f}s, {tasks} tasks: per-request latencies "
        f"{'MATCH' if match else 'DIVERGE'} the SprintPacer periodic result "
        f"(sprint fraction {result.summary().sprint_fraction * 100:.0f}% vs "
        f"{reference.sprint_fraction * 100:.0f}%)\n"
    )


def latency_vs_rate(config: SystemConfig) -> None:
    """p99 latency and SLO attainment as Poisson traffic intensifies."""
    print(
        f"-- {FLEET_SIZE}-device fleet, Poisson arrivals, "
        f"{TASK_SUSTAINED_S:.0f}s tasks, SLO {SLO_S:.0f}s --"
    )
    print(
        f"{'rate':>9} {'p50':>8} {'p99':>8} {'SLO%':>6} {'full%':>7}"
        f"   {'p50':>8} {'p99':>8} {'SLO%':>6}"
    )
    print(f"{'':>9} {'---- sprinting fleet ----':>31}   {'---- no-sprint fleet ----':>25}")
    for rate in ARRIVAL_RATES_HZ:
        requests = generate_requests(
            PoissonArrivals(rate), FixedService(TASK_SUSTAINED_S), REQUESTS, seed=17
        )
        rows = []
        for sprint_enabled in (True, False):
            fleet = FleetSimulator(
                config,
                n_devices=FLEET_SIZE,
                policy="least_loaded",
                sprint_speedup=SPRINT_SPEEDUP,
                sprint_enabled=sprint_enabled,
            )
            rows.append(fleet.run(requests).summary(slo_s=SLO_S))
        s, ns = rows
        print(
            f"{rate:8.2f}/s {s.p50_latency_s:7.2f}s {s.p99_latency_s:7.2f}s "
            f"{s.slo_attainment * 100:5.0f}% {s.mean_sprint_fullness * 100:6.0f}% "
            f"  {ns.p50_latency_s:7.2f}s {ns.p99_latency_s:7.2f}s "
            f"{ns.slo_attainment * 100:5.0f}%"
        )
    print()


def dispatch_policy_sweep(config: SystemConfig) -> None:
    """Policy × fleet-size grid under bursty on-off traffic, run in parallel."""
    print("-- dispatch policies under bursty traffic (parallel sweep) --")
    spec = SweepSpec(
        policies=("round_robin", "least_loaded", "thermal_aware"),
        arrival_rates_hz=(0.15,),
        fleet_sizes=(2, 4),
        n_requests=REQUESTS,
        arrival_kind="bursty",
        burst_factor=5.0,
        service_mean_s=TASK_SUSTAINED_S,
        sprint_speedup=SPRINT_SPEEDUP,
        slo_s=SLO_S,
        base_seed=3,
    )
    result = run_sweep(spec, config, workers=SWEEP_WORKERS)
    print(result.format_table())
    best = result.best_cell("p99_latency_s")
    print(
        f"\nbest p99: {best.summary.p99_latency_s:.2f}s with "
        f"{best.cell.policy} on {best.cell.n_devices} devices"
    )


def main() -> None:
    config = SystemConfig.paper_default()
    print(
        f"platform: {config.machine.n_cores} cores, TDP "
        f"{config.sustainable_power_w:.1f} W, sprint {config.sprint_power_w:.0f} W, "
        f"PCM {config.package.pcm_mass_g * 1000:.0f} mg\n"
    )
    degenerate_case(config)
    latency_vs_rate(config)
    dispatch_policy_sweep(config)


if __name__ == "__main__":
    main()
