"""Bursty task streams: how often can the device sprint?

Sprinting moves thermal budget from idle periods into bursts, so it only
helps workloads that *have* idle periods: once the sprint capacity is spent
the package must cool at its sustainable power before the next task can
sprint again.  This example uses :class:`repro.core.pacing.SprintPacer` to
ask, for the paper's platform and a five-second (single-core) task:

* what is the minimum spacing between tasks that keeps every task sprintable,
* how responsiveness degrades as tasks arrive faster than that,
* how the two PCM design points (150 mg vs 1.5 mg) differ in the arrival
  rates they can absorb.

Run with::

    python examples/bursty_workload.py
"""

from __future__ import annotations

from repro import SprintPacer, SystemConfig

TASK_SUSTAINED_S = 5.0
SPRINT_SPEEDUP = 10.0
TASKS = 20


def arrival_sweep(label: str, config: SystemConfig) -> None:
    pacer = SprintPacer(config, sprint_speedup=SPRINT_SPEEDUP)
    minimum = pacer.minimum_interarrival_s(TASK_SUSTAINED_S)
    print(f"-- {label}: sprint budget {pacer.capacity_j:.1f} J, "
          f"minimum spacing for back-to-back sprints {minimum:.1f} s --")
    print(f"{'spacing':>9} {'sprinting tasks':>16} {'avg response':>13} {'worst response':>15}")
    for spacing in (0.75, 2.0, 5.0, 10.0, minimum, 1.5 * minimum):
        summary = pacer.simulate_periodic(spacing, TASK_SUSTAINED_S, TASKS)
        print(
            f"{spacing:8.1f}s {summary.sprint_fraction * 100:15.0f}% "
            f"{summary.average_response_s:12.2f}s {summary.worst_response_s:14.2f}s"
        )
    print()


def main() -> None:
    print(
        f"task: {TASK_SUSTAINED_S:.0f} s sustained, {SPRINT_SPEEDUP:.0f}x sprint speedup, "
        f"{TASKS} periodic arrivals\n"
    )
    arrival_sweep("paper design (150 mg PCM)", SystemConfig.paper_default())
    arrival_sweep("constrained design (1.5 mg PCM)", SystemConfig.small_pcm())


if __name__ == "__main__":
    main()
