"""Camera-based visual search: the paper's motivating scenario end to end.

The introduction of the paper motivates sprinting with a camera-based visual
search application: the phone captures a photo, extracts features on the
device, and ships a compact descriptor vector to the cloud.  Better feature
extraction needs more compute than a 1 W chip can deliver within an
acceptable response time — unless the chip sprints.

This example runs the pipeline both ways:

1. actually executes the feature-extraction kernel (a SURF-style detector)
   on a synthetic photo to produce real keypoints and descriptors,
2. characterises the same computation at several photo resolutions and asks
   the sprint simulator what response time a user would see on a sustained
   1 W device versus a sprint-enabled one,
3. reports the largest photo resolution each device can process within an
   interactive response-time budget.

Run with::

    python examples/camera_search.py
"""

from __future__ import annotations

from repro import SprintSimulation, SystemConfig
from repro.kernels import FeatureExtractionKernel, synthetic_image
from repro.workloads import kernel_suite

#: A response-time budget typical of interactive search (seconds).
RESPONSE_BUDGET_S = 1.0

#: Photo resolutions to consider (megapixels).
RESOLUTIONS_MP = (0.3, 0.8, 1.3, 2.1, 3.1)


def run_real_pipeline() -> None:
    """Execute the actual feature kernel on a small synthetic photo."""
    photo = synthetic_image(240, 320, n_shapes=16, seed=3)
    kernel = FeatureExtractionKernel(max_keypoints=128)
    output = kernel.run(photo)
    keypoints = output.extras["keypoints"]
    descriptors = output.extras["descriptors"]
    payload_bytes = descriptors.size * 4
    print("real pipeline on a 0.08 MP synthetic photo:")
    print(f"  {len(keypoints)} keypoints, descriptor payload {payload_bytes / 1024:.1f} KiB "
          f"(vs {photo.nbytes / 1024:.0f} KiB for the raw photo)\n")


def response_time_study() -> None:
    """Compare response times across photo resolutions and platforms."""
    family = kernel_suite()["feature"]
    sustained = SprintSimulation(SystemConfig.paper_default())

    print(f"{'photo':>8} {'1-core time':>12} {'sprint time':>12} {'speedup':>8}  interactive?")
    best_sustained = 0.0
    best_sprint = 0.0
    for mp in RESOLUTIONS_MP:
        workload = family.workload_for_megapixels(mp)
        baseline = sustained.run_baseline(workload, quantum_s=2e-3)
        sprint = sustained.run(workload)
        ok_base = baseline.total_time_s <= RESPONSE_BUDGET_S
        ok_sprint = sprint.total_time_s <= RESPONSE_BUDGET_S
        if ok_base:
            best_sustained = mp
        if ok_sprint:
            best_sprint = mp
        verdict = (
            "both" if ok_base else ("sprint only" if ok_sprint else "neither")
        )
        print(
            f"{mp:6.1f}MP {baseline.total_time_s:11.2f}s {sprint.total_time_s:11.2f}s "
            f"{sprint.speedup_over(baseline):7.1f}x  {verdict}"
        )

    print(
        f"\nwithin a {RESPONSE_BUDGET_S:.0f} s budget the sustained device handles "
        f"{best_sustained:.1f} MP; the sprint-enabled device handles {best_sprint:.1f} MP "
        f"({best_sprint / max(best_sustained, 0.1):.0f}x more detail for the search backend)"
    )


def main() -> None:
    run_real_pipeline()
    response_time_study()


if __name__ == "__main__":
    main()
