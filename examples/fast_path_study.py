"""Engine execution modes: exact events, vectorized blocks, fluid limit.

The serving engine answers the same question at three fidelities, and this
example runs all three side by side:

1. **Bit-identity**: the ``batched`` execution mode is not an
   approximation — on its supported envelope (immediate round-robin or
   random dispatch, ungoverned, linear thermal, no observers) it replays
   the exact engine's float operations in numpy blocks, and every latency
   matches bit for bit.
2. **Honest fallback**: outside that envelope the vector core does not
   guess — the engine reports *why* (``fast_path_reason``) and takes the
   exact event loop, so ``engine="batched"`` is always safe to request.
3. **Throughput curve**: requests/second of exact vs batched vs fluid as
   the stream grows, on a 256-device fleet with flat memory
   (``keep_samples=False``) — the fast path's reason to exist.
4. **Calibrated fluid limit**: ``mode="fluid"`` integrates a
   deterministic mean-field model instead of simulating requests.  Its
   accuracy contract is *measured* here with CRN-paired replications
   against the exact engine: within its bands on the light-load reference
   regime, and honestly out of contract on waiting time under heavy load
   (a deterministic fluid has no stochastic queueing).

Run with::

    python examples/fast_path_study.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SystemConfig
from repro.traffic import (
    FLUID_ACCURACY_CONTRACT,
    FixedService,
    FleetSimulator,
    GammaService,
    GovernorSpec,
    PoissonArrivals,
    Scenario,
    compare,
    generate_requests,
)

CURVE_DEVICES = 256
CURVE_SIZES = (20_000, 100_000, 500_000)
CURVE_RATE_HZ = 50.0
IDENTITY_REQUESTS = 5_000
CONTRACT_REQUESTS = 1_000
REPLICATIONS = 8
WORKERS = 1


def bit_identity(config: SystemConfig) -> None:
    """Same stream through both execution modes: every float matches."""
    print(f"-- bit-identity: {IDENTITY_REQUESTS} requests, 16 devices --")
    requests = generate_requests(
        PoissonArrivals(2.0), GammaService(2.0, cv=1.0), IDENTITY_REQUESTS, seed=4
    )

    def run(engine: str):
        fleet = FleetSimulator(
            config, n_devices=16, policy="round_robin", engine=engine
        )
        return fleet.run(requests, seed=9)

    exact, batched = run("exact"), run("batched")
    assert np.array_equal(exact.latencies_s, batched.latencies_s)
    assert exact.device_stats == batched.device_stats
    se, sb = exact.summary(slo_s=2.0), batched.summary(slo_s=2.0)
    print(f"{'':>16} {'exact':>10} {'batched':>10}")
    for name in ("mean_latency_s", "p99_latency_s", "sprint_fraction"):
        print(f"{name:>16} {getattr(se, name):10.6f} {getattr(sb, name):10.6f}")
    print("every per-request latency and device stat is bit-identical\n")


def honest_fallback(config: SystemConfig) -> None:
    """Unsupported configurations name their reason and run exactly."""
    print("-- honest fallback: why the vector core is (not) engaged --")
    cases = {
        "round_robin, ungoverned, linear": dict(policy="round_robin"),
        "least_loaded dispatch": dict(policy="least_loaded"),
        "central queue": dict(policy="round_robin", mode="central_queue"),
        "greedy power governor": dict(
            policy="round_robin",
            governor=GovernorSpec(policy="greedy", max_concurrent_sprints=4),
        ),
        "RC thermal backend": dict(policy="round_robin", thermal="rc"),
    }
    for label, kwargs in cases.items():
        fleet = FleetSimulator(config, n_devices=4, engine="batched", **kwargs)
        reason = fleet._make_engine().fast_path_reason
        status = "vector core" if reason is None else f"exact loop: {reason}"
        print(f"  {label:<34} -> {status}")
    print()


def throughput_curve(config: SystemConfig) -> None:
    """Requests/second of each mode as the stream grows."""
    print(f"-- throughput curve: {CURVE_DEVICES} devices, flat memory --")
    arrivals = PoissonArrivals(CURVE_RATE_HZ)
    service = FixedService(5.0)

    def measure(mode: str, engine: str, n: int) -> float:
        fleet = FleetSimulator(
            config,
            CURVE_DEVICES,
            policy="round_robin",
            mode=mode,
            keep_samples=False,
            telemetry=False,
            engine=engine,
        )
        started = time.perf_counter()
        result = fleet.run_stream(arrivals, service, n, request_seed=9, run_seed=9)
        elapsed = time.perf_counter() - started
        assert result.served_count == n
        return n / elapsed

    print(f"{'requests':>10} {'exact':>12} {'batched':>12} {'fluid':>12} {'speedup':>9}")
    for n in CURVE_SIZES:
        exact_rps = measure("immediate", "exact", n)
        batched_rps = measure("immediate", "batched", n)
        fluid_rps = measure("fluid", "exact", n)
        print(
            f"{n:>10} {exact_rps:>10.0f}/s {batched_rps:>10.0f}/s "
            f"{fluid_rps:>10.0f}/s {batched_rps / exact_rps:>8.1f}x"
        )
    print("(requests simulated per wall-second; speedup is batched vs exact)\n")


def fluid_accuracy(config: SystemConfig) -> None:
    """Measure the fluid mode's accuracy contract against the exact engine."""
    print("-- fluid accuracy: CRN-paired deltas vs the exact engine --")
    reference = Scenario(
        arrivals=PoissonArrivals(1.0),
        service=GammaService(2.5, cv=0.7),
        n_requests=CONTRACT_REQUESTS,
        n_devices=16,
        policy="round_robin",
    )
    duel = compare(
        reference,
        reference.with_options(mode="fluid"),
        n_replications=REPLICATIONS,
        base_seed=42,
        config=config,
        workers=WORKERS,
    )
    print("  reference regime (per-device utilisation ~0.16):")
    print(f"  {'metric':>20} {'exact':>9} {'fluid Δ':>9} {'band':>6}  verdict")
    for metric, band in FLUID_ACCURACY_CONTRACT.items():
        delta = duel.delta(metric)
        exact_mean = duel.baseline.estimate(metric).mean
        allowed = band * abs(exact_mean) + delta.half_width
        verdict = "within contract" if abs(delta.mean_delta) <= allowed else "OUT"
        print(
            f"  {metric:>20} {exact_mean:9.4f} {delta.mean_delta:+9.4f} "
            f"{band:>5.0%}  {verdict}"
        )

    loaded = Scenario(
        arrivals=PoissonArrivals(1.7),
        service=GammaService(4.0, cv=1.0),
        n_requests=CONTRACT_REQUESTS,
        n_devices=8,
        policy="round_robin",
    )
    heavy = compare(
        loaded,
        loaded.with_options(mode="fluid"),
        n_replications=REPLICATIONS,
        base_seed=7,
        config=config,
        workers=WORKERS,
    )
    tput = heavy.delta("throughput_rps")
    wait = heavy.delta("mean_latency_s")
    wait_exact = heavy.baseline.estimate("mean_latency_s").mean
    print("  heavy load (utilisation ~0.85, outside the reference regime):")
    print(
        f"  throughput still tracks (Δ {tput.mean_delta:+.3f} rps); waiting is "
        f"understated by design (Δ {wait.mean_delta:+.1f}s of {wait_exact:.1f}s) —"
    )
    print("  no stochastic queueing in a deterministic fluid; use exact/batched there\n")


def main() -> None:
    config = SystemConfig.paper_default()
    bit_identity(config)
    honest_fallback(config)
    throughput_curve(config)
    fluid_accuracy(config)
    print(
        "same physics, three costs: exact events for fidelity, vectorized "
        "blocks for scale, the fluid limit for capacity planning"
    )


if __name__ == "__main__":
    main()
