"""Hierarchical power topologies: rack/row/datacenter grant cascades.

The paper's capacitance argument is device-local; the power-budget
governor (:mod:`repro.traffic.governor`, ``examples/power_budget_study``)
replays it at rack scale.  A datacenter replays it *recursively*: racks
hang off row PDUs, rows off the building feed, and every level is sized
for sustained draw plus limited headroom — so a sprint must clear its
rack's budget, its row's, *and* the datacenter's before it may draw the
excess power (the grant cascade of :mod:`repro.traffic.topology`).  This
example uses a hierarchical fleet to show four things:

1. **Grant cascade ledger**: a row whose budget is tighter than the sum
   of its racks' — devices are denied sprints by a level they cannot
   see, and :class:`repro.traffic.topology.TopologyStats` attributes
   every denial and breaker trip to the level whose budget said no.
2. **Heterogeneous racks**: a sprint-capable rack next to a sustained
   many-core rack in the same topology — the ``least_loaded_rack``
   dispatch routes load toward capacity and sprint headroom, and the
   per-rack ledgers show the two designs serving the same stream.
3. **Row breaker**: an oversubscribed row with a breaker trips under
   greedy racks, and the penalty window denies every descendant rack —
   fleet-wide non-sprint recovery, one level up from the flat case.
4. **Shard-count invariance**: the same topology run with 1 and 4
   worker processes produces bit-identical summaries — parallelism is a
   speed knob, never a treatment variable.

Run with::

    python examples/topology_study.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.traffic import (
    FleetSimulator,
    GammaService,
    GovernorSpec,
    PoissonArrivals,
    RackSpec,
    RowSpec,
    TopologySpec,
    generate_requests,
)

TASK_SUSTAINED_S = 5.0
SERVICE_CV = 0.5
REQUESTS = 400
ARRIVAL_RATE_HZ = 2.0
SLO_S = 2.0
WINDOW_S = 30.0
PENALTY_S = 60.0
SHARD_WORKERS = 4


def offered_requests(rate_hz: float = ARRIVAL_RATE_HZ, seed: int = 11):
    """Poisson traffic whose sprint demand exceeds the row budgets."""
    return generate_requests(
        PoissonArrivals(rate_hz),
        GammaService(mean_s=TASK_SUSTAINED_S, cv=SERVICE_CV),
        REQUESTS,
        seed=seed,
    )


def cascade_ledger_study(config: SystemConfig) -> None:
    """Per-level denial accounting when the row is the bottleneck."""
    print("-- grant cascade: the row budget, not the racks, says no --")
    topology = TopologySpec.uniform(
        n_rows=2,
        racks_per_row=2,
        devices_per_rack=4,
        rack_governor=GovernorSpec.greedy(4),  # racks are permissive
        row_governor=GovernorSpec.greedy(3),  # rows are the bottleneck
        window_s=WINDOW_S,
    )
    fleet = FleetSimulator(config, topology=topology, policy="least_loaded")
    result = fleet.run(offered_requests())
    stats = result.topology_stats
    summary = result.summary(slo_s=SLO_S)
    print(f"   served {summary.request_count}, p99 {summary.p99_latency_s:.2f}s")
    for level, denied in stats.denied_by_level().items():
        print(f"   denied at {level:<10s}: {denied}")
    print(f"   cascade denials (any level): {stats.overall.sprints_denied}")


def heterogeneous_rack_study(config: SystemConfig) -> None:
    """A sprint rack and a sustained many-core rack serving one stream."""
    print("-- heterogeneous racks: sprint rack vs many-core rack --")
    sprint_rack = RackSpec(
        n_devices=4,
        governor=GovernorSpec.greedy(2),
        sprint_enabled=True,
    )
    manycore_rack = RackSpec(
        n_devices=8,
        governor=GovernorSpec(),
        sprint_enabled=False,  # all cores lit, nothing dark to sprint onto
    )
    topology = TopologySpec(
        rows=(RowSpec(racks=(sprint_rack, manycore_rack), governor=GovernorSpec()),),
        governor=GovernorSpec(),
        window_s=WINDOW_S,
        dispatch="least_loaded_rack",
    )
    fleet = FleetSimulator(config, topology=topology, policy="least_loaded")
    result = fleet.run(offered_requests(rate_hz=1.0))
    by_rack: dict[str, int] = {}
    for dev in result.device_stats:
        rack = dev.device_label.rsplit("/", 1)[0]
        by_rack[rack] = by_rack.get(rack, 0) + dev.requests_served
    for path, served in sorted(by_rack.items()):
        ledger = result.topology_stats.for_rack(path)
        granted = "ungoverned" if ledger is None else f"{ledger.sprints_granted} grants"
        print(f"   {path:<10s} served {served:3d}  ({granted})")
    summary = result.summary(slo_s=SLO_S)
    print(f"   fleet sprint fraction {summary.sprint_fraction:.0%}, "
          f"p99 {summary.p99_latency_s:.2f}s")


def row_breaker_study(config: SystemConfig) -> None:
    """Greedy racks overdraw the row feed; the row breaker trips."""
    print("-- row breaker: greedy racks trip the shared feed --")
    excess_w = config.sprint_power_w - config.sustainable_power_w
    topology = TopologySpec.uniform(
        n_rows=1,
        racks_per_row=2,
        devices_per_rack=4,
        rack_governor=GovernorSpec.greedy(4),  # each rack may fill itself
        row_governor=GovernorSpec.greedy(
            8, trip_headroom_w=3.5 * excess_w, penalty_s=PENALTY_S
        ),
        window_s=WINDOW_S,
    )
    fleet = FleetSimulator(config, topology=topology, policy="least_loaded")
    result = fleet.run(offered_requests(rate_hz=3.0))
    stats = result.topology_stats
    trips = stats.trips_by_level()
    print(f"   breaker trips by level: {trips}")
    print(f"   row denials during penalty windows: "
          f"{stats.denied_by_level()['row']}")
    assert trips["row"] >= 1, "the oversubscribed row should trip"


def shard_invariance_study(config: SystemConfig) -> None:
    """Worker count is a speed knob: summaries are bit-identical."""
    print(f"-- shard invariance: 1 vs {SHARD_WORKERS} worker processes --")
    topology = TopologySpec.uniform(
        n_rows=2,
        racks_per_row=2,
        devices_per_rack=4,
        rack_governor=GovernorSpec.greedy(2),
        window_s=WINDOW_S,
    )
    requests = offered_requests()
    serial = FleetSimulator(config, topology=topology).run(requests)
    fanned = FleetSimulator(
        config, topology=topology, shard_workers=SHARD_WORKERS
    ).run(requests)
    same = serial.summary().to_dict() == fanned.summary().to_dict()
    print(f"   summaries identical: {same}")
    assert same, "shard workers must never change results"


def main() -> None:
    config = SystemConfig.paper_default()
    cascade_ledger_study(config)
    heterogeneous_rack_study(config)
    row_breaker_study(config)
    shard_invariance_study(config)


if __name__ == "__main__":
    main()
