"""Fleet power budgets: coordinated sprinting under a shared supply.

The paper's capacitance argument is device-local — thermal mass lets one
chip briefly exceed its sustainable power.  A rack replays it one level
up: the provisioned supply (and its breaker) is sized for the fleet's
sustained draw plus limited headroom, so concurrent sprints share a power
budget the way one chip's sprints share a heat reservoir.  This example
uses :mod:`repro.traffic.governor` to show four things:

1. **p99 vs sprint concurrency cap**: an oversubscribed fleet (sprint
   demand above the provisioned headroom) under a ``greedy`` governor —
   tightening the cap walks the tail from sprint-speed latencies to
   sustained-speed collapse, the core provisioning trade-off.
2. **Breaker trips**: at the same offered load and the same trip point, a
   breaker-oblivious ``greedy`` governor trips the breaker (forcing
   fleet-wide non-sprint recovery windows) while ``cooperative-threshold``
   keeps projected draw under the trip point and never trips — and wins
   the tail because of it.
3. **Burst credit**: two ``token-bucket`` governors with the *same*
   sustained sprint rate, with and without stored burst credit, under
   bursty on-off traffic — the stored credit is what saves the tail
   during bursts, the capacitance argument at rack scale.
4. **Governor grid**: a parallel :func:`repro.traffic.run_sweep` over the
   governor axis, showing the whole policy × budget surface at once.
5. **Governance with error bars**: the greedy-vs-cooperative tail claim
   replicated under common random numbers
   (:mod:`repro.traffic.experiments`) — the p99 difference as a paired
   confidence interval and sign test, not a single-seed anecdote.

Run with::

    python examples/power_budget_study.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.traffic import (
    FleetSimulator,
    GammaService,
    GovernorSpec,
    MMPPArrivals,
    PoissonArrivals,
    Scenario,
    SweepSpec,
    compare,
    generate_requests,
    run_sweep,
)

TASK_SUSTAINED_S = 5.0
SERVICE_CV = 0.5
FLEET_SIZE = 16
REQUESTS = 500
ARRIVAL_RATE_HZ = 1.5
SLO_S = 2.0
SPRINT_CAPS = (1, 2, 4, 8, 16)
TRIP_SPRINTS = 4  # breaker trip point, in concurrent full-sprint draws
PENALTY_S = 60.0
TOKEN_RATE_HZ = 1.5
TOKEN_BURSTS = (1, 30)
BURSTY_REQUESTS = 400
SWEEP_WORKERS = 4
REPLICATIONS = 8


def offered_requests(seed: int = 11):
    """Poisson traffic whose sprint demand exceeds a tight power budget."""
    return generate_requests(
        PoissonArrivals(ARRIVAL_RATE_HZ),
        GammaService(mean_s=TASK_SUSTAINED_S, cv=SERVICE_CV),
        REQUESTS,
        seed=seed,
    )


def concurrency_cap_study(config: SystemConfig) -> None:
    """p99 vs sprint concurrency cap on an oversubscribed fleet."""
    print(
        f"-- oversubscribed fleet: p99 vs sprint concurrency cap "
        f"({ARRIVAL_RATE_HZ:.1f}/s into {FLEET_SIZE} devices, greedy governor) --"
    )
    requests = offered_requests()
    print(
        f"{'cap':>6} {'p50':>7} {'p95':>7} {'p99':>8} {'SLO%':>6} "
        f"{'granted':>8} {'denied':>7} {'at-cap':>8}"
    )
    rows = {}
    for cap in SPRINT_CAPS:
        fleet = FleetSimulator(
            config, FLEET_SIZE, governor=GovernorSpec.greedy(cap)
        )
        s = fleet.run(requests).summary(slo_s=SLO_S)
        rows[cap] = s
        print(
            f"{cap:6d} {s.p50_latency_s:6.2f}s {s.p95_latency_s:6.2f}s "
            f"{s.p99_latency_s:7.2f}s {s.slo_attainment * 100:5.0f}% "
            f"{s.sprints_granted:8d} {s.sprints_denied:7d} {s.time_at_cap_s:7.1f}s"
        )
    unlimited = FleetSimulator(config, FLEET_SIZE).run(requests).summary(slo_s=SLO_S)
    print(
        f"{'∞':>6} {unlimited.p50_latency_s:6.2f}s {unlimited.p95_latency_s:6.2f}s "
        f"{unlimited.p99_latency_s:7.2f}s {unlimited.slo_attainment * 100:5.0f}%"
        f"{'':>8} {'':>7} {'':>8}"
    )
    tightest, widest = rows[SPRINT_CAPS[0]], rows[SPRINT_CAPS[-1]]
    print(
        f"\ntightening the cap from {SPRINT_CAPS[-1]} to {SPRINT_CAPS[0]} trades "
        f"{widest.p99_latency_s:.1f}s p99 for {tightest.p99_latency_s:.1f}s — "
        f"provisioned headroom, not device thermals, sets the tail\n"
    )


def breaker_study(config: SystemConfig) -> None:
    """Greedy trips the breaker; cooperative-threshold avoids it."""
    excess_w = config.sprint_power_w - config.sustainable_power_w
    trip_w = TRIP_SPRINTS * excess_w
    print(
        f"-- breaker at {trip_w:.0f} W headroom ({TRIP_SPRINTS} concurrent sprints), "
        f"{PENALTY_S:.0f}s recovery, same offered load --"
    )
    requests = offered_requests()
    scenarios = [
        (
            "greedy (oblivious)",
            GovernorSpec.greedy(FLEET_SIZE, trip_headroom_w=trip_w, penalty_s=PENALTY_S),
        ),
        ("cooperative-threshold", GovernorSpec.cooperative(trip_w, penalty_s=PENALTY_S)),
    ]
    print(f"{'governor':>22} {'p99':>8} {'SLO%':>6} {'trips':>6} {'at-cap':>8}")
    outcomes = {}
    for label, spec in scenarios:
        result = FleetSimulator(config, FLEET_SIZE, governor=spec).run(requests)
        s = result.summary(slo_s=SLO_S)
        outcomes[label] = s
        print(
            f"{label:>22} {s.p99_latency_s:7.2f}s {s.slo_attainment * 100:5.0f}% "
            f"{s.breaker_trips:6d} {s.time_at_cap_s:7.1f}s"
        )
    greedy, coop = outcomes["greedy (oblivious)"], outcomes["cooperative-threshold"]
    print(
        f"\ncooperative-threshold avoids all {greedy.breaker_trips} breaker trips "
        f"greedy incurs at this load, and the saved recovery windows buy the tail: "
        f"{coop.p99_latency_s:.1f}s vs {greedy.p99_latency_s:.1f}s p99\n"
    )


def burst_credit_study(config: SystemConfig) -> None:
    """Token buckets at one sustained rate: burst credit is the capacitance."""
    print(
        f"-- token-bucket burst credit under bursty on-off traffic "
        f"(sustained {TOKEN_RATE_HZ:.1f} sprints/s either way) --"
    )
    bursty = generate_requests(
        MMPPArrivals.bursty(
            burst_rate_hz=5 * ARRIVAL_RATE_HZ,
            mean_burst_s=4.0,
            mean_idle_s=16.0,
        ),
        GammaService(mean_s=TASK_SUSTAINED_S, cv=SERVICE_CV),
        BURSTY_REQUESTS,
        seed=5,
    )
    print(f"{'burst credit':>13} {'p50':>7} {'p99':>8} {'SLO%':>6} {'granted':>8} {'denied':>7}")
    for burst in TOKEN_BURSTS:
        spec = GovernorSpec.token_bucket(TOKEN_RATE_HZ, burst)
        s = FleetSimulator(config, FLEET_SIZE, governor=spec).run(bursty).summary(
            slo_s=SLO_S
        )
        print(
            f"{burst:13d} {s.p50_latency_s:6.2f}s {s.p99_latency_s:7.2f}s "
            f"{s.slo_attainment * 100:5.0f}% {s.sprints_granted:8d} {s.sprints_denied:7d}"
        )
    print(
        "\nsame repayment rate, different stored slack: the burst credit — the "
        "rack's capacitance — is what absorbs each burst's sprint demand\n"
    )


def governor_sweep(config: SystemConfig) -> None:
    """The governor axis in the scenario sweep, fanned across processes."""
    print("-- governor grid (parallel sweep over the governors axis) --")
    excess_w = config.sprint_power_w - config.sustainable_power_w
    spec = SweepSpec(
        policies=("least_loaded",),
        arrival_rates_hz=(ARRIVAL_RATE_HZ,),
        fleet_sizes=(FLEET_SIZE,),
        n_requests=REQUESTS,
        service_mean_s=TASK_SUSTAINED_S,
        service_cv=SERVICE_CV,
        slo_s=SLO_S,
        base_seed=11,
        governors=(
            GovernorSpec.unlimited(),
            GovernorSpec.greedy(TRIP_SPRINTS),
            GovernorSpec.token_bucket(TOKEN_RATE_HZ, 30),
            GovernorSpec.cooperative(TRIP_SPRINTS * excess_w),
        ),
    )
    result = run_sweep(spec, config, workers=SWEEP_WORKERS)
    print(result.format_table())
    best = result.best_cell("p99_latency_s")
    print(
        f"\nbest p99 under a budget: {best.summary.p99_latency_s:.2f}s with "
        f"{best.cell.governor.label}"
    )


def governance_error_bars(config: SystemConfig) -> None:
    """Greedy vs cooperative-threshold, replicated: the gap with a CI.

    The breaker study above is one seed; here the same duel runs as a
    common-random-numbers paired experiment, so the cooperative governor's
    tail win is reported with a confidence interval and a sign test.
    """
    excess_w = config.sprint_power_w - config.sustainable_power_w
    trip_w = TRIP_SPRINTS * excess_w
    print(
        f"\n-- governance error bars: greedy vs cooperative at the same "
        f"{trip_w:.0f} W breaker, {REPLICATIONS} CRN-paired replications --"
    )
    greedy = Scenario(
        arrivals=PoissonArrivals(ARRIVAL_RATE_HZ),
        service=GammaService(mean_s=TASK_SUSTAINED_S, cv=SERVICE_CV),
        n_requests=REQUESTS,
        n_devices=FLEET_SIZE,
        governor=GovernorSpec.greedy(
            FLEET_SIZE, trip_headroom_w=trip_w, penalty_s=PENALTY_S
        ),
        slo_s=SLO_S,
    )
    cooperative = greedy.with_options(
        governor=GovernorSpec.cooperative(trip_w, penalty_s=PENALTY_S)
    )
    duel = compare(
        greedy,
        cooperative,
        n_replications=REPLICATIONS,
        config=config,
        workers=SWEEP_WORKERS,
    )
    for label, arm in (("greedy", duel.baseline), ("cooperative", duel.treatment)):
        p99 = arm.estimate("p99_latency_s")
        trips = arm.estimate("breaker_trips")
        print(
            f"{label:>12}: p99 {p99.mean:6.2f}s ± {p99.half_width:5.2f}s   "
            f"trips {trips.mean:5.1f} ± {trips.half_width:4.1f}"
        )
    delta = duel.delta("p99_latency_s")
    print(
        f"cooperative moves p99 by {delta.mean_delta:+.2f}s ± {delta.half_width:.2f}s "
        f"(95% CI, sign test p={delta.sign_test_p:.3g}) — "
        f"{'significant' if delta.significant else 'not significant'}: "
        f"breaker avoidance is a claim that survives error bars"
    )


def main() -> None:
    config = SystemConfig.paper_default()
    excess_w = config.sprint_power_w - config.sustainable_power_w
    print(
        f"platform: sustained {config.sustainable_power_w:.1f} W, sprint "
        f"{config.sprint_power_w:.0f} W (+{excess_w:.1f} W excess per sprint); "
        f"fleet of {FLEET_SIZE} provisioned for sustained draw plus headroom\n"
    )
    concurrency_cap_study(config)
    breaker_study(config)
    burst_credit_study(config)
    governor_sweep(config)
    governance_error_bars(config)


if __name__ == "__main__":
    main()
