"""Thermal design-space exploration for a sprint-enabled package.

Section 4 of the paper sizes the heat store (copper vs aluminium vs phase
change material), picks a melting point between the sustained operating
temperature and the junction limit, and checks the resulting sprint
duration and cooldown.  This example walks that design space:

1. compares candidate heat stores for a 16 J sprint,
2. sweeps PCM mass and reports the sprint duration and cooldown of each,
3. sweeps the PCM melting point to show the duration/cooldown trade-off,
4. checks the electrical side: activation ramp and power-source feasibility.

Run with::

    python examples/thermal_design_space.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import fig06_activation, sec4_sizing, sec6_sources
from repro.thermal.materials import GENERIC_PCM
from repro.thermal.package import FULL_PCM_PACKAGE
from repro.thermal.transient import simulate_sprint_and_cooldown

PCM_MASSES_G = (0.0015, 0.050, 0.150, 0.300)
MELTING_POINTS_C = (45.0, 55.0, 60.0, 65.0)
SPRINT_POWER_W = 16.0


def heat_store_comparison() -> None:
    print("-- Section 4.1/4.2: sizing the heat store for a 16 J sprint --")
    print(sec4_sizing.format_table(sec4_sizing.run()))
    print()


def pcm_mass_sweep() -> None:
    print("-- PCM mass vs sprint duration and cooldown (16 W sprint) --")
    print(f"{'mass':>8} {'sprint':>9} {'cooldown':>9}")
    for mass in PCM_MASSES_G:
        package = FULL_PCM_PACKAGE.with_pcm_mass(mass)
        sprint, cooldown = simulate_sprint_and_cooldown(
            package, SPRINT_POWER_W, cooldown_s=60.0
        )
        cool = (
            f"{cooldown.time_to_near_ambient_s:8.1f}s"
            if cooldown.time_to_near_ambient_s is not None
            else "    >60s"
        )
        print(f"{mass * 1000:6.1f}mg {sprint.sprint_duration_s:8.2f}s {cool}")
    print()


def melting_point_sweep() -> None:
    print("-- PCM melting point vs sprint duration and cooldown --")
    print(f"{'T_melt':>8} {'max sprint power':>17} {'sprint':>9} {'cooldown':>9}")
    for melt_c in MELTING_POINTS_C:
        material = replace(GENERIC_PCM, name=f"pcm-{melt_c:.0f}", melting_point_c=melt_c)
        package = replace(FULL_PCM_PACKAGE, pcm_material=material)
        sprint, cooldown = simulate_sprint_and_cooldown(
            package, SPRINT_POWER_W, cooldown_s=60.0
        )
        cool = (
            f"{cooldown.time_to_near_ambient_s:8.1f}s"
            if cooldown.time_to_near_ambient_s is not None
            else "    >60s"
        )
        print(
            f"{melt_c:6.0f}C {package.max_sprint_power_w:16.1f}W "
            f"{sprint.sprint_duration_s:8.2f}s {cool}"
        )
    print()


def electrical_checks() -> None:
    print("-- Section 5/6: activation ramp and power source --")
    print(fig06_activation.format_table(fig06_activation.run()))
    print()
    print(sec6_sources.format_table(sec6_sources.run()))


def main() -> None:
    heat_store_comparison()
    pcm_mass_sweep()
    melting_point_sweep()
    electrical_checks()


if __name__ == "__main__":
    main()
