"""Quickstart: sprint one vision task and compare it against the baselines.

Runs the sobel edge-detection workload three ways on the paper's default
platform (16 cores, 1 W sustainable, 150 mg of phase change material):

* sustained single-core execution (the non-sprinting baseline),
* a 16-core parallel sprint,
* a single-core DVFS sprint using the same 16x power headroom,

then prints the responsiveness and energy comparison of Figure 7 for this
one workload, plus the thermal story (peak temperature, sprint duration,
time to cool back down).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SprintSimulation, SystemConfig
from repro.workloads import kernel_suite


def main() -> None:
    config = SystemConfig.paper_default()
    simulation = SprintSimulation(config)
    workload = kernel_suite()["sobel"].workload("B")

    print(f"platform: {config.machine.n_cores} cores, "
          f"TDP {config.sustainable_power_w:.1f} W, "
          f"sprint {config.sprint_power_w:.0f} W, "
          f"PCM {config.package.pcm_mass_g * 1000:.0f} mg")
    print(f"workload: {workload.name} ({workload.input_label}), "
          f"{workload.total_instructions / 1e9:.1f} G instructions\n")

    baseline = simulation.run_baseline(workload)
    sprint = simulation.run(workload)
    dvfs = simulation.run_dvfs_sprint(workload)

    rows = [
        ("sustained single core", baseline),
        ("16-core parallel sprint", sprint),
        ("DVFS sprint (2.5x boost)", dvfs),
    ]
    print(f"{'configuration':<28} {'time':>8} {'speedup':>8} {'energy':>8} {'peak T':>8}")
    for label, result in rows:
        print(
            f"{label:<28} {result.total_time_s:7.2f}s "
            f"{result.speedup_over(baseline):7.1f}x "
            f"{result.total_energy_j:7.2f}J "
            f"{result.peak_junction_c:6.1f}C"
        )

    cooldown = simulation.cooldown_after(sprint)
    print(f"\nsprint lasted {sprint.sprint_duration_s:.2f}s "
          f"({sprint.sprint_completion_fraction * 100:.0f}% of the task inside the sprint)")
    if cooldown.time_to_near_ambient_s is not None:
        print(f"cooldown to near ambient: {cooldown.time_to_near_ambient_s:.1f}s")


if __name__ == "__main__":
    main()
