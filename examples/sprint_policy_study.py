"""Sprint-policy study: intensity, termination and budget estimation.

The runtime of Section 7 has several knobs: how many cores to wake, what to
do when the thermal budget runs out (migrate threads to one core or let the
hardware throttle the clock), and how to estimate the remaining budget
(from dissipated energy, as the paper proposes, or from an oracle that
reads the junction temperature).  This example exercises all three on a
workload large enough to exhaust the constrained 1.5 mg package.

Run with::

    python examples/sprint_policy_study.py
"""

from __future__ import annotations

from repro import SprintSimulation, SystemConfig
from repro.core.budget import EnergyBudgetEstimator, OracleBudgetEstimator
from repro.core.modes import TerminationAction
from repro.workloads import kernel_suite

SPRINT_CORE_COUNTS = (2, 4, 8, 16)


def sprint_intensity_sweep() -> None:
    """How does responsiveness change with the number of sprinting cores?"""
    workload = kernel_suite()["kmeans"].workload("B")
    print("-- sprint intensity (150 mg PCM, kmeans B) --")
    base_config = SystemConfig.paper_default()
    baseline = SprintSimulation(base_config).run_baseline(workload, quantum_s=2e-3)
    print(f"{'cores':>6} {'time':>8} {'speedup':>8} {'peak T':>8} {'truncated':>10}")
    for cores in SPRINT_CORE_COUNTS:
        config = base_config.with_sprint_cores(cores)
        result = SprintSimulation(config).run(workload)
        print(
            f"{cores:6d} {result.total_time_s:7.2f}s "
            f"{result.speedup_over(baseline):7.1f}x {result.peak_junction_c:7.1f}C "
            f"{'yes' if result.sprint_was_truncated else 'no':>10}"
        )
    print()


def termination_policy_comparison() -> None:
    """Migrate-to-one-core versus hardware frequency throttle."""
    workload = kernel_suite()["kmeans"].workload("C")
    print("-- termination policy (1.5 mg PCM, kmeans C) --")
    base_config = SystemConfig.small_pcm()
    baseline = SprintSimulation(base_config).run_baseline(workload, quantum_s=2e-3)
    for action in TerminationAction:
        config = base_config.with_policy(base_config.policy.with_termination(action))
        result = SprintSimulation(config).run(workload)
        print(
            f"{action.value:>10}: {result.total_time_s:6.2f}s "
            f"({result.speedup_over(baseline):.1f}x), sprint covered "
            f"{result.sprint_completion_fraction * 100:.0f}% of the work, "
            f"peak {result.peak_junction_c:.1f}C"
        )
    print()


def budget_estimator_comparison() -> None:
    """Energy-based budget accounting versus a temperature oracle."""
    workload = kernel_suite()["kmeans"].workload("C")
    print("-- budget estimator (1.5 mg PCM, kmeans C) --")
    config = SystemConfig.small_pcm()
    simulation = SprintSimulation(config)
    baseline = simulation.run_baseline(workload, quantum_s=2e-3)
    estimators = {
        "energy-based (paper)": EnergyBudgetEstimator(config.package),
        "temperature oracle": OracleBudgetEstimator(config.package),
    }
    for label, estimator in estimators.items():
        result = simulation.run(workload, budget=estimator)
        print(
            f"{label:>22}: sprint {result.sprint_duration_s:5.2f}s, "
            f"speedup {result.speedup_over(baseline):.1f}x, "
            f"peak {result.peak_junction_c:.1f}C"
        )


def main() -> None:
    sprint_intensity_sweep()
    termination_policy_comparison()
    budget_estimator_comparison()


if __name__ == "__main__":
    main()
