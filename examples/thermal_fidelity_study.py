"""Thermal fidelity: what the coarse reservoir hides about sprint pacing.

The serving stack paces sprints against a heat reservoir whose physics is
a pluggable backend (:mod:`repro.core.thermal_backend`): the paper's
``linear`` rule of thumb (drain at constant sustainable power), ``rc``
Newtonian cooling (drain slows as the package approaches ambient), and
``pcm`` enthalpy physics (the Figure 4 melt plateau, re-run per request).
This example shows where the fidelity choice matters:

1. **Melt plateau under serving load**: back-to-back requests on one
   ``pcm`` device walk the reservoir through the melt — temperature pins
   at the melting point, every request keeps its *full* sprint while the
   PCM melts, and capacity falls off sharply once the block is molten,
   reproducing Figure 4 as a serving-side effect.
2. **Cooldown fidelity**: after a sprint burst, how much budget has
   really recovered?  The linear drain empties the reservoir on schedule;
   RC and PCM keep heat in the tail — the regime where the rule of thumb
   is optimistic about the next burst's budget.
3. **p99 misprediction under bursty MMPP traffic**: the same request
   stream served by fleets differing only in backend — the signed p99 gap
   is the error a capacity planner absorbs by trusting the coarse model.
4. **Thermal grid sweep**: the ``thermals`` axis in a parallel
   :func:`repro.traffic.run_sweep`, pairing fidelity against arrival rate
   in one grid.

Run with::

    python examples/thermal_fidelity_study.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.core.thermal_backend import THERMAL_BACKENDS, ThermalSpec
from repro.traffic import (
    FleetSimulator,
    GammaService,
    MMPPArrivals,
    SprintDevice,
    SweepSpec,
    generate_requests,
    run_sweep,
)

PLATEAU_TASK_S = 1.0
PLATEAU_TASKS = 18
TASK_SUSTAINED_S = 5.0
SERVICE_CV = 0.5
FLEET_SIZE = 4
REQUESTS = 400
ARRIVAL_RATES_HZ = (0.2, 0.4, 0.8)
BURST_FACTOR = 5.0
RECOVERY_HORIZONS_S = (2.0, 5.0, 10.0, 20.0, 40.0)
SWEEP_WORKERS = 4


def melt_plateau_study(config: SystemConfig) -> None:
    """Back-to-back requests ride the Figure 4 plateau on a pcm device."""
    device = SprintDevice(config, thermal="pcm")
    requests = generate_requests(
        # Arrivals far faster than service: the device queue keeps the
        # reservoir from draining between requests.
        MMPPArrivals.bursty(burst_rate_hz=100.0, mean_burst_s=60.0, mean_idle_s=1.0),
        GammaService(mean_s=PLATEAU_TASK_S, cv=0.0),
        PLATEAU_TASKS,
        seed=2,
    )
    print(
        f"-- melt plateau: {PLATEAU_TASKS} back-to-back {PLATEAU_TASK_S:.0f}s tasks "
        f"on one pcm-backed device --"
    )
    print(f"{'req':>4} {'melt%':>6} {'temp':>7} {'fullness':>9} {'stored':>8}")
    served = [device.serve(r) for r in requests]
    for s in served:
        print(
            f"{s.request.index:4d} {s.melt_fraction * 100:5.0f}% "
            f"{s.package_temperature_c:6.1f}C {s.sprint_fullness:9.2f} "
            f"{s.stored_heat_after_j:7.2f}J"
        )
    melting = [s for s in served if s.melt_fraction < 1.0]
    molten = [s for s in served if s.melt_fraction >= 1.0]
    assert melting and molten, "stream should cross the full-melt boundary"
    assert all(s.sprint_fullness == 1.0 for s in melting)
    assert any(s.sprint_fullness < 1.0 for s in molten)
    plateau = [s for s in melting if 0.0 < s.melt_fraction]
    melt_c = config.package.melting_point_c
    assert all(abs(s.package_temperature_c - melt_c) < 1e-6 for s in plateau)
    print(
        f"\nthe device holds full sprint capacity through the melt plateau "
        f"(fullness 1.00 for all {len(melting)} requests while melting, "
        f"temperature pinned at {melt_c:.0f}C), then falls off sharply: "
        f"{sum(1 for s in molten if s.sprint_fullness < 1.0)} of {len(molten)} "
        f"post-melt requests degrade\n"
    )


def cooldown_fidelity_study(config: SystemConfig) -> None:
    """Budget recovery after a burst, per backend: where linear is optimistic."""
    print("-- cooldown fidelity: budget recovered after a full-reservoir burst --")
    backends = {name: ThermalSpec(backend=name).build(config) for name in THERMAL_BACKENDS}
    capacity = backends["linear"].capacity_j
    for backend in backends.values():
        backend.deposit(capacity)
    header = "".join(f"{f'{h:.0f}s':>9}" for h in RECOVERY_HORIZONS_S)
    print(f"{'backend':>8} {header}   (available budget, % of capacity)")
    recovered = {}
    for name, backend in backends.items():
        fractions = [
            1.0 - backend.projected_stored_heat_j(h) / capacity
            for h in RECOVERY_HORIZONS_S
        ]
        recovered[name] = fractions
        row = "".join(f"{f * 100:8.0f}%" for f in fractions)
        print(f"{name:>8} {row}")
    gaps = {
        name: max(
            (lin - phys) * 100
            for lin, phys in zip(recovered["linear"], recovered[name])
        )
        for name in ("rc", "pcm")
    }
    print(
        f"\nat its worst horizon the linear rule of thumb over-promises "
        f"{gaps['rc']:.0f}% of capacity vs rc cooling and {gaps['pcm']:.0f}% vs "
        f"the pcm enthalpy physics — budget the coarse model reports recovered "
        f"that the package does not have\n"
    )


def p99_misprediction_study(config: SystemConfig) -> None:
    """The signed p99 error of the coarse backend under bursty MMPP load."""
    print(
        f"-- p99 misprediction under bursty MMPP traffic "
        f"({FLEET_SIZE} devices, burst factor {BURST_FACTOR:.0f}x) --"
    )
    print(
        f"{'rate':>8} {'backend':>8} {'p50':>7} {'p99':>8} {'full%':>6} "
        f"{'peak melt':>10} {'linear err':>11}"
    )
    for rate in ARRIVAL_RATES_HZ:
        mean_burst_s = 10.0 / (BURST_FACTOR * rate)
        arrivals = MMPPArrivals.bursty(
            burst_rate_hz=BURST_FACTOR * rate,
            mean_burst_s=mean_burst_s,
            mean_idle_s=mean_burst_s * (BURST_FACTOR - 1.0),
        )
        requests = generate_requests(
            arrivals,
            GammaService(mean_s=TASK_SUSTAINED_S, cv=SERVICE_CV),
            REQUESTS,
            seed=13,
        )
        summaries = {}
        for name in THERMAL_BACKENDS:
            fleet = FleetSimulator(config, FLEET_SIZE, thermal=name)
            summaries[name] = fleet.run(requests).summary()
        linear_p99 = summaries["linear"].p99_latency_s
        for name in THERMAL_BACKENDS:
            s = summaries[name]
            if name == "linear":
                err = "(reference)"
            else:
                signed = (linear_p99 - s.p99_latency_s) / s.p99_latency_s * 100
                err = f"{signed:+10.1f}%"
            print(
                f"{rate:7.2f}/s {name:>8} {s.p50_latency_s:6.2f}s "
                f"{s.p99_latency_s:7.2f}s {s.mean_sprint_fullness * 100:5.0f}% "
                f"{s.peak_melt_fraction * 100:9.0f}% {err:>11}"
            )
    print(
        "\nthe 'linear err' column is the tail-latency error a planner absorbs "
        "by pacing with the rule of thumb instead of the package physics: "
        "negative means the coarse model promised a faster tail than the "
        "physics delivers\n"
    )


def thermal_grid_sweep(config: SystemConfig) -> None:
    """The thermals axis in the scenario sweep, fanned across processes."""
    print("-- thermal grid (parallel sweep over the thermals axis) --")
    spec = SweepSpec(
        policies=("thermal_aware",),
        arrival_rates_hz=ARRIVAL_RATES_HZ,
        fleet_sizes=(FLEET_SIZE,),
        n_requests=REQUESTS,
        arrival_kind="bursty",
        burst_factor=BURST_FACTOR,
        service_mean_s=TASK_SUSTAINED_S,
        service_cv=SERVICE_CV,
        thermals=tuple(ThermalSpec(backend=name) for name in THERMAL_BACKENDS),
        base_seed=13,
    )
    result = run_sweep(spec, config, workers=SWEEP_WORKERS)
    print(result.format_table())
    worst = max(
        (cell for cell in result.cells),
        key=lambda c: c.summary.p99_latency_s,
    )
    print(
        f"\nworst tail on the grid: {worst.summary.p99_latency_s:.2f}s p99 at "
        f"{worst.cell.arrival_rate_hz:.2f}/s with the "
        f"{worst.cell.thermal.label} backend"
    )


def main() -> None:
    config = SystemConfig.paper_default()
    print(
        f"platform: sustained {config.sustainable_power_w:.1f} W, sprint "
        f"{config.sprint_power_w:.0f} W, reservoir "
        f"{config.package.sprint_budget_j(config.sprint_power_w):.1f} J "
        f"({config.package.pcm_mass_g * 1000:.0f} mg PCM melting at "
        f"{config.package.melting_point_c:.0f}C)\n"
    )
    melt_plateau_study(config)
    cooldown_fidelity_study(config)
    p99_misprediction_study(config)
    thermal_grid_sweep(config)


if __name__ == "__main__":
    main()
