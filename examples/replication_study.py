"""Replicated experiments: error bars, CRN variance reduction, stopping rules.

Every other example in this repository reports numbers from a single
stochastic replication.  This one shows the measurement discipline of
:mod:`repro.traffic.experiments` — what turns the simulator's output from
a point estimate into a defensible claim:

1. **Error bars**: N replications of one fleet scenario reduced to
   per-metric mean ± Student-t confidence half-widths.  The p99 of a
   single run can easily sit several seconds from the replication mean.
2. **CRN variance reduction**: the same sprint-vs-no-sprint comparison
   run twice at the *same* replication budget — once with independent
   seeding per arm, once under common random numbers (both arms of
   replication r replay identical arrival/service draws).  The paired
   p99-delta CI under CRN is measurably tighter than under independent
   seeding; the example asserts it.
3. **Sequential stopping**: :func:`repro.traffic.run_until` adds
   replications until the p99 CI half-width falls under a target, so an
   experiment buys exactly as much compute as the noise demands.

Run with::

    python examples/replication_study.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.traffic import (
    GammaService,
    PoissonArrivals,
    ReplicationPlan,
    Scenario,
    compare,
    run_replications,
    run_until,
)

TASK_SUSTAINED_S = 5.0
SERVICE_CV = 1.0
FLEET_SIZE = 4
REQUESTS = 150
ARRIVAL_RATE_HZ = 0.3
SLO_S = 2.0
REPLICATIONS = 10
TARGET_HALF_WIDTH_S = 2.0
MAX_REPLICATIONS = 40
WORKERS = 4


def scenario() -> Scenario:
    """The frozen fleet scenario every section replicates."""
    return Scenario(
        arrivals=PoissonArrivals(ARRIVAL_RATE_HZ),
        service=GammaService(mean_s=TASK_SUSTAINED_S, cv=SERVICE_CV),
        n_requests=REQUESTS,
        n_devices=FLEET_SIZE,
        slo_s=SLO_S,
    )


def error_bars(config: SystemConfig) -> None:
    """One scenario, N replications, mean ± CI per headline metric."""
    print(
        f"-- error bars: {REPLICATIONS} replications of "
        f"{ARRIVAL_RATE_HZ:.1f}/s into {FLEET_SIZE} devices --"
    )
    result = run_replications(
        ReplicationPlan(scenario(), n_replications=REPLICATIONS),
        config,
        workers=WORKERS,
    )
    print(result.format_report())
    p99 = result.estimate("p99_latency_s")
    spread = max(result.values("p99_latency_s")) - min(result.values("p99_latency_s"))
    print(
        f"\nsingle-replication p99s span {spread:.1f}s across seeds — any one of "
        f"them alone could sit anywhere in that band; the replication mean is "
        f"{p99.mean:.1f}s ± {p99.half_width:.1f}s\n"
    )


def crn_variance_reduction(config: SystemConfig) -> None:
    """Paired sprint-vs-no-sprint deltas: CRN against independent seeding."""
    print(
        f"-- CRN variance reduction: sprint vs no-sprint p99 delta, "
        f"{REPLICATIONS} replications per arm either way --"
    )
    treatment = scenario()
    baseline = treatment.with_options(sprint_enabled=False)
    deltas = {}
    for pairing in ("independent", "crn"):
        duel = compare(
            baseline,
            treatment,
            n_replications=REPLICATIONS,
            pairing=pairing,
            config=config,
            workers=WORKERS,
        )
        deltas[pairing] = duel.delta("p99_latency_s")
        print(f"{pairing:>12}: {deltas[pairing]}")
    crn, independent = deltas["crn"], deltas["independent"]
    # The acceptance claim of the replicated-experiment layer: at an equal
    # replication budget, pairing the arms on common random numbers yields
    # a strictly tighter p99-delta CI than independent seeding.
    assert crn.half_width < independent.half_width, (
        f"CRN half-width {crn.half_width:.3f}s should beat "
        f"independent {independent.half_width:.3f}s"
    )
    print(
        f"\nCRN pairing cuts the p99-delta CI half-width from "
        f"±{independent.half_width:.2f}s to ±{crn.half_width:.2f}s at the same "
        f"replication budget ({independent.half_width / crn.half_width:.1f}x "
        f"tighter) — the shared arrival/service noise cancels in the pairs\n"
    )


def sequential_stopping(config: SystemConfig) -> None:
    """Replicate until the p99 CI half-width falls under a target."""
    print(
        f"-- sequential stopping: replicate until p99 half-width "
        f"<= {TARGET_HALF_WIDTH_S:.1f}s --"
    )
    plan = ReplicationPlan(scenario(), n_replications=2)
    result = run_until(
        plan,
        target_half_width=TARGET_HALF_WIDTH_S,
        metric="p99_latency_s",
        config=config,
        workers=WORKERS,
        batch=WORKERS,
        max_replications=MAX_REPLICATIONS,
    )
    p99 = result.estimate("p99_latency_s")
    met = p99.half_width <= TARGET_HALF_WIDTH_S
    print(
        f"stopped after {result.n_replications} replications: p99 "
        f"{p99.mean:.2f}s ± {p99.half_width:.2f}s "
        f"({'target met' if met else f'budget cap of {MAX_REPLICATIONS} hit'})"
    )
    print(
        "replication r's seed streams depend only on (base_seed, r), so "
        "stopping early never changes what was measured — only how much"
    )


def main() -> None:
    config = SystemConfig.paper_default()
    print(
        f"platform: {config.machine.n_cores} cores, sustained "
        f"{config.sustainable_power_w:.1f} W, sprint {config.sprint_power_w:.0f} W; "
        f"{TASK_SUSTAINED_S:.0f}s tasks (cv {SERVICE_CV:.1f})\n"
    )
    error_bars(config)
    crn_variance_reduction(config)
    sequential_stopping(config)


if __name__ == "__main__":
    main()
