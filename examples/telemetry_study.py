"""Streaming observability: flat-memory tails, fleet timelines, trace post-mortems.

Every other example holds each request's latency in memory and summarises
at the end — fine for hundreds of requests, fatal for the "millions of
users" horizons the paper's datacenter story implies.  This example runs
the telemetry layer of :mod:`repro.traffic.telemetry` end to end:

1. **Flat-memory tails**: a long-horizon run with ``keep_samples=False``
   keeps no per-request list — the p50/p99/SLO numbers come from a
   fixed-memory quantile sketch, compared side by side against the exact
   sample-backed run (the difference is within the sketch's documented
   rank-error bound).
2. **Fleet timeline**: a windowed time series of what the fleet was doing
   — queue depth, in-flight sprints and their granted power, breaker
   trips, thermal peaks — from a power-governed run under bursty load.
3. **Trace post-mortem**: the ring-buffered structured event trace around
   a breaker trip, exported as JSON-lines.
4. **Mergeable shards**: per-replication sketches pooled into one
   aggregate tail — "p99 over every request of every replication" in
   O(sketch) memory, which per-replication summaries cannot express.

Run with::

    python examples/telemetry_study.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.traffic import (
    FixedService,
    FleetSimulator,
    GammaService,
    GovernorSpec,
    MMPPArrivals,
    PoissonArrivals,
    ReplicationPlan,
    Scenario,
    TelemetrySpec,
    generate_requests,
    run_replications,
)

LONG_HORIZON_REQUESTS = 50_000
FLEET_SIZE = 4
REPLICATIONS = 6
WORKERS = 4
SLO_S = 2.0


def flat_memory_tails(config: SystemConfig) -> None:
    """Sketch-backed summary against the exact one, same seed, same stream."""
    print(f"-- flat memory: {LONG_HORIZON_REQUESTS} requests, one device --")
    requests = generate_requests(
        PoissonArrivals(1.5), FixedService(0.5), LONG_HORIZON_REQUESTS, seed=11
    )
    exact = FleetSimulator(config, n_devices=1).run(requests)
    flat = FleetSimulator(config, n_devices=1, keep_samples=False).run(requests)
    se, sf = exact.summary(slo_s=SLO_S), flat.summary(slo_s=SLO_S)
    sketch = flat.telemetry.stream.latency
    print(f"{'':>14} {'exact':>10} {'sketch':>10}")
    for name in ("p50_latency_s", "p99_latency_s", "slo_attainment"):
        print(f"{name:>14} {getattr(se, name):10.4f} {getattr(sf, name):10.4f}")
    print(
        f"retained {sketch.retained} of {sketch.count} values "
        f"(rank-error bound ±{sketch.rank_error_bound:.3f}); the sample-backed "
        f"run held every latency, the flat run held none\n"
    )


def fleet_timeline(config: SystemConfig) -> None:
    """Windowed view of a governed fleet riding out a bursty arrival process."""
    print(f"-- timeline: bursty load into {FLEET_SIZE} devices, 2-sprint budget --")
    requests = generate_requests(
        MMPPArrivals.bursty(burst_rate_hz=2.0, mean_burst_s=60.0, mean_idle_s=120.0),
        GammaService(mean_s=4.0, cv=0.8),
        400,
        seed=12,
    )
    fleet = FleetSimulator(
        config,
        n_devices=FLEET_SIZE,
        mode="central_queue",
        governor=GovernorSpec.greedy(2),
        keep_samples=False,
        telemetry=TelemetrySpec(timeline_cadence_s=60.0),
    )
    timeline = fleet.run(requests, seed=13).telemetry.timeline
    print(f"{'window':>8} {'arrive':>7} {'serve':>6} {'queue^':>7} "
          f"{'sprints^':>9} {'power^ W':>9} {'denied':>7}")
    for i in range(timeline.n_windows):
        print(
            f"{timeline.window_start_s[i]:7.0f}s {timeline.arrivals[i]:7d} "
            f"{timeline.served[i]:6d} {timeline.peak_queue_depth[i]:7d} "
            f"{timeline.peak_in_flight_sprints[i]:9d} "
            f"{timeline.peak_granted_power_w[i]:9.0f} {timeline.sprints_denied[i]:7d}"
        )
    conserved = (
        int(timeline.served.sum())
        + int(timeline.rejected.sum())
        + int(timeline.abandoned.sum())
    )
    print(
        f"bursts show up as queue spikes riding the sprint-budget ceiling; "
        f"conservation holds: {int(timeline.arrivals.sum())} arrivals = "
        f"{conserved} fates\n"
    )


def trace_post_mortem(config: SystemConfig) -> None:
    """The last events before and after a breaker trip, as JSON-lines."""
    print("-- trace post-mortem: greedy governor sprinting past the breaker --")
    requests = generate_requests(
        PoissonArrivals(1.2), FixedService(5.0), 120, seed=14
    )
    fleet = FleetSimulator(
        config,
        n_devices=FLEET_SIZE,
        mode="central_queue",
        governor=GovernorSpec.greedy(3, trip_headroom_w=30.0, penalty_s=20.0),
        keep_samples=False,
        telemetry=TelemetrySpec(sketch=False, trace_capacity=512),
    )
    trace = fleet.run(requests, seed=15).telemetry.trace
    trips = trace.by_kind("trip")
    if trips:
        window = [r for r in trace.records if abs(r.time_s - trips[0].time_s) < 3.0]
        print(f"{len(trips)} breaker trip(s); events within ±3s of the first:")
        for record in window[:8]:
            print("  " + record.to_json())
    else:
        print("no trips at this load; latest lifecycle records:")
        for record in trace.records[-5:]:
            print("  " + record.to_json())
    print(
        f"ring kept {len(trace)} records, dropped {trace.dropped} older ones — "
        f"tracing cost is capped whatever the horizon\n"
    )


def merged_shards(config: SystemConfig) -> None:
    """Replication sketches merged into one aggregate tail quantile."""
    print(f"-- merged shards: {REPLICATIONS} replications pooled --")
    scenario = Scenario(
        arrivals=PoissonArrivals(0.4),
        service=GammaService(mean_s=4.0, cv=1.0),
        n_requests=300,
        n_devices=FLEET_SIZE,
        slo_s=SLO_S,
        keep_samples=False,
    )
    result = run_replications(
        ReplicationPlan(scenario, n_replications=REPLICATIONS),
        config,
        workers=WORKERS,
    )
    per_rep = [s.p99_latency_s for s in result.summaries]
    pooled = result.pooled_stream()
    print(
        f"per-replication p99s: "
        + ", ".join(f"{v:.2f}s" for v in per_rep)
    )
    print(
        f"pooled p99 over all {pooled.request_count} requests: "
        f"{pooled.latency.quantile(0.99):.2f}s — one number from "
        f"{REPLICATIONS} shards' sketches, no samples ever held"
    )


def main() -> None:
    config = SystemConfig.paper_default()
    print(
        f"platform: {config.machine.n_cores} cores, sustained "
        f"{config.sustainable_power_w:.1f} W, sprint {config.sprint_power_w:.0f} W\n"
    )
    flat_memory_tails(config)
    fleet_timeline(config)
    trace_post_mortem(config)
    merged_shards(config)


if __name__ == "__main__":
    main()
