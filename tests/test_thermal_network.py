"""Unit tests for the lumped RC thermal network solver."""

import pytest

from repro.thermal.network import ThermalNetwork, total_resistance_between
from repro.thermal.pcm import PhaseChangeBlock


def simple_rc(ambient=25.0, capacitance=1.0, resistance=10.0):
    net = ThermalNetwork(ambient_c=ambient)
    net.add_capacitance_node("node", capacitance_j_k=capacitance)
    net.add_fixed_node("ambient")
    net.connect("node", "ambient", resistance_k_w=resistance)
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = ThermalNetwork()
        net.add_capacitance_node("a", 1.0)
        with pytest.raises(ValueError):
            net.add_capacitance_node("a", 2.0)

    def test_empty_name_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ValueError):
            net.add_capacitance_node("", 1.0)

    def test_non_positive_capacitance_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ValueError):
            net.add_capacitance_node("a", 0.0)

    def test_connect_unknown_node_rejected(self):
        net = ThermalNetwork()
        net.add_capacitance_node("a", 1.0)
        with pytest.raises(KeyError):
            net.connect("a", "missing", 1.0)

    def test_self_connection_rejected(self):
        net = ThermalNetwork()
        net.add_capacitance_node("a", 1.0)
        with pytest.raises(ValueError):
            net.connect("a", "a", 1.0)

    def test_non_positive_resistance_rejected(self):
        net = ThermalNetwork()
        net.add_capacitance_node("a", 1.0)
        net.add_fixed_node("ambient")
        with pytest.raises(ValueError):
            net.connect("a", "ambient", 0.0)

    def test_nodes_default_to_ambient_temperature(self):
        net = ThermalNetwork(ambient_c=30.0)
        net.add_capacitance_node("a", 1.0)
        assert net.temperature("a") == pytest.approx(30.0)


class TestSteadyStateBehaviour:
    def test_constant_power_approaches_p_times_r(self):
        # 1 W through 10 K/W should settle 10 C above ambient.
        net = simple_rc(capacitance=0.5, resistance=10.0)
        net.step(200.0, {"node": 1.0})
        assert net.temperature("node") == pytest.approx(35.0, abs=0.1)

    def test_no_power_stays_at_ambient(self):
        net = simple_rc()
        net.step(50.0)
        assert net.temperature("node") == pytest.approx(25.0, abs=1e-6)

    def test_hot_node_decays_towards_ambient(self):
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("node", 1.0, initial_temperature_c=75.0)
        net.add_fixed_node("ambient")
        net.connect("node", "ambient", 10.0)
        net.step(10.0)  # one time constant: should drop to ~ 25 + 50/e
        assert net.temperature("node") == pytest.approx(25.0 + 50.0 / 2.71828, rel=0.02)

    def test_series_chain_steady_state_gradient(self):
        net = ThermalNetwork(ambient_c=20.0)
        net.add_capacitance_node("junction", 0.1)
        net.add_capacitance_node("case", 1.0)
        net.add_fixed_node("ambient")
        net.connect("junction", "case", 5.0)
        net.connect("case", "ambient", 15.0)
        net.step(400.0, {"junction": 2.0})
        assert net.temperature("case") == pytest.approx(20.0 + 2.0 * 15.0, abs=0.3)
        assert net.temperature("junction") == pytest.approx(20.0 + 2.0 * 20.0, abs=0.3)


class TestEnergyAccounting:
    def test_injected_equals_stored_plus_dissipated(self):
        net = simple_rc(capacitance=2.0, resistance=5.0)
        net.step(30.0, {"node": 3.0})
        balance = net.stored_energy_j() + net.dissipated_energy_j
        assert balance == pytest.approx(net.injected_energy_j, rel=1e-6)

    def test_energy_balance_with_pcm_node(self):
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("junction", 0.05)
        net.add_pcm_node("pcm", PhaseChangeBlock(mass_g=0.15))
        net.add_fixed_node("ambient")
        net.connect("junction", "pcm", 0.5)
        net.connect("pcm", "ambient", 30.0)
        net.step(2.0, {"junction": 16.0})
        balance = net.stored_energy_j() + net.dissipated_energy_j
        assert balance == pytest.approx(net.injected_energy_j, rel=1e-6)

    def test_time_advances_by_requested_amount(self):
        net = simple_rc()
        net.step(0.25, {"node": 1.0})
        net.step(0.75)
        assert net.time_s == pytest.approx(1.0)


class TestPcmCoupling:
    def make_pcm_net(self):
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("junction", 0.03)
        net.add_pcm_node("pcm", PhaseChangeBlock(mass_g=0.15))
        net.add_fixed_node("ambient")
        net.connect("junction", "pcm", 0.5)
        net.connect("pcm", "ambient", 33.5)
        return net

    def test_pcm_temperature_plateaus_at_melting_point(self):
        net = self.make_pcm_net()
        net.step(0.5, {"junction": 16.0})  # enough to start melting
        assert net.temperature("pcm") == pytest.approx(60.0, abs=0.5)
        assert 0.0 < net.melt_fraction("pcm") < 1.0

    def test_melt_fraction_reaches_one_with_enough_heat(self):
        net = self.make_pcm_net()
        net.step(2.5, {"junction": 16.0})
        assert net.melt_fraction("pcm") == pytest.approx(1.0)

    def test_melt_fraction_zero_for_non_pcm_node(self):
        net = self.make_pcm_net()
        assert net.melt_fraction("junction") == 0.0

    def test_pcm_block_accessor_type_checks(self):
        net = self.make_pcm_net()
        assert net.pcm_block("pcm").mass_g == pytest.approx(0.15)
        with pytest.raises(TypeError):
            net.pcm_block("junction")


class TestStepValidation:
    def test_negative_dt_rejected(self):
        net = simple_rc()
        with pytest.raises(ValueError):
            net.step(-1.0)

    def test_power_into_unknown_node_rejected(self):
        net = simple_rc()
        with pytest.raises(KeyError):
            net.step(1.0, {"missing": 1.0})

    def test_zero_dt_is_noop(self):
        net = simple_rc()
        net.step(0.0, {"node": 100.0})
        assert net.temperature("node") == pytest.approx(25.0)
        assert net.injected_energy_j == 0.0


class TestRun:
    def test_run_returns_samples_including_initial_state(self):
        net = simple_rc()
        states = net.run(1.0, {"node": 1.0}, sample_dt_s=0.1)
        assert len(states) == 11
        assert states[0].time_s == pytest.approx(0.0)
        assert states[-1].time_s == pytest.approx(1.0)

    def test_run_with_time_varying_power(self):
        net = simple_rc(capacitance=1.0, resistance=100.0)

        def power(t):
            return {"node": 2.0} if t < 0.5 else {}

        net.run(1.0, power, sample_dt_s=0.05)
        # roughly 1 J injected (2 W for 0.5 s), little dissipated at these R values
        assert net.injected_energy_j == pytest.approx(1.0, rel=0.15)

    def test_run_callback_invoked_per_sample(self):
        net = simple_rc()
        seen = []
        net.run(0.5, {"node": 1.0}, sample_dt_s=0.1, callback=seen.append)
        assert len(seen) == 6

    def test_run_rejects_bad_arguments(self):
        net = simple_rc()
        with pytest.raises(ValueError):
            net.run(-1.0, {})
        with pytest.raises(ValueError):
            net.run(1.0, {}, sample_dt_s=0.0)


class TestTotalResistanceHelper:
    def test_series_sum(self):
        edges = [("a", "b", 1.0), ("b", "c", 2.0), ("c", "d", 3.0)]
        assert total_resistance_between(edges, ["a", "b", "c", "d"]) == pytest.approx(6.0)

    def test_missing_edge_raises(self):
        with pytest.raises(KeyError):
            total_resistance_between([("a", "b", 1.0)], ["a", "c"])
