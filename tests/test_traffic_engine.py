"""Tests for the discrete-event serving engine.

The two load-bearing guarantees: immediate mode reproduces the legacy
arrival-ordered dispatch loop *bit-identically* (same requests, same seed,
same latencies — including the O(log n) least-loaded index against the
O(n) scan it replaces), and central-queue mode implements the request
lifecycle (shared FIFO/EDF queue, bounded admission, deadline
abandonment) with sane queueing semantics.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic.device import SprintDevice
from repro.traffic.engine import DISPATCH_POLICIES, ServingEngine
from repro.traffic.fleet import FleetSimulator
from repro.traffic.request import (
    FixedService,
    GammaService,
    Request,
    generate_requests,
)
from repro.traffic.arrivals import PoissonArrivals


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_default()


def legacy_run(config, n_devices, policy_name, requests, seed, **device_kwargs):
    """The pre-engine FleetSimulator loop, verbatim: arrival-ordered
    iteration, an O(n) policy call per request, immediate device binding."""
    devices = [
        SprintDevice(config, device_id=i, **device_kwargs) for i in range(n_devices)
    ]
    dispatch = DISPATCH_POLICIES[policy_name]
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    rng = np.random.default_rng(seed)
    served = []
    for cursor, request in enumerate(ordered):
        choice = dispatch(devices, request, rng, cursor)
        served.append(devices[choice].serve(request))
    served.sort(key=lambda s: s.request.index)
    return served


def stochastic_requests(seed, n=150, rate=0.35, cv=1.0):
    return generate_requests(
        PoissonArrivals(rate), GammaService(mean_s=5.0, cv=cv), n, seed=seed
    )


class TestImmediateModeRegression:
    """The engine must be indistinguishable from the legacy loop."""

    @pytest.mark.parametrize("policy", sorted(DISPATCH_POLICIES))
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bit_identical_to_legacy_loop(self, config, policy, seed):
        requests = stochastic_requests(seed)
        reference = legacy_run(config, 4, policy, requests, seed)
        result = FleetSimulator(config, 4, policy=policy).run(requests, seed=seed)
        assert len(result.served) == len(reference)
        for engine_side, legacy_side in zip(result.served, reference):
            # Dataclass equality covers every field bit-for-bit: latency,
            # device binding, sprint fullness, stored-heat bookkeeping.
            assert engine_side == legacy_side, policy

    def test_bit_identical_with_sprinting_disabled(self, config):
        requests = stochastic_requests(3)
        reference = legacy_run(
            config, 3, "least_loaded", requests, 0, sprint_enabled=False
        )
        result = FleetSimulator(
            config, 3, policy="least_loaded", sprint_enabled=False
        ).run(requests)
        assert list(result.served) == reference

    @pytest.mark.parametrize("seed", [1, 2, 9])
    def test_indexed_least_loaded_matches_scan(self, config, seed):
        """Passing the policy *function* forces the O(n) scan; the named
        policy runs on the index.  Both must agree exactly."""
        requests = stochastic_requests(seed, n=200, rate=0.6)
        indexed = FleetSimulator(config, 8, policy="least_loaded").run(requests)
        scan = FleetSimulator(
            config, 8, policy=DISPATCH_POLICIES["least_loaded"]
        ).run(requests)
        assert [s.device_id for s in indexed.served] == [
            s.device_id for s in scan.served
        ]
        assert np.array_equal(indexed.latencies_s, scan.latencies_s)

    def test_index_respects_pre_used_devices(self, config):
        """ServingEngine is public: an index built over devices that carry
        serving history must match the scan, not assume a fresh fleet."""

        def warmed():
            devices = [SprintDevice(config, device_id=i) for i in range(3)]
            for k in range(3):
                devices[0].serve(
                    Request(index=k, arrival_s=float(k), sustained_time_s=1.0)
                )
            return devices

        later = [
            Request(index=10 + j, arrival_s=50.0 + 10.0 * j, sustained_time_s=5.0)
            for j in range(4)
        ]
        indexed = ServingEngine(warmed(), policy_name="least_loaded").run(
            later, np.random.default_rng(0)
        )
        scan = ServingEngine(
            warmed(),
            dispatch=DISPATCH_POLICIES["least_loaded"],
            policy_name="custom",
        ).run(later, np.random.default_rng(0))
        picks = [s.device_id for s in indexed.served]
        assert picks == [s.device_id for s in scan.served]
        # The warmed-up device 0 must not be preferred while fresh ones tie.
        assert picks[0] != 0

    def test_central_queue_respects_pre_used_devices(self, config):
        """A busy device handed to the engine only becomes assignable once
        it actually frees (no crash, correct wait)."""
        devices = [SprintDevice(config, sprint_enabled=False)]
        devices[0].serve(Request(index=0, arrival_s=0.0, sustained_time_s=20.0))
        free_at = devices[0].busy_until_s
        engine = ServingEngine(devices, mode="central_queue")
        outcome = engine.run(
            [Request(index=1, arrival_s=1.0, sustained_time_s=5.0)],
            np.random.default_rng(0),
        )
        assert outcome.served[0].queueing_delay_s == pytest.approx(free_at - 1.0)

    def test_custom_policy_named_least_loaded_is_still_called(self, config):
        """A user's own callable must run even if it shares the built-in
        name; only the *string* policy selects the engine index."""
        calls = []

        def least_loaded(devices, request, rng, cursor):
            calls.append(request.index)
            return 0

        requests = [
            Request(index=i, arrival_s=float(i * 40), sustained_time_s=5.0)
            for i in range(4)
        ]
        result = FleetSimulator(config, 3, policy=least_loaded).run(requests)
        assert calls == [0, 1, 2, 3]
        assert all(s.device_id == 0 for s in result.served)

    def test_indexed_least_loaded_matches_scan_under_light_load(self, config):
        """Mostly-idle fleets exercise the idle-heap tie-break path."""
        requests = generate_requests(
            PoissonArrivals(0.02), FixedService(5.0), 60, seed=4
        )
        indexed = FleetSimulator(config, 6, policy="least_loaded").run(requests)
        scan = FleetSimulator(
            config, 6, policy=DISPATCH_POLICIES["least_loaded"]
        ).run(requests)
        assert list(indexed.served) == list(scan.served)


class TestCentralQueue:
    def test_single_device_fifo_equals_immediate(self, config):
        """With one device a central FIFO queue and immediate dispatch give
        every request the same start time, hence identical latencies."""
        requests = stochastic_requests(11, n=80, rate=0.5)
        immediate = FleetSimulator(config, 1).run(requests)
        central = FleetSimulator(config, 1, mode="central_queue").run(requests)
        assert np.array_equal(immediate.latencies_s, central.latencies_s)

    def test_requests_wait_for_a_free_device(self, config):
        """Two simultaneous long requests on one device: the second starts
        exactly when the first finishes."""
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=0.0, sustained_time_s=10.0),
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", sprint_enabled=False
        ).run(requests)
        first, second = result.served
        assert first.queueing_delay_s == 0.0
        assert second.queueing_delay_s == pytest.approx(10.0)

    def test_runs_are_deterministic(self, config):
        requests = stochastic_requests(5)
        for discipline in ("fifo", "edf"):
            a = FleetSimulator(
                config, 3, mode="central_queue", discipline=discipline
            ).run(requests)
            b = FleetSimulator(
                config, 3, mode="central_queue", discipline=discipline
            ).run(requests)
            assert np.array_equal(a.latencies_s, b.latencies_s)

    def test_bounded_queue_rejects_excess_arrivals(self, config):
        # One slow device, three simultaneous arrivals, room for one waiter.
        requests = [
            Request(index=i, arrival_s=0.0, sustained_time_s=10.0) for i in range(3)
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", queue_bound=1, sprint_enabled=False
        ).run(requests)
        assert len(result.served) == 2
        assert len(result.rejected) == 1
        assert result.rejected[0].index == 2
        assert result.summary().rejected_count == 1
        assert result.summary().offered_count == 3

    def test_zero_bound_is_a_loss_system(self, config):
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=1.0, sustained_time_s=10.0),
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", queue_bound=0, sprint_enabled=False
        ).run(requests)
        assert len(result.served) == 1
        assert len(result.rejected) == 1

    def test_queued_request_abandons_at_its_deadline(self, config):
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=0.0, sustained_time_s=10.0, deadline_s=0.5),
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", sprint_enabled=False
        ).run(requests)
        assert [s.request.index for s in result.served] == [0]
        assert [r.index for r in result.abandoned] == [1]
        assert result.summary().abandoned_count == 1

    def test_deadline_at_dispatch_instant_is_served(self, config):
        """A queued request whose deadline coincides with a device freeing
        is served, not abandoned (device-free events resolve first)."""
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=0.0, sustained_time_s=10.0, deadline_s=10.0),
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", sprint_enabled=False
        ).run(requests)
        assert len(result.served) == 2
        assert result.abandoned == ()

    def test_served_past_deadline_counts_as_miss(self, config):
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0, deadline_s=1.0),
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", sprint_enabled=False
        ).run(requests)
        assert len(result.served) == 1
        assert result.served[0].missed_deadline
        summary = result.summary()
        assert summary.deadline_miss_count == 1
        assert summary.deadline_miss_fraction == 1.0

    def test_edf_serves_urgent_requests_first(self, config):
        """A later-arriving but more urgent request overtakes a lax one in
        the EDF queue (it cannot under FIFO)."""
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=0.1, sustained_time_s=10.0, deadline_s=100.0),
            Request(index=2, arrival_s=0.2, sustained_time_s=10.0, deadline_s=25.0),
        ]

        def completion_order(discipline):
            result = FleetSimulator(
                config,
                1,
                mode="central_queue",
                discipline=discipline,
                sprint_enabled=False,
            ).run(requests)
            return [
                s.request.index
                for s in sorted(result.served, key=lambda s: s.completed_at_s)
            ]

        assert completion_order("fifo") == [0, 1, 2]
        assert completion_order("edf") == [0, 2, 1]

    def test_deadline_free_requests_sort_last_under_edf(self, config):
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=0.1, sustained_time_s=10.0),
            Request(index=2, arrival_s=0.2, sustained_time_s=10.0, deadline_s=50.0),
        ]
        result = FleetSimulator(
            config, 1, mode="central_queue", discipline="edf", sprint_enabled=False
        ).run(requests)
        order = [
            s.request.index
            for s in sorted(result.served, key=lambda s: s.completed_at_s)
        ]
        assert order == [0, 2, 1]

    def test_bounded_central_queue_beats_immediate_p99_at_overload(self, config):
        """The acceptance scenario: at overload, admission control keeps the
        served tail bounded while immediate dispatch's backlog grows."""
        requests = generate_requests(
            PoissonArrivals(2.0),
            GammaService(mean_s=5.0, cv=1.0),
            300,
            seed=42,
        )
        immediate = FleetSimulator(config, 4, policy="least_loaded").run(requests)
        bounded = FleetSimulator(
            config, 4, mode="central_queue", queue_bound=8
        ).run(requests)
        assert bounded.summary().rejected_count > 0
        assert (
            bounded.summary().p99_latency_s < immediate.summary().p99_latency_s
        )

    def test_device_stats_consistent_in_central_mode(self, config):
        requests = stochastic_requests(8, n=60)
        result = FleetSimulator(config, 3, mode="central_queue").run(requests)
        assert sum(d.requests_served for d in result.device_stats) == len(
            result.served
        )


class TestEngineValidation:
    def test_rejects_bad_configuration(self, config):
        devices = [SprintDevice(config)]
        with pytest.raises(ValueError):
            ServingEngine([], mode="immediate")
        with pytest.raises(ValueError):
            ServingEngine(devices, mode="nope")
        with pytest.raises(ValueError):
            ServingEngine(devices, discipline="nope")
        with pytest.raises(ValueError):
            ServingEngine(devices, queue_bound=-1)

    def test_empty_stream_runs_empty(self, config):
        engine = ServingEngine([SprintDevice(config)], mode="central_queue")
        outcome = engine.run([], np.random.default_rng(0))
        assert outcome.served == ()
        assert outcome.rejected == ()
        assert outcome.abandoned == ()


class TestLeastLoadedIndexCompaction:
    """Lazy deletion must not grow the heaps without bound (satellite of
    the vectorized-engine PR): every re-key leaves one stale tuple behind,
    so an uncompacted index holding 1e5 updates would carry 1e5 entries."""

    def test_heap_size_bounded_over_many_updates(self, config):
        from repro.traffic.engine import LeastLoadedIndex

        n_devices = 8
        devices = [SprintDevice(config, device_id=i) for i in range(n_devices)]
        index = LeastLoadedIndex(devices)
        bound = max(2 * n_devices, LeastLoadedIndex._COMPACT_MIN) + 1
        t = 0.0
        for step in range(100_000):
            t += 0.01
            pos = index.pick(t)
            devices[pos].serve(
                Request(index=step, arrival_s=t, sustained_time_s=0.05)
            )
            index.update(pos)
            assert index.entry_count <= bound, (
                f"index grew to {index.entry_count} entries after "
                f"{step + 1} updates (bound {bound})"
            )
        # The bound is the point: without compaction this would be ~1e5.
        assert index.entry_count <= bound

    def test_picks_identical_with_and_without_compaction(self, config):
        """Compaction must be invisible to dispatch decisions."""
        from repro.traffic.engine import LeastLoadedIndex

        requests = stochastic_requests(21, n=400, rate=0.8)

        def picks(compact_min):
            devices = [SprintDevice(config, device_id=i) for i in range(4)]
            index = LeastLoadedIndex(devices)
            index._COMPACT_MIN = compact_min
            chosen = []
            for request in requests:
                pos = index.pick(request.arrival_s)
                devices[pos].serve(request)
                index.update(pos)
                chosen.append(pos)
            return chosen

        # A huge floor disables compaction entirely; the default compacts
        # many times over 400 updates on a 4-device fleet.
        assert picks(64) == picks(10**9)

    def test_indexed_engine_still_matches_scan_after_long_run(self, config):
        """End-to-end: the compacting index vs the O(n) scan, bit-identical."""
        requests = stochastic_requests(33, n=1_500, rate=1.2)
        indexed = FleetSimulator(config, 4, policy="least_loaded").run(requests)
        scan = FleetSimulator(
            config, 4, policy=DISPATCH_POLICIES["least_loaded"]
        ).run(requests)
        assert indexed.served == scan.served
