"""Tests for kernel operation counts and synthetic image generation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kernels.base import OperationCounts
from repro.kernels.images import (
    megapixels,
    shape_for_megapixels,
    synthetic_image,
    synthetic_stereo_pair,
)


class TestOperationCounts:
    def test_total(self):
        counts = OperationCounts(int_alu=10, int_mul=2, fp=5, load=8, store=3, branch=2)
        assert counts.total == 30

    def test_add(self):
        a = OperationCounts(int_alu=1, fp=2)
        b = OperationCounts(int_alu=3, load=4)
        combined = a + b
        assert combined.int_alu == 4
        assert combined.fp == 2
        assert combined.load == 4

    def test_scaled(self):
        counts = OperationCounts(int_alu=2, load=1)
        assert counts.scaled(3).total == 9

    def test_instruction_mix_sums_to_one(self):
        counts = OperationCounts(int_alu=10, int_mul=5, fp=5, load=20, store=5, branch=5)
        mix = counts.instruction_mix()
        assert sum(mix.as_dict().values()) == pytest.approx(1.0)
        assert mix.memory_fraction == pytest.approx(25 / 50)

    def test_rejects_negative_counts_and_empty_mix(self):
        with pytest.raises(ValueError):
            OperationCounts(int_alu=-1)
        with pytest.raises(ValueError):
            OperationCounts().instruction_mix()
        with pytest.raises(ValueError):
            OperationCounts(int_alu=1).scaled(-1)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=6, max_size=6
        ).filter(lambda v: sum(v) > 0)
    )
    def test_mix_is_always_valid(self, values):
        counts = OperationCounts(*values)
        mix = counts.instruction_mix()
        assert sum(mix.as_dict().values()) == pytest.approx(1.0, abs=1e-6)


class TestSyntheticImage:
    def test_shape_dtype_and_range(self):
        image = synthetic_image(64, 96)
        assert image.shape == (64, 96)
        assert image.dtype == np.float32
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_deterministic_by_seed(self):
        a = synthetic_image(32, 32, seed=5)
        b = synthetic_image(32, 32, seed=5)
        c = synthetic_image(32, 32, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_has_structure(self):
        image = synthetic_image(64, 64, n_shapes=8, noise=0.0)
        # Shapes and gradient should give a non-trivial dynamic range.
        assert image.max() - image.min() > 0.2

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            synthetic_image(0, 10)
        with pytest.raises(ValueError):
            synthetic_image(10, 10, noise=-0.1)


class TestStereoPair:
    def test_shapes_match_and_disparity_in_range(self):
        left, right, truth = synthetic_stereo_pair(48, 64, max_disparity=8)
        assert left.shape == right.shape == truth.shape == (48, 64)
        assert truth.min() >= 0
        assert truth.max() <= 7

    def test_rows_are_shifted_versions(self):
        left, right, truth = synthetic_stereo_pair(32, 64, max_disparity=8, noise=0.0)
        row = 30  # bottom band has the largest disparity
        shift = int(truth[row, 0])
        assert shift > 0
        restored = np.roll(right[row], shift)
        # Away from the wrap-around region the rows must agree.
        assert np.allclose(restored[shift:-shift], left[row, shift:-shift], atol=1e-5)

    def test_rejects_bad_disparity(self):
        with pytest.raises(ValueError):
            synthetic_stereo_pair(32, 32, max_disparity=0)


class TestShapeHelpers:
    def test_megapixels(self):
        assert megapixels((1000, 1000)) == pytest.approx(1.0)

    def test_shape_for_megapixels_round_trip(self):
        shape = shape_for_megapixels(2.0)
        assert megapixels(shape) == pytest.approx(2.0, rel=0.05)

    def test_aspect_ratio(self):
        rows, cols = shape_for_megapixels(1.0, aspect=4 / 3)
        assert cols / rows == pytest.approx(4 / 3, rel=0.05)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            megapixels((0, 10))
        with pytest.raises(ValueError):
            shape_for_megapixels(0.0)
