"""Tests for the six Table 1 kernels: real outputs and analytic cost models."""

import numpy as np
import pytest

from repro.kernels import (
    ALL_KERNELS,
    DisparityKernel,
    FeatureExtractionKernel,
    KMeansKernel,
    SegmentKernel,
    SobelKernel,
    TextureKernel,
    synthetic_image,
    synthetic_stereo_pair,
)

SMALL = (48, 64)


@pytest.fixture(scope="module")
def image():
    return synthetic_image(*SMALL, n_shapes=8, seed=11)


class TestKernelRegistry:
    def test_all_six_table1_kernels_present(self):
        assert set(ALL_KERNELS) == {
            "sobel",
            "feature",
            "kmeans",
            "disparity",
            "texture",
            "segment",
        }

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_counts_scale_roughly_linearly_with_pixels(self, name):
        kernel = ALL_KERNELS[name]()
        small = kernel.operation_counts((256, 256)).total
        large = kernel.operation_counts((512, 512)).total
        # Four times the pixels means close to four times the work (feature
        # has a small per-keypoint term that does not scale with pixels).
        assert 3.2 <= large / small <= 4.5

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_structural_hints_are_sane(self, name):
        kernel = ALL_KERNELS[name]()
        assert 0.8 <= kernel.parallel_fraction() <= 1.0
        assert kernel.load_imbalance() >= 1.0
        assert 0.0 < kernel.streaming_intensity() <= 0.5
        assert 0.0 < kernel.l2_miss_rate() <= 1.0
        assert kernel.bytes_per_l2_miss() >= 64.0
        assert kernel.max_parallelism((256, 256)) >= 8
        assert kernel.working_set_bytes((256, 256)) >= 256 * 256 * 4

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_rejects_invalid_shape(self, name):
        kernel = ALL_KERNELS[name]()
        with pytest.raises(ValueError):
            kernel.operation_counts((0, 64))


class TestSobel:
    def test_detects_edges_of_a_box(self):
        image = np.zeros((32, 32), dtype=np.float32)
        image[8:24, 8:24] = 1.0
        output = SobelKernel().run(image)
        magnitude = output.data
        # Strong response on the box boundary, none in the flat interior.
        assert magnitude[8, 16] > 0.5
        assert magnitude[16, 16] == pytest.approx(0.0, abs=1e-6)
        assert magnitude.max() == pytest.approx(1.0)

    def test_threshold_produces_edge_mask(self, image):
        output = SobelKernel(threshold=0.3).run(image)
        assert output.extras is not None
        assert output.extras["edges"].dtype == bool

    def test_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            SobelKernel().run(np.zeros((2, 2), dtype=np.float32))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SobelKernel(threshold=2.0)


class TestFeatureExtraction:
    def test_finds_keypoints_and_descriptors(self, image):
        kernel = FeatureExtractionKernel(max_keypoints=32)
        output = kernel.run(image)
        keypoints = output.extras["keypoints"]
        descriptors = output.extras["descriptors"]
        assert 1 <= len(keypoints) <= 32
        assert descriptors.shape == (len(keypoints), kernel.descriptor_bins)
        # Descriptors are L2-normalised (or zero for flat patches).
        norms = np.linalg.norm(descriptors, axis=1)
        assert np.all((norms < 1.001) & (norms >= 0.0))

    def test_keypoints_prefer_structured_regions(self):
        flat = np.full((64, 64), 0.5, dtype=np.float32)
        structured = flat.copy()
        structured[20:40, 20:40] = 1.0
        kernel = FeatureExtractionKernel(max_keypoints=16)
        flat_resp = kernel.run(flat).data
        structured_resp = kernel.run(structured).data
        assert structured_resp.max() > flat_resp.max() + 1e-3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FeatureExtractionKernel(scales=(4,))
        with pytest.raises(ValueError):
            FeatureExtractionKernel(max_keypoints=0)


class TestKMeans:
    def test_labels_cover_image_and_respect_cluster_count(self, image):
        kernel = KMeansKernel(clusters=4, iterations=5)
        output = kernel.run(image)
        labels = output.data
        assert labels.shape == image.shape
        assert 1 <= len(np.unique(labels)) <= 4
        assert output.extras["centres"].shape == (4, kernel.features_per_pixel)

    def test_separates_dark_and_bright_regions(self):
        image = np.zeros((32, 32), dtype=np.float32)
        image[:, 16:] = 1.0
        labels = KMeansKernel(clusters=2, iterations=8).run(image).data
        left_label = np.bincount(labels[:, :8].ravel()).argmax()
        right_label = np.bincount(labels[:, 24:].ravel()).argmax()
        assert left_label != right_label

    def test_more_iterations_do_not_increase_inertia(self, image):
        short = KMeansKernel(clusters=4, iterations=2).run(image).extras["inertia"]
        long = KMeansKernel(clusters=4, iterations=10).run(image).extras["inertia"]
        assert long <= short * 1.01

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KMeansKernel(clusters=1)
        with pytest.raises(ValueError):
            KMeansKernel(iterations=0)


class TestDisparity:
    def test_recovers_known_disparity(self):
        left, right, truth = synthetic_stereo_pair(48, 96, max_disparity=8, noise=0.0)
        output = DisparityKernel(max_disparity=8, window=5).run_pair(left, right)
        estimate = output.data
        # Ignore the image borders and the wrap-around columns.
        inner = (slice(8, -8), slice(16, -16))
        error = np.abs(estimate[inner] - truth[inner])
        assert np.median(error) <= 1.0

    def test_stacked_input_form(self):
        left, right, _ = synthetic_stereo_pair(32, 48, max_disparity=4)
        stacked = np.hstack([left, right])
        output = DisparityKernel(max_disparity=4).run(stacked)
        assert output.data.shape == (32, 48)

    def test_rejects_mismatched_pair_and_bad_window(self):
        with pytest.raises(ValueError):
            DisparityKernel(window=4)
        kernel = DisparityKernel()
        with pytest.raises(ValueError):
            kernel.run_pair(np.zeros((10, 10)), np.zeros((10, 12)))
        with pytest.raises(ValueError):
            kernel.run(np.zeros((10, 11), dtype=np.float32))


class TestTexture:
    def test_output_in_range_and_shape_preserved(self, image):
        output = TextureKernel(levels=3).run(image)
        assert output.data.shape == image.shape
        assert output.data.min() >= 0.0
        assert output.data.max() <= 1.0

    def test_blend_mixes_both_sources(self, image):
        output = TextureKernel(levels=3, seed=1).run(image).data
        # The left edge is dominated by the texture, the right by the image,
        # so the result should differ from the plain image on the left side.
        left_difference = np.abs(output[:, :8] - image[:, :8]).mean()
        right_difference = np.abs(output[:, -8:] - image[:, -8:]).mean()
        assert left_difference > right_difference

    def test_limited_parallelism_hint(self):
        kernel = TextureKernel()
        assert kernel.max_parallelism((1024, 1024)) <= 32
        assert kernel.parallel_fraction() < 0.99

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            TextureKernel(levels=0)


class TestSegment:
    def test_segments_distinct_regions(self):
        image = np.zeros((32, 32), dtype=np.float32)
        image[4:14, 4:14] = 0.9
        image[18:30, 18:30] = 0.5
        output = SegmentKernel(bands=4, min_region_pixels=8).run(image)
        labels = output.data
        assert labels[8, 8] != labels[24, 24]
        assert labels[8, 8] != labels[0, 31] or labels[24, 24] != labels[0, 0]
        assert len(output.extras["regions"]) >= 2

    def test_region_features_and_classes(self, image):
        output = SegmentKernel(bands=6).run(image)
        for features in output.extras["regions"].values():
            assert features["area"] >= SegmentKernel().min_region_pixels
            assert 0.0 <= features["mean_intensity"] <= 1.0
        assert set(output.extras["classes"].values()) <= {
            "textured",
            "bright",
            "background",
            "object",
        }

    def test_limited_parallelism_and_sharing_hints(self):
        kernel = SegmentKernel()
        assert kernel.parallel_fraction() <= 0.95
        assert kernel.coherence_miss_fraction() >= 0.05

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SegmentKernel(bands=1)
        with pytest.raises(ValueError):
            SegmentKernel(min_region_pixels=0)
