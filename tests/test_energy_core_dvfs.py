"""Unit tests for core power states, chip power accounting, and DVFS."""

import pytest

from repro.energy.core import ChipPowerAccount, CorePowerModel, CoreState
from repro.energy.dvfs import PAPER_DVFS, DvfsModel, OperatingPoint


class TestCorePowerModel:
    def test_active_core_is_one_watt_at_nominal(self):
        model = CorePowerModel()
        assert model.power_w(CoreState.ACTIVE) == pytest.approx(1.0)

    def test_sleeping_core_is_ten_percent(self):
        model = CorePowerModel()
        assert model.power_w(CoreState.SLEEP) == pytest.approx(0.1)

    def test_off_core_draws_nothing(self):
        model = CorePowerModel()
        assert model.power_w(CoreState.OFF) == 0.0

    def test_power_scales_with_operating_point(self):
        model = CorePowerModel()
        boosted = OperatingPoint(frequency_hz=2e9, voltage_v=2.0)
        assert model.power_w(CoreState.ACTIVE, boosted) == pytest.approx(8.0)

    def test_energy_is_power_times_duration(self):
        model = CorePowerModel()
        assert model.energy_j(CoreState.ACTIVE, 2.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CorePowerModel(active_power_w=0.0)
        with pytest.raises(ValueError):
            CorePowerModel(sleep_fraction=1.5)
        with pytest.raises(ValueError):
            CorePowerModel(off_power_w=-1.0)
        with pytest.raises(ValueError):
            CorePowerModel().energy_j(CoreState.ACTIVE, -1.0)


class TestChipPowerAccount:
    def test_charge_accumulates_by_state(self):
        account = ChipPowerAccount(model=CorePowerModel(), n_cores=4)
        states = [CoreState.ACTIVE, CoreState.ACTIVE, CoreState.SLEEP, CoreState.OFF]
        added = account.charge(states, duration_s=1.0)
        assert added == pytest.approx(1.0 + 1.0 + 0.1 + 0.0)
        assert account.total_energy_j == pytest.approx(2.1)
        assert account.average_power_w == pytest.approx(2.1)

    def test_charge_energy_adds_measured_joules(self):
        account = ChipPowerAccount(model=CorePowerModel(), n_cores=2)
        account.charge_energy(1, 0.5)
        assert account.energy_j_per_core == [0.0, 0.5]

    def test_reset_clears_the_account(self):
        account = ChipPowerAccount(model=CorePowerModel(), n_cores=2)
        account.charge([CoreState.ACTIVE, CoreState.ACTIVE], 1.0)
        account.reset()
        assert account.total_energy_j == 0.0
        assert account.average_power_w == 0.0

    def test_validation(self):
        account = ChipPowerAccount(model=CorePowerModel(), n_cores=2)
        with pytest.raises(ValueError):
            account.charge([CoreState.ACTIVE], 1.0)
        with pytest.raises(ValueError):
            account.charge([CoreState.ACTIVE, CoreState.ACTIVE], -1.0)
        with pytest.raises(ValueError):
            account.charge_energy(5, 1.0)
        with pytest.raises(ValueError):
            account.charge_energy(0, -1.0)
        with pytest.raises(ValueError):
            ChipPowerAccount(model=CorePowerModel(), n_cores=0)
        with pytest.raises(ValueError):
            ChipPowerAccount(model=CorePowerModel(), n_cores=2,
                             energy_j_per_core=[0.0])


class TestOperatingPoint:
    def test_power_scale_is_f_times_v_squared(self):
        nominal = OperatingPoint(1e9, 1.0)
        point = OperatingPoint(2e9, 1.5)
        assert point.dynamic_power_scale(nominal) == pytest.approx(2 * 2.25)

    def test_energy_scale_is_v_squared(self):
        nominal = OperatingPoint(1e9, 1.0)
        point = OperatingPoint(2e9, 1.5)
        assert point.energy_per_work_scale(nominal) == pytest.approx(2.25)

    def test_speedup_is_frequency_ratio(self):
        nominal = OperatingPoint(1e9, 1.0)
        assert OperatingPoint(2.5e9, 1.2).speedup_over(nominal) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(0.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(1e9, 0.0)


class TestDvfsModel:
    def test_sixteen_x_headroom_gives_about_2_5x_boost(self):
        # Section 8.4: cube root of 16 is ~2.5.
        assert PAPER_DVFS.max_boost_for_headroom(16.0) == pytest.approx(2.52, abs=0.05)

    def test_energy_overhead_for_16x_headroom_is_about_6x(self):
        # Section 8.6: voltage sprinting uses ~6x more energy.
        assert PAPER_DVFS.energy_overhead_for_headroom(16.0) == pytest.approx(
            6.35, abs=0.4
        )

    def test_power_scale_is_cubic_in_frequency(self):
        assert PAPER_DVFS.power_scale(2e9) == pytest.approx(8.0)

    def test_boosted_point_respects_max_frequency(self):
        model = DvfsModel(max_frequency_hz=2.0e9)
        point = model.boosted_point_for_headroom(64.0)
        assert point.frequency_hz == pytest.approx(2.0e9)

    def test_operating_point_voltage_tracks_frequency(self):
        point = PAPER_DVFS.operating_point(1.5e9)
        assert point.voltage_v == pytest.approx(1.5)

    def test_operating_point_outside_range_rejected(self):
        with pytest.raises(ValueError):
            PAPER_DVFS.operating_point(10e9)

    def test_throttled_point_divides_frequency_by_core_ratio(self):
        # Section 7: with 16 active cores the hardware must throttle to 1/16.
        point = PAPER_DVFS.throttled_point(active_cores=16)
        assert point.frequency_hz == pytest.approx(1e9 / 16, rel=0.01)

    def test_throttled_point_never_exceeds_nominal(self):
        point = PAPER_DVFS.throttled_point(active_cores=1)
        assert point.frequency_hz == pytest.approx(1e9)

    def test_headroom_below_one_rejected(self):
        with pytest.raises(ValueError):
            PAPER_DVFS.max_boost_for_headroom(0.5)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            DvfsModel(voltage_slope=-1.0)
        with pytest.raises(ValueError):
            DvfsModel(min_frequency_hz=0.0)
        with pytest.raises(ValueError):
            DvfsModel(min_frequency_hz=2e9, max_frequency_hz=1e9)
        with pytest.raises(ValueError):
            DvfsModel(nominal=OperatingPoint(5e9, 1.0))
        with pytest.raises(ValueError):
            PAPER_DVFS.throttled_point(0)

    def test_square_root_voltage_slope_changes_exponent(self):
        model = DvfsModel(voltage_slope=0.5)
        assert model.power_exponent() == pytest.approx(2.0)
        assert model.max_boost_for_headroom(16.0) == pytest.approx(4.0)
