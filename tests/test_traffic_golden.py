"""Golden regression lock: one frozen scenario, bit-identical forever.

The traffic stack's determinism contract says a frozen scenario and seed
produce the same :class:`~repro.traffic.metrics.TrafficSummary` on every
platform and every commit.  This test pins that contract to a committed
JSON fixture the way PR 4's golden matrix locked the thermal extraction:
any refactor that perturbs a single bit of the pipeline — arrival
sampling, seed splitting, dispatch order, pacing arithmetic, governance,
summarisation — fails loudly here instead of silently shifting every
published number.

The scenario deliberately crosses the stack's moving parts: bursty MMPP
arrivals, gamma service demands, a central EDF queue with a bound and
deadlines (rejection + abandonment + deadline misses all exercised), a
breaker-armed greedy governor, and the RC thermal backend.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python tests/test_traffic_golden.py

then commit the updated fixture alongside the change that justified it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.config import SystemConfig
from repro.traffic import (
    GammaService,
    GovernorSpec,
    MMPPArrivals,
    ReplicationPlan,
    Scenario,
    run_replications,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_fleet_summary.json"


def golden_scenario() -> Scenario:
    """The frozen scenario (never change without regenerating the fixture)."""
    return Scenario(
        arrivals=MMPPArrivals.bursty(
            burst_rate_hz=1.5, mean_burst_s=8.0, mean_idle_s=24.0
        ),
        service=GammaService(mean_s=5.0, cv=0.8),
        n_requests=120,
        n_devices=3,
        mode="central_queue",
        discipline="edf",
        queue_bound=10,
        governor=GovernorSpec.greedy(4, trip_headroom_w=40.0, penalty_s=20.0),
        thermal="rc",
        sprint_speedup=8.0,
        deadline_s=10.0,
        slo_s=2.0,
    )


def compute_summary() -> dict:
    plan = ReplicationPlan(golden_scenario(), n_replications=1, base_seed=7)
    result = run_replications(plan, SystemConfig.paper_default())
    return result.summaries[0].to_dict()


def test_golden_summary_is_bit_identical():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = compute_summary()
    assert set(current) == set(golden), "TrafficSummary fields changed"
    drifted = {
        field: (golden[field], current[field])
        for field in golden
        if current[field] != golden[field]
    }
    assert not drifted, (
        "frozen scenario drifted from the golden fixture (bit-exact "
        f"comparison): {drifted}\nIf the change is intentional, regenerate "
        "with `PYTHONPATH=src python tests/test_traffic_golden.py`."
    )


def test_golden_fixture_exercises_the_full_lifecycle():
    """The fixture keeps guarding rejection/abandonment/governance paths."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["rejected_count"] > 0
    assert golden["abandoned_count"] > 0
    assert golden["deadline_miss_count"] > 0
    assert golden["sprints_granted"] > 0
    assert golden["sprints_denied"] > 0
    assert golden["breaker_trips"] > 0
    assert golden["time_at_cap_s"] > 0.0
    assert golden["governor_policy"] == "greedy"
    assert all(
        not isinstance(v, float) or math.isfinite(v) for v in golden.values() if v
    )


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_summary(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
