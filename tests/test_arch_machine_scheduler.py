"""Tests for the machine configuration and the thread scheduler."""

import pytest

from repro.arch.machine import MachineConfig, PAPER_MACHINE
from repro.arch.scheduler import MigrationModel, ThreadScheduler, ThreadState


class TestMachineConfig:
    def test_paper_machine(self):
        assert PAPER_MACHINE.n_cores == 16
        assert PAPER_MACHINE.frequency_hz == pytest.approx(1e9)
        assert PAPER_MACHINE.hierarchy.l2.size_bytes == 4 * 1024 * 1024

    def test_with_cores(self):
        bigger = PAPER_MACHINE.with_cores(64)
        assert bigger.n_cores == 64
        assert PAPER_MACHINE.n_cores == 16

    def test_with_memory_bandwidth_scale(self):
        doubled = PAPER_MACHINE.with_memory_bandwidth_scale(2.0)
        assert doubled.memory.peak_bandwidth_bytes_s == pytest.approx(
            2 * PAPER_MACHINE.memory.peak_bandwidth_bytes_s
        )

    def test_with_frequency_derives_voltage(self):
        boosted = PAPER_MACHINE.with_frequency(2e9)
        assert boosted.nominal.frequency_hz == pytest.approx(2e9)
        assert boosted.nominal.voltage_v > PAPER_MACHINE.nominal.voltage_v

    def test_timing_model_uses_hierarchy(self):
        timing = PAPER_MACHINE.timing_model()
        assert timing.hierarchy is PAPER_MACHINE.hierarchy

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=0)
        with pytest.raises(ValueError):
            MachineConfig(base_cpi=0.0)


class TestMigrationModel:
    def test_cost_scales_with_threads(self):
        model = MigrationModel(per_thread_overhead_s=10e-6)
        assert model.migration_cost_s(0) == 0.0
        assert model.migration_cost_s(16) == pytest.approx(160e-6)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            MigrationModel(per_thread_overhead_s=-1.0)
        with pytest.raises(ValueError):
            MigrationModel(pause_sleep_cycles=0)
        with pytest.raises(ValueError):
            MigrationModel().migration_cost_s(-1)


class TestThreadScheduler:
    def test_initial_placement(self):
        scheduler = ThreadScheduler(n_threads=16, n_cores=16)
        assert scheduler.active_cores == 16
        assert scheduler.threads_per_core == pytest.approx(1.0)
        assert scheduler.multiplexing_slowdown() == pytest.approx(1.0)

    def test_more_threads_than_cores_multiplexes(self):
        scheduler = ThreadScheduler(n_threads=16, n_cores=4)
        assert scheduler.active_cores == 4
        assert scheduler.threads_per_core == pytest.approx(4.0)
        assert scheduler.multiplexing_slowdown() > 1.0

    def test_fewer_threads_than_cores(self):
        scheduler = ThreadScheduler(n_threads=2, n_cores=16)
        assert scheduler.active_cores == 2

    def test_shrinking_cores_incurs_migration(self):
        scheduler = ThreadScheduler(n_threads=16, n_cores=16)
        cost = scheduler.set_active_cores(1)
        assert cost > 0.0
        assert scheduler.active_cores == 1
        assert scheduler.pending_migration_s == pytest.approx(cost)

    def test_growing_cores_is_free(self):
        scheduler = ThreadScheduler(n_threads=16, n_cores=16)
        scheduler.set_active_cores(1)
        scheduler.consume_migration(1.0)
        assert scheduler.set_active_cores(16) == 0.0
        assert scheduler.active_cores == 16

    def test_consume_migration_partial(self):
        scheduler = ThreadScheduler(n_threads=16, n_cores=16)
        cost = scheduler.set_active_cores(1)
        used = scheduler.consume_migration(cost / 2)
        assert used == pytest.approx(cost / 2)
        assert scheduler.pending_migration_s == pytest.approx(cost / 2)

    def test_thread_states_lifecycle(self):
        scheduler = ThreadScheduler(n_threads=4, n_cores=4)
        scheduler.mark_running(2)
        states = scheduler.thread_states()
        assert states[:2] == [ThreadState.RUNNING, ThreadState.RUNNING]
        assert states[2:] == [ThreadState.PAUSED, ThreadState.PAUSED]
        scheduler.finish_all()
        assert all(s is ThreadState.FINISHED for s in scheduler.thread_states())

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ThreadScheduler(n_threads=0, n_cores=4)
        scheduler = ThreadScheduler(n_threads=4, n_cores=4)
        with pytest.raises(ValueError):
            scheduler.set_active_cores(0)
        with pytest.raises(ValueError):
            scheduler.consume_migration(-1.0)
        with pytest.raises(ValueError):
            scheduler.mark_running(10)
