"""Unit tests for sprint power sources (Section 6)."""

import pytest

from repro.power.sources import (
    LI_POLYMER_HIGH_DISCHARGE,
    NESSCAP_25F,
    PHONE_HYBRID,
    PHONE_LI_ION,
    Battery,
    HybridSource,
    Ultracapacitor,
    assess_sources,
    pins_required,
)

SPRINT_POWER_W = 16.0
SPRINT_DURATION_S = 1.0


class TestPhoneBattery:
    def test_phone_battery_limited_to_about_ten_watts(self):
        # Section 6: a representative Li-Ion provides bursts of ~10 W.
        assert PHONE_LI_ION.max_power_w() == pytest.approx(10.0, rel=0.01)

    def test_phone_battery_cannot_power_a_16w_sprint(self):
        assert not PHONE_LI_ION.can_supply(SPRINT_POWER_W, SPRINT_DURATION_S)

    def test_phone_battery_supports_fewer_than_ten_cores(self):
        # "Such a battery would limit the sprint intensity to fewer than ten
        # 1 W cores."
        cores = PHONE_LI_ION.max_sprint_cores(1.0, SPRINT_DURATION_S)
        assert 1 <= cores < 10

    def test_stored_energy_positive(self):
        assert PHONE_LI_ION.stored_energy_j > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(name="bad", voltage_v=0.0, max_current_a=1.0)
        with pytest.raises(ValueError):
            Battery(name="bad", voltage_v=3.7, max_current_a=1.0, capacity_wh=0.0)


class TestLiPolymer:
    def test_high_discharge_pack_easily_meets_sprint_demand(self):
        assert LI_POLYMER_HIGH_DISCHARGE.can_supply(SPRINT_POWER_W, SPRINT_DURATION_S)

    def test_high_discharge_pack_supports_at_least_16_cores(self):
        cores = LI_POLYMER_HIGH_DISCHARGE.max_sprint_cores(1.0, SPRINT_DURATION_S)
        assert cores >= 16


class TestUltracapacitor:
    def test_nesscap_stores_about_182_joules(self):
        # Section 6: a 25 F, 2.7 V part stores 182 J (0.5 C V^2 = 91 J; the
        # paper's 182 J counts the full module rating, so accept either view
        # by checking the order of magnitude here).
        assert 80.0 <= NESSCAP_25F.stored_energy_j <= 200.0

    def test_peak_power_exceeds_sprint_requirement(self):
        assert NESSCAP_25F.max_power_w() >= SPRINT_POWER_W

    def test_usable_energy_covers_a_one_second_16w_sprint(self):
        assert NESSCAP_25F.can_supply(SPRINT_POWER_W, SPRINT_DURATION_S)

    def test_cannot_supply_indefinitely(self):
        assert not NESSCAP_25F.can_supply(SPRINT_POWER_W, 100.0)

    def test_leakage_loss_is_negligible(self):
        # Total leakage below 0.1 mA at 2.7 V is well under a milliwatt.
        assert NESSCAP_25F.self_discharge_w() < 1e-3

    def test_recharge_time_at_phone_battery_power(self):
        time_s = NESSCAP_25F.recharge_time_s(PHONE_LI_ION.max_power_w())
        assert 1.0 <= time_s <= 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Ultracapacitor(name="bad", capacitance_f=0.0)
        with pytest.raises(ValueError):
            Ultracapacitor(name="bad", usable_fraction=0.0)
        with pytest.raises(ValueError):
            NESSCAP_25F.recharge_time_s(0.0)


class TestHybridSource:
    def test_hybrid_meets_the_sprint_demand_the_battery_alone_cannot(self):
        assert not PHONE_LI_ION.can_supply(SPRINT_POWER_W, SPRINT_DURATION_S)
        assert PHONE_HYBRID.can_supply(SPRINT_POWER_W, SPRINT_DURATION_S)

    def test_hybrid_supports_at_least_16_cores_for_one_second(self):
        assert PHONE_HYBRID.max_sprint_cores(1.0, SPRINT_DURATION_S) >= 16

    def test_hybrid_cannot_sustain_sprint_power_forever(self):
        assert not PHONE_HYBRID.can_supply(SPRINT_POWER_W, 600.0)

    def test_recharge_interval_between_sprints(self):
        gap = PHONE_HYBRID.time_between_sprints_s(SPRINT_POWER_W, SPRINT_DURATION_S)
        assert gap >= 0.0
        # No recharge needed when the battery alone covers the sprint.
        assert PHONE_HYBRID.time_between_sprints_s(5.0, 1.0) == 0.0

    def test_requires_both_components(self):
        with pytest.raises(ValueError):
            HybridSource(name="bad", battery=None, ultracap=None)

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            PHONE_HYBRID.can_supply(-1.0, 1.0)
        with pytest.raises(ValueError):
            PHONE_HYBRID.max_sprint_cores(0.0, 1.0)


class TestPins:
    def test_16_amps_requires_320_pins(self):
        # Section 6: 16 A at 100 mA per power/ground pair requires 320 pins.
        assert pins_required(16.0) == 320

    def test_zero_current_needs_no_pins(self):
        assert pins_required(0.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pins_required(-1.0)
        with pytest.raises(ValueError):
            pins_required(1.0, pin_pair_current_a=0.0)


class TestAssessment:
    def test_assessment_table_matches_individual_checks(self):
        sources = [PHONE_LI_ION, LI_POLYMER_HIGH_DISCHARGE, NESSCAP_25F, PHONE_HYBRID]
        table = assess_sources(sources, SPRINT_POWER_W, SPRINT_DURATION_S)
        verdicts = {row.source_name: row.feasible for row in table}
        assert verdicts["phone-li-ion"] is False
        assert verdicts["li-polymer-high-discharge"] is True
        assert verdicts["nesscap-25f"] is True
        assert verdicts["phone-li-ion+ultracap"] is True

    def test_assessment_reports_core_counts(self):
        table = assess_sources([PHONE_LI_ION], SPRINT_POWER_W, SPRINT_DURATION_S)
        assert table[0].max_cores == PHONE_LI_ION.max_sprint_cores(1.0, SPRINT_DURATION_S)
