"""Unit tests for the conventional and PCM-augmented package configurations."""

import pytest

from repro.thermal.materials import GENERIC_PCM, Material
from repro.thermal.package import (
    CONVENTIONAL_PACKAGE,
    FULL_PCM_PACKAGE,
    SMALL_PCM_PACKAGE,
    ConventionalPackage,
    PcmPackage,
    ThermalLimits,
)


class TestThermalLimits:
    def test_headroom(self):
        limits = ThermalLimits(ambient_c=25.0, max_junction_c=70.0)
        assert limits.headroom_c == pytest.approx(45.0)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ThermalLimits(ambient_c=70.0, max_junction_c=70.0)


class TestConventionalPackage:
    def test_sustainable_power_is_about_one_watt(self):
        # The paper's nominal platform sustains a single ~1 W core.
        assert 0.8 <= CONVENTIONAL_PACKAGE.sustainable_power_w <= 1.8

    def test_total_resistance_is_series_sum(self):
        pkg = ConventionalPackage(junction_to_case_k_w=10.0, case_to_ambient_k_w=20.0)
        assert pkg.total_resistance_k_w == pytest.approx(30.0)

    def test_build_produces_expected_nodes(self):
        net = CONVENTIONAL_PACKAGE.build()
        assert set(net.node_names) == {"junction", "case", "ambient"}

    def test_build_honours_initial_temperature(self):
        net = CONVENTIONAL_PACKAGE.build(initial_temperature_c=40.0)
        assert net.temperature("junction") == pytest.approx(40.0)
        assert net.temperature("case") == pytest.approx(40.0)


class TestPcmPackageDesignQuantities:
    def test_sustainable_power_about_one_watt(self):
        assert 0.8 <= FULL_PCM_PACKAGE.sustainable_power_w <= 1.5

    def test_max_sprint_power_supports_16_one_watt_cores(self):
        # The design target is a 16x sprint: 16 one-watt cores.
        assert FULL_PCM_PACKAGE.max_sprint_power_w >= 16.0

    def test_latent_capacity_matches_150mg_at_100j_per_g(self):
        assert FULL_PCM_PACKAGE.latent_capacity_j == pytest.approx(15.0)

    def test_small_package_has_100x_less_latent_capacity(self):
        ratio = FULL_PCM_PACKAGE.latent_capacity_j / SMALL_PCM_PACKAGE.latent_capacity_j
        assert ratio == pytest.approx(100.0)

    def test_sprint_budget_exceeds_latent_capacity(self):
        budget = FULL_PCM_PACKAGE.sprint_budget_j(16.0)
        assert budget > FULL_PCM_PACKAGE.latent_capacity_j

    def test_estimated_sprint_duration_around_one_second(self):
        duration = FULL_PCM_PACKAGE.estimated_sprint_duration_s(16.0)
        assert 0.8 <= duration <= 1.6

    def test_estimated_sprint_duration_infinite_below_leak_power(self):
        assert FULL_PCM_PACKAGE.estimated_sprint_duration_s(0.5) == float("inf")

    def test_estimated_cooldown_follows_paper_rule_of_thumb(self):
        # cooldown ~= sprint duration x (sprint power / TDP) ~= 1 s x 16.
        cooldown = FULL_PCM_PACKAGE.estimated_cooldown_s(1.0, 16.0)
        assert cooldown == pytest.approx(
            16.0 / FULL_PCM_PACKAGE.sustainable_power_w, rel=1e-6
        )

    def test_with_pcm_mass_preserves_other_fields(self):
        smaller = FULL_PCM_PACKAGE.with_pcm_mass(0.0015)
        assert smaller.pcm_mass_g == pytest.approx(0.0015)
        assert smaller.junction_to_pcm_k_w == FULL_PCM_PACKAGE.junction_to_pcm_k_w


class TestPcmPackageValidation:
    def test_non_positive_mass_rejected(self):
        with pytest.raises(ValueError):
            PcmPackage(pcm_mass_g=0.0)

    def test_pcm_without_melting_point_rejected(self):
        solid = Material("solid", 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            PcmPackage(pcm_mass_g=0.1, pcm_material=solid)

    def test_melting_point_outside_operating_window_rejected(self):
        hot_pcm = Material(
            "hot", 1.0, 1.0, 1.0, latent_heat_j_g=100.0, melting_point_c=90.0
        )
        with pytest.raises(ValueError, match="melting point"):
            PcmPackage(pcm_mass_g=0.1, pcm_material=hot_pcm)

    def test_sprint_budget_requires_positive_power(self):
        with pytest.raises(ValueError):
            FULL_PCM_PACKAGE.sprint_budget_j(0.0)

    def test_estimated_cooldown_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            FULL_PCM_PACKAGE.estimated_cooldown_s(-1.0, 16.0)


class TestPcmPackageBuild:
    def test_build_produces_expected_nodes(self):
        net = FULL_PCM_PACKAGE.build()
        assert set(net.node_names) == {"junction", "pcm", "case", "ambient"}

    def test_built_pcm_block_has_requested_mass(self):
        net = FULL_PCM_PACKAGE.build()
        assert net.pcm_block("pcm").mass_g == pytest.approx(0.150)

    def test_default_material_is_generic_pcm(self):
        assert FULL_PCM_PACKAGE.pcm_material is GENERIC_PCM
