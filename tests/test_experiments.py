"""Tests for the experiment harnesses (the fast ones run fully; the heavy
figure sweeps are exercised with reduced parameters — the full sweeps are the
benchmarks' job)."""

import pytest

from repro.experiments import (
    fig01_trends,
    fig04_thermal,
    fig06_activation,
    fig07_speedup,
    fig08_sobel,
    fig10_cores,
    fig11_energy,
    sec4_sizing,
    sec6_sources,
    table1_kernels,
)


class TestFig01:
    def test_three_scenarios_and_monotonic_trends(self):
        result = fig01_trends.run()
        assert len(result.series) == 3
        for series in result.series:
            assert series.power_density[0] == pytest.approx(1.0)
            assert series.dark_percent[-1] > 50.0
        assert "ITRS" in {s.scenario for s in result.series}

    def test_lookup_and_format(self):
        result = fig01_trends.run()
        assert result.by_scenario("Borkar").scenario == "Borkar"
        with pytest.raises(KeyError):
            result.by_scenario("nope")
        assert "Borkar" in fig01_trends.format_table(result)


class TestFig04:
    def test_paper_headline_numbers(self):
        result = fig04_thermal.run()
        assert 0.8 <= result.max_sprint_duration_s <= 2.0
        assert 0.6 <= result.melt_plateau_s <= 1.5
        assert result.cooldown_to_ambient_s is not None
        assert result.cooldown_to_ambient_s > 5.0
        assert result.paper_cooldown_rule_s > 10.0

    def test_higher_power_shortens_sprint(self):
        mild = fig04_thermal.run(sprint_power_w=8.0)
        intense = fig04_thermal.run(sprint_power_w=24.0)
        assert intense.max_sprint_duration_s < mild.max_sprint_duration_s

    def test_rejects_bad_power(self):
        with pytest.raises(ValueError):
            fig04_thermal.run(sprint_power_w=0.0)


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_activation.run()

    def test_only_slow_ramp_within_tolerance(self, result):
        assert not result.by_label("instantaneous").within_tolerance
        assert not result.by_label("1.28us ramp").within_tolerance
        assert result.by_label("128us ramp").within_tolerance
        assert result.slow_ramp_ok

    def test_resistive_drop_near_10mv(self, result):
        slow = result.by_label("128us ramp")
        assert 0.003 <= result.supply_v - slow.settling_voltage_v <= 0.03

    def test_lookup_and_format(self, result):
        with pytest.raises(KeyError):
            result.by_label("nope")
        assert "128us ramp" in fig06_activation.format_table(result)


class TestTable1:
    def test_rows_and_lookup(self):
        result = table1_kernels.run()
        assert len(result.rows) == 6
        assert result.by_name("sobel").description.startswith("Edge detection")
        with pytest.raises(KeyError):
            result.by_name("nope")
        assert "sobel" in table1_kernels.format_table(result)


class TestSizing:
    def test_matches_paper_numbers(self):
        result = sec4_sizing.run()
        assert result.within_percent(result.copper_thickness_mm, 7.2)
        assert result.within_percent(result.aluminium_thickness_mm, 10.3)
        assert result.within_percent(result.pcm_mass_g, 0.150)
        assert result.peak_heat_flux_w_cm2 == pytest.approx(25.0)
        assert "copper" in sec4_sizing.format_table(result)

    def test_within_percent_validation(self):
        result = sec4_sizing.run()
        with pytest.raises(ValueError):
            result.within_percent(1.0, 0.0)


class TestSources:
    def test_paper_conclusions(self):
        result = sec6_sources.run()
        assert not result.phone_battery_sufficient
        assert len(result.feasible_sources) >= 2
        assert 300 <= result.pins_for_sprint_current <= 340
        assert "phone-li-ion" in sec6_sources.format_table(result)

    def test_lower_intensity_sprint_is_feasible_on_phone_battery(self):
        result = sec6_sources.run(sprint_cores=8)
        assert result.by_name("phone-li-ion").feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            sec6_sources.run(sprint_cores=0)
        with pytest.raises(ValueError):
            sec6_sources.run(core_power_w=0.0)


class TestReducedSweeps:
    """Heavier figure harnesses run here with reduced scope for speed."""

    def test_fig07_single_kernel(self):
        result = fig07_speedup.run(kernels=("sobel",), input_label="A")
        row = result.by_kernel("sobel")
        assert row.parallel_full_pcm > 5.0
        assert row.dvfs_full_pcm < row.parallel_full_pcm
        assert row.parallel_small_pcm <= row.parallel_full_pcm * 1.05
        with pytest.raises(KeyError):
            result.by_kernel("nope")
        assert "sobel" in fig07_speedup.format_table(result)

    def test_fig08_two_sizes(self):
        result = fig08_sobel.run(megapixels=(1.0, 8.0))
        assert result.megapixels == (1.0, 8.0)
        assert result.points[0].parallel_full_pcm > 8.0
        assert result.points[1].parallel_small_pcm < result.points[1].parallel_full_pcm
        with pytest.raises(ValueError):
            fig08_sobel.run(megapixels=())
        assert "MP" in fig08_sobel.format_table(result)

    def test_fig10_reduced(self):
        result = fig10_cores.run(core_counts=(1, 4, 16), kernels=("sobel", "segment"))
        sobel = result.by_kernel("sobel")
        segment = result.by_kernel("segment")
        assert sobel.speedup_at(16) > segment.speedup_at(16)
        assert sobel.speedup_at(1) == 1.0
        with pytest.raises(KeyError):
            sobel.speedup_at(64)
        with pytest.raises(ValueError):
            fig10_cores.run(core_counts=())

    def test_fig11_reduced(self):
        result = fig11_energy.run(core_counts=(1, 16), kernels=("sobel", "kmeans"))
        assert result.average_overhead_at(16) < 1.2
        for row in result.rows:
            assert row.energy_at(1) == 1.0
            assert 4.0 <= row.dvfs_energy_ratio <= 8.0
        assert "kmeans" in fig11_energy.format_table(result)
