"""Documentation stays true: intra-repo links resolve, catalogs stay full.

Markdown rots in two ways this suite guards against: a link keeps
pointing at a file or anchor that moved (the reader hits a 404 inside
the repo), and a catalog silently falls behind the thing it catalogs
(``docs/SCENARIOS.md`` promising to cover "every runnable study" while
an example goes unmentioned).  The CI ``docs`` job runs this module
alongside ``pytest --doctest-modules src/repro/traffic``, so both the
prose and the docstring examples are executable claims.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown documents whose intra-repo links must resolve.  Generated or
#: session-local files (ISSUE.md, CHANGES.md, SNIPPETS.md, PAPERS.md) are
#: deliberately out of scope.
DOCUMENTS = (
    "README.md",
    "ROADMAP.md",
    "TESTING.md",
    "docs/ARCHITECTURE.md",
    "docs/SCENARIOS.md",
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    return {_anchor(h) for h in _HEADING.findall(path.read_text(encoding="utf-8"))}


def _intra_repo_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        links.append(target)
    return links


@pytest.mark.parametrize("document", DOCUMENTS)
def test_document_exists(document):
    assert (REPO_ROOT / document).is_file(), f"{document} is missing"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_intra_repo_links_resolve(document):
    """Every relative link points at a real file, and every anchor at a
    real heading in its target."""
    source = REPO_ROOT / document
    broken = []
    for target in _intra_repo_links(source):
        path_part, _, anchor = target.partition("#")
        resolved = (
            source.parent / path_part if path_part else source
        ).resolve()
        if not resolved.exists():
            broken.append(f"{target}: no such file {resolved}")
            continue
        if anchor and resolved.suffix == ".md":
            if _anchor(anchor) not in _anchors_of(resolved):
                broken.append(f"{target}: no heading for #{anchor}")
    assert not broken, f"{document} has broken links:\n" + "\n".join(broken)


def test_scenarios_catalog_covers_every_example():
    """docs/SCENARIOS.md names every examples/*.py script."""
    catalog = (REPO_ROOT / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
    missing = [
        script.name
        for script in sorted((REPO_ROOT / "examples").glob("*.py"))
        if script.name not in catalog
    ]
    assert not missing, f"SCENARIOS.md does not mention: {missing}"


def test_architecture_names_every_traffic_module():
    """docs/ARCHITECTURE.md accounts for each public traffic module."""
    doc = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    modules = [
        p.stem
        for p in sorted((REPO_ROOT / "src/repro/traffic").glob("*.py"))
        if p.stem != "__init__"
    ]
    missing = [m for m in modules if f"`{m}`" not in doc and f".{m}" not in doc]
    assert not missing, f"ARCHITECTURE.md does not mention: {missing}"
