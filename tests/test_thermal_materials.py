"""Unit tests for the material property database."""

import pytest

from repro.thermal.materials import (
    ALUMINIUM,
    COPPER,
    GENERIC_PCM,
    ICOSANE,
    Material,
    get_material,
    list_materials,
    register_material,
)


class TestMaterialProperties:
    def test_copper_volumetric_heat_matches_paper(self):
        # Section 4.1 quotes 3.45 J/cm^3 K for copper.
        assert COPPER.volumetric_heat_j_cm3k == pytest.approx(3.45, rel=0.01)

    def test_aluminium_volumetric_heat_matches_paper(self):
        # Section 4.1 quotes 2.42 J/cm^3 K for aluminium.
        assert ALUMINIUM.volumetric_heat_j_cm3k == pytest.approx(2.42, rel=0.01)

    def test_icosane_matches_paper_quote(self):
        # Section 4.2: icosane melts at 36.8 C with latent heat 241 J/g.
        assert ICOSANE.melting_point_c == pytest.approx(36.8)
        assert ICOSANE.latent_heat_j_g == pytest.approx(241.0)
        assert ICOSANE.is_phase_change

    def test_generic_pcm_matches_paper_assumptions(self):
        # The working assumption is 100 J/g latent heat and 1 g/cm^3 density.
        assert GENERIC_PCM.latent_heat_j_g == pytest.approx(100.0)
        assert GENERIC_PCM.density_g_cm3 == pytest.approx(1.0)
        assert GENERIC_PCM.melting_point_c == pytest.approx(60.0)

    def test_metals_are_not_phase_change(self):
        assert not COPPER.is_phase_change
        assert not ALUMINIUM.is_phase_change

    def test_heat_capacity_scales_with_mass(self):
        assert COPPER.heat_capacity_j_k(2.0) == pytest.approx(
            2 * COPPER.heat_capacity_j_k(1.0)
        )

    def test_latent_capacity_for_150mg_generic_pcm_is_15_joules(self):
        # 150 mg x 100 J/g = 15 J, the latent budget behind the ~1 s sprint.
        assert GENERIC_PCM.latent_capacity_j(0.150) == pytest.approx(15.0)

    def test_mass_for_volume(self):
        assert COPPER.mass_for_volume(1.0) == pytest.approx(8.96)


class TestMaterialValidation:
    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", density_g_cm3=-1, specific_heat_j_gk=1, conductivity_w_mk=1)

    def test_zero_specific_heat_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", density_g_cm3=1, specific_heat_j_gk=0, conductivity_w_mk=1)

    def test_negative_latent_heat_rejected(self):
        with pytest.raises(ValueError):
            Material(
                "bad",
                density_g_cm3=1,
                specific_heat_j_gk=1,
                conductivity_w_mk=1,
                latent_heat_j_g=-5,
            )

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            COPPER.heat_capacity_j_k(-1.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            COPPER.mass_for_volume(-1.0)


class TestRegistry:
    def test_lookup_known_material(self):
        assert get_material("copper") is COPPER

    def test_unknown_material_lists_known_names(self):
        with pytest.raises(KeyError, match="copper"):
            get_material("unobtainium")

    def test_list_materials_contains_defaults(self):
        names = list_materials()
        for expected in ("copper", "aluminium", "icosane", "generic-pcm", "silicon"):
            assert expected in names

    def test_register_new_material_and_overwrite_flag(self):
        custom = Material(
            "test-wax",
            density_g_cm3=0.9,
            specific_heat_j_gk=2.0,
            conductivity_w_mk=0.3,
            latent_heat_j_g=150.0,
            melting_point_c=45.0,
        )
        register_material(custom)
        assert get_material("test-wax") is custom
        with pytest.raises(ValueError):
            register_material(custom)
        register_material(custom, overwrite=True)
