"""Shared test configuration: hypothesis profiles for the two CI tiers.

Two profiles are registered:

* ``ci`` (default) — modest example counts, sized for the fast PR gate.
* ``thorough`` — an order of magnitude more examples, run by the nightly
  workflow (``.github/workflows/nightly.yml``) so the property suites get
  a deep fuzz without slowing every push.

Select with ``HYPOTHESIS_PROFILE=thorough python -m pytest ...``.  Tests
that pin ``max_examples`` explicitly in their own ``@settings`` keep their
pinned value; suites that should scale with the tier (the traffic
invariant fuzz in ``test_traffic_invariants.py``) leave ``max_examples``
to the profile.
"""

from __future__ import annotations

import os

from hypothesis import settings

settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile(
    "thorough", max_examples=400, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
