"""Unit tests for the instruction-level energy model."""

import pytest

from repro.energy.instruction import (
    DEFAULT_MIX,
    EnergyTable,
    InstructionClass,
    InstructionEnergyModel,
    InstructionMix,
)


class TestEnergyTable:
    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            EnergyTable(int_alu_pj=-1.0)

    def test_instruction_lookup_covers_all_classes(self):
        table = EnergyTable()
        for kind in InstructionClass:
            assert table.instruction_pj(kind) >= 0

    def test_memory_events_cost_more_than_alu(self):
        table = EnergyTable()
        assert table.dram_access_pj > table.l2_hit_pj > table.l1_hit_pj
        assert table.load_pj > table.branch_pj


class TestInstructionMix:
    def test_default_mix_sums_to_one(self):
        assert sum(DEFAULT_MIX.as_dict().values()) == pytest.approx(1.0)

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            InstructionMix(int_alu=0.9, int_mul=0.0, fp=0.0, load=0.0, store=0.0,
                           branch=0.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(int_alu=1.2, int_mul=0.0, fp=0.0, load=-0.2, store=0.0,
                           branch=0.0)

    def test_memory_fraction(self):
        mix = InstructionMix(int_alu=0.4, int_mul=0.0, fp=0.1, load=0.3, store=0.1,
                             branch=0.1)
        assert mix.memory_fraction == pytest.approx(0.4)


class TestEnergyModelCalibration:
    def test_active_core_is_about_one_watt_at_1ghz(self):
        # Paper design point: a 1 GHz in-order core peaks around 1 W.
        model = InstructionEnergyModel()
        power = model.core_power_w(DEFAULT_MIX, 1e9)
        assert 0.8 <= power <= 1.1

    def test_sleeping_core_is_about_ten_percent(self):
        model = InstructionEnergyModel()
        active = model.core_power_w(DEFAULT_MIX, 1e9)
        sleeping = model.pause_energy_j(1e9)  # 1e9 pause cycles = one second
        assert sleeping == pytest.approx(0.1 * active, rel=0.25)

    def test_power_scales_linearly_with_frequency(self):
        model = InstructionEnergyModel()
        assert model.core_power_w(DEFAULT_MIX, 2e9) == pytest.approx(
            2 * model.core_power_w(DEFAULT_MIX, 1e9)
        )

    def test_power_scales_with_ipc(self):
        model = InstructionEnergyModel()
        stalled = model.core_power_w(DEFAULT_MIX, 1e9, ipc=0.5)
        full = model.core_power_w(DEFAULT_MIX, 1e9, ipc=1.0)
        assert stalled == pytest.approx(0.5 * full)


class TestEnergyModelAccounting:
    def test_instruction_energy_scales_with_count(self):
        model = InstructionEnergyModel()
        one = model.instructions_energy_j(1e6, DEFAULT_MIX)
        two = model.instructions_energy_j(2e6, DEFAULT_MIX)
        assert two == pytest.approx(2 * one)

    def test_memory_energy_combines_event_costs(self):
        model = InstructionEnergyModel()
        energy = model.memory_energy_j(l1_hits=1e6, l2_hits=1e3, dram_accesses=1e2)
        expected = (1e6 * 100.0 + 1e3 * 800.0 + 1e2 * 8000.0) * 1e-12
        assert energy == pytest.approx(expected)

    def test_fp_heavy_mix_burns_more_than_branch_heavy_mix(self):
        model = InstructionEnergyModel()
        fp_heavy = InstructionMix(int_alu=0.2, int_mul=0.0, fp=0.6, load=0.1,
                                  store=0.05, branch=0.05)
        branch_heavy = InstructionMix(int_alu=0.2, int_mul=0.0, fp=0.0, load=0.1,
                                      store=0.05, branch=0.65)
        assert model.average_instruction_pj(fp_heavy) > model.average_instruction_pj(
            branch_heavy
        )

    def test_validation_of_negative_counts(self):
        model = InstructionEnergyModel()
        with pytest.raises(ValueError):
            model.instructions_energy_j(-1, DEFAULT_MIX)
        with pytest.raises(ValueError):
            model.memory_energy_j(-1, 0, 0)
        with pytest.raises(ValueError):
            model.pause_energy_j(-1)
        with pytest.raises(ValueError):
            model.core_power_w(DEFAULT_MIX, 0.0)
        with pytest.raises(ValueError):
            model.core_power_w(DEFAULT_MIX, 1e9, ipc=1.5)
