"""Unit tests for the enthalpy-based phase change block."""

import pytest

from repro.thermal.materials import COPPER, ICOSANE, Material
from repro.thermal.pcm import PhaseChangeBlock


def make_block(mass_g=0.150, start_c=25.0):
    return PhaseChangeBlock(mass_g=mass_g, initial_temperature_c=start_c)


class TestConstruction:
    def test_requires_positive_mass(self):
        with pytest.raises(ValueError):
            PhaseChangeBlock(mass_g=0.0)

    def test_requires_phase_change_material(self):
        with pytest.raises(ValueError, match="latent"):
            PhaseChangeBlock(mass_g=1.0, material=COPPER)

    def test_starts_at_initial_temperature(self):
        block = make_block(start_c=30.0)
        assert block.temperature_c == pytest.approx(30.0)
        assert block.melt_fraction == 0.0

    def test_capacities_match_paper_design_point(self):
        block = make_block(mass_g=0.150)
        assert block.latent_capacity_j == pytest.approx(15.0)
        assert block.sensible_capacity_j_k == pytest.approx(0.150 * 0.5)


class TestHeatingAndMelting:
    def test_sensible_heating_below_melting_point(self):
        block = make_block(start_c=25.0)
        block.add_heat(block.sensible_capacity_j_k * 10.0)
        assert block.temperature_c == pytest.approx(35.0)
        assert block.melt_fraction == 0.0

    def test_temperature_pins_at_melting_point_during_melt(self):
        block = make_block(start_c=60.0)
        block.add_heat(block.latent_capacity_j / 2)
        assert block.temperature_c == pytest.approx(60.0)
        assert block.melt_fraction == pytest.approx(0.5)
        assert block.is_melting

    def test_temperature_rises_after_full_melt(self):
        block = make_block(start_c=60.0)
        block.add_heat(block.latent_capacity_j + block.sensible_capacity_j_k * 5.0)
        assert block.temperature_c == pytest.approx(65.0)
        assert block.melt_fraction == pytest.approx(1.0)
        assert not block.is_melting

    def test_remaining_latent_decreases_while_melting(self):
        block = make_block(start_c=60.0)
        assert block.remaining_latent_j == pytest.approx(block.latent_capacity_j)
        block.add_heat(5.0)
        assert block.remaining_latent_j == pytest.approx(block.latent_capacity_j - 5.0)

    def test_cooling_refreezes_then_cools(self):
        block = make_block(start_c=60.0)
        block.add_heat(block.latent_capacity_j)  # fully molten at 60 C
        block.add_heat(-block.latent_capacity_j)  # refreeze
        assert block.temperature_c == pytest.approx(60.0)
        assert block.melt_fraction == pytest.approx(0.0)
        block.add_heat(-block.sensible_capacity_j_k * 20.0)
        assert block.temperature_c == pytest.approx(40.0)

    def test_heating_and_cooling_round_trip_restores_state(self):
        block = make_block(start_c=25.0)
        start_enthalpy = block.enthalpy_j
        block.add_heat(30.0)
        block.add_heat(-30.0)
        assert block.enthalpy_j == pytest.approx(start_enthalpy)
        assert block.temperature_c == pytest.approx(25.0)


class TestSetTemperature:
    def test_set_below_melting_gives_solid(self):
        block = make_block(start_c=60.0)
        block.add_heat(10.0)
        block.set_temperature(30.0)
        assert block.temperature_c == pytest.approx(30.0)
        assert block.melt_fraction == 0.0

    def test_set_above_melting_gives_liquid(self):
        block = make_block()
        block.set_temperature(65.0)
        assert block.temperature_c == pytest.approx(65.0)
        assert block.melt_fraction == pytest.approx(1.0)


class TestEffectiveCapacity:
    def test_single_phase_capacity_is_sensible(self):
        block = make_block(start_c=25.0)
        assert block.effective_capacity_j_k() == pytest.approx(
            block.sensible_capacity_j_k
        )

    def test_melting_capacity_is_latent_spread_over_reference(self):
        block = make_block(start_c=60.0)
        block.add_heat(1.0)
        assert block.effective_capacity_j_k(reference_delta_c=1.0) == pytest.approx(
            block.latent_capacity_j
        )

    def test_reference_delta_must_be_positive(self):
        block = make_block()
        with pytest.raises(ValueError):
            block.effective_capacity_j_k(reference_delta_c=0.0)


class TestCopyAndMaterials:
    def test_copy_is_independent(self):
        block = make_block(start_c=60.0)
        block.add_heat(5.0)
        clone = block.copy()
        clone.add_heat(5.0)
        assert block.enthalpy_j == pytest.approx(5.0)
        assert clone.enthalpy_j == pytest.approx(10.0)

    def test_icosane_block_melts_at_its_own_melting_point(self):
        block = PhaseChangeBlock(mass_g=0.1, material=ICOSANE, initial_temperature_c=20)
        block.add_heat(block.sensible_capacity_j_k * (36.8 - 20.0) + 1.0)
        assert block.temperature_c == pytest.approx(36.8)
        assert block.is_melting

    def test_custom_material_with_small_latent_heat(self):
        weak = Material(
            "weak-pcm",
            density_g_cm3=1.0,
            specific_heat_j_gk=1.0,
            conductivity_w_mk=1.0,
            latent_heat_j_g=1.0,
            melting_point_c=40.0,
        )
        block = PhaseChangeBlock(mass_g=1.0, material=weak, initial_temperature_c=40.0)
        block.add_heat(2.0)  # exceeds the 1 J latent capacity
        assert block.melt_fraction == pytest.approx(1.0)
        assert block.temperature_c == pytest.approx(41.0)
