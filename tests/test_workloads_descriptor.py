"""Tests for the workload descriptor dataclasses."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.instruction import InstructionMix
from repro.workloads.descriptor import (
    MemoryBehaviour,
    ParallelBehaviour,
    WorkloadDescriptor,
)


class TestMemoryBehaviour:
    def test_defaults_are_valid(self):
        memory = MemoryBehaviour()
        assert memory.working_set_bytes > 0
        assert 0 <= memory.l1_miss_rate <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBehaviour(working_set_bytes=0)
        with pytest.raises(ValueError):
            MemoryBehaviour(l1_miss_rate=1.5)
        with pytest.raises(ValueError):
            MemoryBehaviour(coherence_miss_fraction=-0.1)
        with pytest.raises(ValueError):
            MemoryBehaviour(bytes_per_l2_miss=0)


class TestParallelBehaviour:
    def test_usable_cores_capped_by_max_parallelism(self):
        parallel = ParallelBehaviour(max_parallelism=8)
        assert parallel.usable_cores(4) == 4
        assert parallel.usable_cores(64) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelBehaviour(parallel_fraction=1.5)
        with pytest.raises(ValueError):
            ParallelBehaviour(max_parallelism=0)
        with pytest.raises(ValueError):
            ParallelBehaviour(imbalance=0.9)
        with pytest.raises(ValueError):
            ParallelBehaviour(sync_instructions_per_core=-1)
        with pytest.raises(ValueError):
            ParallelBehaviour().usable_cores(0)


class TestWorkloadDescriptor:
    def make(self, **overrides) -> WorkloadDescriptor:
        defaults = dict(name="toy", total_instructions=1e9)
        defaults.update(overrides)
        return WorkloadDescriptor(**defaults)

    def test_memory_instructions(self):
        workload = self.make(
            instruction_mix=InstructionMix(
                int_alu=0.5, int_mul=0.0, fp=0.1, load=0.3, store=0.05, branch=0.05
            )
        )
        assert workload.memory_instructions == pytest.approx(0.35e9)

    def test_dram_traffic_uses_miss_chain(self):
        workload = self.make(
            memory=MemoryBehaviour(
                l1_miss_rate=0.1,
                l2_miss_rate=0.5,
                bytes_per_l2_miss=64,
                coherence_miss_fraction=0.0,
            )
        )
        expected = workload.memory_instructions * 0.1 * 0.5 * 64
        assert workload.dram_traffic_bytes == pytest.approx(expected)

    def test_single_core_seconds(self):
        workload = self.make(total_instructions=2e9)
        assert workload.single_core_seconds(1e9) == pytest.approx(2.0)
        assert workload.single_core_seconds(1e9, cpi=2.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            workload.single_core_seconds(0.0)

    def test_scaled_multiplies_work_and_working_set(self):
        workload = self.make()
        bigger = workload.scaled(3.0, input_label="C")
        assert bigger.total_instructions == pytest.approx(3e9)
        assert bigger.memory.working_set_bytes == pytest.approx(
            3 * workload.memory.working_set_bytes
        )
        assert bigger.input_label == "C"
        assert workload.total_instructions == pytest.approx(1e9)
        with pytest.raises(ValueError):
            workload.scaled(0.0)

    def test_with_parallel_and_memory(self):
        workload = self.make()
        new_parallel = ParallelBehaviour(max_parallelism=2)
        new_memory = MemoryBehaviour(l1_miss_rate=0.2)
        assert workload.with_parallel(new_parallel).parallel.max_parallelism == 2
        assert workload.with_memory(new_memory).memory.l1_miss_rate == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(name="")
        with pytest.raises(ValueError):
            self.make(total_instructions=0)

    @given(factor=st.floats(min_value=0.01, max_value=100.0))
    def test_scaling_preserves_mix_and_rates(self, factor):
        workload = self.make()
        scaled = workload.scaled(factor)
        assert scaled.instruction_mix == workload.instruction_mix
        assert scaled.memory.l1_miss_rate == workload.memory.l1_miss_rate
        assert scaled.total_instructions == pytest.approx(
            workload.total_instructions * factor
        )
