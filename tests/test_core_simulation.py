"""Integration tests for the end-to-end sprint simulation (Section 8)."""

import numpy as np
import pytest

from repro.core.budget import OracleBudgetEstimator
from repro.core.config import SystemConfig
from repro.core.modes import ExecutionMode, SprintMode
from repro.core.simulation import SprintSimulation
from repro.workloads.descriptor import (
    MemoryBehaviour,
    ParallelBehaviour,
    WorkloadDescriptor,
)
from repro.workloads.suite import kernel_suite


def small_workload(instructions: float = 3e8) -> WorkloadDescriptor:
    """A compute-dense workload that simulates quickly."""
    return WorkloadDescriptor(
        name="toy",
        total_instructions=instructions,
        memory=MemoryBehaviour(working_set_bytes=4e6, l1_miss_rate=0.01, l2_miss_rate=0.3),
        parallel=ParallelBehaviour(
            parallel_fraction=0.99, max_parallelism=256, imbalance=1.03,
            sync_instructions_per_core=20_000,
        ),
    )


@pytest.fixture(scope="module")
def paper_sim():
    return SprintSimulation(SystemConfig.paper_default())


@pytest.fixture(scope="module")
def small_pcm_sim():
    return SprintSimulation(SystemConfig.small_pcm())


@pytest.fixture(scope="module")
def toy():
    return small_workload()


@pytest.fixture(scope="module")
def toy_results(paper_sim, toy):
    baseline = paper_sim.run_baseline(toy)
    sprint = paper_sim.run(toy)
    dvfs = paper_sim.run_dvfs_sprint(toy)
    return baseline, sprint, dvfs


class TestSprintSimulationBasics:
    def test_baseline_uses_one_core_and_stays_cool(self, toy_results):
        baseline, _, _ = toy_results
        assert baseline.execution_mode is ExecutionMode.SUSTAINED_SINGLE_CORE
        assert baseline.metrics.time_in(SprintMode.SPRINT) == 0.0
        # A ~1 W core on a package that sustains ~1 W stays below the limit.
        assert baseline.peak_junction_c < 70.0
        assert baseline.completed

    def test_parallel_sprint_is_much_faster(self, toy_results):
        baseline, sprint, _ = toy_results
        speedup = sprint.speedup_over(baseline)
        assert 8.0 <= speedup <= 16.5
        assert sprint.sprint_completion_fraction > 0.9
        assert not sprint.sprint_was_truncated

    def test_sprint_power_exceeds_tdp(self, toy_results, paper_sim):
        _, sprint, _ = toy_results
        sprint_energy = sprint.metrics.energy_in(SprintMode.SPRINT)
        sprint_time = sprint.metrics.time_in(SprintMode.SPRINT)
        assert sprint_energy / sprint_time > 5 * paper_sim.config.sustainable_power_w

    def test_junction_never_exceeds_limit_materially(self, toy_results):
        for result in toy_results:
            assert result.peak_junction_c <= 71.0

    def test_dvfs_sprint_is_slower_than_parallel_but_faster_than_baseline(
        self, toy_results
    ):
        baseline, sprint, dvfs = toy_results
        assert dvfs.total_time_s < baseline.total_time_s
        assert dvfs.total_time_s > sprint.total_time_s
        # DVFS pays roughly the V^2 energy penalty.
        assert dvfs.energy_ratio_over(baseline) > 3.0

    def test_parallel_sprint_energy_near_baseline(self, toy_results):
        baseline, sprint, _ = toy_results
        assert sprint.energy_ratio_over(baseline) < 1.35

    def test_mode_timeline_covers_run(self, toy_results):
        _, sprint, _ = toy_results
        assert sprint.mode_timeline[0].mode is SprintMode.SPRINT
        total = sum(interval.duration_s for interval in sprint.mode_timeline)
        assert total == pytest.approx(sprint.total_time_s, rel=1e-6)

    def test_traces_are_consistent(self, toy_results):
        _, sprint, _ = toy_results
        assert len(sprint.junction_trace_c) == len(sprint.trace_times_s)
        assert np.all(np.diff(sprint.trace_times_s) > 0)
        assert sprint.junction_trace_c[0] == pytest.approx(25.0, abs=1.0)


class TestSprintTruncation:
    def test_small_pcm_truncates_long_sprint(self, small_pcm_sim, paper_sim):
        workload = small_workload(instructions=4e9)
        truncated = small_pcm_sim.run(workload)
        assert truncated.sprint_was_truncated
        assert truncated.sprint_exhausted_at_s is not None
        # After exhaustion the run continues in sustained mode on one core.
        assert truncated.metrics.time_in(SprintMode.SUSTAINED) > 0.0
        assert truncated.completed
        full = paper_sim.run(workload)
        assert full.total_time_s < truncated.total_time_s

    def test_oracle_budget_allows_at_least_as_long_a_sprint(self, small_pcm_sim):
        workload = small_workload(instructions=4e9)
        config = small_pcm_sim.config
        energy_run = small_pcm_sim.run(workload)
        oracle_run = small_pcm_sim.run(
            workload, budget=OracleBudgetEstimator(config.package)
        )
        assert oracle_run.sprint_duration_s >= 0.6 * energy_run.sprint_duration_s
        assert oracle_run.peak_junction_c <= 71.0


class TestSimulationUtilities:
    def test_compare_modes_returns_all_three(self, paper_sim):
        results = paper_sim.compare_modes(small_workload(instructions=1e8))
        assert set(results) == set(ExecutionMode)

    def test_cooldown_after_sprint(self, paper_sim):
        # A long sprint deposits enough heat that the package needs a
        # multi-second cooldown before it is back near ambient.
        sprint = paper_sim.run(small_workload(instructions=6e9))
        cooldown = paper_sim.cooldown_after(sprint, duration_s=60.0)
        assert cooldown.time_to_near_ambient_s is not None
        assert cooldown.time_to_near_ambient_s > 0.5
        # The rule of thumb: cooling takes far longer than the sprint itself.
        assert cooldown.time_to_near_ambient_s > 2 * sprint.sprint_duration_s

    def test_quantum_override_changes_resolution_not_result(self, paper_sim):
        workload = small_workload(instructions=2e8)
        fine = paper_sim.run(workload, quantum_s=5e-4)
        coarse = paper_sim.run(workload, quantum_s=4e-3)
        assert fine.total_time_s == pytest.approx(coarse.total_time_s, rel=0.05)

    def test_explicit_thread_count(self, paper_sim):
        result = paper_sim.run(small_workload(instructions=1e8), n_threads=4)
        # Only four threads exist, so at most four cores ever run.
        assert max(i.active_cores for i in result.mode_timeline) <= 4

    def test_invalid_arguments(self, paper_sim, toy):
        with pytest.raises(ValueError):
            paper_sim.run(toy, max_time_s=0.0)
        with pytest.raises(ValueError):
            paper_sim.run(toy, n_threads=0)
        with pytest.raises(RuntimeError):
            paper_sim.run(small_workload(instructions=1e12), max_time_s=0.01)


class TestPaperWorkloadsEndToEnd:
    def test_sobel_sprint_matches_paper_shape(self, paper_sim):
        workload = kernel_suite()["sobel"].workload("A")
        baseline = paper_sim.run_baseline(workload, quantum_s=2e-3)
        sprint = paper_sim.run(workload)
        speedup = sprint.speedup_over(baseline)
        assert speedup > 8.0
        assert sprint.peak_junction_c < 70.5

    def test_segment_limited_by_parallelism(self, paper_sim):
        workload = kernel_suite()["segment"].workload("A")
        baseline = paper_sim.run_baseline(workload, quantum_s=2e-3)
        sprint = paper_sim.run(workload)
        assert 3.0 <= sprint.speedup_over(baseline) <= 9.0
