"""Integration tests for the power delivery network model (Figures 5 and 6)."""

import pytest

from repro.power.activation import (
    AbruptActivation,
    LinearRampActivation,
)
from repro.power.pdn import PdnConfig, PowerDeliveryNetwork, core_node


@pytest.fixture(scope="module")
def small_pdn():
    """A 4-core PDN keeps the circuit small so transient tests stay fast."""
    return PowerDeliveryNetwork(PdnConfig(n_cores=4))


@pytest.fixture(scope="module")
def paper_pdn():
    return PowerDeliveryNetwork(PdnConfig())


class TestPdnConfig:
    def test_defaults_match_paper_targets(self):
        cfg = PdnConfig()
        assert cfg.n_cores == 16
        assert cfg.supply_v == pytest.approx(1.2)
        assert cfg.core_average_current_a == pytest.approx(0.5)
        assert cfg.core_peak_current_a == pytest.approx(1.0)
        assert cfg.total_sprint_current_a == pytest.approx(8.0)
        assert cfg.tolerance_v == pytest.approx(0.024)

    def test_validation(self):
        with pytest.raises(ValueError):
            PdnConfig(n_cores=0)
        with pytest.raises(ValueError):
            PdnConfig(supply_v=0.0)
        with pytest.raises(ValueError):
            PdnConfig(tolerance_fraction=1.5)
        with pytest.raises(ValueError):
            PdnConfig(core_average_current_a=-1.0)


class TestCircuitConstruction:
    def test_node_per_core_exists(self, small_pdn):
        circuit = small_pdn.build_circuit(AbruptActivation())
        for k in range(4):
            assert core_node(k) in circuit.node_names

    def test_element_count_scales_with_cores(self):
        small = PowerDeliveryNetwork(PdnConfig(n_cores=2)).build_circuit(
            AbruptActivation()
        )
        large = PowerDeliveryNetwork(PdnConfig(n_cores=8)).build_circuit(
            AbruptActivation()
        )
        assert large.element_count > small.element_count


class TestSteadyState:
    def test_no_load_sits_at_nominal(self, small_pdn):
        assert small_pdn.steady_state_voltage(0) == pytest.approx(1.2, abs=1e-9)

    def test_ir_drop_grows_with_active_cores(self, paper_pdn):
        v1 = paper_pdn.steady_state_voltage(1)
        v16 = paper_pdn.steady_state_voltage(16)
        assert v16 < v1 < 1.2

    def test_full_sprint_ir_drop_is_about_ten_millivolts(self, paper_pdn):
        # Section 5.3: the supply settles ~10 mV below nominal at full sprint.
        drop = 1.2 - paper_pdn.steady_state_voltage(16)
        assert 0.005 <= drop <= 0.025

    def test_invalid_core_count_rejected(self, small_pdn):
        with pytest.raises(ValueError):
            small_pdn.steady_state_voltage(5)
        with pytest.raises(ValueError):
            small_pdn.steady_state_voltage(-1)


class TestActivationTransients:
    """Figure 6: supply voltage under the three activation schedules.

    The 4-core configuration is used to keep circuit sizes small; the full
    16-core sweep is exercised by the Figure 6 benchmark.
    """

    def test_abrupt_activation_violates_tolerance(self, small_pdn):
        analysis = small_pdn.simulate_activation(
            AbruptActivation(core_rise_s=1e-9), duration_s=60e-6, dt_s=20e-9
        )
        assert not analysis.within_tolerance
        assert analysis.min_voltage_v < 1.2 - analysis.config.tolerance_v

    def test_slow_ramp_stays_within_tolerance(self, small_pdn):
        analysis = small_pdn.simulate_activation(
            LinearRampActivation(ramp_s=128e-6), duration_s=300e-6, dt_s=50e-9
        )
        assert analysis.within_tolerance

    def test_slow_ramp_settles_below_nominal_due_to_ir_drop(self, small_pdn):
        analysis = small_pdn.simulate_activation(
            LinearRampActivation(ramp_s=128e-6), duration_s=300e-6, dt_s=50e-9
        )
        assert analysis.resistive_drop_v > 0.0
        assert analysis.settling_voltage_v < 1.2

    def test_faster_ramp_causes_deeper_droop(self, small_pdn):
        fast = small_pdn.simulate_activation(
            LinearRampActivation(ramp_s=1.28e-6), duration_s=80e-6, dt_s=20e-9
        )
        slow = small_pdn.simulate_activation(
            LinearRampActivation(ramp_s=128e-6), duration_s=300e-6, dt_s=50e-9
        )
        assert fast.worst_droop_v > slow.worst_droop_v

    def test_analysis_reports_monitored_node_waveform(self, small_pdn):
        analysis = small_pdn.simulate_activation(
            AbruptActivation(core_rise_s=1e-9), duration_s=40e-6, dt_s=20e-9
        )
        waveform = analysis.result.voltage(analysis.monitored_node)
        assert len(waveform) > 100
        assert analysis.min_voltage_v == pytest.approx(float(waveform.min()))

    def test_droop_and_overshoot_are_non_negative(self, small_pdn):
        analysis = small_pdn.simulate_activation(
            LinearRampActivation(ramp_s=64e-6), duration_s=200e-6, dt_s=50e-9
        )
        assert analysis.worst_droop_v >= 0.0
        assert analysis.worst_overshoot_v >= 0.0
