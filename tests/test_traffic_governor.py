"""Tests for the fleet power-budget governor.

The load-bearing guarantees: an ``unlimited`` governor is bypassed and
reproduces ungoverned runs *bit-identically* across every dispatch policy
and mode; governed runs never leak budget (every grant is released, even
when requests are rejected, abandoned, or granted-but-unable-to-sprint);
breaker trips — including during a sprint in flight — keep the accounting
consistent; and the token bucket is deterministic under identical seeds.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic.arrivals import DeterministicArrivals, PoissonArrivals
from repro.traffic.engine import DISPATCH_POLICIES
from repro.traffic.fleet import FleetSimulator
from repro.traffic.governor import (
    GOVERNOR_POLICIES,
    CooperativeThresholdGovernor,
    GovernorSpec,
    GreedyGovernor,
    TokenBucketGovernor,
    UnlimitedGovernor,
)
from repro.traffic.request import (
    FixedService,
    GammaService,
    Request,
    generate_requests,
)
from repro.traffic.sweep import SweepSpec, expand_cells, run_sweep


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_default()


@pytest.fixture(scope="module")
def excess_w(config):
    return config.sprint_power_w - config.sustainable_power_w


def stochastic_requests(seed, n=150, rate=0.35, cv=1.0):
    return generate_requests(
        PoissonArrivals(rate), GammaService(mean_s=5.0, cv=cv), n, seed=seed
    )


def sprints_served(result):
    return sum(1 for s in result.served if s.sprinted)


class TestUnlimitedRegression:
    """governor="unlimited" must be indistinguishable from no governor."""

    @pytest.mark.parametrize("policy", sorted(DISPATCH_POLICIES))
    def test_bit_identical_across_dispatch_policies(self, config, policy):
        requests = stochastic_requests(7)
        ungoverned = FleetSimulator(config, 4, policy=policy).run(requests, seed=7)
        governed = FleetSimulator(
            config, 4, policy=policy, governor="unlimited"
        ).run(requests, seed=7)
        assert governed.served == ungoverned.served
        assert governed.device_stats == ungoverned.device_stats
        assert governed.governor_stats is None

    @pytest.mark.parametrize("discipline", ["fifo", "edf"])
    def test_bit_identical_in_central_queue_mode(self, config, discipline):
        requests = stochastic_requests(2, rate=0.6)
        kwargs = dict(mode="central_queue", discipline=discipline, queue_bound=6)
        ungoverned = FleetSimulator(config, 3, **kwargs).run(requests)
        governed = FleetSimulator(
            config, 3, governor=GovernorSpec.unlimited(), **kwargs
        ).run(requests)
        assert governed.served == ungoverned.served
        assert governed.rejected == ungoverned.rejected
        assert governed.abandoned == ungoverned.abandoned

    def test_unbounded_greedy_matches_unlimited(self, config):
        """A greedy governor that can never deny is observably unlimited —
        the handshake itself must not perturb any outcome."""
        requests = stochastic_requests(11)
        unlimited = FleetSimulator(config, 4).run(requests)
        greedy = FleetSimulator(
            config, 4, governor=GovernorSpec.greedy(10_000)
        ).run(requests)
        assert greedy.served == unlimited.served
        assert greedy.governor_stats.sprints_denied == 0
        assert greedy.governor_stats.sprints_granted == len(requests)


class TestGreedy:
    def test_concurrency_cap_is_respected(self, config):
        result = FleetSimulator(
            config, 8, governor=GovernorSpec.greedy(2)
        ).run(stochastic_requests(5, rate=1.0))
        stats = result.governor_stats
        assert stats.peak_concurrent_sprints <= 2
        assert stats.sprints_denied > 0
        assert stats.time_at_cap_s > 0.0

    def test_denied_requests_run_sustained(self, config):
        # Two simultaneous arrivals on two devices, one sprint slot: the
        # second request must execute sustained.
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=5.0),
            Request(index=1, arrival_s=0.0, sustained_time_s=5.0),
        ]
        result = FleetSimulator(
            config, 2, governor=GovernorSpec.greedy(1)
        ).run(requests)
        flags = sorted(s.sprinted for s in result.served)
        assert flags == [False, True]
        assert result.governor_stats.sprints_granted == 1
        assert result.governor_stats.sprints_denied == 1

    def test_grant_frees_at_completion(self, config):
        """A sprint's grant returns when the device frees, so a request
        arriving after the completion instant sprints again under cap 1."""
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=5.0),
            Request(index=1, arrival_s=1.0, sustained_time_s=5.0),
        ]
        result = FleetSimulator(
            config, 2, governor=GovernorSpec.greedy(1)
        ).run(requests)
        # First sprints 0.5 s; the second arrives at 1.0 > 0.5, after the
        # release event, so the budget is back.
        assert [s.sprinted for s in result.served] == [True, True]
        assert result.governor_stats.sprints_denied == 0

    def test_tighter_caps_cost_tail_latency(self, config):
        requests = stochastic_requests(9, n=200, rate=0.8)
        p99 = {}
        for cap in (1, 4):
            result = FleetSimulator(
                config, 8, governor=GovernorSpec.greedy(cap)
            ).run(requests)
            p99[cap] = result.summary().p99_latency_s
        unlimited = FleetSimulator(config, 8).run(requests).summary().p99_latency_s
        assert p99[1] > p99[4] >= unlimited


class TestGrantAccounting:
    """No leaked budget, whatever happens to the requests."""

    def test_no_leak_with_rejection_and_abandonment(self, config):
        """Rejected and abandoned requests never dispatch, so they must not
        consume budget; every dispatched grant must come back."""
        requests = [
            Request(
                index=i,
                arrival_s=0.05 * i,
                sustained_time_s=8.0,
                deadline_s=6.0 if i % 3 else None,
            )
            for i in range(60)
        ]
        fleet = FleetSimulator(
            config,
            2,
            mode="central_queue",
            queue_bound=3,
            governor=GovernorSpec.greedy(2),
        )
        result = fleet.run(requests)
        assert len(result.rejected) > 0
        assert len(result.abandoned) > 0
        assert fleet.governor.active_grants == 0
        stats = result.governor_stats
        assert stats.sprints_granted - stats.grants_released_unused == sprints_served(
            result
        )

    def test_unused_grant_released_immediately(self, config):
        """A granted request on a thermally exhausted device runs sustained;
        its grant must return at once so another device can use it."""
        requests = [
            # Exhaust device 0's reservoir (back-to-back heavy work).
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=1.1, sustained_time_s=10.0),
            Request(index=2, arrival_s=1.2, sustained_time_s=10.0),
        ]

        def to_zero(devices, request, rng, cursor):
            return 0

        fleet = FleetSimulator(config, 1, policy=to_zero, governor=GovernorSpec.greedy(4))
        result = fleet.run(requests)
        stats = result.governor_stats
        assert stats.grants_released_unused > 0
        assert fleet.governor.active_grants == 0
        assert stats.sprints_granted - stats.grants_released_unused == sprints_served(
            result
        )

    def test_no_leak_across_every_policy(self, config):
        requests = stochastic_requests(13, n=120, rate=0.9)
        specs = [
            GovernorSpec.greedy(3),
            GovernorSpec.token_bucket(0.1, 4),
            GovernorSpec.cooperative(45.0),
        ]
        for spec in specs:
            for mode in ("immediate", "central_queue"):
                fleet = FleetSimulator(config, 4, mode=mode, governor=spec)
                result = fleet.run(requests)
                assert fleet.governor.active_grants == 0, (spec.policy, mode)
                stats = result.governor_stats
                assert (
                    stats.sprints_granted - stats.grants_released_unused
                    == sprints_served(result)
                ), (spec.policy, mode)

    def test_release_without_grant_raises(self, excess_w):
        governor = GreedyGovernor(excess_w, max_concurrent_sprints=2)
        with pytest.raises(RuntimeError):
            governor.release(0.0)


class TestBreaker:
    def test_greedy_past_trip_point_trips(self, config, excess_w):
        """An oblivious greedy governor provisioned above the trip point
        trips the breaker; the penalty window then denies every grant."""
        spec = GovernorSpec.greedy(
            8, trip_headroom_w=1.5 * excess_w, penalty_s=50.0
        )
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=5.0),
            Request(index=1, arrival_s=0.1, sustained_time_s=5.0),  # trips
            Request(index=2, arrival_s=1.0, sustained_time_s=5.0),  # in penalty
            Request(index=3, arrival_s=2.0, sustained_time_s=5.0),  # in penalty
        ]
        fleet = FleetSimulator(config, 4, governor=spec)
        result = fleet.run(requests)
        stats = result.governor_stats
        assert stats.breaker_trips == 1
        assert stats.trip_times_s == (0.1,)
        # The tripping sprint itself proceeds (power is not retro-cut)...
        assert [s.sprinted for s in sorted(result.served, key=lambda s: s.request.index)] == [
            True,
            True,
            False,
            False,
        ]
        # ...and the penalty window is charged to time at cap in full.
        assert stats.time_at_cap_s == pytest.approx(50.0)

    def test_trip_during_inflight_sprint_keeps_accounting_consistent(
        self, config, excess_w
    ):
        """Request 0's sprint is in flight when request 1 trips the breaker;
        its later release must bring the ledger back to zero, not negative."""
        spec = GovernorSpec.greedy(
            8, trip_headroom_w=1.5 * excess_w, penalty_s=100.0
        )
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=0.1, sustained_time_s=10.0),
        ]
        fleet = FleetSimulator(config, 2, governor=spec)
        result = fleet.run(requests)
        stats = result.governor_stats
        assert stats.breaker_trips == 1
        assert stats.peak_concurrent_sprints == 2
        assert fleet.governor.active_grants == 0
        assert sprints_served(result) == 2

    def test_grants_resume_after_penalty(self, config, excess_w):
        spec = GovernorSpec.greedy(8, trip_headroom_w=1.5 * excess_w, penalty_s=5.0)
        requests = [
            Request(index=0, arrival_s=0.0, sustained_time_s=5.0),
            Request(index=1, arrival_s=0.1, sustained_time_s=5.0),  # trips at 0.1
            Request(index=2, arrival_s=2.0, sustained_time_s=5.0),  # denied
            Request(index=3, arrival_s=20.0, sustained_time_s=5.0),  # recovered
        ]
        result = FleetSimulator(config, 4, governor=spec).run(requests)
        by_index = sorted(result.served, key=lambda s: s.request.index)
        assert [s.sprinted for s in by_index] == [True, True, False, True]

    def test_cooperative_avoids_trips_greedy_incurs(self, config, excess_w):
        """The acceptance scenario: at the same offered load and trip point,
        greedy trips the breaker and cooperative-threshold does not —
        while still sprinting up to the budget."""
        requests = stochastic_requests(3, n=150, rate=0.8)
        trip_w = 2.5 * excess_w
        greedy = FleetSimulator(
            config,
            8,
            governor=GovernorSpec.greedy(8, trip_headroom_w=trip_w, penalty_s=60.0),
        ).run(requests)
        cooperative = FleetSimulator(
            config, 8, governor=GovernorSpec.cooperative(trip_w, penalty_s=60.0)
        ).run(requests)
        assert greedy.governor_stats.breaker_trips > 0
        assert cooperative.governor_stats.breaker_trips == 0
        assert cooperative.governor_stats.sprints_granted > 0
        # Cooperative never projects past the trip point: at most 2 sprints.
        assert cooperative.governor_stats.peak_concurrent_sprints <= 2

    def test_cooperative_caps_projected_draw(self, config, excess_w):
        governor = CooperativeThresholdGovernor(excess_w, trip_headroom_w=2 * excess_w)
        assert governor.acquire(0.0)
        assert governor.acquire(0.0)
        assert not governor.acquire(0.0)  # third sprint would exceed the trip point
        governor.release(1.0)
        assert governor.acquire(1.0)


class TestTokenBucket:
    def test_deterministic_under_identical_seeds(self, config):
        requests = stochastic_requests(21, n=100, rate=0.7)
        spec = GovernorSpec.token_bucket(0.05, 3)
        a = FleetSimulator(config, 4, governor=spec).run(requests, seed=2)
        b = FleetSimulator(config, 4, governor=spec).run(requests, seed=2)
        assert np.array_equal(a.latencies_s, b.latencies_s)
        assert a.governor_stats == b.governor_stats

    def test_burst_then_sustained_rate(self, config):
        """Exact grant schedule: a burst of 2, then one sprint per 1/rate.

        Arrivals every 1 s with rate 0.25/s and burst 2: grants at t = 0
        and 1 (the burst), then at t = 4 and 8 as the bucket refills to one
        token (0.25 tokens per arrival — exact in binary floats).
        """
        requests = generate_requests(
            DeterministicArrivals(1.0), FixedService(0.5), 10, seed=0
        )
        fleet = FleetSimulator(
            config, 1, governor=GovernorSpec.token_bucket(0.25, 2)
        )
        result = fleet.run(requests)
        sprint_flags = [s.sprinted for s in result.served]
        expected = [i in (0, 1, 4, 8) for i in range(10)]
        assert sprint_flags == expected
        # Exhaustion intervals, analytically: [1, 4], [4, 8], and [8, end]
        # where the run's last event is the final arrival at t = 9.
        assert result.governor_stats.time_at_cap_s == pytest.approx(8.0)

    def test_penalty_and_exhaustion_overlap_not_double_counted(self, excess_w):
        """One grant both trips the breaker and empties the bucket: the two
        blocked spans coincide and must be counted once, not summed."""
        governor = TokenBucketGovernor(
            excess_w,
            sprint_rate_hz=0.1,
            burst_sprints=1,
            trip_headroom_w=0.5 * excess_w,  # the very first grant trips
            penalty_s=10.0,
        )
        assert governor.acquire(0.0)
        stats = governor.finalize(12.0)
        assert stats.breaker_trips == 1
        # Exhaustion recovers at 1/0.1 = 10 s and the penalty ends at 10 s;
        # the union is [0, 10], never 20.
        assert stats.time_at_cap_s == pytest.approx(10.0)

    def test_unused_grant_refunds_its_token(self, excess_w):
        governor = TokenBucketGovernor(excess_w, sprint_rate_hz=1e-6, burst_sprints=1)
        assert governor.acquire(0.0)
        governor.release(0.0, used=False)
        # Without the refund the bucket would be empty for ~1e6 seconds.
        assert governor.acquire(0.0)
        stats = governor.finalize(1.0)
        assert stats.grants_released_unused == 1

    def test_refund_keeps_budget_for_cold_devices(self, config):
        """A hot device that is granted but cannot sprint must not burn the
        bucket: its refunded token is still there when the fleet cools."""

        def to_zero(devices, request, rng, cursor):
            return 0

        requests = [
            # Exhaust the device's thermal reservoir...
            Request(index=0, arrival_s=0.0, sustained_time_s=10.0),
            Request(index=1, arrival_s=1.1, sustained_time_s=10.0),
            # ...so these are granted but run sustained (grants refunded)...
            Request(index=2, arrival_s=1.2, sustained_time_s=10.0),
            Request(index=3, arrival_s=1.3, sustained_time_s=10.0),
            # ...and the refunds are what lets this one sprint after cooling.
            Request(index=4, arrival_s=200.0, sustained_time_s=10.0),
        ]
        fleet = FleetSimulator(
            config,
            1,
            policy=to_zero,
            governor=GovernorSpec.token_bucket(1e-4, 3),
        )
        result = fleet.run(requests)
        by_index = sorted(result.served, key=lambda s: s.request.index)
        assert result.governor_stats.grants_released_unused >= 1
        assert by_index[4].sprinted
        assert fleet.governor.active_grants == 0

    def test_stats_round_trip_into_summary(self, config):
        result = FleetSimulator(
            config, 4, governor=GovernorSpec.token_bucket(0.05, 2)
        ).run(stochastic_requests(4))
        summary = result.summary()
        stats = result.governor_stats
        assert summary.governor_policy == "token_bucket"
        assert summary.sprints_granted == stats.sprints_granted
        assert summary.sprints_denied == stats.sprints_denied
        assert summary.time_at_cap_s == pytest.approx(stats.time_at_cap_s)
        assert 0.0 < summary.sprint_denial_fraction < 1.0


class TestGovernorSpec:
    def test_policy_names_cover_the_paper_set(self):
        assert set(GOVERNOR_POLICIES) == {
            "unlimited",
            "greedy",
            "token_bucket",
            "cooperative_threshold",
        }

    def test_hyphenated_names_normalise(self):
        spec = GovernorSpec(
            policy="token-bucket", sprint_rate_hz=1.0, burst_sprints=2
        )
        assert spec.policy == "token_bucket"
        coop = GovernorSpec(policy="cooperative-threshold", trip_headroom_w=10.0)
        assert coop.policy == "cooperative_threshold"

    def test_validation(self):
        with pytest.raises(ValueError):
            GovernorSpec(policy="nope")
        with pytest.raises(ValueError):
            GovernorSpec(policy="greedy")  # missing the cap
        with pytest.raises(ValueError):
            GovernorSpec(policy="greedy", max_concurrent_sprints=0)
        with pytest.raises(ValueError):
            GovernorSpec(max_concurrent_sprints=4)  # unlimited takes no knobs
        with pytest.raises(ValueError):
            GovernorSpec(policy="token_bucket", sprint_rate_hz=1.0)  # no burst
        with pytest.raises(ValueError):
            GovernorSpec(policy="token_bucket", sprint_rate_hz=0.0, burst_sprints=2)
        with pytest.raises(ValueError):
            GovernorSpec(policy="token_bucket", sprint_rate_hz=1.0, burst_sprints=0.5)
        with pytest.raises(ValueError):
            GovernorSpec(policy="cooperative_threshold")  # missing trip point
        with pytest.raises(ValueError):
            GovernorSpec(policy="cooperative_threshold", trip_headroom_w=-1.0)
        with pytest.raises(ValueError):
            GovernorSpec.cooperative(10.0, penalty_s=-1.0)

    def test_labels_are_compact(self):
        assert GovernorSpec.unlimited().label == "unlimited"
        assert GovernorSpec.greedy(4).label == "greedy[4]"
        assert "60" in GovernorSpec.greedy(4, trip_headroom_w=60.0).label
        assert GovernorSpec.token_bucket(0.5, 8).label == "token[0.5/s+8]"
        assert GovernorSpec.cooperative(60.0).label == "coop[60W]"

    def test_build_resolves_platform_excess(self, config, excess_w):
        governor = GovernorSpec.greedy(4).build(config)
        assert isinstance(governor, GreedyGovernor)
        assert governor.excess_power_w == pytest.approx(excess_w)
        assert isinstance(GovernorSpec.unlimited().build(config), UnlimitedGovernor)
        assert isinstance(
            GovernorSpec.token_bucket(1.0, 2).build(config), TokenBucketGovernor
        )

    def test_fleet_rejects_bad_governor_arguments(self, config):
        with pytest.raises(ValueError):
            FleetSimulator(config, 2, governor="greedy")  # knobs required
        with pytest.raises(TypeError):
            FleetSimulator(config, 2, governor=123)

    def test_empty_governed_run_reports_stats(self, config):
        result = FleetSimulator(config, 2, governor=GovernorSpec.greedy(2)).run([])
        assert result.governor_stats is not None
        assert result.governor_stats.sprints_granted == 0
        assert result.summary().governor_policy == "greedy"


class TestSweepGovernorAxis:
    def test_governor_axis_expands_the_grid(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.1, 0.2),
            fleet_sizes=(2,),
            governors=(GovernorSpec(), GovernorSpec.greedy(2)),
        )
        cells = expand_cells(spec)
        assert len(cells) == 4
        assert {c.governor.policy for c in cells} == {"unlimited", "greedy"}
        assert [c.index for c in cells] == list(range(4))

    def test_default_axis_reproduces_legacy_grid(self):
        spec = SweepSpec(arrival_rates_hz=(0.1,), fleet_sizes=(1, 2))
        cells = expand_cells(spec)
        assert len(cells) == 2
        assert all(c.governor == GovernorSpec() for c in cells)

    def test_string_governors_normalise(self):
        spec = SweepSpec(governors=("unlimited",))
        assert spec.governors == (GovernorSpec(),)

    def test_duplicate_governors_collapse(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.1,),
            fleet_sizes=(1,),
            governors=(GovernorSpec(), "unlimited", GovernorSpec.greedy(2)),
        )
        cells = expand_cells(spec)
        assert len(cells) == 2  # the duplicate unlimited collapsed

    def test_sprint_disabled_collapses_governor_axis(self):
        """A power governor cannot affect a fleet that never sprints, so a
        no-sprint sweep must not multiply its cost along the axis."""
        spec = SweepSpec(
            arrival_rates_hz=(0.1,),
            fleet_sizes=(1,),
            sprint_enabled=False,
            governors=(GovernorSpec(), GovernorSpec.greedy(2)),
        )
        cells = expand_cells(spec)
        assert len(cells) == 1
        assert cells[0].governor == GovernorSpec()

    def test_governed_cells_run_and_pair_streams(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.6,),
            fleet_sizes=(4,),
            n_requests=60,
            governors=(GovernorSpec(), GovernorSpec.greedy(1)),
        )
        result = run_sweep(spec)
        unlimited, governed = result.cells
        assert unlimited.cell.stream_key == governed.cell.stream_key
        assert governed.summary.sprints_denied > 0
        assert unlimited.summary.sprints_denied == 0
        assert governed.summary.p99_latency_s >= unlimited.summary.p99_latency_s

    def test_governed_sweep_parallel_matches_serial(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.3, 0.6),
            fleet_sizes=(2,),
            n_requests=40,
            governors=(GovernorSpec(), GovernorSpec.token_bucket(0.05, 3)),
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=3)
        assert serial.cells == parallel.cells

    def test_format_table_shows_governance(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.5,),
            fleet_sizes=(2,),
            n_requests=30,
            governors=(GovernorSpec.greedy(1),),
        )
        table = run_sweep(spec).format_table()
        assert "governor" in table
        assert "greedy[1]" in table
        assert "den" in table

    def test_filtered_by_governor_policy(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.2,),
            fleet_sizes=(1,),
            n_requests=20,
            governors=(GovernorSpec(), GovernorSpec.greedy(1)),
        )
        result = run_sweep(spec)
        subset = result.filtered(governor_policy="greedy")
        assert len(subset) == 1
        assert subset[0].cell.governor.policy == "greedy"

    def test_empty_governor_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(governors=())
