"""Tests for the sprint device, fleet simulator, and serving metrics."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pacing import SprintPacer
from repro.traffic.arrivals import DeterministicArrivals, PoissonArrivals
from repro.traffic.device import SprintDevice
from repro.traffic.fleet import DISPATCH_POLICIES, FleetSimulator
from repro.traffic.metrics import latency_percentiles, slo_attainment, summarize
from repro.traffic.request import FixedService, Request, generate_requests


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_default()


def periodic_requests(interarrival_s: float, sustained_s: float, n: int):
    return generate_requests(
        DeterministicArrivals(interarrival_s), FixedService(sustained_s), n, seed=0
    )


class TestSprintDevice:
    def test_first_request_sprints(self, config):
        device = SprintDevice(config)
        served = device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
        assert served.sprinted
        assert served.service_time_s == pytest.approx(0.5)
        assert served.latency_s == served.service_time_s

    def test_back_to_back_requests_see_depleted_budget(self, config):
        """A second large request on a hot device must not get the full sprint.

        A 10 s task deposits ~15 J against the ~19.7 J paper budget, so the
        second of two back-to-back tasks can only sprint partially.
        """
        device = SprintDevice(config)
        first = device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=10.0))
        second = device.serve(Request(index=1, arrival_s=1.1, sustained_time_s=10.0))
        assert first.service_time_s == pytest.approx(1.0)
        assert second.service_time_s > first.service_time_s
        assert second.stored_heat_before_j > 0

    def test_no_sprint_device_runs_sustained(self, config):
        device = SprintDevice(config, sprint_enabled=False)
        served = device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
        assert not served.sprinted
        assert served.service_time_s == pytest.approx(5.0)
        assert served.sprint_fullness == 0.0

    def test_sprint_fullness_distinguishes_partial_sprints(self, config):
        """A partial sprint reports sprinted=True but fullness strictly
        between 0 and 1; a full sprint reports fullness 1."""
        device = SprintDevice(config)
        full = device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=10.0))
        partial = device.serve(Request(index=1, arrival_s=1.1, sustained_time_s=10.0))
        assert full.sprint_fullness == pytest.approx(1.0)
        assert partial.sprinted
        assert 0.0 < partial.sprint_fullness < 1.0

    def test_queueing_behind_earlier_request(self, config):
        device = SprintDevice(config, sprint_enabled=False)
        device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
        late = device.serve(Request(index=1, arrival_s=1.0, sustained_time_s=5.0))
        assert late.queueing_delay_s == pytest.approx(4.0)
        assert late.completed_at_s == pytest.approx(10.0)

    def test_projections_do_not_mutate(self, config):
        device = SprintDevice(config)
        device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
        heat = device.pacer.stored_heat_j
        busy = device.busy_until_s
        device.available_fraction_at(busy + 100.0)
        device.start_time_for(0.0)
        assert device.pacer.stored_heat_j == heat
        assert device.busy_until_s == busy

    def test_available_fraction_recovers_with_idle_time(self, config):
        device = SprintDevice(config)
        device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
        now = device.busy_until_s
        soon = device.available_fraction_at(now)
        later = device.available_fraction_at(now + 60.0)
        assert later > soon

    def test_reset(self, config):
        device = SprintDevice(config)
        device.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
        device.reset()
        assert device.busy_until_s == 0.0
        assert device.requests_served == 0
        assert device.pacer.stored_heat_j == 0.0


class TestPacerProjection:
    def test_stored_heat_at_matches_actual_drain(self, config):
        """The projection must agree with what an actual idle gap produces."""
        pacer = SprintPacer(config, sprint_speedup=10.0)
        pacer.task_arrival(0.0, 5.0)
        projected = pacer.stored_heat_at(pacer.busy_until_s + 3.0)
        outcome = pacer.task_arrival(pacer.busy_until_s + 3.0, 5.0)
        assert outcome.stored_heat_before_j == pytest.approx(projected)

    def test_projection_constant_while_busy(self, config):
        pacer = SprintPacer(config, sprint_speedup=10.0)
        pacer.task_arrival(0.0, 50.0)
        assert pacer.stored_heat_at(0.0) == pacer.stored_heat_j
        assert pacer.stored_heat_at(pacer.busy_until_s) == pacer.stored_heat_j


class TestDegenerateCase:
    def test_one_device_fleet_reproduces_simulate_periodic(self, config):
        """1 device + deterministic arrivals == SprintPacer.simulate_periodic."""
        pacer = SprintPacer(config, sprint_speedup=10.0)
        for interarrival in (2.0, 5.0, 12.0):
            reference = pacer.simulate_periodic(interarrival, 5.0, 15)
            fleet = FleetSimulator(config, n_devices=1, policy="round_robin")
            result = fleet.run(periodic_requests(interarrival, 5.0, 15))
            expected = np.array(
                [o.queueing_delay_s + o.response_time_s for o in reference.outcomes]
            )
            assert np.allclose(result.latencies_s, expected)
            assert result.summary().sprint_fraction == pytest.approx(
                reference.sprint_fraction
            )


class TestFleetSimulator:
    def test_runs_are_deterministic(self, config):
        requests = generate_requests(
            PoissonArrivals(0.3), FixedService(5.0), 60, seed=21
        )
        for policy in DISPATCH_POLICIES:
            a = FleetSimulator(config, 3, policy=policy).run(requests, seed=5)
            b = FleetSimulator(config, 3, policy=policy).run(requests, seed=5)
            assert np.array_equal(a.latencies_s, b.latencies_s), policy

    def test_round_robin_cycles_devices(self, config):
        fleet = FleetSimulator(config, 3, policy="round_robin")
        result = fleet.run(periodic_requests(1.0, 5.0, 9))
        assignments = [s.device_id for s in result.served]
        assert assignments == [0, 1, 2] * 3

    def test_least_loaded_rotates_an_idle_fleet(self, config):
        """When every device is idle, ties must rotate across the fleet
        rather than piling all traffic (and heat) onto device 0."""
        fleet = FleetSimulator(config, 4, policy="least_loaded")
        result = fleet.run(periodic_requests(30.0, 5.0, 12))
        assert [s.device_id for s in result.served] == [0, 1, 2, 3] * 3

    def test_least_loaded_light_load_keeps_sprinting(self, config):
        """Spreading light load across devices lets every request fully
        sprint; a device-0 hotspot would drive p99 toward sustained time."""
        requests = generate_requests(
            PoissonArrivals(0.1), FixedService(5.0), 100, seed=2
        )
        summary = FleetSimulator(config, 4, policy="least_loaded").run(requests).summary()
        assert summary.mean_sprint_fullness > 0.9
        assert summary.p99_latency_s < 2.0

    def test_least_loaded_balances_load(self, config):
        fleet = FleetSimulator(config, 4, policy="least_loaded", sprint_enabled=False)
        result = fleet.run(periodic_requests(0.5, 5.0, 40))
        counts = [d.requests_served for d in result.device_stats]
        assert max(counts) - min(counts) <= 1

    def test_more_devices_cut_tail_latency(self, config):
        requests = generate_requests(
            PoissonArrivals(0.3), FixedService(5.0), 80, seed=2
        )
        small = FleetSimulator(config, 1).run(requests).summary()
        large = FleetSimulator(config, 4).run(requests).summary()
        assert large.p99_latency_s < small.p99_latency_s

    def test_sprinting_beats_no_sprint_on_latency(self, config):
        requests = generate_requests(
            PoissonArrivals(0.1), FixedService(5.0), 50, seed=2
        )
        sprint = FleetSimulator(config, 2, sprint_enabled=True).run(requests)
        sustained = FleetSimulator(config, 2, sprint_enabled=False).run(requests)
        assert sprint.summary().p50_latency_s < sustained.summary().p50_latency_s
        assert sprint.summary().sprint_fraction > 0
        assert sustained.summary().sprint_fraction == 0

    def test_thermal_aware_slack_bounded_under_overload(self, config):
        """A deeply backlogged fleet must not wait longer for budget than a
        sprint can save: a device starting far beyond 10% of the task's
        sustained time is not a candidate, however cool it is."""
        fleet = FleetSimulator(config, 2, policy="thermal_aware")
        # Saturate device 0 and (less) device 1 with a backlog, then send a
        # probe: device 1 frees ~6 s later than device 0 — outside the
        # 0.5 s slack for a 5 s task — so the earlier device must win even
        # though it has far less budget left.
        for i in range(16):
            fleet.devices[i % 2].serve(
                Request(index=i, arrival_s=0.0 + 0.001 * i, sustained_time_s=10.0 if i % 2 == 0 else 9.0)
            )
        free0, free1 = fleet.devices[0].busy_until_s, fleet.devices[1].busy_until_s
        probe = Request(index=99, arrival_s=max(free0, free1) * 0.5, sustained_time_s=5.0)
        choice = DISPATCH_POLICIES["thermal_aware"](
            fleet.devices, probe, np.random.default_rng(0), 0
        )
        assert choice == (0 if free0 < free1 else 1)
        assert abs(free0 - free1) > 0.5  # the scenario really is outside slack

    def test_thermal_aware_no_worse_than_least_loaded_on_tail(self, config):
        requests = generate_requests(
            PoissonArrivals(0.2), FixedService(5.0), 60, seed=11
        )
        thermal = FleetSimulator(config, 2, policy="thermal_aware").run(requests)
        loaded = FleetSimulator(config, 2, policy="least_loaded").run(requests)
        assert (
            thermal.summary().p99_latency_s
            <= loaded.summary().p99_latency_s + 1e-9
        )

    def test_device_stats_account_all_requests(self, config):
        result = FleetSimulator(config, 3).run(periodic_requests(1.0, 5.0, 30))
        assert sum(d.requests_served for d in result.device_stats) == 30

    def test_custom_dispatch_function(self, config):
        def always_zero(devices, request, rng, cursor):
            return 0

        fleet = FleetSimulator(config, 3, policy=always_zero)
        result = fleet.run(periodic_requests(1.0, 5.0, 6))
        assert all(s.device_id == 0 for s in result.served)
        assert result.policy == "always_zero"

    def test_validation(self, config):
        with pytest.raises(ValueError):
            FleetSimulator(config, 0)
        with pytest.raises(ValueError):
            FleetSimulator(config, 1, policy="nope")
        with pytest.raises(ValueError):
            FleetSimulator(config, 1, mode="nope")
        with pytest.raises(ValueError):
            FleetSimulator(config, 1, discipline="nope")
        with pytest.raises(ValueError):
            FleetSimulator(config, 1, queue_bound=-1)

    def test_empty_request_stream_is_a_valid_run(self, config):
        """Sparse arrival processes can materialise zero requests; a sweep
        over them must get an empty result, not a crash."""
        result = FleetSimulator(config, 2).run([])
        assert result.served == ()
        summary = result.summary(slo_s=1.0)
        assert summary.request_count == 0
        assert summary.throughput_rps == 0.0
        assert summary.slo_attainment is None


class TestMetrics:
    def test_percentiles_match_numpy(self):
        latencies = [1.0, 2.0, 3.0, 4.0, 10.0]
        p50, p95, p99 = latency_percentiles(latencies)
        assert p50 == pytest.approx(np.percentile(latencies, 50))
        assert p99 == pytest.approx(np.percentile(latencies, 99))

    def test_slo_attainment(self):
        assert slo_attainment([1.0, 2.0, 3.0, 4.0], 2.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            slo_attainment([1.0], 0.0)
        with pytest.raises(ValueError):
            slo_attainment([], 1.0)

    def test_summary_fields(self, config):
        result = FleetSimulator(config, 2).run(periodic_requests(2.0, 5.0, 20))
        summary = result.summary(slo_s=1.0)
        assert summary.request_count == 20
        assert summary.p50_latency_s <= summary.p95_latency_s <= summary.p99_latency_s
        assert summary.p99_latency_s <= summary.max_latency_s
        assert 0.0 <= summary.sprint_fraction <= 1.0
        assert 0.0 <= summary.mean_sprint_fullness <= summary.sprint_fraction
        assert 0.0 <= summary.slo_attainment <= 1.0
        assert summary.throughput_rps > 0

    def test_summary_of_empty_run_is_zeroed(self):
        summary = summarize([])
        assert summary.request_count == 0
        assert summary.throughput_rps == 0.0
        assert summary.p99_latency_s == 0.0
        assert summary.deadline_miss_fraction == 0.0

    def test_zero_makespan_reports_zero_throughput(self, config):
        """A single hand-built instantaneous request must not yield inf."""
        from repro.traffic.device import ServedRequest

        instant = ServedRequest(
            request=Request(index=0, arrival_s=1.0, sustained_time_s=1.0),
            device_id=0,
            sprinted=False,
            queueing_delay_s=0.0,
            service_time_s=0.0,
            stored_heat_before_j=0.0,
            stored_heat_after_j=0.0,
        )
        summary = summarize([instant])
        assert summary.makespan_s == 0.0
        assert summary.throughput_rps == 0.0

    def test_device_stats_sprint_observability(self, config):
        """DeviceStats exposes sprint counts and mean fullness per device."""
        result = FleetSimulator(config, 2).run(periodic_requests(30.0, 5.0, 8))
        for stats in result.device_stats:
            assert stats.sprints_served == stats.requests_served  # light load
            assert stats.sprint_fullness_mean == pytest.approx(1.0)
        hot = FleetSimulator(config, 1).run(periodic_requests(0.6, 5.0, 10))
        (stats,) = hot.device_stats
        assert 0 < stats.sprints_served <= stats.requests_served
        assert 0.0 < stats.sprint_fullness_mean < 1.0
