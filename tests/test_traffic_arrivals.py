"""Tests for the arrival processes and request generation of repro.traffic."""

import numpy as np
import pytest

from repro.traffic.arrivals import (
    DeterministicArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.traffic.request import (
    FixedService,
    GammaService,
    LognormalService,
    Request,
    SuiteService,
    generate_request_blocks,
    generate_requests,
)

ALL_PROCESSES = [
    DeterministicArrivals(2.0),
    PoissonArrivals(0.5),
    MMPPArrivals.bursty(2.0, mean_burst_s=5.0, mean_idle_s=15.0),
    DiurnalArrivals(0.5, amplitude=0.6, period_s=600.0),
    TraceArrivals((1.0, 0.5, 2.0)),
]


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_times_are_non_decreasing(self, process):
        times = process.times(200, seed=5)
        assert times.shape == (200,)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_same_seed_same_stream(self, process):
        assert np.array_equal(process.times(100, seed=9), process.times(100, seed=9))

    @pytest.mark.parametrize(
        "process",
        [p for p in ALL_PROCESSES if not isinstance(p, (DeterministicArrivals, TraceArrivals))],
        ids=lambda p: type(p).__name__,
    )
    def test_different_seeds_differ(self, process):
        assert not np.array_equal(process.times(100, seed=1), process.times(100, seed=2))

    def test_deterministic_is_periodic_from_zero(self):
        times = DeterministicArrivals(3.0).times(4)
        assert np.allclose(times, [0.0, 3.0, 6.0, 9.0])

    def test_poisson_mean_rate_approximately_right(self):
        times = PoissonArrivals(2.0).times(5000, seed=0)
        empirical = 5000 / times[-1]
        assert empirical == pytest.approx(2.0, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        """The on-off source's inter-arrival CV must exceed the Poisson CV of 1."""
        bursty = MMPPArrivals.bursty(5.0, mean_burst_s=2.0, mean_idle_s=18.0)
        gaps = np.diff(bursty.times(5000, seed=3))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.5

    def test_mmpp_mean_rate_weights_dwell_times(self):
        process = MMPPArrivals(rates_hz=(4.0, 1.0), mean_dwell_s=(1.0, 3.0))
        assert process.mean_rate_hz() == pytest.approx((4.0 + 3.0) / 4.0)

    def test_diurnal_rate_peaks_at_phase(self):
        process = DiurnalArrivals(1.0, amplitude=0.5, period_s=100.0, peak_at_s=25.0)
        assert process.rate_at(25.0) == pytest.approx(1.5)
        assert process.rate_at(75.0) == pytest.approx(0.5)

    def test_diurnal_concentrates_arrivals_near_peak(self):
        process = DiurnalArrivals(1.0, amplitude=0.9, period_s=100.0)
        times = process.times(4000, seed=1)
        phases = np.mod(times, 100.0)
        near_peak = np.mean((phases < 25.0) | (phases > 75.0))
        assert near_peak > 0.6

    def test_trace_cycles_and_truncates(self):
        trace = TraceArrivals((1.0, 2.0), cycle=True)
        assert np.allclose(trace.times(5), [1.0, 3.0, 4.0, 6.0, 7.0])
        strict = TraceArrivals((1.0, 2.0), cycle=False)
        with pytest.raises(ValueError):
            strict.times(3)

    def test_trace_from_array(self):
        trace = TraceArrivals.from_array(np.array([0.5, 0.5]))
        assert trace.interarrivals_s == (0.5, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(rates_hz=(0.0, 0.0), mean_dwell_s=(1.0, 1.0))
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            TraceArrivals(())
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).times(0)


class TestServiceModels:
    def test_fixed_service(self):
        rng = np.random.default_rng(0)
        draws = FixedService(5.0).sample(3, rng)
        assert draws == [(5.0, "fixed", "")] * 3

    def test_gamma_service_mean_and_cv(self):
        rng = np.random.default_rng(0)
        draws = np.array([d[0] for d in GammaService(4.0, cv=0.5).sample(20000, rng)])
        assert draws.mean() == pytest.approx(4.0, rel=0.05)
        assert draws.std() / draws.mean() == pytest.approx(0.5, rel=0.1)
        assert np.all(draws > 0)

    def test_gamma_high_cv_never_draws_zero(self):
        """Tiny gamma shapes can underflow to exact 0.0; draws must stay
        positive so Request construction cannot crash mid-sweep."""
        rng = np.random.default_rng(0)
        draws = np.array([d[0] for d in GammaService(5.0, cv=10.0).sample(200_000, rng)])
        assert np.all(draws > 0)

    def test_gamma_cv_zero_is_fixed(self):
        rng = np.random.default_rng(0)
        draws = GammaService(4.0, cv=0.0).sample(5, rng)
        assert all(d[0] == 4.0 for d in draws)

    def test_lognormal_median(self):
        rng = np.random.default_rng(0)
        draws = np.array([d[0] for d in LognormalService(2.0, sigma=0.8).sample(20000, rng)])
        assert np.median(draws) == pytest.approx(2.0, rel=0.05)

    def test_suite_service_draws_real_workloads(self):
        service = SuiteService(kernels=("sobel", "kmeans"))
        rng = np.random.default_rng(1)
        draws = service.sample(50, rng)
        kernels = {d[1] for d in draws}
        assert kernels <= {"sobel", "kmeans"}
        assert all(d[0] > 0 for d in draws)
        assert all(d[2] in "ABCD" for d in draws)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedService(0.0)
        with pytest.raises(ValueError):
            GammaService(-1.0)
        with pytest.raises(ValueError):
            LognormalService(1.0, sigma=-0.1)
        with pytest.raises(ValueError):
            SuiteService(weights=(1.0, -1.0))
        with pytest.raises(ValueError):
            SuiteService(weights=(0.0, 0.0))

    def test_suite_service_wrong_weight_count_fails_at_construction(self):
        """A weights tuple that doesn't match the suite table fails fast,
        not deep inside a sweep worker on the first sample."""
        with pytest.raises(ValueError, match="suite entries"):
            SuiteService(kernels=("sobel",), weights=(1.0, 2.0))


class TestGenerateRequests:
    def test_request_fields_and_order(self):
        requests = generate_requests(
            PoissonArrivals(1.0), FixedService(2.0), 50, seed=4
        )
        assert len(requests) == 50
        assert [r.index for r in requests] == list(range(50))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(r.sustained_time_s == 2.0 for r in requests)

    def test_seed_reproducibility(self):
        a = generate_requests(PoissonArrivals(1.0), GammaService(3.0), 30, seed=8)
        b = generate_requests(PoissonArrivals(1.0), GammaService(3.0), 30, seed=8)
        assert a == b

    def test_service_model_does_not_perturb_arrivals(self):
        """Arrival and demand streams are split from the seed independently."""
        a = generate_requests(PoissonArrivals(1.0), FixedService(1.0), 30, seed=8)
        b = generate_requests(PoissonArrivals(1.0), GammaService(3.0, cv=1.0), 30, seed=8)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(index=0, arrival_s=-1.0, sustained_time_s=1.0)
        with pytest.raises(ValueError):
            Request(index=0, arrival_s=0.0, sustained_time_s=0.0)
        with pytest.raises(ValueError):
            generate_requests(PoissonArrivals(1.0), FixedService(1.0), 0)


ALL_SERVICES = [
    FixedService(2.0),
    GammaService(3.0, cv=0.0),
    GammaService(3.0, cv=1.5),
    LognormalService(2.0, sigma=0.8),
    SuiteService(kernels=("sobel", "kmeans")),
]

CHUNK_SIZES = [1, 7, 64, 1000]


class TestBlockDeterminism:
    """Chunked block pre-generation is bit-identical to the scalar stream.

    The batched engine fast path consumes pre-generated numpy blocks; these
    properties are what make that safe — any chunk size must reproduce the
    whole-``n`` draw exactly, so streaming a workload never changes it.
    """

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_arrival_blocks_match_scalar_sample(self, process, chunk):
        n = 500
        whole = process.sample(n, np.random.default_rng(11))
        blocks = list(process.sample_blocks(n, np.random.default_rng(11), chunk))
        assert all(b.size <= chunk for b in blocks)
        assert np.array_equal(np.concatenate(blocks), whole)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_arrival_blocks_cover_exactly_n(self, process):
        blocks = list(process.sample_blocks(333, np.random.default_rng(2), 100))
        assert sum(b.size for b in blocks) == 333

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    @pytest.mark.parametrize("service", ALL_SERVICES, ids=lambda s: type(s).__name__)
    def test_service_block_chunks_match_whole_draw(self, service, chunk):
        n = 500
        whole, _, _ = service.sample_block(n, np.random.default_rng(7))
        rng = np.random.default_rng(7)
        pieces = [
            service.sample_block(min(chunk, n - start), rng)[0]
            for start in range(0, n, chunk)
        ]
        assert np.array_equal(np.concatenate(pieces), whole)

    @pytest.mark.parametrize("service", ALL_SERVICES, ids=lambda s: type(s).__name__)
    def test_service_block_matches_scalar_sample(self, service):
        n = 200
        scalar = service.sample(n, np.random.default_rng(3))
        demands, kernels, labels = service.sample_block(n, np.random.default_rng(3))
        assert np.array_equal(demands, np.array([d[0] for d in scalar]))
        for i in range(n):
            kernel = kernels if isinstance(kernels, str) else kernels[i]
            label = labels if isinstance(labels, str) else labels[i]
            assert kernel == scalar[i][1]
            assert label == scalar[i][2]

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_request_blocks_match_generate_requests(self, chunk):
        scalar = generate_requests(
            PoissonArrivals(0.8),
            GammaService(2.0, cv=1.0),
            n=400,
            seed=21,
            deadline_s=9.0,
        )
        blocks = generate_request_blocks(
            PoissonArrivals(0.8),
            GammaService(2.0, cv=1.0),
            n=400,
            seed=21,
            deadline_s=9.0,
            chunk_size=chunk,
        )
        streamed = [r for block in blocks for r in block.to_requests()]
        assert streamed == scalar

    def test_request_blocks_preserve_suite_metadata(self):
        scalar = generate_requests(
            DeterministicArrivals(1.0), SuiteService(), n=60, seed=5
        )
        blocks = generate_request_blocks(
            DeterministicArrivals(1.0), SuiteService(), n=60, seed=5, chunk_size=17
        )
        streamed = [r for block in blocks for r in block.to_requests()]
        assert streamed == scalar
        assert {r.kernel for r in streamed} == {r.kernel for r in scalar}

    def test_request_blocks_validation(self):
        with pytest.raises(ValueError):
            list(generate_request_blocks(PoissonArrivals(1.0), FixedService(1.0), 0))
