"""Tests for the directory coherence cost model."""

import pytest

from repro.arch.coherence import CoherenceConfig, DirectoryProtocol


class TestCoherenceConfig:
    def test_defaults_are_positive(self):
        config = CoherenceConfig()
        assert config.directory_lookup_cycles > 0
        assert config.forward_latency_cycles > 0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            CoherenceConfig(directory_lookup_cycles=-1)
        with pytest.raises(ValueError):
            CoherenceConfig(invalidation_cycles_per_sharer=-0.5)


class TestDirectoryProtocol:
    def setup_method(self):
        self.protocol = DirectoryProtocol()

    def test_single_core_has_no_coherence_cost(self):
        assert self.protocol.coherence_miss_cycles(1) == 0.0
        assert self.protocol.effective_coherence_fraction(0.1, 1) == 0.0

    def test_miss_cost_grows_with_sharers(self):
        two = self.protocol.coherence_miss_cycles(2)
        sixteen = self.protocol.coherence_miss_cycles(16)
        sixty_four = self.protocol.coherence_miss_cycles(64)
        assert 0 < two < sixteen < sixty_four

    def test_miss_cost_includes_directory_and_forward(self):
        config = self.protocol.config
        expected_minimum = config.directory_lookup_cycles + config.forward_latency_cycles
        assert self.protocol.coherence_miss_cycles(2) >= expected_minimum

    def test_fraction_grows_but_is_capped(self):
        base = 0.05
        at_4 = self.protocol.effective_coherence_fraction(base, 4)
        at_64 = self.protocol.effective_coherence_fraction(base, 64)
        assert base <= at_4 <= at_64
        assert at_64 <= 3.0 * base

    def test_fraction_never_exceeds_one(self):
        assert self.protocol.effective_coherence_fraction(0.9, 64) <= 1.0

    def test_zero_base_fraction_stays_zero(self):
        assert self.protocol.effective_coherence_fraction(0.0, 64) == 0.0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            self.protocol.coherence_miss_cycles(0)
        with pytest.raises(ValueError):
            self.protocol.effective_coherence_fraction(1.5, 4)
        with pytest.raises(ValueError):
            self.protocol.effective_coherence_fraction(0.5, 0)
