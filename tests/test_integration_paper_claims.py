"""Cross-cutting integration tests for the paper's headline claims.

These tests exercise the whole stack (kernels → workloads → arch engine →
energy → thermal → runtime) and pin the qualitative conclusions the paper
draws, independent of the per-figure benchmarks.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.modes import SprintMode
from repro.core.simulation import SprintSimulation
from repro.thermal.package import FULL_PCM_PACKAGE
from repro.thermal.transient import max_sprint_duration_s
from repro.workloads.descriptor import (
    MemoryBehaviour,
    ParallelBehaviour,
    WorkloadDescriptor,
)
from repro.workloads.suite import kernel_suite


def workload_of(instructions: float) -> WorkloadDescriptor:
    return WorkloadDescriptor(
        name="claim-check",
        total_instructions=instructions,
        memory=MemoryBehaviour(working_set_bytes=6e6, l1_miss_rate=0.015, l2_miss_rate=0.4),
        parallel=ParallelBehaviour(parallel_fraction=0.99, max_parallelism=512, imbalance=1.04),
    )


class TestThermalDesignClaims:
    def test_sustained_power_is_about_one_watt(self):
        assert 0.8 <= FULL_PCM_PACKAGE.sustainable_power_w <= 1.3

    def test_sprint_duration_shrinks_with_power(self):
        durations = [
            max_sprint_duration_s(FULL_PCM_PACKAGE, power)
            for power in (8.0, 16.0, 32.0)
        ]
        assert durations[0] > durations[1] > durations[2]

    def test_more_pcm_never_shortens_the_sprint(self):
        small = max_sprint_duration_s(FULL_PCM_PACKAGE.with_pcm_mass(0.0015), 16.0)
        medium = max_sprint_duration_s(FULL_PCM_PACKAGE.with_pcm_mass(0.05), 16.0)
        full = max_sprint_duration_s(FULL_PCM_PACKAGE, 16.0)
        assert small <= medium <= full

    def test_sixteen_watt_sprint_is_about_a_second(self):
        assert 0.8 <= max_sprint_duration_s(FULL_PCM_PACKAGE, 16.0) <= 2.0


class TestResponsivenessClaims:
    @pytest.fixture(scope="class")
    def simulation(self):
        return SprintSimulation(SystemConfig.paper_default())

    def test_order_of_magnitude_responsiveness(self, simulation):
        """Paper abstract: sprinting approaches the responsiveness of a 16 W chip."""
        workload = workload_of(2e9)
        baseline = simulation.run_baseline(workload, quantum_s=2e-3)
        sprint = simulation.run(workload)
        assert sprint.speedup_over(baseline) >= 8.0

    def test_sprinting_does_not_improve_sustained_throughput(self, simulation):
        """Sustained performance stays limited by TDP: averaged over the
        sprint plus the cooldown the paper's rule of thumb implies, the
        sprint's average power returns to the sustainable budget."""
        workload = workload_of(2e9)
        sprint = simulation.run(workload)
        cooldown_s = simulation.config.package.estimated_cooldown_s(
            sprint.sprint_duration_s, simulation.config.sprint_power_w
        )
        duty_cycle_power = sprint.total_energy_j / (sprint.total_time_s + cooldown_s)
        assert duty_cycle_power <= 1.3 * simulation.config.sustainable_power_w

    def test_speedup_improves_with_sprint_core_count(self):
        workload = workload_of(1.5e9)
        baseline = SprintSimulation(SystemConfig.paper_default()).run_baseline(
            workload, quantum_s=2e-3
        )
        speedups = []
        for cores in (2, 4, 8, 16):
            config = SystemConfig.paper_default().with_sprint_cores(cores)
            result = SprintSimulation(config).run(workload)
            speedups.append(result.speedup_over(baseline))
        assert all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 2 * speedups[0]

    def test_thermal_limit_respected_for_every_table1_kernel(self):
        simulation = SprintSimulation(SystemConfig.paper_default())
        limit = simulation.config.package.limits.max_junction_c
        for family in kernel_suite().values():
            result = simulation.run(family.workload("A"))
            assert result.peak_junction_c <= limit + 1.0
            assert result.completed


class TestEnergyClaims:
    def test_parallel_sprint_energy_parity_and_dvfs_penalty(self):
        simulation = SprintSimulation(SystemConfig.paper_default())
        workload = workload_of(1.5e9)
        baseline = simulation.run_baseline(workload, quantum_s=2e-3)
        sprint = simulation.run(workload)
        dvfs = simulation.run_dvfs_sprint(workload)
        # Section 8.6: parallel sprinting is near energy-neutral...
        assert sprint.energy_ratio_over(baseline) <= 1.3
        # ...while using the same headroom for voltage boosting costs ~6x.
        assert dvfs.energy_ratio_over(baseline) >= 3.0
        assert dvfs.energy_ratio_over(baseline) <= 8.0


class TestTruncationClaims:
    def test_small_pcm_pushes_work_out_of_the_sprint(self):
        """Section 8.3: with 100x less PCM every workload exhausts the sprint
        and finishes in single-core mode."""
        small = SprintSimulation(SystemConfig.small_pcm())
        full = SprintSimulation(SystemConfig.paper_default())
        workload = workload_of(4e9)
        truncated = small.run(workload)
        sustained_fraction = truncated.metrics.time_in(SprintMode.SUSTAINED)
        assert truncated.sprint_was_truncated
        assert sustained_fraction > truncated.metrics.time_in(SprintMode.SPRINT)
        complete = full.run(workload)
        assert not complete.sprint_was_truncated
        assert complete.sprint_completion_fraction > 0.95
