"""Tests for the in-order core timing model."""

import pytest

from repro.arch.cache import MissRates
from repro.arch.coherence import DirectoryProtocol
from repro.arch.core import CoreTimingModel, CyclesBreakdown
from repro.arch.memory import MemorySystem
from repro.energy.instruction import DEFAULT_MIX, InstructionMix


class TestCyclesBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = CyclesBreakdown(base_cpi=1.0, l2_hit_cpi=0.2, dram_cpi=0.5, coherence_cpi=0.1)
        assert breakdown.total_cpi == pytest.approx(1.8)

    def test_memory_stall_fraction(self):
        breakdown = CyclesBreakdown(base_cpi=1.0, l2_hit_cpi=0.5, dram_cpi=0.5, coherence_cpi=0.0)
        assert breakdown.memory_stall_fraction == pytest.approx(0.5)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            CyclesBreakdown(base_cpi=1.0, l2_hit_cpi=-0.1, dram_cpi=0.0, coherence_cpi=0.0)


class TestCoreTimingModel:
    def setup_method(self):
        self.model = CoreTimingModel()

    def test_no_misses_gives_base_cpi(self):
        breakdown = self.model.cycles_breakdown(
            DEFAULT_MIX, MissRates(0.0, 0.0), dram_latency_cycles=60.0
        )
        assert breakdown.total_cpi == pytest.approx(1.0)

    def test_cpi_is_one_plus_miss_penalties(self):
        # The paper's formulation: CPI = 1 + (miss penalties).
        miss_rates = MissRates(l1_miss_rate=0.1, l2_miss_rate=0.5)
        breakdown = self.model.cycles_breakdown(
            DEFAULT_MIX, miss_rates, dram_latency_cycles=60.0
        )
        memory_fraction = DEFAULT_MIX.memory_fraction
        expected = (
            1.0
            + memory_fraction * 0.1 * 20.0
            + memory_fraction * 0.1 * 0.5 * 60.0
        )
        assert breakdown.total_cpi == pytest.approx(expected)

    def test_coherence_misses_replace_demand_misses(self):
        miss_rates = MissRates(l1_miss_rate=0.1, l2_miss_rate=0.5)
        without = self.model.cycles_breakdown(
            DEFAULT_MIX, miss_rates, dram_latency_cycles=60.0
        )
        with_coherence = self.model.cycles_breakdown(
            DEFAULT_MIX,
            miss_rates,
            dram_latency_cycles=60.0,
            coherence_fraction=0.5,
            coherence_latency_cycles=45.0,
        )
        assert with_coherence.coherence_cpi > 0
        assert with_coherence.dram_cpi < without.dram_cpi

    def test_memory_heavy_mix_stalls_more(self):
        compute_mix = InstructionMix(int_alu=0.7, int_mul=0.05, fp=0.1, load=0.08, store=0.02, branch=0.05)
        memory_mix = InstructionMix(int_alu=0.3, int_mul=0.05, fp=0.1, load=0.35, store=0.15, branch=0.05)
        miss_rates = MissRates(l1_miss_rate=0.1, l2_miss_rate=0.5)
        compute = self.model.cycles_breakdown(compute_mix, miss_rates, 60.0)
        memory = self.model.cycles_breakdown(memory_mix, miss_rates, 60.0)
        assert memory.total_cpi > compute.total_cpi

    def test_instructions_per_second(self):
        breakdown = CyclesBreakdown(base_cpi=2.0, l2_hit_cpi=0.0, dram_cpi=0.0, coherence_cpi=0.0)
        assert self.model.instructions_per_second(1e9, breakdown) == pytest.approx(5e8)

    def test_effective_breakdown_pipeline(self):
        breakdown = self.model.effective_breakdown(
            mix=DEFAULT_MIX,
            intrinsic_l1_miss=0.05,
            intrinsic_l2_miss=0.5,
            working_set_bytes=16 * 1024 * 1024,
            sharers=16,
            frequency_hz=1e9,
            memory=MemorySystem(),
            utilization=0.5,
            protocol=DirectoryProtocol(),
            base_coherence_fraction=0.05,
        )
        assert breakdown.total_cpi > 1.0
        assert breakdown.coherence_cpi > 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            CoreTimingModel(base_cpi=0.0)
        with pytest.raises(ValueError):
            self.model.cycles_breakdown(DEFAULT_MIX, MissRates(0.1, 0.1), -1.0)
        with pytest.raises(ValueError):
            self.model.instructions_per_second(
                0.0, CyclesBreakdown(1.0, 0.0, 0.0, 0.0)
            )
