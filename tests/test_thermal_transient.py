"""Integration tests for sprint/cooldown thermal transients (Figure 4)."""

import numpy as np
import pytest

from repro.thermal.package import FULL_PCM_PACKAGE, SMALL_PCM_PACKAGE
from repro.thermal.transient import (
    ThermalTrace,
    max_sprint_duration_s,
    simulate_constant_power,
    simulate_cooldown,
    simulate_sprint,
    simulate_sprint_and_cooldown,
)


@pytest.fixture(scope="module")
def full_sprint_and_cooldown():
    return simulate_sprint_and_cooldown(FULL_PCM_PACKAGE, sprint_power_w=16.0)


class TestSprintInitiation:
    """Figure 4(a): 16 W sprint on the 150 mg PCM design point."""

    def test_sprint_lasts_about_one_second(self, full_sprint_and_cooldown):
        sprint, _ = full_sprint_and_cooldown
        # The paper reports "a little over 1 s".
        assert 0.9 <= sprint.sprint_duration_s <= 1.8

    def test_sprint_ends_at_max_junction_temperature(self, full_sprint_and_cooldown):
        sprint, _ = full_sprint_and_cooldown
        assert not sprint.sustainable
        assert sprint.trace.peak_junction_c == pytest.approx(
            FULL_PCM_PACKAGE.limits.max_junction_c, abs=1.0
        )

    def test_pcm_fully_melts_by_end_of_sprint(self, full_sprint_and_cooldown):
        sprint, _ = full_sprint_and_cooldown
        assert sprint.final_melt_fraction == pytest.approx(1.0, abs=0.02)

    def test_junction_plateaus_while_melting(self, full_sprint_and_cooldown):
        sprint, _ = full_sprint_and_cooldown
        trace = sprint.trace
        # While the PCM melts, the junction sits near Tmelt + P * R_jp and is
        # nearly flat: measure the plateau at that level.
        plateau_c = (
            FULL_PCM_PACKAGE.melting_point_c
            + 16.0 * FULL_PCM_PACKAGE.junction_to_pcm_k_w
        )
        plateau = trace.plateau_duration(plateau_c, tolerance_c=2.0)
        assert plateau >= 0.5

    def test_temperature_rises_monotonically_under_constant_power(
        self, full_sprint_and_cooldown
    ):
        sprint, _ = full_sprint_and_cooldown
        diffs = np.diff(sprint.trace.junction_c)
        assert np.all(diffs >= -1e-6)

    def test_low_power_sprint_is_sustainable(self):
        result = simulate_sprint(FULL_PCM_PACKAGE, sprint_power_w=0.9, max_duration_s=2.0)
        assert result.sustainable

    def test_small_pcm_sprint_is_roughly_ten_times_shorter(self):
        small = simulate_sprint(SMALL_PCM_PACKAGE, 16.0, max_duration_s=2.0)
        full = simulate_sprint(FULL_PCM_PACKAGE, 16.0, max_duration_s=3.0)
        assert small.sprint_duration_s < full.sprint_duration_s / 5.0

    def test_higher_power_shortens_the_sprint(self):
        lower = simulate_sprint(FULL_PCM_PACKAGE, 8.0, max_duration_s=6.0)
        higher = simulate_sprint(FULL_PCM_PACKAGE, 16.0, max_duration_s=6.0)
        assert higher.sprint_duration_s < lower.sprint_duration_s

    def test_sprint_power_must_be_positive(self):
        with pytest.raises(ValueError):
            simulate_sprint(FULL_PCM_PACKAGE, 0.0)


class TestCooldown:
    """Figure 4(b): post-sprint cooldown."""

    def test_cooldown_reaches_near_ambient_within_30s(self, full_sprint_and_cooldown):
        _, cooldown = full_sprint_and_cooldown
        assert cooldown.time_to_near_ambient_s is not None
        # The paper reports ~24 s; accept the same order of magnitude.
        assert 8.0 <= cooldown.time_to_near_ambient_s <= 30.0

    def test_cooldown_has_freeze_plateau_near_melting_point(
        self, full_sprint_and_cooldown
    ):
        _, cooldown = full_sprint_and_cooldown
        assert cooldown.freeze_plateau_s >= 2.0

    def test_cooldown_is_much_longer_than_the_sprint(self, full_sprint_and_cooldown):
        sprint, cooldown = full_sprint_and_cooldown
        assert cooldown.time_to_near_ambient_s > 5.0 * sprint.sprint_duration_s

    def test_temperature_decreases_overall_during_cooldown(
        self, full_sprint_and_cooldown
    ):
        _, cooldown = full_sprint_and_cooldown
        trace = cooldown.trace
        assert trace.final_junction_c < trace.junction_c[0] - 20.0

    def test_cooldown_from_cold_network_is_immediate(self):
        network = FULL_PCM_PACKAGE.build()
        result = simulate_cooldown(network, FULL_PCM_PACKAGE, duration_s=1.0)
        assert result.time_to_near_ambient_s == pytest.approx(0.0)


class TestConstantPowerDriver:
    def test_stop_at_junction_temperature(self):
        network = FULL_PCM_PACKAGE.build()
        trace = simulate_constant_power(
            network, power_w=16.0, duration_s=5.0, stop_at_junction_c=60.0
        )
        assert trace.junction_c[-1] >= 60.0
        assert trace.duration_s < 5.0

    def test_runs_full_duration_without_stop_condition(self):
        network = FULL_PCM_PACKAGE.build()
        trace = simulate_constant_power(network, power_w=1.0, duration_s=0.5)
        assert trace.duration_s == pytest.approx(0.5, abs=0.01)


class TestMaxSprintDuration:
    def test_matches_package_estimate_within_factor_two(self):
        measured = max_sprint_duration_s(FULL_PCM_PACKAGE, 16.0)
        estimate = FULL_PCM_PACKAGE.estimated_sprint_duration_s(16.0)
        assert measured == pytest.approx(estimate, rel=1.0)


class TestThermalTrace:
    def make_trace(self):
        time = np.linspace(0.0, 10.0, 101)
        temps = np.concatenate([np.linspace(25, 70, 51), np.linspace(70, 30, 50)])
        return ThermalTrace(time_s=time, junction_c=temps)

    def test_peak_and_final(self):
        trace = self.make_trace()
        assert trace.peak_junction_c == pytest.approx(70.0)
        assert trace.final_junction_c == pytest.approx(30.0)

    def test_time_to_reach(self):
        trace = self.make_trace()
        assert trace.time_to_reach(70.0) == pytest.approx(5.0, abs=0.2)
        assert trace.time_to_reach(100.0) is None

    def test_time_above(self):
        trace = self.make_trace()
        assert trace.time_above(25.0) == pytest.approx(10.0, abs=0.2)
        assert 0.0 < trace.time_above(60.0) < 5.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ThermalTrace(time_s=np.array([0.0, 1.0]), junction_c=np.array([25.0]))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            ThermalTrace(time_s=np.array([]), junction_c=np.array([]))

    def test_time_to_cool_within(self):
        trace = self.make_trace()
        cooled = trace.time_to_cool_within(ambient_c=25.0, tolerance_c=10.0)
        assert cooled is not None
        assert cooled > 5.0
