"""Property/fuzz suite: laws every fleet run must obey, whatever the knobs.

Hypothesis draws randomized scenario specs across the full configuration
cross-product — every dispatch policy × both engine modes × all queue
disciplines and bounds × every governor policy × every thermal backend ×
all stochastic arrival/service families — and asserts the invariants no
configuration may break:

* **Conservation** — every request that arrived is accounted for exactly
  once at the horizon: served + rejected + abandoned partition the
  arrivals, with nothing in flight after the engine's final event.
* **Causality / non-decreasing time** — no request starts before it
  arrives, completes before it starts, or completes after the run's
  horizon; each device's serving intervals never overlap (completions on
  a device are non-decreasing in start order).
* **No leaked grants** — a governed run returns every power grant: the
  governor ends with zero active grants, and its ledger is internally
  consistent.

The suite takes its example count from the hypothesis profile
(``tests/conftest.py``): the fast PR gate runs a modest number, the
nightly ``thorough`` profile fuzzes an order of magnitude deeper.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.config import SystemConfig
from repro.traffic import (
    TOPOLOGY_DISPATCH,
    FixedService,
    FleetSimulator,
    GammaService,
    GovernorSpec,
    RackSpec,
    RowSpec,
    Scenario,
    ThermalSpec,
    TopologySpec,
)
from repro.traffic.arrivals import (
    DeterministicArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)

CONFIG = SystemConfig.paper_default()


def arrival_processes():
    rates = st.floats(min_value=0.05, max_value=2.0)
    return st.one_of(
        rates.map(PoissonArrivals),
        rates.map(lambda r: DeterministicArrivals(1.0 / r)),
        rates.map(
            lambda r: MMPPArrivals.bursty(
                burst_rate_hz=4.0 * r, mean_burst_s=3.0 / r, mean_idle_s=9.0 / r
            )
        ),
        rates.map(
            lambda r: DiurnalArrivals(base_rate_hz=r, amplitude=0.8, period_s=300.0)
        ),
    )


def service_models():
    means = st.floats(min_value=0.5, max_value=8.0)
    return st.one_of(
        means.map(FixedService),
        st.tuples(means, st.floats(min_value=0.1, max_value=1.5)).map(
            lambda mc: GammaService(mean_s=mc[0], cv=mc[1])
        ),
    )


def governors():
    return st.one_of(
        st.just(GovernorSpec.unlimited()),
        st.integers(min_value=1, max_value=3).map(GovernorSpec.greedy),
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.floats(min_value=10.0, max_value=60.0),
            st.floats(min_value=1.0, max_value=30.0),
        ).map(lambda t: GovernorSpec.greedy(t[0], trip_headroom_w=t[1], penalty_s=t[2])),
        st.tuples(
            st.floats(min_value=0.1, max_value=2.0),
            st.integers(min_value=1, max_value=8),
        ).map(lambda t: GovernorSpec.token_bucket(*t)),
        st.tuples(
            st.floats(min_value=10.0, max_value=60.0),
            st.floats(min_value=0.0, max_value=30.0),
        ).map(lambda t: GovernorSpec.cooperative(t[0], penalty_s=t[1])),
    )


def sliceable_governors():
    """Budgets legal at row/datacenter level: their window capacity must
    partition exactly across rack shards (token_bucket's refill does not)."""
    return st.one_of(
        st.just(GovernorSpec.unlimited()),
        st.integers(min_value=1, max_value=4).map(GovernorSpec.greedy),
        st.tuples(
            st.floats(min_value=10.0, max_value=60.0),
            st.floats(min_value=0.0, max_value=30.0),
        ).map(lambda t: GovernorSpec.cooperative(t[0], penalty_s=t[1])),
    )


@st.composite
def topologies(draw):
    """A small random rack/row/datacenter tree across the legal shapes:
    1-2 rows of 1-2 racks of 1-3 devices, any governor (incl. token_bucket)
    at rack level, sliceable governors above, both dispatch policies."""
    rows = tuple(
        RowSpec(
            racks=tuple(
                RackSpec(
                    n_devices=draw(st.integers(min_value=1, max_value=3)),
                    governor=draw(governors()),
                    sprint_enabled=draw(st.one_of(st.none(), st.booleans())),
                )
                for _ in range(draw(st.integers(min_value=1, max_value=2)))
            ),
            governor=draw(sliceable_governors()),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    )
    return TopologySpec(
        rows=rows,
        governor=draw(sliceable_governors()),
        window_s=draw(st.sampled_from([15.0, 30.0, 60.0])),
        dispatch=draw(st.sampled_from(TOPOLOGY_DISPATCH)),
    )


@st.composite
def scenarios(draw):
    """A full fleet scenario across every configuration axis."""
    mode = draw(st.sampled_from(["immediate", "central_queue"]))
    return Scenario(
        arrivals=draw(arrival_processes()),
        service=draw(service_models()),
        n_requests=draw(st.integers(min_value=3, max_value=25)),
        n_devices=draw(st.integers(min_value=1, max_value=4)),
        policy=draw(
            st.sampled_from(["round_robin", "least_loaded", "thermal_aware", "random"])
        ),
        mode=mode,
        discipline=draw(st.sampled_from(["fifo", "edf"])),
        queue_bound=(
            draw(st.one_of(st.none(), st.integers(min_value=0, max_value=5)))
            if mode == "central_queue"
            else None
        ),
        governor=draw(governors()),
        thermal=draw(
            st.sampled_from([ThermalSpec.linear(), ThermalSpec.rc(), ThermalSpec.pcm()])
        ),
        sprint_speedup=draw(st.floats(min_value=1.5, max_value=10.0)),
        sprint_enabled=draw(st.booleans()),
        refuse_partial_sprints=draw(st.booleans()),
        deadline_s=draw(st.one_of(st.none(), st.floats(min_value=2.0, max_value=40.0))),
    )


class TestFleetInvariants:
    @given(scenario=scenarios(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_conservation_and_causality(self, scenario, seed):
        fleet = scenario.build_fleet(CONFIG)
        requests = scenario.requests(seed)
        result = fleet.run(requests, seed=seed)

        # Conservation: every arrival is accounted for exactly once, and
        # nothing is still in flight at the horizon.
        fates = (
            [s.request.index for s in result.served]
            + [r.index for r in result.rejected]
            + [r.index for r in result.abandoned]
        )
        assert sorted(fates) == list(range(scenario.n_requests))

        # Causality and non-decreasing time along every request's life.
        horizon = result.horizon_s
        for served in result.served:
            start = served.request.arrival_s + served.queueing_delay_s
            assert served.queueing_delay_s >= 0.0
            assert served.service_time_s > 0.0
            assert start >= served.request.arrival_s
            assert served.completed_at_s >= start
            assert served.completed_at_s <= horizon + 1e-9

        # Devices serve serially: per-device intervals never overlap.
        by_device: dict[int, list] = {}
        for served in result.served:
            by_device.setdefault(served.device_id, []).append(served)
        for batch in by_device.values():
            batch.sort(key=lambda s: s.request.arrival_s + s.queueing_delay_s)
            for earlier, later in zip(batch, batch[1:]):
                later_start = later.request.arrival_s + later.queueing_delay_s
                assert later_start >= earlier.completed_at_s - 1e-9

        # Rejection needs a bounded central queue; abandonment a deadline.
        if scenario.mode == "immediate" or scenario.queue_bound is None:
            assert not result.rejected
        if scenario.deadline_s is None:
            assert not result.abandoned

        # Per-device accounting matches the served set.
        assert sum(d.requests_served for d in result.device_stats) == len(result.served)

        # A sprint-disabled fleet never sprints, whatever the governor says.
        if not scenario.sprint_enabled:
            assert not any(s.sprinted for s in result.served)

    @given(scenario=scenarios(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_no_leaked_grants(self, scenario, seed):
        fleet = scenario.build_fleet(CONFIG)
        result = fleet.run(scenario.requests(seed), seed=seed)

        # Every acquired grant must be back with the governor at the end:
        # the engine schedules GRANT_RELEASE at each sprint's completion
        # and returns unused grants immediately, so a leak would strand
        # budget and poison any later accounting.
        assert fleet.governor.active_grants == 0

        stats = result.governor_stats
        if stats is None:
            # Only the bypassed unlimited governor produces no ledger.
            assert fleet.governor.is_unlimited
            return
        assert stats.sprints_granted >= 0
        assert stats.sprints_denied >= 0
        assert stats.grants_released_unused <= stats.sprints_granted
        assert stats.breaker_trips == len(stats.trip_times_s)
        assert list(stats.trip_times_s) == sorted(stats.trip_times_s)
        assert 0 <= stats.peak_concurrent_sprints <= stats.sprints_granted
        assert stats.time_at_cap_s >= 0.0
        # Sprinted-served requests all held a grant.
        sprinted = sum(1 for s in result.served if s.sprinted)
        assert sprinted <= stats.sprints_granted

    @given(scenario=scenarios(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_summary_consistent_with_result(self, scenario, seed):
        fleet = scenario.build_fleet(CONFIG)
        result = fleet.run(scenario.requests(seed), seed=seed)
        summary = result.summary(slo_s=scenario.slo_s)

        assert summary.request_count == len(result.served)
        assert summary.rejected_count == len(result.rejected)
        assert summary.abandoned_count == len(result.abandoned)
        assert summary.offered_count == scenario.n_requests
        assert 0.0 <= summary.sprint_fraction <= 1.0
        assert 0.0 <= summary.mean_sprint_fullness <= 1.0
        if summary.request_count:
            assert summary.p50_latency_s <= summary.p95_latency_s + 1e-12
            assert summary.p95_latency_s <= summary.p99_latency_s + 1e-12
            assert summary.p99_latency_s <= summary.max_latency_s + 1e-12
            assert summary.makespan_s >= 0.0


class TestTopologyInvariants:
    """The flat-fleet laws survive hierarchical budgets and sharding."""

    @given(
        topology=topologies(),
        arrivals=arrival_processes(),
        service=service_models(),
        n_requests=st.integers(min_value=3, max_value=20),
        workers=st.integers(min_value=1, max_value=3),
        deadline_s=st.one_of(st.none(), st.floats(min_value=2.0, max_value=40.0)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_sharded_conservation_and_ledger(
        self, topology, arrivals, service, n_requests, workers, deadline_s, seed
    ):
        scenario = Scenario(
            arrivals=arrivals,
            service=service,
            n_requests=n_requests,
            topology=topology,
            shard_workers=workers,
            deadline_s=deadline_s,
        )
        fleet = scenario.build_fleet(CONFIG)
        result = fleet.run(scenario.requests(seed), seed=seed)

        # Conservation holds through rack routing, window barriers, and
        # the shard merge: fates partition the arrivals exactly.  (A rack
        # job ending with grants in flight raises inside run_sharded, so
        # completing at all is the no-leaked-grants assertion.)
        fates = (
            [s.request.index for s in result.served]
            + [r.index for r in result.rejected]
            + [r.index for r in result.abandoned]
        )
        assert sorted(fates) == list(range(n_requests))
        assert not result.rejected  # no bounded central queue configured
        if deadline_s is None:
            assert not result.abandoned

        # Stable hierarchical identity: device stats keep tree order and
        # row/rack-qualified labels whatever the shard count.
        assert [d.device_id for d in result.device_stats] == list(
            range(topology.total_devices)
        )
        assert [d.device_label for d in result.device_stats] == list(
            topology.device_labels()
        )
        assert sum(d.requests_served for d in result.device_stats) == len(result.served)

        # Per-level ledgers stay internally consistent with the cascade
        # aggregate: every cascade denial is attributed to >=1 level.
        stats = result.topology_stats
        if stats is not None:
            assert len(stats.racks) == len(stats.rack_paths)
            assert stats.rack_paths == topology.rack_paths
            denied = stats.denied_by_level()
            assert all(count >= 0 for count in denied.values())
            assert stats.overall.sprints_denied <= sum(denied.values())
            # Only sprints in racks whose cascade actually governs need a
            # grant: a rack whose own, row, and datacenter budgets are all
            # unlimited sprints through the engine's unlimited bypass and
            # never touches any ledger.
            governed_paths = {
                path
                for path, (row, rack) in zip(
                    topology.rack_paths,
                    (
                        (row, rack)
                        for row in topology.rows
                        for rack in row.racks
                    ),
                )
                if not (
                    rack.governor.policy == "unlimited"
                    and row.governor.policy == "unlimited"
                    and topology.governor.policy == "unlimited"
                )
            }
            labels = topology.device_labels()
            governed_sprints = sum(
                1
                for s in result.served
                if s.sprinted
                and labels[s.device_id].rsplit("/", 1)[0] in governed_paths
            )
            assert governed_sprints <= stats.overall.sprints_granted

    @given(
        topology=topologies(),
        arrivals=arrival_processes(),
        service=service_models(),
        n_requests=st.integers(min_value=3, max_value=15),
        workers=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_results_invariant_under_shard_workers(
        self, topology, arrivals, service, n_requests, workers, seed
    ):
        # The speed knob must not be a physics knob: arrivals are routed
        # and parent budgets sliced before any worker runs, so a serial
        # and a fanned-out run are bit-identical.
        def run(shard_workers):
            scenario = Scenario(
                arrivals=arrivals,
                service=service,
                n_requests=n_requests,
                topology=topology,
                shard_workers=shard_workers,
            )
            return scenario.build_fleet(CONFIG).run(
                scenario.requests(seed), seed=seed
            )

        serial, fanned = run(1), run(workers)
        assert serial.summary(slo_s=2.0).to_dict() == fanned.summary(slo_s=2.0).to_dict()
        assert [
            (d.device_id, d.device_label, d.requests_served, d.sprints_served)
            for d in serial.device_stats
        ] == [
            (d.device_id, d.device_label, d.requests_served, d.sprints_served)
            for d in fanned.device_stats
        ]
