"""Tests for the sprint policy and the system configuration."""

import pytest

from repro.core.config import SystemConfig
from repro.core.modes import ExecutionMode, TerminationAction
from repro.core.policy import PAPER_POLICY, SprintPolicy


class TestSprintPolicy:
    def test_paper_design_point(self):
        assert PAPER_POLICY.sprint_cores == 16
        assert PAPER_POLICY.sustainable_cores == 1
        assert PAPER_POLICY.power_headroom == pytest.approx(16.0)
        assert PAPER_POLICY.termination is TerminationAction.MIGRATE_TO_SINGLE_CORE

    def test_sprint_power(self):
        assert PAPER_POLICY.sprint_power_w(1.0) == pytest.approx(16.0)

    def test_cores_to_activate_respects_threads(self):
        assert PAPER_POLICY.cores_to_activate(4) == 4
        assert PAPER_POLICY.cores_to_activate(64) == 16
        assert PAPER_POLICY.cores_to_activate(1) == 1

    def test_should_sprint_needs_parallelism_and_budget(self):
        assert PAPER_POLICY.should_sprint(16, budget_fraction=1.0)
        assert not PAPER_POLICY.should_sprint(1, budget_fraction=1.0)
        assert not PAPER_POLICY.should_sprint(16, budget_fraction=0.01)

    def test_dvfs_sprint_point_obeys_cube_root_rule(self):
        point = PAPER_POLICY.dvfs_sprint_point()
        assert point.frequency_hz == pytest.approx(16 ** (1 / 3) * 1e9, rel=0.01)
        assert point.dynamic_power_scale(PAPER_POLICY.dvfs.nominal) == pytest.approx(
            16.0, rel=0.01
        )

    def test_throttled_point_divides_frequency_by_active_cores(self):
        point = PAPER_POLICY.throttled_point(16)
        assert point.frequency_hz == pytest.approx(1e9 / 16)

    def test_post_sprint_cores_depends_on_termination(self):
        assert PAPER_POLICY.post_sprint_cores(16) == 1
        throttling = PAPER_POLICY.with_termination(TerminationAction.HARDWARE_THROTTLE)
        assert throttling.post_sprint_cores(16) == 16

    def test_execution_cores_by_mode(self):
        assert PAPER_POLICY.execution_cores(ExecutionMode.PARALLEL_SPRINT) == 16
        assert PAPER_POLICY.execution_cores(ExecutionMode.DVFS_SPRINT) == 1
        assert PAPER_POLICY.execution_cores(ExecutionMode.SUSTAINED_SINGLE_CORE) == 1

    def test_variants(self):
        assert PAPER_POLICY.with_sprint_cores(64).sprint_cores == 64
        assert PAPER_POLICY.sprint_cores == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SprintPolicy(sprint_cores=0)
        with pytest.raises(ValueError):
            SprintPolicy(sprint_cores=2, sustainable_cores=4)
        with pytest.raises(ValueError):
            SprintPolicy(min_budget_fraction=1.5)
        with pytest.raises(ValueError):
            PAPER_POLICY.cores_to_activate(0)
        with pytest.raises(ValueError):
            PAPER_POLICY.should_sprint(4, budget_fraction=2.0)
        with pytest.raises(ValueError):
            PAPER_POLICY.sprint_power_w(0.0)


class TestSystemConfig:
    def test_paper_default_headline_numbers(self):
        config = SystemConfig.paper_default()
        assert config.machine.n_cores == 16
        assert config.package.pcm_mass_g == pytest.approx(0.150)
        assert config.sprint_power_w == pytest.approx(16.0)
        # The package sustains about one watt.
        assert 0.8 <= config.sustainable_power_w <= 1.3
        assert 12.0 <= config.power_headroom <= 20.0

    def test_small_pcm_variant(self):
        config = SystemConfig.small_pcm()
        assert config.package.pcm_mass_g == pytest.approx(0.0015)

    def test_activation_delay_matches_paper_ramp(self):
        config = SystemConfig.paper_default()
        assert config.activation_delay_s() == pytest.approx(128e-6, rel=0.05)

    def test_power_source_feasible(self):
        assert SystemConfig.paper_default().power_source_feasible()

    def test_with_sprint_cores_grows_machine_if_needed(self):
        config = SystemConfig.paper_default().with_sprint_cores(64)
        assert config.policy.sprint_cores == 64
        assert config.machine.n_cores == 64

    def test_with_memory_bandwidth_scale(self):
        config = SystemConfig.paper_default().with_memory_bandwidth_scale(2.0)
        assert config.machine.memory.peak_bandwidth_bytes_s == pytest.approx(16e9)

    def test_with_quantum(self):
        assert SystemConfig.paper_default().with_quantum(5e-3).quantum_s == 5e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(quantum_s=0.0)
        with pytest.raises(ValueError):
            SystemConfig(policy=PAPER_POLICY.with_sprint_cores(64))
