"""Tests for the sprint-pacing model (repeated sprints on bursty task streams)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.core.pacing import SprintPacer


@pytest.fixture
def pacer():
    return SprintPacer(SystemConfig.paper_default(), sprint_speedup=10.0)


class TestReservoirArithmetic:
    def test_capacity_matches_package_budget(self, pacer):
        expected = pacer.config.package.sprint_budget_j(pacer.config.sprint_power_w)
        assert pacer.capacity_j == pytest.approx(expected)

    def test_drain_rate_is_sustainable_power(self, pacer):
        assert pacer.drain_power_w == pytest.approx(
            pacer.config.sustainable_power_w
        )

    def test_sprint_heat_scales_with_task_length(self, pacer):
        assert pacer.sprint_heat_for(2.0) == pytest.approx(2 * pacer.sprint_heat_for(1.0))
        assert pacer.sprint_heat_for(0.0) == 0.0

    def test_minimum_interarrival_matches_cooldown_rule(self, pacer):
        """The paper's rule: cooldown = sprint duration x (sprint power / TDP)."""
        sustained_time = 5.0
        sprint_time = sustained_time / pacer.sprint_speedup
        rule_of_thumb = sprint_time * (
            (pacer.config.sprint_power_w - pacer.drain_power_w) / pacer.drain_power_w
        )
        assert pacer.minimum_interarrival_s(sustained_time) == pytest.approx(rule_of_thumb)

    def test_validation(self):
        with pytest.raises(ValueError):
            SprintPacer(SystemConfig.paper_default(), sprint_speedup=0.5)
        pacer = SprintPacer(SystemConfig.paper_default())
        with pytest.raises(ValueError):
            pacer.sprint_heat_for(-1.0)


class TestTaskSequences:
    def test_single_task_sprints_from_cold(self, pacer):
        outcome = pacer.task_arrival(0.0, sustained_time_s=5.0)
        assert outcome.sprinted
        assert outcome.response_time_s == pytest.approx(0.5)
        assert outcome.stored_heat_before_j == 0.0
        assert outcome.stored_heat_after_j > 0.0

    def test_back_to_back_tasks_eventually_lose_the_sprint(self, pacer):
        summary = pacer.simulate_periodic(
            interarrival_s=0.6, sustained_time_s=5.0, tasks=12
        )
        # The first task always sprints; with arrivals far faster than the
        # cooldown the budget runs dry and later tasks degrade.
        assert summary.outcomes[0].sprinted
        assert summary.worst_response_s > summary.outcomes[0].response_time_s
        assert summary.sprint_fraction < 1.0 or summary.worst_response_s > 0.5 * 1.01

    def test_widely_spaced_tasks_always_sprint(self, pacer):
        spacing = pacer.minimum_interarrival_s(5.0) * 1.1 + 0.5
        summary = pacer.simulate_periodic(
            interarrival_s=spacing, sustained_time_s=5.0, tasks=10
        )
        assert summary.sprint_fraction == pytest.approx(1.0)
        assert summary.worst_response_s == pytest.approx(0.5, rel=0.01)

    def test_refusing_partial_sprints_falls_back_to_sustained(self):
        pacer = SprintPacer(
            SystemConfig.paper_default(), sprint_speedup=10.0, refuse_partial_sprints=True
        )
        summary = pacer.simulate_periodic(
            interarrival_s=0.6, sustained_time_s=5.0, tasks=8
        )
        refused = [o for o in summary.outcomes if not o.sprinted]
        assert refused
        assert all(o.response_time_s == pytest.approx(5.0) for o in refused)

    def test_idle_time_drains_the_reservoir(self, pacer):
        first = pacer.task_arrival(0.0, sustained_time_s=5.0, index=0)
        long_gap = pacer.minimum_interarrival_s(5.0) * 2
        second = pacer.task_arrival(first.completed_at_s + long_gap, 5.0, index=1)
        assert second.stored_heat_before_j == pytest.approx(0.0, abs=1e-9)
        assert second.sprinted

    def test_reset(self, pacer):
        pacer.task_arrival(0.0, sustained_time_s=5.0)
        pacer.reset()
        assert pacer.stored_heat_j == 0.0
        assert pacer.available_fraction == pytest.approx(1.0)

    def test_out_of_order_arrivals_rejected(self, pacer):
        pacer.task_arrival(1.0, sustained_time_s=1.0)
        with pytest.raises(ValueError):
            pacer.task_arrival(0.5, sustained_time_s=1.0)

    def test_invalid_simulation_parameters(self, pacer):
        with pytest.raises(ValueError):
            pacer.simulate_periodic(0.0, 5.0, 3)
        with pytest.raises(ValueError):
            pacer.simulate_periodic(1.0, 5.0, 0)
        with pytest.raises(ValueError):
            pacer.task_arrival(0.0, sustained_time_s=0.0)


class TestPacingSummaryParity:
    """PacingSummary matches TrafficSummary's percentile vocabulary."""

    def test_percentiles_match_numpy_linear_interpolation(self, pacer):
        summary = pacer.simulate_periodic(
            interarrival_s=0.8, sustained_time_s=5.0, tasks=15
        )
        responses = [o.response_time_s for o in summary.outcomes]
        assert summary.p95_response_s == pytest.approx(
            float(np.percentile(responses, 95.0))
        )
        assert summary.p99_response_s == pytest.approx(
            float(np.percentile(responses, 99.0))
        )
        assert summary.p95_response_s <= summary.p99_response_s
        assert summary.p99_response_s <= summary.worst_response_s

    def test_uniform_stream_has_flat_percentiles(self, pacer):
        spacing = pacer.minimum_interarrival_s(5.0) * 1.2 + 0.5
        summary = pacer.simulate_periodic(spacing, 5.0, tasks=10)
        assert summary.p95_response_s == pytest.approx(0.5, rel=0.01)
        assert summary.p99_response_s == pytest.approx(0.5, rel=0.01)

    def test_no_sprint_baseline_runs_everything_sustained(self, pacer):
        summary = pacer.simulate_periodic(
            interarrival_s=1.0, sustained_time_s=5.0, tasks=8, allow_sprint=False
        )
        assert summary.sprint_fraction == 0.0
        assert all(o.response_time_s == pytest.approx(5.0) for o in summary.outcomes)
        assert summary.p99_response_s == pytest.approx(5.0)
        assert pacer.stored_heat_j == 0.0  # nothing was ever deposited

    def test_no_sprint_baseline_brackets_the_sprinting_run(self, pacer):
        sprinting = pacer.simulate_periodic(2.0, 5.0, tasks=10)
        baseline = pacer.simulate_periodic(2.0, 5.0, tasks=10, allow_sprint=False)
        assert sprinting.average_response_s <= baseline.average_response_s
        assert sprinting.p99_response_s <= baseline.p99_response_s


class TestExecuteAt:
    def test_task_arrival_is_execute_at_from_max_of_arrival_and_clock(self, pacer):
        """task_arrival must stay a thin wrapper: same outcome as calling the
        engine-facing primitive at the resolved start time."""
        reference = SprintPacer(SystemConfig.paper_default(), sprint_speedup=10.0)
        for arrival, task in [(0.0, 5.0), (0.2, 8.0), (3.0, 2.0), (30.0, 5.0)]:
            via_arrival = pacer.task_arrival(arrival, task)
            start = max(arrival, reference.busy_until_s)
            via_execute = reference.execute_at(start, task, arrival_s=arrival)
            assert via_arrival == via_execute

    def test_execute_at_defaults_to_no_queueing_delay(self, pacer):
        outcome = pacer.execute_at(4.0, 5.0)
        assert outcome.arrival_s == 4.0
        assert outcome.queueing_delay_s == 0.0

    def test_execute_at_rejects_start_inside_busy_period(self, pacer):
        pacer.execute_at(0.0, 50.0)
        with pytest.raises(ValueError):
            pacer.execute_at(pacer.busy_until_s - 1.0, 5.0)
        with pytest.raises(ValueError):
            pacer.execute_at(pacer.busy_until_s, 0.0)

    def test_execute_at_advances_the_arrival_watermark(self, pacer):
        """Mixing entry points must not defeat task_arrival's in-order
        guard: after an execute_at at t=100, an arrival at t=5 is late."""
        pacer.execute_at(100.0, 5.0)
        with pytest.raises(ValueError):
            pacer.task_arrival(5.0, 5.0)

    def test_execute_at_drains_idle_gap(self, pacer):
        first = pacer.execute_at(0.0, 5.0)
        gap = pacer.minimum_interarrival_s(5.0) * 2
        second = pacer.execute_at(pacer.busy_until_s + gap, 5.0)
        assert first.stored_heat_after_j > 0
        assert second.stored_heat_before_j == pytest.approx(0.0, abs=1e-9)


class TestPacingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        interarrival=st.floats(min_value=0.1, max_value=60.0),
        task_time=st.floats(min_value=0.5, max_value=10.0),
        tasks=st.integers(min_value=1, max_value=25),
    )
    def test_stored_heat_bounded_and_responses_bracketed(
        self, interarrival, task_time, tasks
    ):
        pacer = SprintPacer(SystemConfig.paper_default(), sprint_speedup=10.0)
        summary = pacer.simulate_periodic(interarrival, task_time, tasks)
        sprint_time = task_time / pacer.sprint_speedup
        for outcome in summary.outcomes:
            assert 0.0 <= outcome.stored_heat_after_j <= pacer.capacity_j + 1e-9
            assert sprint_time - 1e-9 <= outcome.response_time_s <= task_time + 1e-9
        assert 0.0 <= summary.sprint_fraction <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(task_time=st.floats(min_value=0.5, max_value=10.0))
    def test_spacing_above_minimum_sustains_full_sprints(self, task_time):
        pacer = SprintPacer(SystemConfig.paper_default(), sprint_speedup=10.0)
        spacing = pacer.minimum_interarrival_s(task_time) * 1.05 + task_time / 10.0
        summary = pacer.simulate_periodic(spacing, task_time, tasks=8)
        assert summary.sprint_fraction == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=40.0), min_size=1, max_size=12
        ),
        task_times=st.lists(
            st.floats(min_value=0.2, max_value=10.0), min_size=12, max_size=12
        ),
    )
    def test_projections_agree_with_mutating_path_after_idle_gaps(
        self, gaps, task_times
    ):
        """``stored_heat_at``/``available_fraction_at`` are what dispatchers
        rank devices by; after any sequence of tasks and arbitrary idle
        gaps they must equal what the mutating path then actually sees."""
        pacer = SprintPacer(SystemConfig.paper_default(), sprint_speedup=10.0)
        for gap, task_time in zip(gaps, task_times):
            start = pacer.busy_until_s + gap
            projected_heat = pacer.stored_heat_at(start)
            projected_fraction = pacer.available_fraction_at(start)
            outcome = pacer.execute_at(start, task_time)
            assert outcome.stored_heat_before_j == pytest.approx(
                projected_heat, abs=1e-12
            )
            assert projected_fraction == pytest.approx(
                1.0 - projected_heat / pacer.capacity_j, abs=1e-12
            )

    @settings(max_examples=40, deadline=None)
    @given(
        probes=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=8
        )
    )
    def test_projections_never_mutate(self, probes):
        pacer = SprintPacer(SystemConfig.paper_default(), sprint_speedup=10.0)
        pacer.task_arrival(0.0, 5.0)
        heat, clock = pacer.stored_heat_j, pacer.busy_until_s
        for probe in probes:
            pacer.stored_heat_at(probe)
            pacer.available_fraction_at(probe)
        assert pacer.stored_heat_j == heat
        assert pacer.busy_until_s == clock
