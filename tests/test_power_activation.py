"""Unit tests for core activation schedules."""

import pytest

from repro.power.activation import (
    PAPER_ABRUPT,
    PAPER_FAST_RAMP,
    PAPER_SLOW_RAMP,
    AbruptActivation,
    LinearRampActivation,
    StaggeredActivation,
)


class TestAbruptActivation:
    def test_all_cores_activate_at_start(self):
        schedule = AbruptActivation(start_s=1e-6)
        assert schedule.activation_times(4) == [1e-6] * 4

    def test_duration_is_core_rise_only(self):
        schedule = AbruptActivation(core_rise_s=1e-9)
        assert schedule.duration_s(16) == pytest.approx(1e-9)

    def test_total_current_steps_to_full(self):
        schedule = AbruptActivation()
        assert schedule.total_current_a(1e-9, 16, 0.5) == pytest.approx(8.0)
        assert schedule.total_current_a(-1e-9, 16, 0.5) == pytest.approx(0.0)

    def test_rejects_non_positive_core_count(self):
        with pytest.raises(ValueError):
            AbruptActivation().activation_times(0)


class TestLinearRampActivation:
    def test_first_and_last_activation_span_the_ramp(self):
        schedule = LinearRampActivation(ramp_s=128e-6)
        times = schedule.activation_times(16)
        assert times[0] == pytest.approx(0.0)
        assert times[-1] == pytest.approx(128e-6)
        assert len(times) == 16

    def test_times_are_evenly_spaced(self):
        schedule = LinearRampActivation(ramp_s=15e-6)
        times = schedule.activation_times(16)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(1e-6) for g in gaps)

    def test_single_core_activates_at_start(self):
        schedule = LinearRampActivation(ramp_s=128e-6, start_s=5e-6)
        assert schedule.activation_times(1) == [5e-6]

    def test_active_core_count_grows_linearly(self):
        schedule = LinearRampActivation(ramp_s=150e-6)
        assert schedule.active_cores(0.0, 16) == 1
        assert schedule.active_cores(75e-6, 16) == 8
        assert schedule.active_cores(151e-6, 16) == 16

    def test_total_current_midway_through_ramp(self):
        schedule = LinearRampActivation(ramp_s=150e-6)
        halfway = schedule.total_current_a(75e-6, 16, 1.0)
        assert 8.0 <= halfway <= 10.0

    def test_negative_ramp_rejected(self):
        with pytest.raises(ValueError):
            LinearRampActivation(ramp_s=-1.0)


class TestStaggeredActivation:
    def test_uses_explicit_times(self):
        schedule = StaggeredActivation(times_s=(0.0, 1e-6, 3e-6))
        assert schedule.activation_times(3) == [0.0, 1e-6, 3e-6]

    def test_start_offset_applied(self):
        schedule = StaggeredActivation(times_s=(0.0, 1e-6), start_s=1e-6)
        assert schedule.activation_times(2) == [1e-6, 2e-6]

    def test_mismatched_count_rejected(self):
        schedule = StaggeredActivation(times_s=(0.0, 1e-6))
        with pytest.raises(ValueError):
            schedule.activation_times(3)


class TestCoreWaveforms:
    def test_waveform_is_zero_before_activation(self):
        schedule = LinearRampActivation(ramp_s=100e-6)
        waveform = schedule.core_current_waveform(15, 16, 0.5)
        assert waveform(0.0) == 0.0
        assert waveform(100e-6 + 1e-9) == pytest.approx(0.5)

    def test_waveform_ramps_with_core_rise(self):
        schedule = AbruptActivation(core_rise_s=10e-9)
        waveform = schedule.core_current_waveform(0, 16, 1.0)
        assert waveform(5e-9) == pytest.approx(0.5)
        assert waveform(20e-9) == pytest.approx(1.0)

    def test_invalid_core_index_rejected(self):
        schedule = AbruptActivation()
        with pytest.raises(ValueError):
            schedule.core_current_waveform(16, 16, 1.0)

    def test_negative_core_current_rejected(self):
        schedule = AbruptActivation()
        with pytest.raises(ValueError):
            schedule.total_current_a(0.0, 16, -1.0)


class TestPaperSchedules:
    def test_paper_cases_have_expected_ramps(self):
        assert PAPER_ABRUPT.duration_s(16) <= 1e-9
        assert PAPER_FAST_RAMP.ramp_s == pytest.approx(1.28e-6)
        assert PAPER_SLOW_RAMP.ramp_s == pytest.approx(128e-6)

    def test_slow_ramp_is_negligible_compared_to_sprint_duration(self):
        # Section 5.3: 128 us is much smaller than a ~1 s sprint, so the
        # parallelism lost to gradual activation is negligible.
        sprint_duration_s = 1.0
        assert PAPER_SLOW_RAMP.duration_s(16) < 1e-3 * sprint_duration_s
