"""Tests for the replicated-experiment layer and its statistics.

Four tiers, mirroring TESTING.md's taxonomy:

* **Golden/bit-identity** — a one-replication plan reproduces a direct
  :class:`~repro.traffic.fleet.FleetSimulator` run bit-identically (the
  experiment layer adds no hidden perturbation), and sequential stopping
  is bit-identical to the fixed-count run of the same final size.
* **Determinism** — replication results are independent of worker count
  and of the pairing/arm seed bookkeeping.
* **Statistical self-tests** — the Student-t quantiles match table
  values, the batch-means CI covers a known distribution's mean at the
  nominal rate, and CRN pairing strictly reduces paired-delta variance
  against independent seeding on a fixed scenario.
* **API contracts** — validation, collapse of deterministic scenarios,
  aggregation field handling.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic import (
    ComparisonResult,
    DeterministicArrivals,
    FixedService,
    GammaService,
    MetricEstimate,
    PoissonArrivals,
    ReplicationPlan,
    Scenario,
    aggregate_summaries,
    batch_means_ci,
    compare,
    mean_ci,
    paired_delta,
    pool_map,
    run_replications,
    run_until,
    seed_stream,
    sign_test_p,
    student_t_cdf,
    student_t_ppf,
)

CONFIG = SystemConfig.paper_default()


@pytest.fixture(scope="module")
def stochastic_scenario():
    return Scenario(
        arrivals=PoissonArrivals(0.3),
        service=GammaService(mean_s=5.0, cv=1.0),
        n_requests=40,
        n_devices=2,
        slo_s=2.0,
    )


@pytest.fixture(scope="module")
def deterministic_scenario():
    return Scenario(
        arrivals=DeterministicArrivals(8.0),
        service=FixedService(5.0),
        n_requests=10,
        n_devices=2,
    )


class TestSeedStreams:
    def test_seed_stream_is_deterministic(self):
        a = np.random.default_rng(seed_stream(3, 11, 0)).random(4)
        b = np.random.default_rng(seed_stream(3, 11, 0)).random(4)
        assert np.array_equal(a, b)

    def test_seed_stream_distinguishes_words(self):
        a = np.random.default_rng(seed_stream(3, 11, 0)).random(4)
        b = np.random.default_rng(seed_stream(3, 11, 1)).random(4)
        assert not np.array_equal(a, b)

    def test_seed_stream_needs_words(self):
        with pytest.raises(ValueError):
            seed_stream()

    def test_crn_pairing_shares_streams_across_arms(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario, n_replications=3, pairing="crn")
        for r in range(3):
            assert (
                plan.request_seed(r, arm=0).entropy
                == plan.request_seed(r, arm=1).entropy
            )
            assert plan.run_seed(r, arm=0).entropy == plan.run_seed(r, arm=1).entropy

    def test_independent_pairing_separates_arms(self, stochastic_scenario):
        plan = ReplicationPlan(
            stochastic_scenario, n_replications=3, pairing="independent"
        )
        assert (
            plan.request_seed(0, arm=0).entropy != plan.request_seed(0, arm=1).entropy
        )

    def test_replications_get_distinct_streams(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario, n_replications=4)
        entropies = {tuple(plan.request_seed(r).entropy) for r in range(4)}
        assert len(entropies) == 4

    def test_request_and_dispatch_domains_are_disjoint(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario, n_replications=2)
        assert plan.request_seed(0).entropy != plan.run_seed(0).entropy

    def test_negative_indices_rejected(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario)
        with pytest.raises(ValueError):
            plan.request_seed(-1)
        with pytest.raises(ValueError):
            plan.run_seed(0, arm=-1)

    def test_crn_arms_replay_identical_requests(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario, n_replications=2, pairing="crn")
        treatment = stochastic_scenario.with_options(sprint_enabled=False)
        for r in range(2):
            base = stochastic_scenario.requests(plan.request_seed(r, arm=0))
            treat = treatment.requests(plan.request_seed(r, arm=1))
            assert [(q.arrival_s, q.sustained_time_s) for q in base] == [
                (q.arrival_s, q.sustained_time_s) for q in treat
            ]


class TestReplicationBitIdentity:
    """Acceptance lock: replication count 1 == a direct FleetSimulator run."""

    @pytest.mark.parametrize("pairing", ["independent", "crn"])
    def test_single_replication_matches_direct_run(
        self, stochastic_scenario, pairing
    ):
        plan = ReplicationPlan(
            stochastic_scenario, n_replications=1, pairing=pairing, base_seed=42
        )
        layered = run_replications(plan, CONFIG).summaries[0]

        requests = stochastic_scenario.requests(plan.request_seed(0))
        fleet = stochastic_scenario.build_fleet(CONFIG)
        direct = fleet.run(requests, seed=plan.run_seed(0)).summary(
            slo_s=stochastic_scenario.slo_s
        )
        assert layered.to_dict() == direct.to_dict()

    def test_worker_count_does_not_change_results(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario, n_replications=5)
        serial = run_replications(plan, CONFIG, workers=1)
        pooled = run_replications(plan, CONFIG, workers=3)
        assert [s.to_dict() for s in serial.summaries] == [
            s.to_dict() for s in pooled.summaries
        ]

    def test_sequential_stopping_is_bit_identical_to_fixed_count(
        self, stochastic_scenario
    ):
        plan = ReplicationPlan(stochastic_scenario, n_replications=2)
        stopped = run_until(
            plan, target_half_width=1e-9, max_replications=6, config=CONFIG
        )
        assert stopped.n_replications == 6  # tiny target: runs to the cap
        fixed = run_replications(plan.with_replications(6), CONFIG)
        assert [s.to_dict() for s in stopped.summaries] == [
            s.to_dict() for s in fixed.summaries
        ]


class TestSequentialStopping:
    def test_stops_when_target_met(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario, n_replications=2)
        result = run_until(
            plan, target_half_width=1e9, max_replications=40, config=CONFIG
        )
        # An absurdly loose target is met by the first CI it can compute.
        assert result.n_replications == 2

    def test_deterministic_scenario_returns_immediately(
        self, deterministic_scenario
    ):
        plan = ReplicationPlan(deterministic_scenario, n_replications=8)
        result = run_until(plan, target_half_width=0.5, config=CONFIG)
        assert result.n_replications == 1
        assert result.estimate("p99_latency_s").half_width == 0.0

    def test_validation(self, stochastic_scenario):
        plan = ReplicationPlan(stochastic_scenario)
        with pytest.raises(ValueError):
            run_until(plan, target_half_width=0.0)
        with pytest.raises(ValueError):
            run_until(plan, target_half_width=1.0, max_replications=1)


class TestDeterministicCollapse:
    def test_plan_collapses_deterministic_scenario(self, deterministic_scenario):
        plan = ReplicationPlan(deterministic_scenario, n_replications=8)
        assert plan.effective_replications == 1
        result = run_replications(plan, CONFIG)
        assert result.n_replications == 1

    def test_collapsed_estimate_is_exact(self, deterministic_scenario):
        result = run_replications(
            ReplicationPlan(deterministic_scenario, n_replications=8), CONFIG
        )
        estimate = result.estimate("p99_latency_s")
        assert estimate.half_width == 0.0
        assert estimate.n == 1
        assert all(e.half_width == 0.0 for e in result.estimates().values())

    def test_random_policy_defeats_collapse(self, deterministic_scenario):
        jittery = deterministic_scenario.with_options(policy="random")
        assert not jittery.is_deterministic
        plan = ReplicationPlan(jittery, n_replications=3)
        assert plan.effective_replications == 3

    def test_stochastic_single_replication_has_unbounded_ci(
        self, stochastic_scenario
    ):
        result = run_replications(
            ReplicationPlan(stochastic_scenario, n_replications=1), CONFIG
        )
        assert math.isinf(result.estimate("p99_latency_s").half_width)


class TestCompare:
    def test_crn_delta_tighter_than_independent(self, stochastic_scenario):
        """The acceptance criterion: CRN strictly reduces paired variance."""
        treatment = stochastic_scenario
        baseline = treatment.with_options(sprint_enabled=False)
        crn = compare(
            baseline, treatment, n_replications=10, pairing="crn", config=CONFIG
        ).delta("p99_latency_s")
        independent = compare(
            baseline,
            treatment,
            n_replications=10,
            pairing="independent",
            config=CONFIG,
        ).delta("p99_latency_s")
        assert crn.stddev < independent.stddev
        assert crn.half_width < independent.half_width

    def test_paired_arms_align_by_replication(self, stochastic_scenario):
        treatment = stochastic_scenario.with_options(n_devices=3)
        duel = compare(stochastic_scenario, treatment, n_replications=4, config=CONFIG)
        assert isinstance(duel, ComparisonResult)
        assert duel.n_replications == 4
        assert duel.pairing == "crn"
        # Offered load is identical per replication under CRN: the arms
        # saw the same arrivals, so offered counts match pairwise.
        for base, treat in zip(duel.baseline.summaries, duel.treatment.summaries):
            assert base.offered_count == treat.offered_count

    def test_deterministic_pair_collapses(self, deterministic_scenario):
        treatment = deterministic_scenario.with_options(sprint_enabled=False)
        duel = compare(deterministic_scenario, treatment, n_replications=6, config=CONFIG)
        assert duel.n_replications == 1

    def test_format_reports(self, stochastic_scenario):
        duel = compare(
            stochastic_scenario.with_options(sprint_enabled=False),
            stochastic_scenario,
            n_replications=3,
            config=CONFIG,
        )
        assert "±" in duel.format_report()
        assert "±" in duel.baseline.format_report()


class TestStudentT:
    #: (p, df) -> quantile, from standard t tables.
    TABLE = {
        (0.975, 1): 12.7062,
        (0.975, 5): 2.5706,
        (0.975, 10): 2.2281,
        (0.975, 30): 2.0423,
        (0.995, 10): 3.1693,
        (0.95, 20): 1.7247,
    }

    def test_quantiles_match_tables(self):
        for (p, df), expected in self.TABLE.items():
            assert student_t_ppf(p, df) == pytest.approx(expected, abs=5e-4)

    def test_symmetry_and_median(self):
        assert student_t_ppf(0.5, 7) == 0.0
        assert student_t_ppf(0.1, 7) == pytest.approx(-student_t_ppf(0.9, 7), abs=1e-9)

    def test_cdf_inverts_ppf(self):
        for p in (0.05, 0.3, 0.7, 0.99):
            assert student_t_cdf(student_t_ppf(p, 12), 12) == pytest.approx(
                p, abs=1e-9
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            student_t_ppf(0.0, 5)
        with pytest.raises(ValueError):
            student_t_ppf(0.5, 0)
        with pytest.raises(ValueError):
            student_t_cdf(1.0, -1)


class TestConfidenceIntervals:
    def test_mean_ci_covers_normal_mean_at_nominal_rate(self):
        """95% CIs over i.i.d. normal samples cover the true mean ~95% of
        the time — the self-test that the t machinery is calibrated."""
        rng = np.random.default_rng(12345)
        true_mean, trials, n = 3.0, 400, 20
        covered = 0
        for _ in range(trials):
            est = mean_ci(rng.normal(true_mean, 1.0, size=n), confidence=0.95)
            covered += est.ci_low <= true_mean <= est.ci_high
        assert 0.92 <= covered / trials <= 0.98

    def test_batch_means_ci_covers_known_mean_at_nominal_rate(self):
        """Batch-means CIs on an AR(1) series with known mean cover it at
        the nominal rate once batches exceed the correlation length."""
        rng = np.random.default_rng(99)
        phi, trials = 0.6, 300
        covered = 0
        for _ in range(trials):
            noise = rng.normal(0.0, 1.0, size=2000)
            series = np.empty_like(noise)
            acc = 0.0
            for i, e in enumerate(noise):
                acc = phi * acc + e
                series[i] = acc
            est = batch_means_ci(series, n_batches=10, confidence=0.95)
            covered += est.ci_low <= 0.0 <= est.ci_high
        assert 0.90 <= covered / trials <= 0.99

    def test_batch_means_trims_warmup_from_the_front(self):
        series = [100.0] * 3 + [1.0] * 20
        est = batch_means_ci(series, n_batches=10)
        # 23 values, 10 batches of 2: the 3 leading values are dropped.
        assert est.mean == pytest.approx(1.0)

    def test_mean_ci_edge_cases(self):
        single = mean_ci([4.2])
        assert single.n == 1 and math.isinf(single.half_width)
        flat = mean_ci([2.0, 2.0, 2.0])
        assert flat.stddev == 0.0 and flat.half_width == 0.0
        exact = MetricEstimate.exact(1.5)
        assert exact.half_width == 0.0 and "n=1" in str(exact)
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.0)
        with pytest.raises(ValueError):
            batch_means_ci([1.0, 2.0, 3.0], n_batches=10)
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 20, n_batches=1)

    def test_sign_test_exact_values(self):
        assert sign_test_p(10, 0) == pytest.approx(2 * 0.5**10)
        assert sign_test_p(5, 5) == 1.0
        assert sign_test_p(0, 0) == 1.0
        assert sign_test_p(8, 2) == pytest.approx(0.109375)
        with pytest.raises(ValueError):
            sign_test_p(-1, 2)

    def test_paired_delta(self):
        delta = paired_delta([1.0, 2.0, 3.0, 4.0], [2.0, 3.5, 4.0, 6.0])
        assert delta.mean_delta == pytest.approx(1.375)
        assert delta.n_positive == 4 and delta.n_negative == 0
        assert delta.sign_test_p == pytest.approx(0.125)
        assert "Δ" in str(delta)
        with pytest.raises(ValueError):
            paired_delta([1.0], [1.0, 2.0])

    def test_significance_flag(self):
        wide = paired_delta([0.0, 0.0, 0.0], [1.0, -1.0, 0.5])
        assert not wide.significant
        tight = paired_delta([0.0] * 5, [1.0, 1.01, 0.99, 1.0, 1.02])
        assert tight.significant


class TestAggregation:
    def test_aggregate_summaries_fields(self, stochastic_scenario):
        result = run_replications(
            ReplicationPlan(stochastic_scenario, n_replications=4), CONFIG
        )
        estimates = result.estimates()
        assert estimates["p99_latency_s"].n == 4
        assert "slo_attainment" in estimates  # the scenario sets an SLO
        assert estimates["request_count"].mean > 0

    def test_slo_attainment_skipped_without_slo(self, stochastic_scenario):
        no_slo = stochastic_scenario.with_options(slo_s=None)
        result = run_replications(ReplicationPlan(no_slo, n_replications=2), CONFIG)
        assert "slo_attainment" not in result.estimates()
        with pytest.raises(ValueError):
            result.values("slo_attainment")

    def test_aggregate_summaries_requires_input(self):
        with pytest.raises(ValueError):
            aggregate_summaries([])


class TestValidation:
    def test_plan_validation(self, stochastic_scenario):
        with pytest.raises(ValueError):
            ReplicationPlan(stochastic_scenario, n_replications=0)
        with pytest.raises(ValueError):
            ReplicationPlan(stochastic_scenario, pairing="antithetic")

    def test_scenario_validation(self):
        arrivals, service = PoissonArrivals(0.1), FixedService(2.0)
        with pytest.raises(ValueError):
            Scenario(arrivals=arrivals, service=service, n_requests=0)
        with pytest.raises(ValueError):
            Scenario(arrivals=arrivals, service=service, n_requests=5, n_devices=0)
        with pytest.raises(ValueError):
            Scenario(arrivals=arrivals, service=service, n_requests=5, policy="nope")
        with pytest.raises(ValueError):
            Scenario(arrivals=arrivals, service=service, n_requests=5, mode="nope")
        with pytest.raises(ValueError):
            Scenario(
                arrivals=arrivals, service=service, n_requests=5, discipline="nope"
            )

    def test_scenario_normalises_names_to_specs(self):
        scenario = Scenario(
            arrivals=PoissonArrivals(0.1),
            service=FixedService(2.0),
            n_requests=5,
            governor="unlimited",
            thermal="rc",
        )
        assert scenario.governor.policy == "unlimited"
        assert scenario.thermal.backend == "rc"
        # Hashable (frozen all the way down) — usable as a dict key.
        assert hash(scenario) == hash(scenario.with_options())

    def test_pool_map_contract(self):
        assert pool_map(lambda x: x * 2, [1, 2, 3], workers=1) == [2, 4, 6]
        with pytest.raises(ValueError):
            pool_map(lambda x: x, [1], workers=0)
