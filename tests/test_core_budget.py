"""Tests for the thermal-budget estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.budget import EnergyBudgetEstimator, OracleBudgetEstimator
from repro.thermal.package import FULL_PCM_PACKAGE, SMALL_PCM_PACKAGE


class TestEnergyBudgetEstimator:
    def test_budget_matches_package_with_margin(self):
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE, safety_margin=0.05)
        estimator.start_sprint(16.0)
        expected = FULL_PCM_PACKAGE.sprint_budget_j(16.0) * 0.95
        assert estimator.budget_j == pytest.approx(expected)

    def test_not_exhausted_before_start(self):
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE)
        assert not estimator.exhausted
        assert estimator.remaining_fraction == 1.0

    def test_record_before_start_raises(self):
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE)
        with pytest.raises(RuntimeError):
            estimator.record(1.0, 0.001, 30.0)

    def test_exhaustion_after_consuming_budget(self):
        estimator = EnergyBudgetEstimator(SMALL_PCM_PACKAGE)
        estimator.start_sprint(16.0)
        budget = estimator.budget_j
        estimator.record(budget * 1.01, dt_s=0.0, junction_c=50.0)
        assert estimator.exhausted
        assert estimator.remaining_fraction == pytest.approx(0.0, abs=1e-6)

    def test_leakage_extends_budget_over_time(self):
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE)
        estimator.start_sprint(16.0)
        budget = estimator.budget_j
        # Consume exactly the static budget but spread over one second: the
        # heat leaked to ambient during that second buys extra headroom.
        estimator.record(budget, dt_s=1.0, junction_c=60.0)
        assert not estimator.exhausted
        assert estimator.effective_budget_j > budget

    def test_remaining_fraction_decreases_monotonically(self):
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE)
        estimator.start_sprint(16.0)
        fractions = []
        for _ in range(10):
            estimator.record(2.0, dt_s=0.01, junction_c=55.0)
            fractions.append(estimator.remaining_fraction)
        assert all(later <= earlier for earlier, later in zip(fractions, fractions[1:]))

    def test_can_sprint_threshold(self):
        estimator = EnergyBudgetEstimator(SMALL_PCM_PACKAGE)
        assert estimator.can_sprint()
        estimator.start_sprint(16.0)
        estimator.record(estimator.budget_j, dt_s=0.0, junction_c=60.0)
        assert not estimator.can_sprint(minimum_fraction=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBudgetEstimator(FULL_PCM_PACKAGE, safety_margin=1.0)
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE)
        with pytest.raises(ValueError):
            estimator.start_sprint(0.0)
        estimator.start_sprint(16.0)
        with pytest.raises(ValueError):
            estimator.record(-1.0, 0.1, 30.0)
        with pytest.raises(ValueError):
            estimator.can_sprint(minimum_fraction=2.0)

    @settings(max_examples=30, deadline=None)
    @given(
        energies=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=30
        )
    )
    def test_remaining_fraction_always_in_unit_interval(self, energies):
        estimator = EnergyBudgetEstimator(FULL_PCM_PACKAGE)
        estimator.start_sprint(16.0)
        for energy in energies:
            estimator.record(energy, dt_s=0.001, junction_c=50.0)
            assert 0.0 <= estimator.remaining_fraction <= 1.0


class TestOracleBudgetEstimator:
    def test_threshold_below_limit(self):
        oracle = OracleBudgetEstimator(FULL_PCM_PACKAGE, guard_band_c=1.0)
        assert oracle.threshold_c == pytest.approx(69.0)

    def test_exhausts_at_threshold(self):
        oracle = OracleBudgetEstimator(FULL_PCM_PACKAGE)
        oracle.start_sprint(16.0)
        oracle.record(1.0, 0.001, junction_c=50.0)
        assert not oracle.exhausted
        oracle.record(1.0, 0.001, junction_c=69.5)
        assert oracle.exhausted

    def test_remaining_fraction_tracks_temperature(self):
        oracle = OracleBudgetEstimator(FULL_PCM_PACKAGE)
        oracle.start_sprint(16.0)
        oracle.record(1.0, 0.001, junction_c=25.0)
        cold = oracle.remaining_fraction
        oracle.record(1.0, 0.001, junction_c=60.0)
        warm = oracle.remaining_fraction
        assert cold > warm > 0.0

    def test_record_before_start_raises(self):
        oracle = OracleBudgetEstimator(FULL_PCM_PACKAGE)
        with pytest.raises(RuntimeError):
            oracle.record(1.0, 0.001, 30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OracleBudgetEstimator(FULL_PCM_PACKAGE, guard_band_c=-1.0)
        oracle = OracleBudgetEstimator(FULL_PCM_PACKAGE)
        with pytest.raises(ValueError):
            oracle.start_sprint(-1.0)
