"""Tests for the parallel scenario sweep engine."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic.sweep import (
    CellResult,
    SweepSpec,
    expand_cells,
    run_cell,
    run_sweep,
)

CONFIG = SystemConfig.paper_default()


@pytest.fixture(scope="module")
def small_spec():
    return SweepSpec(
        policies=("round_robin", "least_loaded"),
        arrival_rates_hz=(0.05, 0.2),
        fleet_sizes=(1, 2),
        n_requests=25,
        slo_s=2.0,
        base_seed=7,
    )


class TestGridExpansion:
    def test_cell_count_and_order(self, small_spec):
        cells = expand_cells(small_spec)
        assert len(cells) == 8
        assert [c.index for c in cells] == list(range(8))
        assert cells[0].policy == "round_robin"
        assert cells[-1].policy == "least_loaded"

    def test_stream_key_depends_only_on_arrival_rate(self, small_spec):
        """Cells differing in policy or fleet size must replay the same
        request stream; only the arrival rate changes it."""
        cells = expand_cells(small_spec)
        by_rate = {}
        for cell in cells:
            by_rate.setdefault(cell.arrival_rate_hz, set()).add(cell.stream_key)
        for keys in by_rate.values():
            assert len(keys) == 1
        assert len({keys.pop() for keys in by_rate.values()}) == len(by_rate)

    def test_seed_sequence_derives_from_base_seed(self, small_spec):
        a = expand_cells(small_spec)[0]
        b = expand_cells(SweepSpec(base_seed=99))[0]
        assert a.seed_sequence.entropy != b.seed_sequence.entropy

    def test_dispatch_seed_distinguishes_base_seed_from_cell_index(self):
        """The dispatch RNG is seeded from the (base_seed, index) *pair*, so
        swapping the components — which an additive seed would conflate —
        must give a different random-dispatch assignment."""
        import numpy as np

        from repro.traffic import FixedService, FleetSimulator, PoissonArrivals
        from repro.traffic.request import generate_requests

        config = SystemConfig.paper_default()
        requests = generate_requests(PoissonArrivals(0.5), FixedService(5.0), 60, seed=1)

        def assignments(seed_pair):
            fleet = FleetSimulator(config, 8, policy="random")
            result = fleet.run(requests, seed=np.random.SeedSequence(seed_pair))
            return [s.device_id for s in result.served]

        assert assignments([0, 5]) == assignments([0, 5])
        assert assignments([0, 5]) != assignments([5, 0])


class TestSweepExecution:
    def test_serial_matches_parallel(self, small_spec):
        serial = run_sweep(small_spec, workers=1)
        parallel = run_sweep(small_spec, workers=3)
        assert serial.cells == parallel.cells

    def test_sweep_is_reproducible(self, small_spec):
        assert run_sweep(small_spec).cells == run_sweep(small_spec).cells

    def test_one_device_cells_identical_across_policies(self, small_spec):
        """With a single device every dispatch policy is a no-op, and since the
        request stream is policy-independent the summaries must coincide."""
        result = run_sweep(small_spec)
        for rate in small_spec.arrival_rates_hz:
            summaries = [
                c.summary for c in result.filtered(arrival_rate_hz=rate, n_devices=1)
            ]
            assert all(s == summaries[0] for s in summaries)

    def test_run_cell_matches_sweep(self, small_spec):
        cells = expand_cells(small_spec)
        config = SystemConfig.paper_default()
        direct = run_cell(small_spec, cells[3], config)
        swept = run_sweep(small_spec, config).cells[3]
        assert direct == swept

    def test_arrival_kinds_all_run(self):
        for kind in ("poisson", "bursty", "diurnal", "deterministic"):
            spec = SweepSpec(
                arrival_rates_hz=(0.1,),
                fleet_sizes=(2,),
                n_requests=15,
                arrival_kind=kind,
            )
            result = run_sweep(spec)
            assert len(result.cells) == 1
            assert result.cells[0].summary.request_count == 15

    def test_bursty_arrival_process_preserves_mean_rate(self):
        spec = SweepSpec(arrival_kind="bursty", burst_factor=4.0)
        process = spec.arrival_process(0.2)
        assert process.mean_rate_hz() == pytest.approx(0.2)

    def test_bursty_burst_length_is_tunable(self):
        spec = SweepSpec(arrival_kind="bursty", burst_factor=4.0, burst_mean_requests=20.0)
        process = spec.arrival_process(0.2)
        # A burst at 4 x 0.2/s carrying 20 expected requests lasts 25 s.
        assert process.mean_dwell_s[0] == pytest.approx(25.0)
        assert process.mean_rate_hz() == pytest.approx(0.2)

    def test_service_cv_enables_gamma_demands(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.1,), fleet_sizes=(1,), n_requests=30, service_cv=1.0
        )
        fixed = SweepSpec(arrival_rates_hz=(0.1,), fleet_sizes=(1,), n_requests=30)
        assert run_sweep(spec).cells[0] != run_sweep(fixed).cells[0]

    def test_discipline_and_bound_axes_expand_the_grid(self, small_spec):
        from dataclasses import replace

        spec = replace(
            small_spec, disciplines=("immediate", "fifo"), queue_bounds=(None, 4)
        )
        cells = expand_cells(spec)
        # Redundant combinations are collapsed: immediate cells ignore the
        # bound axis (8 = 2 policies x 2 rates x 2 fleets), central cells
        # ignore the policy axis (8 = 2 rates x 2 fleets x 2 bounds).
        assert len(cells) == 16
        assert {c.discipline for c in cells} == {"immediate", "fifo"}
        assert {c.queue_bound for c in cells if c.discipline == "fifo"} == {None, 4}
        assert all(c.queue_bound is None for c in cells if c.discipline == "immediate")
        assert {c.policy for c in cells if c.discipline == "fifo"} == {"round_robin"}
        assert [c.index for c in cells] == list(range(16))

    def test_default_axes_reproduce_legacy_enumeration(self, small_spec):
        """With the new axes at their defaults the grid (and so every
        cell's dispatch seed) must be exactly the legacy enumeration."""
        cells = expand_cells(small_spec)
        legacy = [
            (policy, rate, size)
            for policy in small_spec.policies
            for rate in small_spec.arrival_rates_hz
            for size in small_spec.fleet_sizes
        ]
        assert [(c.policy, c.arrival_rate_hz, c.n_devices) for c in cells] == legacy

    def test_central_queue_cells_run_and_report_lifecycle(self):
        spec = SweepSpec(
            arrival_rates_hz=(1.0,),
            fleet_sizes=(2,),
            disciplines=("fifo", "edf"),
            queue_bounds=(2,),
            n_requests=40,
            deadline_s=20.0,
        )
        result = run_sweep(spec)
        assert len(result.cells) == 2
        for cell_result in result.cells:
            s = cell_result.summary
            assert s.offered_count == 40
            assert s.request_count + s.rejected_count + s.abandoned_count == 40
            assert s.rejected_count > 0  # overloaded bounded queue must shed

    def test_deadline_knob_reaches_requests(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.5,),
            fleet_sizes=(1,),
            n_requests=20,
            deadline_s=1.0,
        )
        result = run_sweep(spec)
        # Immediate mode never abandons, but completion-past-deadline
        # misses are counted.
        assert result.cells[0].summary.deadline_miss_count > 0

    def test_sprint_disabled_sweeps_are_slower(self, small_spec):
        sprint = run_sweep(small_spec)
        sustained = run_sweep(small_spec.with_sprint_enabled(False))
        mean_sprint = np.mean([c.summary.p50_latency_s for c in sprint.cells])
        mean_sustained = np.mean([c.summary.p50_latency_s for c in sustained.cells])
        assert mean_sprint < mean_sustained


class TestSweepResult:
    def test_filtered(self, small_spec):
        result = run_sweep(small_spec)
        subset = result.filtered(policy="round_robin", n_devices=2)
        assert len(subset) == len(small_spec.arrival_rates_hz)
        assert all(c.cell.policy == "round_robin" for c in subset)

    def test_best_cell(self, small_spec):
        result = run_sweep(small_spec)
        best = result.best_cell("p99_latency_s")
        assert isinstance(best, CellResult)
        assert best.summary.p99_latency_s == min(
            c.summary.p99_latency_s for c in result.cells
        )

    def test_format_table(self, small_spec):
        table = run_sweep(small_spec).format_table()
        assert "dispatch" in table
        assert "rej" in table
        assert len(table.splitlines()) == 9


class TestValidation:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(policies=())
        with pytest.raises(ValueError):
            SweepSpec(policies=("nope",))
        with pytest.raises(ValueError):
            SweepSpec(arrival_kind="weird")
        with pytest.raises(ValueError):
            SweepSpec(arrival_rates_hz=(0.0,))
        with pytest.raises(ValueError):
            SweepSpec(fleet_sizes=(0,))
        with pytest.raises(ValueError):
            SweepSpec(n_requests=0)
        with pytest.raises(ValueError):
            SweepSpec(arrival_kind="bursty", burst_factor=1.0)
        with pytest.raises(ValueError):
            SweepSpec(arrival_kind="bursty", burst_mean_requests=0.0)
        # Burst knobs are only read (and so only validated) for bursty kinds.
        SweepSpec(arrival_kind="poisson", burst_factor=1.0)
        with pytest.raises(ValueError):
            SweepSpec(disciplines=())
        with pytest.raises(ValueError):
            SweepSpec(disciplines=("lifo",))
        with pytest.raises(ValueError):
            SweepSpec(queue_bounds=(-1,))
        with pytest.raises(ValueError):
            SweepSpec(deadline_s=0.0)
        with pytest.raises(ValueError):
            SweepSpec(service_cv=-0.5)
        with pytest.raises(ValueError):
            SweepSpec(slo_s=0.0)
        with pytest.raises(ValueError):
            SweepSpec(sprint_speedup=0.5)
        with pytest.raises(ValueError):
            SweepSpec(arrival_kind="diurnal", diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            SweepSpec(arrival_kind="diurnal", diurnal_period_s=0.0)
        # Diurnal knobs are only validated when the diurnal kind reads them.
        SweepSpec(arrival_kind="poisson", diurnal_amplitude=1.0)

    def test_worker_validation(self, small_spec):
        with pytest.raises(ValueError):
            run_sweep(small_spec, workers=0)

    def test_replication_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(replications=0)
        with pytest.raises(ValueError):
            SweepSpec(pairing="antithetic")


class TestReplicationAxis:
    """The replications/pairing axis and its seed-stream determinism."""

    @pytest.fixture(scope="class")
    def replicated_spec(self):
        return SweepSpec(
            policies=("least_loaded",),
            arrival_rates_hz=(0.1, 0.3),
            fleet_sizes=(2,),
            n_requests=20,
            service_cv=0.8,
            slo_s=2.0,
            base_seed=5,
            replications=3,
        )

    def test_single_replication_sweep_is_bit_identical_to_legacy(self, small_spec):
        """``replications=1`` replays exactly the pre-replication streams."""
        legacy = run_sweep(small_spec, CONFIG)
        for result in legacy.cells:
            rerun = run_cell(small_spec, result.cell, CONFIG, replication=0)
            assert rerun.summary == result.summary
            assert result.replicates == ()
            assert not result.collapsed

    def test_cells_carry_all_replicates(self, replicated_spec):
        result = run_sweep(replicated_spec, CONFIG)
        for cell_result in result.cells:
            assert len(cell_result.summaries) == 3
            assert cell_result.summary == cell_result.summaries[0]
            estimate = cell_result.estimate("p99_latency_s")
            assert estimate.n == 3
            assert estimate.half_width >= 0.0

    def test_serial_matches_parallel_with_replications(self, replicated_spec):
        """The determinism satellite: seed streams are pool-size independent."""
        serial = run_sweep(replicated_spec, CONFIG, workers=1)
        pooled = run_sweep(replicated_spec, CONFIG, workers=3)
        assert serial == pooled

    def test_serial_matches_parallel_with_independent_pairing(self, replicated_spec):
        spec = replace(replicated_spec, pairing="independent")
        assert run_sweep(spec, CONFIG, workers=1) == run_sweep(spec, CONFIG, workers=3)

    def test_crn_pairs_cells_per_replication(self, replicated_spec):
        """Under CRN, cells differing only in fleet size share request
        streams replication by replication — offered counts match."""
        spec = replace(replicated_spec, fleet_sizes=(1, 2))
        result = run_sweep(spec, CONFIG)
        for rate in spec.arrival_rates_hz:
            cells = result.filtered(arrival_rate_hz=rate)
            assert len(cells) == 2
            for a, b in zip(cells[0].summaries, cells[1].summaries):
                assert a.offered_count == b.offered_count

    def test_independent_pairing_decouples_cells(self, replicated_spec):
        """Independent seeding gives each cell its own replication streams
        — every replication, including 0; makespans (a fingerprint of the
        arrival draw) diverge pairwise."""
        spec = replace(replicated_spec, fleet_sizes=(1, 2), pairing="independent")
        result = run_sweep(spec, CONFIG)
        cells = result.filtered(arrival_rate_hz=spec.arrival_rates_hz[0])
        paired_makespans = [
            (a.makespan_s, b.makespan_s)
            for a, b in zip(cells[0].summaries, cells[1].summaries)
        ]
        assert all(a != b for a, b in paired_makespans)

    def test_replication_seed_universes_never_collide(self, replicated_spec):
        """Request and dispatch streams stay disjoint even where
        cell.index equals a stream-key word (cell 0 at rate index 0), and
        dispatch streams are unique per (cell, replication).  Request
        streams may be shared across cells — that is what CRN pairing
        means — but never with a dispatch stream."""
        from repro.traffic.sweep import _cell_seeds, expand_cells

        for pairing in ("crn", "independent"):
            spec = replace(
                replicated_spec, fleet_sizes=(1, 2), pairing=pairing
            )
            requests_seen, dispatch_seen = set(), set()
            for cell in expand_cells(spec):
                for r in range(spec.replications):
                    request_seed, run_seed = _cell_seeds(spec, cell, r)
                    req, run = tuple(request_seed.entropy), tuple(run_seed.entropy)
                    if pairing == "crn" and r == 0:
                        # Replication 0 under CRN replays the legacy
                        # streams, whose keys may coincide where
                        # cell.index == rate_idx (benign: the request side
                        # spawns child streams before drawing, and the
                        # scheme is frozen by bit-identity locks).
                        continue
                    assert req != run
                    assert run not in dispatch_seen
                    dispatch_seen.add(run)
                    requests_seen.add(req)
            assert not requests_seen & dispatch_seen
            if pairing == "independent":
                # Every (cell, replication) draws its own request stream.
                n_cells = len(expand_cells(spec))
                assert len(requests_seen) == n_cells * spec.replications

    def test_deterministic_cells_collapse(self):
        spec = SweepSpec(
            policies=("round_robin", "random"),
            arrival_rates_hz=(0.1,),
            fleet_sizes=(2,),
            n_requests=10,
            arrival_kind="deterministic",
            service_cv=0.0,
            replications=4,
            base_seed=3,
        )
        result = run_sweep(spec, CONFIG)
        by_policy = {r.cell.policy: r for r in result.cells}
        # Deterministic arrivals + fixed service: only the random policy
        # still consumes randomness, so only it replicates.
        assert by_policy["round_robin"].collapsed
        assert len(by_policy["round_robin"].summaries) == 1
        assert by_policy["round_robin"].estimate("p99_latency_s").half_width == 0.0
        assert not by_policy["random"].collapsed
        assert len(by_policy["random"].summaries) == 4

    def test_format_table_reports_ci_column(self, replicated_spec):
        table = run_sweep(replicated_spec, CONFIG).format_table()
        assert "±95%" in table

    def test_estimate_rejects_unset_fields(self, replicated_spec):
        spec = replace(replicated_spec, slo_s=None)
        result = run_sweep(spec, CONFIG)
        with pytest.raises(ValueError):
            result.cells[0].estimate("slo_attainment")
