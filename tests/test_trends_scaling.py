"""Tests for the dark-silicon scaling projections (Figure 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.trends.scaling import (
    BORKAR,
    ITRS,
    ITRS_BORKAR_VDD,
    PAPER_NODES_NM,
    ScalingScenario,
    dark_silicon_at_2019_prediction,
    dark_silicon_trend,
    power_density_trend,
)


class TestScalingScenario:
    def test_generation_zero_is_baseline(self):
        assert ITRS.power_density_after(0) == pytest.approx(1.0)
        assert ITRS.dark_fraction_after(0) == pytest.approx(0.0)

    def test_power_density_grows(self):
        densities = [BORKAR.power_density_after(g) for g in range(7)]
        assert all(later > earlier for earlier, later in zip(densities, densities[1:]))

    def test_active_fraction_is_reciprocal_and_capped(self):
        assert ITRS.active_fraction_after(3) == pytest.approx(
            1.0 / ITRS.power_density_after(3)
        )
        cool_chip = ScalingScenario(
            name="cooling", density_per_gen=1.0, capacitance_per_gen=0.5, voltage_per_gen=1.0
        )
        assert cool_chip.active_fraction_after(3) == 1.0

    def test_pessimistic_voltage_scaling_is_worst(self):
        generations = len(PAPER_NODES_NM) - 1
        assert ITRS_BORKAR_VDD.dark_fraction_after(generations) >= ITRS.dark_fraction_after(
            generations
        )

    def test_rejects_invalid_factors(self):
        with pytest.raises(ValueError):
            ScalingScenario(name="bad", density_per_gen=0.0, capacitance_per_gen=1.0, voltage_per_gen=1.0)
        with pytest.raises(ValueError):
            ITRS.power_density_after(-1)

    @given(generations=st.integers(min_value=0, max_value=10))
    def test_fractions_always_valid(self, generations):
        for scenario in (ITRS, BORKAR, ITRS_BORKAR_VDD):
            dark = scenario.dark_fraction_after(generations)
            assert 0.0 <= dark < 1.0


class TestTrendSeries:
    def test_series_covers_paper_nodes(self):
        points = power_density_trend(ITRS)
        assert tuple(p.node_nm for p in points) == PAPER_NODES_NM
        assert points[0].power_density == pytest.approx(1.0)

    def test_dark_trend_is_same_points(self):
        assert [p.dark_percent for p in dark_silicon_trend(BORKAR)] == [
            p.dark_percent for p in power_density_trend(BORKAR)
        ]

    def test_dark_percent_property(self):
        last = power_density_trend(ITRS_BORKAR_VDD)[-1]
        assert last.dark_percent == pytest.approx(100 * last.dark_fraction)
        assert last.dark_percent > 60.0

    def test_rejects_empty_nodes(self):
        with pytest.raises(ValueError):
            power_density_trend(ITRS, nodes_nm=())

    def test_muller_prediction_order_of_magnitude(self):
        # ARM's CTO predicted only ~9% of transistors active by 2019; the
        # pessimistic scenario should land within a small factor of that.
        active_percent = dark_silicon_at_2019_prediction()
        assert 5.0 <= active_percent <= 30.0
