"""Hierarchical topologies: spec validation, the grant cascade, sharding.

The topology layer makes three load-bearing promises this suite locks:

* **Spec honesty** — invalid trees (token-bucket parents, device-count
  mismatches, non-positive windows) are rejected at construction, not
  discovered mid-run.
* **Cascade accounting** — a sprint clears every ancestor budget or
  none; denials and breaker trips are attributed to the level whose
  budget refused, probes never pollute the counters of levels that
  would have granted, and no grant survives the end of a run.
* **Shard determinism** — the flat degenerate case is bit-identical to
  running without a topology, and worker count never changes results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic import (
    FleetSimulator,
    GammaService,
    GovernorSpec,
    PoissonArrivals,
    RackSpec,
    ReplicationPlan,
    RowSpec,
    Scenario,
    SweepSpec,
    TelemetrySpec,
    TopologySpec,
    expand_cells,
    generate_requests,
    run_cell,
    run_replications,
)
from repro.traffic.topology import (
    CascadeGovernor,
    apportion_slots,
    slice_schedules,
)

CONFIG = SystemConfig.paper_default()
EXCESS_W = CONFIG.sprint_power_w - CONFIG.sustainable_power_w


def poisson_requests(n=200, rate_hz=2.0, seed=11, cv=0.5):
    return generate_requests(
        PoissonArrivals(rate_hz), GammaService(5.0, cv=cv), n, seed=seed
    )


def summary_dict(result):
    return result.summary().to_dict()


class TestSpecValidation:
    def test_token_bucket_rejected_at_row(self):
        with pytest.raises(ValueError, match="does not partition"):
            RowSpec(
                racks=(RackSpec(n_devices=2),),
                governor=GovernorSpec.token_bucket(1.0, 4),
            )

    def test_token_bucket_rejected_at_datacenter(self):
        with pytest.raises(ValueError, match="does not partition"):
            TopologySpec(
                rows=(RowSpec(racks=(RackSpec(n_devices=2),), governor=GovernorSpec()),),
                governor=GovernorSpec.token_bucket(1.0, 4),
            )

    def test_token_bucket_allowed_at_rack(self):
        rack = RackSpec(n_devices=2, governor=GovernorSpec.token_bucket(1.0, 4))
        assert rack.governor.policy == "token_bucket"

    def test_device_count_mismatch(self):
        topo = TopologySpec.uniform(2, 2, 4)
        assert topo.validate_devices(None) == 16
        assert topo.validate_devices(16) == 16
        with pytest.raises(ValueError, match="16"):
            topo.validate_devices(8)

    def test_window_and_dispatch_validation(self):
        rows = (RowSpec(racks=(RackSpec(n_devices=2),), governor=GovernorSpec()),)
        with pytest.raises(ValueError, match="window"):
            TopologySpec(rows=rows, governor=GovernorSpec(), window_s=0.0)
        with pytest.raises(ValueError, match="dispatch"):
            TopologySpec(rows=rows, governor=GovernorSpec(), dispatch="hottest_rack")

    def test_paths_and_labels(self):
        topo = TopologySpec.uniform(2, 2, 2)
        assert topo.rack_paths == (
            "row0/rack0",
            "row0/rack1",
            "row1/rack0",
            "row1/rack1",
        )
        labels = topo.device_labels()
        assert labels[0] == "row0/rack0/dev0"
        assert labels[-1] == "row1/rack1/dev1"
        assert len(labels) == topo.total_devices == 8

    def test_fleet_rejects_second_governor_and_fluid(self):
        topo = TopologySpec.flat(4)
        with pytest.raises(ValueError, match="governor"):
            FleetSimulator(CONFIG, topology=topo, governor=GovernorSpec.greedy(2))
        with pytest.raises(ValueError, match="fluid"):
            FleetSimulator(CONFIG, topology=TopologySpec.uniform(1, 2, 2), mode="fluid")


class TestApportionment:
    def test_slots_sum_and_tie_break(self):
        assert apportion_slots(5, [1, 1, 1]).tolist() == [2, 2, 1]
        assert apportion_slots(4, [0, 0]).tolist() == [2, 2]
        assert apportion_slots(3, [2, 1]).tolist() == [2, 1]

    def test_slots_conserve_total(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            weights = rng.integers(0, 10, size=rng.integers(1, 6))
            total = int(rng.integers(0, 20))
            slots = apportion_slots(total, weights)
            assert slots.sum() == total
            assert (slots >= 0).all()

    def test_greedy_slices_conserve_parent_cap(self):
        topo = TopologySpec.uniform(
            1, 3, 2, row_governor=GovernorSpec.greedy(5), window_s=10.0
        )
        demand = np.array([[4, 1, 0], [0, 0, 0], [2, 2, 2]])
        row_slices, dc_slices = slice_schedules(topo, CONFIG, demand)
        assert list(dc_slices) == [None] * 3  # unlimited datacenter: no slice
        for rack_slice in row_slices:
            assert rack_slice is not None
        for w in range(3):
            granted = sum(s.slot_caps[w] for s in row_slices)
            assert granted == 5


class TestCascadeAccounting:
    def test_probe_failure_does_not_pollute_granting_levels(self):
        rack = GovernorSpec.greedy(4).build(CONFIG)
        row = GovernorSpec.greedy(1).build(CONFIG)
        cascade = CascadeGovernor([("rack", rack), ("row", row)])
        assert cascade.acquire(0.0)
        # Rack has 3 free slots; the row is exhausted, so the cascade
        # must refuse without touching the rack's grant counters.
        assert not cascade.acquire(1.0)
        assert rack.active_grants == 1
        assert row.active_grants == 1
        cascade.release(2.0)
        rack_stats = rack.finalize(10.0)
        row_stats = row.finalize(10.0)
        assert rack_stats.sprints_granted == 1
        assert rack_stats.sprints_denied == 0
        assert row_stats.sprints_denied == 1
        assert cascade.active_grants == 0

    def test_parent_exhausted_while_child_has_headroom(self):
        # Permissive racks under a row that allows one sprint total: the
        # denials land on the row's ledger, never the racks'.
        topo = TopologySpec.uniform(
            1, 2, 4,
            rack_governor=GovernorSpec.greedy(4),
            row_governor=GovernorSpec.greedy(1),
            window_s=30.0,
        )
        result = FleetSimulator(CONFIG, topology=topo).run(poisson_requests())
        denied = result.topology_stats.denied_by_level()
        assert denied["row"] > 0
        assert denied["rack"] == 0
        assert denied["datacenter"] == 0
        assert result.topology_stats.overall.sprints_denied == denied["row"]

    def test_row_breaker_trip_denies_descendants(self):
        topo = TopologySpec.uniform(
            1, 2, 4,
            rack_governor=GovernorSpec.greedy(4),
            row_governor=GovernorSpec.greedy(
                8, trip_headroom_w=3.5 * EXCESS_W, penalty_s=60.0
            ),
            window_s=30.0,
        )
        result = FleetSimulator(CONFIG, topology=topo).run(
            poisson_requests(rate_hz=3.0)
        )
        stats = result.topology_stats
        assert stats.trips_by_level()["row"] >= 1
        # Trips surface in the cascade aggregate and in penalty denials.
        assert stats.overall.breaker_trips >= 1
        assert stats.denied_by_level()["row"] > 0
        # Conservation still holds through the penalty windows.
        assert result.summary().offered_count == 200

    def test_no_leaked_grants_across_window_barriers(self):
        # A short window forces many budget-slice transitions; run_sharded
        # raises RuntimeError if any rack job ends with grants in flight.
        topo = TopologySpec.uniform(
            2, 2, 2,
            rack_governor=GovernorSpec.greedy(2),
            row_governor=GovernorSpec.cooperative(2.5 * EXCESS_W),
            window_s=5.0,
        )
        result = FleetSimulator(CONFIG, topology=topo).run(poisson_requests())
        assert result.summary().offered_count == 200

    def test_ledger_aligns_with_rack_paths(self):
        topo = TopologySpec.uniform(
            1, 2, 2, rack_governor=GovernorSpec.greedy(1), window_s=30.0
        )
        result = FleetSimulator(CONFIG, topology=topo).run(poisson_requests(n=60))
        stats = result.topology_stats
        assert stats.rack_paths == topo.rack_paths
        for path in topo.rack_paths:
            assert stats.for_rack(path) is not None
        # Ungoverned parents carry no ledger of their own.
        assert stats.rows == (None,)
        assert stats.datacenter is None


class TestShardDeterminism:
    def test_flat_topology_bit_identical_to_no_topology(self):
        requests = poisson_requests(n=120)
        plain = FleetSimulator(CONFIG, n_devices=8, governor=GovernorSpec.greedy(3))
        flat = FleetSimulator(
            CONFIG,
            topology=TopologySpec.flat(8, governor=GovernorSpec.greedy(3)),
        )
        a = plain.run(requests, seed=5)
        b = flat.run(requests, seed=5)
        assert [s.latency_s for s in a.served] == [s.latency_s for s in b.served]
        assert summary_dict(a) == summary_dict(b)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_is_invisible(self, workers):
        topo = TopologySpec.uniform(
            2, 2, 3,
            rack_governor=GovernorSpec.greedy(2),
            row_governor=GovernorSpec.greedy(3),
            window_s=20.0,
        )
        requests = poisson_requests()
        serial = FleetSimulator(CONFIG, topology=topo).run(requests, seed=9)
        fanned = FleetSimulator(CONFIG, topology=topo, shard_workers=workers).run(
            requests, seed=9
        )
        assert [s.request.index for s in serial.served] == [
            s.request.index for s in fanned.served
        ]
        assert [s.latency_s for s in serial.served] == [
            s.latency_s for s in fanned.served
        ]
        assert summary_dict(serial) == summary_dict(fanned)

    def test_both_topology_dispatches_conserve(self):
        requests = poisson_requests(n=100)
        for dispatch in ("rack_round_robin", "least_loaded_rack"):
            topo = TopologySpec.uniform(
                1, 3, 2, window_s=15.0, dispatch=dispatch
            )
            result = FleetSimulator(CONFIG, topology=topo).run(requests)
            assert result.summary().offered_count == 100


class TestHierarchicalIdentity:
    def test_device_stats_carry_hierarchical_labels(self):
        topo = TopologySpec.uniform(2, 2, 2)
        result = FleetSimulator(CONFIG, topology=topo).run(poisson_requests(n=80))
        labels = [d.device_label for d in result.device_stats]
        assert labels == list(topo.device_labels())
        ids = [d.device_id for d in result.device_stats]
        assert ids == list(range(topo.total_devices))

    def test_flat_fleet_labels_default(self):
        result = FleetSimulator(CONFIG, n_devices=2).run(poisson_requests(n=10))
        assert [d.device_label for d in result.device_stats] == ["dev0", "dev1"]

    def test_trace_and_timeline_carry_shard_identity(self):
        topo = TopologySpec.uniform(
            1, 2, 2, rack_governor=GovernorSpec.greedy(1), window_s=30.0
        )
        fleet = FleetSimulator(
            CONFIG,
            topology=topo,
            telemetry=TelemetrySpec(timeline_cadence_s=30.0, trace_capacity=4096),
        )
        result = fleet.run(poisson_requests(n=60))
        trace_labels = {
            r.label for r in result.telemetry.trace.records if r.label
        }
        assert any(label.startswith("row0/rack0/") for label in trace_labels)
        assert any(label.startswith("row0/rack1/") for label in trace_labels)
        # Shard timelines merge to the racks' common prefix.
        assert result.telemetry.timeline.scope == "row0"


class TestHeterogeneousRacks:
    def test_sprint_disabled_rack_never_sprints(self):
        sprint_rack = RackSpec(n_devices=2, governor=GovernorSpec.greedy(2))
        manycore_rack = RackSpec(n_devices=2, sprint_enabled=False)
        topo = TopologySpec(
            rows=(
                RowSpec(racks=(sprint_rack, manycore_rack), governor=GovernorSpec()),
            ),
            governor=GovernorSpec(),
            window_s=30.0,
        )
        result = FleetSimulator(CONFIG, topology=topo).run(poisson_requests(n=120))
        sprinted_racks = {
            s.request.index: s.device_id for s in result.served if s.sprinted
        }
        # Devices 2 and 3 belong to the sprint-disabled rack.
        assert all(device_id < 2 for device_id in sprinted_racks.values())
        served_by_disabled = sum(
            d.requests_served for d in result.device_stats if d.device_id >= 2
        )
        assert served_by_disabled > 0  # it serves, it just never sprints

    def test_least_loaded_rack_prefers_sprint_capacity(self):
        # Equal-size racks, one sprint-capable: the planner's sprint
        # preference must route it at least an even share of traffic.
        topo = TopologySpec(
            rows=(
                RowSpec(
                    racks=(
                        RackSpec(n_devices=4),
                        RackSpec(n_devices=4, sprint_enabled=False),
                    ),
                    governor=GovernorSpec(),
                ),
            ),
            governor=GovernorSpec(),
            window_s=30.0,
            dispatch="least_loaded_rack",
        )
        result = FleetSimulator(CONFIG, topology=topo).run(poisson_requests(n=200))
        sprint_served = sum(
            d.requests_served for d in result.device_stats if d.device_id < 4
        )
        assert sprint_served >= 100


class TestGridAndExperiments:
    def test_sweep_topology_axis_collapses_redundant_cells(self):
        topo = TopologySpec.uniform(1, 2, 4, rack_governor=GovernorSpec.greedy(2))
        spec = SweepSpec(
            policies=("round_robin",),
            arrival_rates_hz=(0.5,),
            fleet_sizes=(4, 8),
            governors=(GovernorSpec(), GovernorSpec.greedy(2)),
            topologies=(None, topo),
            n_requests=40,
        )
        cells = expand_cells(spec)
        flat = [c for c in cells if c.topology is None]
        hierarchical = [c for c in cells if c.topology is not None]
        # Flat cells keep the full size x governor grid; topology cells
        # take size and budgets from the spec, so those axes collapse.
        assert len(flat) == 4
        assert len(hierarchical) == 1
        assert hierarchical[0].n_devices == topo.total_devices

    def test_sweep_topology_cell_runs(self):
        topo = TopologySpec.uniform(1, 2, 2, rack_governor=GovernorSpec.greedy(1))
        spec = SweepSpec(
            policies=("round_robin",),
            arrival_rates_hz=(0.5,),
            fleet_sizes=(4,),
            topologies=(topo,),
            n_requests=30,
        )
        (cell,) = expand_cells(spec)
        outcome = run_cell(spec, cell, CONFIG)
        assert outcome.summary.offered_count == 30

    def test_scenario_topology_validation(self):
        topo = TopologySpec.uniform(1, 2, 2)
        kwargs = dict(
            arrivals=PoissonArrivals(1.0),
            service=GammaService(5.0, cv=0.5),
            n_requests=10,
        )
        scenario = Scenario(**kwargs, topology=topo)
        assert scenario.n_devices == topo.total_devices
        with pytest.raises(ValueError, match="devices"):
            Scenario(**kwargs, topology=topo, n_devices=3)
        with pytest.raises(ValueError, match="governor"):
            Scenario(**kwargs, topology=topo, governor=GovernorSpec.greedy(2))
        with pytest.raises(ValueError, match="shard worker"):
            Scenario(**kwargs, topology=topo, shard_workers=0)

    def test_replications_invariant_under_shard_workers(self):
        topo = TopologySpec.uniform(
            1, 2, 4, rack_governor=GovernorSpec.greedy(2), window_s=30.0
        )
        kwargs = dict(
            arrivals=PoissonArrivals(1.0),
            service=GammaService(5.0, cv=0.5),
            n_requests=60,
            topology=topo,
        )
        serial = run_replications(
            ReplicationPlan(scenario=Scenario(**kwargs), n_replications=3, base_seed=3)
        )
        fanned = run_replications(
            ReplicationPlan(
                scenario=Scenario(**kwargs, shard_workers=4),
                n_replications=3,
                base_seed=3,
            )
        )
        assert [s.to_dict() for s in serial.summaries] == [
            s.to_dict() for s in fanned.summaries
        ]
