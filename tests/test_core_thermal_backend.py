"""Tests for the pluggable thermal backends under sprint pacing.

Covers the :class:`ThermalSpec` validation surface, each backend's
reservoir arithmetic and telemetry, and the two properties the serving
stack leans on: projections must agree with the mutating drain path
(dispatchers rank devices by them), and the energy ledger must balance
(deposits minus drains equals the stored-heat delta).  The headline
physics properties from the issue are here too: :class:`RCCooling`
converges to :class:`LinearReservoir` as the time constant grows, and
:class:`PcmReservoir` conserves energy under randomized task streams.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.core.pacing import SprintPacer
from repro.core.thermal_backend import (
    THERMAL_BACKENDS,
    LinearReservoir,
    PcmReservoir,
    RCCooling,
    ThermalSpec,
)
from repro.thermal.package import CONVENTIONAL_PACKAGE


@pytest.fixture
def config():
    return SystemConfig.paper_default()


class TestThermalSpec:
    def test_default_is_linear(self, config):
        spec = ThermalSpec()
        assert spec.backend == "linear"
        assert isinstance(spec.build(config), LinearReservoir)

    def test_every_backend_name_builds(self, config):
        built = {name: ThermalSpec(backend=name).build(config) for name in THERMAL_BACKENDS}
        assert isinstance(built["linear"], LinearReservoir)
        assert isinstance(built["rc"], RCCooling)
        assert isinstance(built["pcm"], PcmReservoir)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown thermal backend"):
            ThermalSpec(backend="magma")

    def test_time_constant_only_for_rc(self):
        with pytest.raises(ValueError, match="does not take time_constant_s"):
            ThermalSpec(backend="linear", time_constant_s=5.0)
        with pytest.raises(ValueError, match="does not take time_constant_s"):
            ThermalSpec(backend="pcm", time_constant_s=5.0)
        with pytest.raises(ValueError, match="must be positive"):
            ThermalSpec.rc(0.0)

    def test_labels(self):
        assert ThermalSpec.linear().label == "linear"
        assert ThermalSpec.rc().label == "rc"
        assert ThermalSpec.rc(12.0).label == "rc[12s]"
        assert ThermalSpec.pcm().label == "pcm"

    def test_spec_is_hashable_for_grid_axes(self):
        axis = {ThermalSpec.linear(), ThermalSpec.rc(), ThermalSpec.rc(12.0)}
        assert len(axis) == 3

    def test_rc_default_time_constant_from_package(self, config):
        """The default is the package RC constant R_total * C_eff, which
        equals capacity / sustainable power — the no-stranding bound."""
        backend = ThermalSpec.rc().build(config)
        package = config.package
        effective_c = backend.capacity_j / (
            package.melting_point_c - package.limits.ambient_c
        )
        assert backend.time_constant_s == pytest.approx(
            package.total_resistance_k_w * effective_c
        )
        assert backend.time_constant_s == pytest.approx(
            backend.capacity_j / config.sustainable_power_w
        )

    def test_rc_rejects_time_constants_that_would_strand_heat(self, config):
        bound = ThermalSpec.rc().build(config).time_constant_s
        with pytest.raises(ValueError, match="stored joule"):
            ThermalSpec.rc(bound * 0.5).build(config)
        ThermalSpec.rc(bound * 1.5).build(config)  # above the bound is fine

    def test_pcm_requires_pcm_package(self, config):
        bare = SystemConfig(package=CONVENTIONAL_PACKAGE)
        with pytest.raises(TypeError, match="needs a PcmPackage"):
            ThermalSpec.pcm().build(bare)

    def test_capacity_matches_package_budget_for_every_backend(self, config):
        expected = config.package.sprint_budget_j(config.sprint_power_w)
        for name in THERMAL_BACKENDS:
            backend = ThermalSpec(backend=name).build(config)
            assert backend.capacity_j == pytest.approx(expected), name


class TestLinearReservoir:
    def test_deposit_then_drain_to_floor(self, config):
        backend = ThermalSpec.linear().build(config)
        backend.deposit(5.0)
        assert backend.stored_heat_j == 5.0
        backend.drain(1.0)
        assert backend.stored_heat_j == pytest.approx(5.0 - backend.drain_power_w)
        backend.drain(1e6)
        assert backend.stored_heat_j == 0.0

    def test_headroom_tracks_capacity(self, config):
        backend = ThermalSpec.linear().build(config)
        assert backend.headroom_j == backend.capacity_j
        backend.deposit(backend.capacity_j)
        assert backend.headroom_j == 0.0

    def test_negative_arguments_rejected(self, config):
        backend = ThermalSpec.linear().build(config)
        with pytest.raises(ValueError):
            backend.deposit(-1.0)
        with pytest.raises(ValueError):
            backend.drain(-1.0)

    def test_temperature_proxy_spans_ambient_to_limit(self, config):
        backend = ThermalSpec.linear().build(config)
        limits = config.package.limits
        assert backend.temperature_c == pytest.approx(limits.ambient_c)
        backend.deposit(backend.capacity_j)
        assert backend.temperature_c == pytest.approx(limits.max_junction_c)
        assert backend.melt_fraction == 0.0

    def test_reset_clears_state_and_ledger(self, config):
        backend = ThermalSpec.linear().build(config)
        backend.deposit(3.0)
        backend.drain(0.5)
        backend.reset()
        assert backend.stored_heat_j == 0.0
        assert backend.total_deposited_j == 0.0
        assert backend.total_drained_j == 0.0


class TestRCCooling:
    def test_drains_no_faster_than_linear(self, config):
        """The exponential factor is below 1, so every gap drains less heat
        than the constant-rate rule of thumb."""
        rc = ThermalSpec.rc().build(config)
        linear = ThermalSpec.linear().build(config)
        for backend in (rc, linear):
            backend.deposit(10.0)
        for gap in (0.1, 1.0, 5.0, 20.0):
            assert rc.projected_stored_heat_j(gap) >= linear.projected_stored_heat_j(gap)

    def test_longer_time_constant_is_closer_to_linear(self, config):
        linear = ThermalSpec.linear().build(config)
        linear.deposit(10.0)
        target = linear.projected_stored_heat_j(4.0)
        gaps = []
        for tau in (20.0, 50.0, 500.0, 5e4):
            rc = ThermalSpec.rc(tau).build(config)
            rc.deposit(10.0)
            gaps.append(rc.projected_stored_heat_j(4.0) - target)
        assert all(gap > 0 for gap in gaps)
        assert gaps == sorted(gaps, reverse=True)

    @settings(max_examples=25, deadline=None)
    @given(
        interarrival=st.floats(min_value=0.2, max_value=30.0),
        task_time=st.floats(min_value=0.5, max_value=8.0),
        tasks=st.integers(min_value=1, max_value=20),
    )
    def test_converges_to_linear_reservoir_as_time_constant_grows(
        self, interarrival, task_time, tasks
    ):
        """The issue's property: lim tau->inf RCCooling == LinearReservoir.

        At tau = 1e12 the drained energy P*tau*(1-e^(-dt/tau)) equals P*dt
        to double precision, so whole task streams must match essentially
        bit-for-bit through the pacer."""
        config = SystemConfig.paper_default()
        linear = SprintPacer(config, thermal="linear").simulate_periodic(
            interarrival, task_time, tasks
        )
        rc = SprintPacer(config, thermal=ThermalSpec.rc(1e12)).simulate_periodic(
            interarrival, task_time, tasks
        )
        for a, b in zip(linear.outcomes, rc.outcomes):
            assert b.response_time_s == pytest.approx(a.response_time_s, abs=1e-9)
            assert b.stored_heat_after_j == pytest.approx(a.stored_heat_after_j, abs=1e-6)
        assert rc.sprint_fraction == linear.sprint_fraction

    def test_instantaneous_rate_decays_within_a_gap(self, config):
        """Cooling slows as the package approaches ambient: the second half
        of a long gap drains less than the first half."""
        rc = ThermalSpec.rc().build(config)
        rc.deposit(15.0)
        tau = rc.time_constant_s
        first_half = 15.0 - rc.projected_stored_heat_j(tau)
        second_half = rc.projected_stored_heat_j(tau) - rc.projected_stored_heat_j(2 * tau)
        assert second_half < first_half

    @settings(max_examples=25, deadline=None)
    @given(
        total_idle=st.floats(min_value=0.5, max_value=60.0),
        cuts=st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=0, max_size=6),
    )
    def test_fragmented_idle_drains_like_one_contiguous_gap(self, total_idle, cuts):
        """The cooling clock persists across gaps: slicing the same idle
        time into many drain() calls (e.g. around zero-deposit sustained
        tasks) must not drain more than one contiguous gap would."""
        config = SystemConfig.paper_default()
        contiguous = ThermalSpec.rc().build(config)
        fragmented = ThermalSpec.rc().build(config)
        for backend in (contiguous, fragmented):
            backend.deposit(12.0)
        contiguous.drain(total_idle)
        remaining = total_idle
        for cut in cuts:
            piece = remaining * cut
            fragmented.drain(piece)
            remaining -= piece
        fragmented.drain(remaining)
        assert fragmented.stored_heat_j == pytest.approx(
            contiguous.stored_heat_j, abs=1e-9
        )

    def test_deposit_restarts_the_cooling_clock(self, config):
        """A sprint re-heats the junction, so cooling after a deposit
        restarts at the full sustainable rate."""
        rc = ThermalSpec.rc().build(config)
        rc.deposit(10.0)
        rc.drain(2.0 * rc.time_constant_s)  # deep into the slow tail
        slow = rc.stored_heat_j - rc.projected_stored_heat_j(1.0)
        rc.deposit(5.0)
        fast = rc.stored_heat_j - rc.projected_stored_heat_j(1.0)
        assert fast > slow

    def test_no_heat_is_ever_stranded(self, config):
        """Regression for the decay-envelope trap: however the reservoir is
        filled, the full budget eventually returns — a once-sprinted device
        must not be down-ranked by dispatch forever."""
        from repro.core.pacing import SprintPacer

        pacer = SprintPacer(config, thermal="rc")
        # One maximal sprint fills the reservoir to (nearly) capacity.
        pacer.task_arrival(0.0, sustained_time_s=20.0)
        assert pacer.available_fraction < 0.1
        assert pacer.available_fraction_at(1e9) == pytest.approx(1.0, abs=1e-6)
        backend = pacer.backend
        assert backend.projected_stored_heat_j(1e9) == pytest.approx(0.0, abs=1e-6)


class TestPcmReservoir:
    def test_temperature_pinned_during_melt(self, config):
        backend = ThermalSpec.pcm().build(config)
        melt_c = config.package.melting_point_c
        assert backend.temperature_c == pytest.approx(config.package.limits.ambient_c)
        # Deposit past the sensible warm-up into the latent region.
        sensible_to_melt = backend.block.sensible_capacity_j_k * (
            melt_c - config.package.limits.ambient_c
        )
        backend.deposit(sensible_to_melt + 0.5 * backend.block.latent_capacity_j)
        assert backend.temperature_c == pytest.approx(melt_c)
        assert 0.0 < backend.melt_fraction < 1.0

    def test_plateau_drains_at_constant_power(self, config):
        backend = ThermalSpec.pcm().build(config)
        sensible_to_melt = backend.block.sensible_capacity_j_k * (
            config.package.melting_point_c - config.package.limits.ambient_c
        )
        backend.deposit(sensible_to_melt + 0.9 * backend.block.latent_capacity_j)
        dt = 0.5
        drained_1 = backend.stored_heat_j - backend.projected_stored_heat_j(dt)
        assert drained_1 == pytest.approx(backend.plateau_power_w * dt)

    def test_solid_phase_drains_exponentially_slowly(self, config):
        """The last joules drain far slower than the plateau — the regime
        where the linear rule of thumb is optimistic."""
        backend = ThermalSpec.pcm().build(config)
        backend.deposit(0.1 * backend.capacity_j)  # stays in the solid region
        dt = 1.0
        drained = backend.stored_heat_j - backend.projected_stored_heat_j(dt)
        assert drained < backend.plateau_power_w * dt
        # Newton cooling is asymptotic: heat survives long after the linear
        # rule of thumb would have emptied the reservoir.
        linear = ThermalSpec.linear().build(SystemConfig.paper_default())
        linear.deposit(0.1 * linear.capacity_j)
        horizon = 3.0 * backend.solid_time_constant_s
        assert linear.projected_stored_heat_j(horizon) == 0.0
        assert backend.projected_stored_heat_j(horizon) > 0.0

    def test_liquid_phase_cools_back_to_plateau(self, config):
        backend = ThermalSpec.pcm().build(config)
        backend.deposit(backend.capacity_j)  # fully molten, at the limit
        assert backend.temperature_c == pytest.approx(
            config.package.limits.max_junction_c
        )
        melt_c = config.package.melting_point_c
        # A long drain passes back down through the plateau.
        backend.drain(2.0 * backend.solid_time_constant_s)
        assert backend.temperature_c <= melt_c + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        gaps=st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=10),
        task_times=st.lists(
            st.floats(min_value=0.2, max_value=8.0), min_size=10, max_size=10
        ),
    )
    def test_conserves_energy_under_randomized_task_streams(self, gaps, task_times):
        """The issue's property: deposits - drains = enthalpy delta."""
        config = SystemConfig.paper_default()
        pacer = SprintPacer(config, thermal="pcm")
        backend = pacer.backend
        floor = backend.block.enthalpy_j
        for gap, task_time in zip(gaps, task_times):
            pacer.execute_at(pacer.busy_until_s + gap, task_time)
        enthalpy_delta = backend.block.enthalpy_j - floor
        assert backend.total_deposited_j - backend.total_drained_j == pytest.approx(
            enthalpy_delta, abs=1e-9
        )
        assert backend.stored_heat_j == pytest.approx(enthalpy_delta, abs=1e-12)


class TestProjectionConsistency:
    """Dispatchers rank devices by projections; they must match reality."""

    @settings(max_examples=30, deadline=None)
    @given(
        backend_name=st.sampled_from(THERMAL_BACKENDS),
        deposits=st.lists(st.floats(min_value=0.0, max_value=6.0), min_size=1, max_size=8),
        gaps=st.lists(st.floats(min_value=0.0, max_value=20.0), min_size=8, max_size=8),
    )
    def test_projected_equals_mutating_drain(self, backend_name, deposits, gaps):
        config = SystemConfig.paper_default()
        backend = ThermalSpec(backend=backend_name).build(config)
        for joules, gap in zip(deposits, gaps):
            headroom = backend.headroom_j
            backend.deposit(min(joules, headroom))
            projected = backend.projected_stored_heat_j(gap)
            backend.drain(gap)
            assert backend.stored_heat_j == pytest.approx(projected, abs=1e-12)
            assert 0.0 <= backend.stored_heat_j <= backend.capacity_j + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        backend_name=st.sampled_from(THERMAL_BACKENDS),
        gaps=st.lists(st.floats(min_value=0.0, max_value=25.0), min_size=1, max_size=8),
        task_times=st.lists(
            st.floats(min_value=0.2, max_value=8.0), min_size=8, max_size=8
        ),
    )
    def test_pacer_projections_agree_for_every_backend(
        self, backend_name, gaps, task_times
    ):
        """Extends test_core_pacing's linear-only projection property to the
        physics backends, which thermal_aware dispatch relies on."""
        config = SystemConfig.paper_default()
        pacer = SprintPacer(config, thermal=backend_name)
        for gap, task_time in zip(gaps, task_times):
            start = pacer.busy_until_s + gap
            projected_heat = pacer.stored_heat_at(start)
            outcome = pacer.execute_at(start, task_time)
            assert outcome.stored_heat_before_j == pytest.approx(projected_heat, abs=1e-12)

    def test_projections_never_mutate(self, config):
        for name in THERMAL_BACKENDS:
            backend = ThermalSpec(backend=name).build(config)
            backend.deposit(4.0)
            stored = backend.stored_heat_j
            for probe in (0.0, 0.5, 5.0, 500.0):
                backend.projected_stored_heat_j(probe)
            assert backend.stored_heat_j == stored


class TestLedger:
    def test_ledger_balances_for_every_backend(self, config):
        for name in THERMAL_BACKENDS:
            pacer = SprintPacer(config, thermal=name)
            pacer.simulate_periodic(1.5, 3.0, 25)
            backend = pacer.backend
            assert backend.total_deposited_j - backend.total_drained_j == pytest.approx(
                backend.stored_heat_j, abs=1e-9
            ), name

    def test_shared_backend_instance_is_accepted(self, config):
        """A prebuilt backend may be handed to a pacer (which then owns it)."""
        backend = ThermalSpec.rc(30.0).build(config)
        pacer = SprintPacer(config, thermal=backend)
        assert pacer.backend is backend
        assert isinstance(pacer.backend, RCCooling)
        assert math.isclose(pacer.backend.time_constant_s, 30.0)

    def test_bad_thermal_argument_rejected(self, config):
        with pytest.raises(ValueError, match="unknown thermal backend"):
            SprintPacer(config, thermal="lava")
        with pytest.raises(TypeError, match="thermal must be"):
            SprintPacer(config, thermal=42)
