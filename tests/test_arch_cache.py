"""Tests for the cache geometry and miss-rate models."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.cache import (
    CacheConfig,
    CacheHierarchy,
    MissRates,
    PAPER_L1,
    PAPER_L2,
    capacity_miss_scale,
)


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        assert PAPER_L1.size_bytes == 32 * 1024
        assert PAPER_L1.associativity == 8
        assert PAPER_L1.lines == 512
        assert PAPER_L1.sets == 64

    def test_paper_l2_geometry(self):
        assert PAPER_L2.size_bytes == 4 * 1024 * 1024
        assert PAPER_L2.associativity == 16
        assert PAPER_L2.hit_latency_cycles == 20

    def test_fits(self):
        assert PAPER_L1.fits(16 * 1024)
        assert not PAPER_L1.fits(64 * 1024)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=4)

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=4, line_bytes=64)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=2, hit_latency_cycles=-1)


class TestCapacityMissScale:
    def test_equal_to_capacity_is_one(self):
        assert capacity_miss_scale(1024, 1024) == 1.0

    def test_above_capacity_is_one(self):
        assert capacity_miss_scale(10 * 1024, 1024) == 1.0

    def test_below_capacity_reduces_misses(self):
        assert capacity_miss_scale(256, 1024) == pytest.approx(0.5)

    def test_rejects_non_positive_inputs(self):
        with pytest.raises(ValueError):
            capacity_miss_scale(0, 1024)
        with pytest.raises(ValueError):
            capacity_miss_scale(1024, 0)

    @given(
        working_set=st.floats(min_value=1.0, max_value=1e9),
        capacity=st.floats(min_value=1.0, max_value=1e9),
    )
    def test_scale_always_in_unit_interval(self, working_set, capacity):
        scale = capacity_miss_scale(working_set, capacity)
        assert 0.0 < scale <= 1.0

    @given(
        smaller=st.floats(min_value=1.0, max_value=1e6),
        factor=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_scale_monotonic_in_working_set(self, smaller, factor):
        capacity = 1e6
        assert capacity_miss_scale(smaller, capacity) <= capacity_miss_scale(
            smaller * factor, capacity
        ) + 1e-12


class TestMissRates:
    def test_dram_rate_is_product(self):
        rates = MissRates(l1_miss_rate=0.1, l2_miss_rate=0.5)
        assert rates.dram_rate == pytest.approx(0.05)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MissRates(l1_miss_rate=1.5, l2_miss_rate=0.5)


class TestCacheHierarchy:
    def setup_method(self):
        self.hierarchy = CacheHierarchy()

    def test_small_working_set_reduces_misses(self):
        small = self.hierarchy.effective_miss_rates(0.05, 0.5, 16 * 1024, sharers=1)
        large = self.hierarchy.effective_miss_rates(0.05, 0.5, 64 * 1024 * 1024, sharers=1)
        assert small.l1_miss_rate < large.l1_miss_rate
        assert small.l2_miss_rate < large.l2_miss_rate

    def test_sharing_l2_increases_l2_misses(self):
        alone = self.hierarchy.effective_miss_rates(0.05, 0.5, 32 * 1024 * 1024, sharers=1)
        shared = self.hierarchy.effective_miss_rates(0.05, 0.5, 32 * 1024 * 1024, sharers=16)
        assert shared.l2_miss_rate >= alone.l2_miss_rate * 0.99

    def test_partitioning_reduces_per_core_l1_misses(self):
        alone = self.hierarchy.effective_miss_rates(0.2, 0.5, 8 * 1024 * 1024, sharers=1)
        shared = self.hierarchy.effective_miss_rates(0.2, 0.5, 8 * 1024 * 1024, sharers=64)
        assert shared.l1_miss_rate <= alone.l1_miss_rate

    def test_floor_applies(self):
        rates = self.hierarchy.effective_miss_rates(0.001, 0.001, 1024, sharers=1)
        assert rates.l1_miss_rate >= self.hierarchy.miss_rate_floor
        assert rates.l2_miss_rate >= self.hierarchy.miss_rate_floor

    def test_l1_miss_penalty_is_l2_hit_latency(self):
        assert self.hierarchy.l1_miss_penalty_cycles() == PAPER_L2.hit_latency_cycles

    def test_cold_start_misses_capped_at_l1(self):
        assert self.hierarchy.cold_start_misses(1e9) == pytest.approx(
            PAPER_L1.size_bytes / PAPER_L1.line_bytes
        )
        assert self.hierarchy.cold_start_misses(6400) == pytest.approx(100.0)

    def test_rejects_invalid_sharers(self):
        with pytest.raises(ValueError):
            self.hierarchy.effective_miss_rates(0.05, 0.5, 1024, sharers=0)

    @given(
        l1=st.floats(min_value=0.0, max_value=1.0),
        l2=st.floats(min_value=0.0, max_value=1.0),
        ws=st.floats(min_value=1.0, max_value=1e9),
        sharers=st.integers(min_value=1, max_value=128),
    )
    def test_rates_always_valid(self, l1, l2, ws, sharers):
        rates = self.hierarchy.effective_miss_rates(l1, l2, ws, sharers)
        assert 0.0 <= rates.l1_miss_rate <= 1.0
        assert 0.0 <= rates.l2_miss_rate <= 1.0
