"""Smoke tests: every examples/*.py main path runs, with shrunk parameters.

Each example is loaded from its file path (examples/ is not a package) and
its module-level sweep constants are monkeypatched down so the whole suite
stays fast; the point is that every example's main path executes against
the current API, so examples cannot silently rot.  A completeness check
fails if a new example is added without a smoke test here.
"""

from __future__ import annotations

import functools
import importlib.util
import sys
from pathlib import Path

import pytest

import repro.workloads.suite as suite_module
from repro.experiments import fig06_activation, fig08_sobel

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Example stem -> the marker its output must contain after running main().
COVERED = {
    "quickstart": "configuration",
    "bursty_workload": "minimum spacing",
    "camera_search": "keypoints",
    "sprint_policy_study": "sprint intensity",
    "thermal_design_space": "heat store",
    "fleet_serving": "degenerate case",
    "power_budget_study": "concurrency cap",
    "thermal_fidelity_study": "melt plateau",
    "replication_study": "error bars",
    "telemetry_study": "pooled p99",
    "reproduce_paper": "EXPERIMENTS",
    "fast_path_study": "vector core",
    "topology_study": "grant cascade",
}


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.fixture
def tiny_kernel_suite(monkeypatch):
    """Shrink every Table 1 input class to 0.05 MP.

    ``KernelWorkloadFamily`` clamps missing class labels to the largest
    available one, so code asking for class B/C/D transparently gets the
    tiny class A and the real simulation paths still execute.
    """
    monkeypatch.setattr(
        suite_module,
        "INPUT_CLASSES",
        {name: {"A": 0.05} for name in suite_module.INPUT_CLASSES},
    )


@pytest.fixture
def single_activation_schedule(monkeypatch):
    """Simulate only one PDN activation transient instead of all three."""
    monkeypatch.setattr(
        fig06_activation,
        "run",
        functools.partial(
            fig06_activation.run, schedules=fig06_activation.PAPER_SCHEDULES[-1:]
        ),
    )


def test_every_example_has_a_smoke_test():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert names == set(COVERED), "examples/ and COVERED are out of sync"


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert COVERED["quickstart"] in out
    assert "16-core parallel sprint" in out


def test_bursty_workload(capsys, monkeypatch):
    module = load_example("bursty_workload")
    monkeypatch.setattr(module, "TASKS", 6)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["bursty_workload"] in out
    assert "constrained design" in out


def test_camera_search(capsys, monkeypatch):
    module = load_example("camera_search")
    monkeypatch.setattr(module, "RESOLUTIONS_MP", (0.3,))
    module.main()
    out = capsys.readouterr().out
    assert COVERED["camera_search"] in out
    assert "0.3MP" in out.replace(" ", "")


def test_sprint_policy_study(capsys, monkeypatch, tiny_kernel_suite):
    module = load_example("sprint_policy_study")
    monkeypatch.setattr(module, "SPRINT_CORE_COUNTS", (16,))
    module.main()
    out = capsys.readouterr().out
    assert COVERED["sprint_policy_study"] in out
    assert "budget estimator" in out


def test_thermal_design_space(capsys, monkeypatch, single_activation_schedule):
    module = load_example("thermal_design_space")
    monkeypatch.setattr(module, "PCM_MASSES_G", (0.150,))
    monkeypatch.setattr(module, "MELTING_POINTS_C", (55.0,))
    module.main()
    out = capsys.readouterr().out
    assert COVERED["thermal_design_space"] in out
    assert "melting point" in out


def test_fleet_serving(capsys, monkeypatch):
    module = load_example("fleet_serving")
    monkeypatch.setattr(module, "REQUESTS", 60)
    monkeypatch.setattr(module, "ARRIVAL_RATES_HZ", (0.05, 0.2))
    monkeypatch.setattr(module, "SWEEP_WORKERS", 2)
    monkeypatch.setattr(module, "REPLICATIONS", 5)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["fleet_serving"] in out
    assert "MATCH" in out
    assert "error bars" in out
    assert "sign test p=" in out
    assert "best p99" in out
    assert "admission control BEATS immediate dispatch" in out
    assert "deadlines at overload" in out


def test_power_budget_study(capsys, monkeypatch):
    module = load_example("power_budget_study")
    monkeypatch.setattr(module, "REQUESTS", 60)
    monkeypatch.setattr(module, "BURSTY_REQUESTS", 60)
    monkeypatch.setattr(module, "SPRINT_CAPS", (1, 16))
    monkeypatch.setattr(module, "SWEEP_WORKERS", 2)
    monkeypatch.setattr(module, "REPLICATIONS", 5)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["power_budget_study"] in out
    assert "breaker" in out
    assert "burst credit" in out
    assert "governor grid" in out
    assert "governance error bars" in out
    assert "sign test p=" in out


def test_replication_study(capsys, monkeypatch):
    module = load_example("replication_study")
    monkeypatch.setattr(module, "REQUESTS", 40)
    monkeypatch.setattr(module, "REPLICATIONS", 6)
    monkeypatch.setattr(module, "MAX_REPLICATIONS", 10)
    monkeypatch.setattr(module, "WORKERS", 2)
    # The CRN-beats-independent claim is asserted *inside* the example, so
    # this smoke test also covers the acceptance criterion at shrunk scale.
    module.main()
    out = capsys.readouterr().out
    assert COVERED["replication_study"] in out
    assert "CRN variance reduction" in out
    assert "CRN pairing cuts the p99-delta CI half-width" in out
    assert "sequential stopping" in out
    assert "stopped after" in out


def test_telemetry_study(capsys, monkeypatch):
    module = load_example("telemetry_study")
    monkeypatch.setattr(module, "LONG_HORIZON_REQUESTS", 2_000)
    monkeypatch.setattr(module, "REPLICATIONS", 4)
    monkeypatch.setattr(module, "WORKERS", 2)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["telemetry_study"] in out
    assert "flat memory" in out
    assert "rank-error bound" in out
    assert "conservation holds" in out
    assert "ring kept" in out
    assert "no samples ever held" in out


def test_thermal_fidelity_study(capsys, monkeypatch):
    module = load_example("thermal_fidelity_study")
    monkeypatch.setattr(module, "REQUESTS", 60)
    monkeypatch.setattr(module, "ARRIVAL_RATES_HZ", (0.2, 0.8))
    monkeypatch.setattr(module, "SWEEP_WORKERS", 2)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["thermal_fidelity_study"] in out
    assert "holds full sprint capacity through the melt plateau" in out
    assert "cooldown fidelity" in out
    assert "linear err" in out
    assert "thermal grid" in out


def test_fast_path_study(capsys, monkeypatch):
    module = load_example("fast_path_study")
    monkeypatch.setattr(module, "CURVE_DEVICES", 32)
    monkeypatch.setattr(module, "CURVE_SIZES", (2_000,))
    monkeypatch.setattr(module, "IDENTITY_REQUESTS", 400)
    monkeypatch.setattr(module, "CONTRACT_REQUESTS", 300)
    monkeypatch.setattr(module, "REPLICATIONS", 5)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["fast_path_study"] in out
    assert "bit-identical" in out
    assert "exact loop: policy 'least_loaded'" in out
    assert "within contract" in out
    assert "understated by design" in out


def test_topology_study(capsys, monkeypatch):
    module = load_example("topology_study")
    monkeypatch.setattr(module, "REQUESTS", 80)
    monkeypatch.setattr(module, "SHARD_WORKERS", 2)
    module.main()
    out = capsys.readouterr().out
    assert COVERED["topology_study"] in out
    assert "heterogeneous racks" in out
    assert "breaker trips by level" in out
    assert "summaries identical: True" in out


def test_reproduce_paper(
    capsys, monkeypatch, tmp_path, tiny_kernel_suite, single_activation_schedule
):
    real_fig08_run = fig08_sobel.run
    # The report passes megapixels= explicitly, so a partial() default would
    # be overridden; force the tiny sweep regardless of the caller's choice.
    monkeypatch.setattr(
        fig08_sobel,
        "run",
        lambda *args, **kwargs: real_fig08_run(
            *args, **{**kwargs, "megapixels": (0.5,)}
        ),
    )
    module = load_example("reproduce_paper")
    output = tmp_path / "report.md"
    assert module.main(["--quick", "--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert COVERED["reproduce_paper"] in out
    assert "Figure 11" in out
    report = output.read_text()
    assert report.startswith("# EXPERIMENTS")
