"""Tests for the sprint controller state machine and the result containers."""

import numpy as np
import pytest

from repro.arch.simulator import ExecutionTrace
from repro.core.budget import OracleBudgetEstimator
from repro.core.config import SystemConfig
from repro.core.controller import SprintController
from repro.core.metrics import ModeInterval, SprintMetrics, SprintResult
from repro.core.modes import ExecutionMode, SprintMode, TerminationAction


class TestSprintControllerLifecycle:
    def setup_method(self):
        self.config = SystemConfig.paper_default()

    def test_parallel_sprint_decision(self):
        controller = SprintController(self.config)
        decision = controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        assert decision.mode is SprintMode.SPRINT
        assert decision.cores == 16
        assert decision.activation_delay_s == pytest.approx(128e-6, rel=0.05)
        assert controller.is_sprinting

    def test_single_thread_does_not_sprint(self):
        controller = SprintController(self.config)
        decision = controller.begin_task(1, ExecutionMode.PARALLEL_SPRINT)
        assert decision.mode is SprintMode.SUSTAINED
        assert decision.cores == 1

    def test_sustained_mode(self):
        controller = SprintController(self.config)
        decision = controller.begin_task(16, ExecutionMode.SUSTAINED_SINGLE_CORE)
        assert decision.mode is SprintMode.SUSTAINED
        assert decision.cores == 1
        assert not controller.is_sprinting

    def test_dvfs_sprint_boosts_one_core(self):
        controller = SprintController(self.config)
        decision = controller.begin_task(16, ExecutionMode.DVFS_SPRINT)
        assert decision.mode is SprintMode.SPRINT
        assert decision.cores == 1
        assert decision.operating_point.frequency_hz > 2e9

    def test_quanta_within_budget_do_not_reconfigure(self):
        controller = SprintController(self.config)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        assert controller.on_quantum(0.016, 0.001, junction_c=30.0) is None

    def test_budget_exhaustion_migrates_to_one_core(self):
        controller = SprintController(self.config)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        budget = controller.budget.effective_budget_j
        decision = controller.on_quantum(budget * 1.1, 0.001, junction_c=65.0)
        assert decision is not None
        assert decision.mode is SprintMode.SUSTAINED
        assert decision.cores == 1
        assert controller.sprint_exhausted_at_s is not None

    def test_over_temperature_terminates_even_with_budget(self):
        controller = SprintController(
            self.config, budget=OracleBudgetEstimator(self.config.package)
        )
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        decision = controller.on_quantum(0.001, 0.001, junction_c=70.5)
        assert decision is not None
        assert decision.cores == 1

    def test_throttle_termination_keeps_cores_at_low_frequency(self):
        config = self.config.with_policy(
            self.config.policy.with_termination(TerminationAction.HARDWARE_THROTTLE)
        )
        controller = SprintController(config)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        budget = controller.budget.effective_budget_j
        decision = controller.on_quantum(budget * 1.1, 0.001, junction_c=65.0)
        assert decision.mode is SprintMode.THROTTLED
        assert decision.cores == 16
        assert decision.operating_point.frequency_hz == pytest.approx(1e9 / 16)

    def test_max_duration_enforced_only_when_asked(self):
        from dataclasses import replace

        enforcing = self.config.with_policy(
            replace(self.config.policy, enforce_max_duration=True, max_sprint_duration_s=0.01)
        )
        controller = SprintController(enforcing)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        decision = controller.on_quantum(0.001, 0.02, junction_c=30.0)
        assert decision is not None

    def test_finish_task_enters_cooldown(self):
        controller = SprintController(self.config)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        controller.finish_task()
        assert controller.mode is SprintMode.COOLDOWN
        assert controller.active_cores == 0

    def test_cannot_begin_while_running(self):
        controller = SprintController(self.config)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        with pytest.raises(RuntimeError):
            controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)

    def test_transitions_are_recorded(self):
        controller = SprintController(self.config)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        budget = controller.budget.effective_budget_j
        controller.on_quantum(budget * 1.1, 0.001, junction_c=65.0)
        controller.finish_task()
        modes = [t.mode for t in controller.transitions]
        assert modes == [SprintMode.SPRINT, SprintMode.SUSTAINED, SprintMode.COOLDOWN]

    def test_invalid_inputs(self):
        controller = SprintController(self.config)
        with pytest.raises(ValueError):
            controller.begin_task(0, ExecutionMode.PARALLEL_SPRINT)
        controller.begin_task(16, ExecutionMode.PARALLEL_SPRINT)
        with pytest.raises(ValueError):
            controller.on_quantum(-1.0, 0.001, 30.0)


class TestModeInterval:
    def test_duration(self):
        interval = ModeInterval(SprintMode.SPRINT, 0.1, 0.4, active_cores=16)
        assert interval.duration_s == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModeInterval(SprintMode.SPRINT, 1.0, 0.5, active_cores=16)
        with pytest.raises(ValueError):
            ModeInterval(SprintMode.SPRINT, 0.0, 0.5, active_cores=-1)


class TestSprintMetrics:
    def test_accumulates_by_mode(self):
        metrics = SprintMetrics()
        metrics.record_quantum(SprintMode.SPRINT, 0.1, 1.6, 50.0, 1e8, 1e6)
        metrics.record_quantum(SprintMode.SUSTAINED, 0.2, 0.2, 55.0, 2e8, 2e6)
        assert metrics.total_energy_j == pytest.approx(1.8)
        assert metrics.instructions == pytest.approx(3e8)
        assert metrics.time_in(SprintMode.SPRINT) == pytest.approx(0.1)
        assert metrics.energy_in(SprintMode.SUSTAINED) == pytest.approx(0.2)
        assert metrics.peak_junction_c == pytest.approx(55.0)
        assert metrics.peak_power_w == pytest.approx(16.0)

    def test_validation(self):
        metrics = SprintMetrics()
        with pytest.raises(ValueError):
            metrics.record_quantum(SprintMode.SPRINT, -0.1, 1.0, 50.0, 0.0, 0.0)


def _make_result(total_time_s: float, energy_j: float) -> SprintResult:
    metrics = SprintMetrics()
    metrics.record_quantum(
        SprintMode.SPRINT, total_time_s, energy_j, 60.0, 1e9, 1e6
    )
    return SprintResult(
        workload_name="toy",
        input_label="B",
        execution_mode=ExecutionMode.PARALLEL_SPRINT,
        completed=True,
        total_time_s=total_time_s,
        metrics=metrics,
        mode_timeline=[ModeInterval(SprintMode.SPRINT, 0.0, total_time_s, 16)],
        sprint_completion_fraction=1.0,
        sprint_exhausted_at_s=None,
        junction_trace_c=np.array([25.0, 60.0]),
        trace_times_s=np.array([0.0, total_time_s]),
        execution_trace=ExecutionTrace(),
    )


class TestSprintResult:
    def test_derived_quantities(self):
        fast = _make_result(0.5, 8.0)
        slow = _make_result(5.0, 4.0)
        assert fast.average_power_w == pytest.approx(16.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)
        assert fast.energy_ratio_over(slow) == pytest.approx(2.0)
        assert not fast.sprint_was_truncated
        assert fast.sprint_duration_s == pytest.approx(0.5)
        assert fast.peak_junction_c == pytest.approx(60.0)
