"""Tests for the DRAM bandwidth and latency model."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.memory import BandwidthShare, MemoryConfig, MemorySystem, PAPER_MEMORY


class TestMemoryConfig:
    def test_paper_parameters(self):
        assert PAPER_MEMORY.channels == 2
        assert PAPER_MEMORY.bandwidth_per_channel_gbs == 4.0
        assert PAPER_MEMORY.uncontended_latency_ns == 60.0

    def test_peak_bandwidth(self):
        assert PAPER_MEMORY.peak_bandwidth_bytes_s == pytest.approx(8e9)

    def test_latency_in_cycles_at_1ghz(self):
        assert PAPER_MEMORY.latency_cycles(1e9) == pytest.approx(60.0)

    def test_latency_scales_with_frequency(self):
        assert PAPER_MEMORY.latency_cycles(2e9) == pytest.approx(120.0)

    def test_bandwidth_scaling(self):
        doubled = PAPER_MEMORY.with_bandwidth_scale(2.0)
        assert doubled.peak_bandwidth_bytes_s == pytest.approx(16e9)
        # The original is unchanged (frozen dataclass copy).
        assert PAPER_MEMORY.peak_bandwidth_bytes_s == pytest.approx(8e9)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MemoryConfig(channels=0)
        with pytest.raises(ValueError):
            MemoryConfig(queueing_knee=1.5)
        with pytest.raises(ValueError):
            PAPER_MEMORY.with_bandwidth_scale(0.0)
        with pytest.raises(ValueError):
            PAPER_MEMORY.latency_cycles(0.0)


class TestMemorySystem:
    def setup_method(self):
        self.system = MemorySystem()

    def test_demand_below_peak_fully_granted(self):
        share = self.system.arbitrate(1e9)
        assert share.granted_bytes_s == pytest.approx(1e9)
        assert not share.saturated
        assert share.throttle_factor == pytest.approx(1.0)

    def test_demand_above_peak_is_clipped(self):
        share = self.system.arbitrate(20e9)
        assert share.granted_bytes_s == pytest.approx(8e9)
        assert share.saturated
        assert share.throttle_factor == pytest.approx(0.4)

    def test_zero_demand(self):
        share = self.system.arbitrate(0.0)
        assert share.utilization == 0.0
        assert share.throttle_factor == 1.0

    def test_latency_flat_below_knee(self):
        assert self.system.latency_multiplier(0.0) == 1.0
        assert self.system.latency_multiplier(0.5) == 1.0

    def test_latency_grows_above_knee(self):
        assert self.system.latency_multiplier(0.8) > 1.0
        assert self.system.latency_multiplier(1.0) == pytest.approx(
            self.system.config.max_latency_multiplier
        )

    def test_effective_latency_combines_base_and_contention(self):
        base = self.system.effective_latency_cycles(1e9, 0.0)
        loaded = self.system.effective_latency_cycles(1e9, 1.0)
        assert base == pytest.approx(60.0)
        assert loaded == pytest.approx(60.0 * self.system.config.max_latency_multiplier)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            self.system.arbitrate(-1.0)

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(ValueError):
            self.system.latency_multiplier(1.5)

    @given(demand=st.floats(min_value=0.0, max_value=1e12))
    def test_granted_never_exceeds_peak_or_demand(self, demand):
        share = self.system.arbitrate(demand)
        assert share.granted_bytes_s <= self.system.config.peak_bandwidth_bytes_s + 1e-6
        assert share.granted_bytes_s <= demand + 1e-6
        assert 0.0 <= share.utilization <= 1.0

    @given(
        low=st.floats(min_value=0.0, max_value=1.0),
        high=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_latency_multiplier_monotonic(self, low, high):
        low, high = min(low, high), max(low, high)
        assert self.system.latency_multiplier(low) <= self.system.latency_multiplier(
            high
        ) + 1e-12


class TestBandwidthShare:
    def test_throttle_factor_of_zero_demand(self):
        share = BandwidthShare(
            demanded_bytes_s=0.0, granted_bytes_s=0.0, utilization=0.0, latency_multiplier=1.0
        )
        assert share.throttle_factor == 1.0
        assert not share.saturated
