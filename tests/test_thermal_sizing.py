"""Unit tests for the Section 4.1-4.3 heat-store sizing calculators."""

import pytest

from repro.thermal.materials import ALUMINIUM, COPPER, GENERIC_PCM, ICOSANE
from repro.thermal.sizing import (
    compare_heat_stores,
    heat_flux_w_cm2,
    pcm_mass_g_for_heat,
    pcm_thickness_mm,
    solid_block_thickness_mm,
    sprint_heat_j,
)

DIE_AREA_MM2 = 64.0
SPRINT_HEAT_J = 16.0


class TestPaperNumbers:
    def test_sprint_heat_for_16w_one_second(self):
        assert sprint_heat_j(16.0, 1.0) == pytest.approx(16.0)

    def test_copper_block_thickness_is_about_7mm(self):
        # Section 4.1: a 7.2 mm copper block absorbs 16 J with a 10 C rise.
        thickness = solid_block_thickness_mm(COPPER, SPRINT_HEAT_J, DIE_AREA_MM2, 10.0)
        assert thickness == pytest.approx(7.2, abs=0.3)

    def test_aluminium_block_thickness_is_about_10mm(self):
        # Section 4.1: 10.3 mm of aluminium for the same heat and rise.
        thickness = solid_block_thickness_mm(
            ALUMINIUM, SPRINT_HEAT_J, DIE_AREA_MM2, 10.0
        )
        assert thickness == pytest.approx(10.3, abs=0.4)

    def test_pcm_mass_is_about_150_milligrams(self):
        # Section 4.2: ~150 mg of a 100 J/g PCM absorbs ~16 J.
        mass = pcm_mass_g_for_heat(GENERIC_PCM, SPRINT_HEAT_J)
        assert mass == pytest.approx(0.160, abs=0.02)

    def test_pcm_thickness_is_about_2_3mm(self):
        thickness = pcm_thickness_mm(GENERIC_PCM, SPRINT_HEAT_J, DIE_AREA_MM2)
        assert thickness == pytest.approx(2.3, abs=0.3)

    def test_peak_heat_flux_is_25_w_per_cm2(self):
        # Section 4.3: 16 W over a 64 mm^2 die is 25 W/cm^2.
        assert heat_flux_w_cm2(16.0, DIE_AREA_MM2) == pytest.approx(25.0)


class TestScalingBehaviour:
    def test_thickness_scales_linearly_with_heat(self):
        thin = solid_block_thickness_mm(COPPER, 8.0, DIE_AREA_MM2, 10.0)
        thick = solid_block_thickness_mm(COPPER, 16.0, DIE_AREA_MM2, 10.0)
        assert thick == pytest.approx(2 * thin)

    def test_thickness_inverse_with_allowed_rise(self):
        tight = solid_block_thickness_mm(COPPER, 16.0, DIE_AREA_MM2, 5.0)
        loose = solid_block_thickness_mm(COPPER, 16.0, DIE_AREA_MM2, 10.0)
        assert tight == pytest.approx(2 * loose)

    def test_higher_latent_heat_needs_less_mass(self):
        generic = pcm_mass_g_for_heat(GENERIC_PCM, 16.0)
        icosane = pcm_mass_g_for_heat(ICOSANE, 16.0)
        assert icosane < generic

    def test_flux_scales_inverse_with_area(self):
        assert heat_flux_w_cm2(16.0, 32.0) == pytest.approx(2 * heat_flux_w_cm2(16.0, 64.0))


class TestValidation:
    def test_negative_heat_rejected(self):
        with pytest.raises(ValueError):
            solid_block_thickness_mm(COPPER, -1.0, DIE_AREA_MM2, 10.0)
        with pytest.raises(ValueError):
            pcm_mass_g_for_heat(GENERIC_PCM, -1.0)
        with pytest.raises(ValueError):
            sprint_heat_j(-1.0, 1.0)

    def test_non_positive_area_rejected(self):
        with pytest.raises(ValueError):
            solid_block_thickness_mm(COPPER, 16.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            heat_flux_w_cm2(16.0, 0.0)

    def test_non_positive_rise_rejected(self):
        with pytest.raises(ValueError):
            solid_block_thickness_mm(COPPER, 16.0, DIE_AREA_MM2, 0.0)

    def test_pcm_sizing_requires_phase_change_material(self):
        with pytest.raises(ValueError):
            pcm_mass_g_for_heat(COPPER, 16.0)


class TestComparisonTable:
    def test_compare_heat_stores_returns_all_options(self):
        options = compare_heat_stores(
            SPRINT_HEAT_J,
            DIE_AREA_MM2,
            allowed_rise_c=10.0,
            solid_materials=[COPPER, ALUMINIUM],
            pcm_materials=[GENERIC_PCM, ICOSANE],
        )
        assert [o.material_name for o in options] == [
            "copper",
            "aluminium",
            "generic-pcm",
            "icosane",
        ]
        kinds = {o.material_name: o.kind for o in options}
        assert kinds["copper"] == "sensible"
        assert kinds["icosane"] == "latent"

    def test_pcm_is_thinner_and_lighter_than_metal(self):
        options = compare_heat_stores(
            SPRINT_HEAT_J,
            DIE_AREA_MM2,
            allowed_rise_c=10.0,
            solid_materials=[COPPER],
            pcm_materials=[GENERIC_PCM],
        )
        copper, pcm = options
        assert pcm.thickness_mm < copper.thickness_mm
        assert pcm.mass_g < copper.mass_g
