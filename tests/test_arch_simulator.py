"""Tests for the quantum-based execution engine and many-core simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machine import PAPER_MACHINE
from repro.arch.simulator import ExecutionEngine, ExecutionTrace, ManyCoreSimulator
from repro.energy.dvfs import PAPER_DVFS
from repro.workloads.descriptor import (
    MemoryBehaviour,
    ParallelBehaviour,
    WorkloadDescriptor,
)


def make_workload(
    instructions: float = 5e8,
    parallel_fraction: float = 0.98,
    max_parallelism: int = 1024,
    l1_miss: float = 0.02,
    l2_miss: float = 0.3,
) -> WorkloadDescriptor:
    return WorkloadDescriptor(
        name="synthetic",
        total_instructions=instructions,
        memory=MemoryBehaviour(
            working_set_bytes=8e6, l1_miss_rate=l1_miss, l2_miss_rate=l2_miss
        ),
        parallel=ParallelBehaviour(
            parallel_fraction=parallel_fraction,
            max_parallelism=max_parallelism,
            imbalance=1.05,
            sync_instructions_per_core=10_000,
        ),
    )


class TestExecutionEngine:
    def test_advance_retires_work_and_energy(self):
        engine = ExecutionEngine(make_workload(), n_threads=1)
        engine.set_active_cores(1)
        sample = engine.advance(1e-3)
        assert sample.instructions_retired > 0
        assert sample.energy_j > 0
        assert sample.dt_s == pytest.approx(1e-3)
        assert not sample.finished

    def test_runs_to_completion(self):
        engine = ExecutionEngine(make_workload(instructions=1e7), n_threads=1)
        engine.set_active_cores(1)
        while not engine.done:
            engine.advance(1e-3)
        assert engine.progress_fraction == pytest.approx(1.0, abs=1e-6)
        assert engine.trace.total_instructions >= 1e7

    def test_single_core_power_near_one_watt(self):
        # Paper calibration: an active 1 GHz core dissipates about 1 W.
        engine = ExecutionEngine(make_workload(l1_miss=0.005), n_threads=1)
        engine.set_active_cores(1)
        sample = engine.advance(1e-3)
        assert 0.6 <= sample.chip_power_w <= 1.3

    def test_sixteen_cores_retire_more_per_quantum(self):
        workload = make_workload()
        single = ExecutionEngine(workload, n_threads=1)
        single.set_active_cores(1)
        many = ExecutionEngine(workload, n_threads=16)
        many.set_active_cores(16)
        # Burn through the serial prefix first so both are in the parallel phase.
        serial = workload.total_instructions * (1 - workload.parallel.parallel_fraction)
        serial_time = 1.2 * serial / 1e9
        single.advance(serial_time + 1e-3)
        many.advance(serial_time + 1e-3)
        s_single = single.advance(1e-3)
        s_many = many.advance(1e-3)
        assert s_many.instructions_retired > 5 * s_single.instructions_retired

    def test_shrinking_cores_mid_run(self):
        engine = ExecutionEngine(make_workload(), n_threads=16)
        engine.set_active_cores(16)
        engine.advance(5e-3)
        cost = engine.set_active_cores(1)
        assert cost > 0
        sample = engine.advance(1e-3)
        assert sample.active_cores == 1

    def test_finished_engine_refuses_to_advance(self):
        engine = ExecutionEngine(make_workload(instructions=1e6), n_threads=1)
        engine.set_active_cores(1)
        while not engine.done:
            engine.advance(1e-2)
        with pytest.raises(RuntimeError):
            engine.advance(1e-3)

    def test_rejects_bad_arguments(self):
        engine = ExecutionEngine(make_workload(), n_threads=1)
        with pytest.raises(ValueError):
            engine.advance(0.0)
        with pytest.raises(ValueError):
            engine.set_active_cores(0)

    def test_dvfs_point_scales_energy_per_instruction(self):
        workload = make_workload(parallel_fraction=0.0, l1_miss=0.0)
        nominal = ExecutionEngine(workload, n_threads=1)
        nominal.set_active_cores(1)
        boosted_engine = ExecutionEngine(workload, n_threads=1)
        boosted_engine.set_active_cores(1)
        boosted_point = PAPER_DVFS.boosted_point_for_headroom(16.0)
        a = nominal.advance(1e-3)
        b = boosted_engine.advance(1e-3, operating_point=boosted_point)
        energy_per_instruction_nominal = a.energy_j / a.instructions_retired
        energy_per_instruction_boosted = b.energy_j / b.instructions_retired
        ratio = energy_per_instruction_boosted / energy_per_instruction_nominal
        assert ratio == pytest.approx(
            boosted_point.energy_per_work_scale(PAPER_MACHINE.nominal), rel=0.05
        )
        # And the boosted core retires more work per unit time.
        assert b.instructions_retired > 1.5 * a.instructions_retired


class TestExecutionTrace:
    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.empty
        assert trace.total_energy_j == 0.0
        assert trace.duration_s == 0.0

    def test_cumulative_instructions_monotonic(self):
        engine = ExecutionEngine(make_workload(instructions=5e7), n_threads=4)
        engine.set_active_cores(4)
        while not engine.done:
            engine.advance(1e-3)
        cumulative = engine.trace.cumulative_instructions()
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert len(engine.trace) == len(cumulative)


class TestManyCoreSimulator:
    def setup_method(self):
        self.simulator = ManyCoreSimulator()
        self.workload = make_workload(instructions=2e8)

    def test_single_core_baseline_time(self):
        result = self.simulator.single_core_baseline(self.workload)
        # 2e8 instructions at ~1 GHz and CPI slightly above 1.
        assert 0.15 <= result.total_time_s <= 0.6
        assert result.cores == 1

    def test_parallel_speedup_and_work_conservation(self):
        baseline = self.simulator.single_core_baseline(self.workload)
        parallel = self.simulator.run(self.workload, cores=16)
        speedup = parallel.speedup_over(baseline)
        assert 6.0 <= speedup <= 16.5
        # Both runs retire (at least) the workload's instructions, up to
        # floating-point rounding of the per-quantum work accounting.
        assert baseline.total_instructions >= self.workload.total_instructions * (1 - 1e-9)
        assert parallel.total_instructions >= self.workload.total_instructions * (1 - 1e-9)

    def test_speedup_monotonic_in_cores(self):
        baseline = self.simulator.single_core_baseline(self.workload)
        previous = 0.0
        for cores in (2, 4, 8, 16):
            result = self.simulator.run(self.workload, cores=cores)
            speedup = result.speedup_over(baseline)
            assert speedup >= previous * 0.98
            previous = speedup

    def test_max_parallelism_caps_speedup(self):
        limited = make_workload(instructions=2e8, max_parallelism=4)
        baseline = self.simulator.single_core_baseline(limited)
        result = self.simulator.run(limited, cores=16)
        assert result.speedup_over(baseline) <= 4.6

    def test_amdahl_limit(self):
        serial_heavy = make_workload(instructions=2e8, parallel_fraction=0.5)
        baseline = self.simulator.single_core_baseline(serial_heavy)
        result = self.simulator.run(serial_heavy, cores=16)
        assert result.speedup_over(baseline) < 2.2

    def test_parallel_energy_close_to_serial(self):
        baseline = self.simulator.single_core_baseline(self.workload)
        parallel = self.simulator.run(self.workload, cores=16)
        assert parallel.energy_ratio_over(baseline) <= 1.4

    def test_requesting_more_cores_than_machine_grows_machine(self):
        result = self.simulator.run(self.workload, cores=64, quantum_s=5e-4)
        assert result.cores == 64

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            self.simulator.run(self.workload, cores=0)
        with pytest.raises(ValueError):
            self.simulator.run(self.workload, cores=4, quantum_s=0.0)

    def test_unfinishable_workload_raises(self):
        huge = make_workload(instructions=1e13)
        with pytest.raises(RuntimeError):
            self.simulator.run(huge, cores=1, quantum_s=1e-2, max_time_s=0.05)


class TestEngineProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        cores=st.integers(min_value=1, max_value=32),
        parallel_fraction=st.floats(min_value=0.5, max_value=1.0),
        l1_miss=st.floats(min_value=0.0, max_value=0.2),
    )
    def test_energy_and_time_always_positive(self, cores, parallel_fraction, l1_miss):
        workload = make_workload(
            instructions=2e7, parallel_fraction=parallel_fraction, l1_miss=l1_miss
        )
        simulator = ManyCoreSimulator()
        result = simulator.run(workload, cores=cores, quantum_s=2e-3)
        assert result.total_time_s > 0
        assert result.total_energy_j > 0
        assert result.total_instructions >= workload.total_instructions * 0.999

    @settings(max_examples=10, deadline=None)
    @given(cores=st.integers(min_value=1, max_value=64))
    def test_speedup_never_exceeds_core_count(self, cores):
        workload = make_workload(instructions=3e7)
        simulator = ManyCoreSimulator()
        baseline = simulator.single_core_baseline(workload)
        result = simulator.run(workload, cores=cores, quantum_s=2e-3)
        assert result.speedup_over(baseline) <= cores * 1.05 + 0.05
