"""Unit tests for the MNA RLC transient circuit solver."""

import numpy as np
import pytest

from repro.power.circuit import GROUND, Circuit


class TestConstruction:
    def test_duplicate_element_name_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", GROUND, 1.0)
        with pytest.raises(ValueError):
            circuit.add_resistor("r1", "b", GROUND, 1.0)

    def test_empty_element_name_rejected(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.add_resistor("", "a", GROUND, 1.0)

    def test_non_positive_component_values_rejected(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.add_resistor("r", "a", GROUND, 0.0)
        with pytest.raises(ValueError):
            circuit.add_capacitor("c", "a", GROUND, -1e-6)
        with pytest.raises(ValueError):
            circuit.add_inductor("l", "a", GROUND, 0.0)

    def test_node_names_exclude_ground(self):
        circuit = Circuit()
        circuit.add_resistor("r", "a", GROUND, 1.0)
        circuit.add_resistor("r2", "a", "b", 1.0)
        assert circuit.node_names == ["a", "b"]

    def test_element_count(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "a", GROUND, 1.0)
        circuit.add_resistor("r", "a", GROUND, 1.0)
        assert circuit.element_count == 2


class TestDcOperatingPoint:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 10.0)
        circuit.add_resistor("r1", "in", "mid", 1000.0)
        circuit.add_resistor("r2", "mid", GROUND, 1000.0)
        voltages = circuit.dc_operating_point()
        assert voltages["mid"] == pytest.approx(5.0)
        assert voltages["in"] == pytest.approx(10.0)

    def test_inductor_is_dc_short(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 5.0)
        circuit.add_inductor("l", "in", "out", 1e-9)
        circuit.add_resistor("r", "out", GROUND, 10.0)
        voltages = circuit.dc_operating_point()
        assert voltages["out"] == pytest.approx(5.0)

    def test_current_source_ir_drop(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 1.2)
        circuit.add_resistor("r", "in", "load", 0.01)
        circuit.add_current_source("i", "load", GROUND, 8.0)
        voltages = circuit.dc_operating_point()
        assert voltages["load"] == pytest.approx(1.2 - 0.08)


class TestTransientAnalyticalCases:
    def test_rc_charging_curve(self):
        # Series R into C driven by a DC source: v_c(t) = V (1 - exp(-t/RC)).
        r, c, v = 100.0, 1e-6, 1.0
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, v)
        circuit.add_resistor("r", "in", "out", r)
        circuit.add_capacitor("c", "out", GROUND, c)
        tau = r * c
        result = circuit.transient(duration_s=5 * tau, dt_s=tau / 200)
        volts = result.voltage("out")
        time = result.time_s
        expected = v * (1 - np.exp(-time / tau))
        assert np.max(np.abs(volts - expected)) < 0.01

    def test_rl_current_rise(self):
        # Series R-L: the output node across R settles to the full source value
        # as the inductor current builds with time constant L/R.
        r, l, v = 10.0, 1e-3, 1.0
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, v)
        circuit.add_inductor("l", "in", "out", l)
        circuit.add_resistor("r", "out", GROUND, r)
        tau = l / r
        result = circuit.transient(duration_s=6 * tau, dt_s=tau / 200)
        # After several time constants the resistor sees the full voltage.
        assert result.final_voltage("out") == pytest.approx(v, rel=0.01)
        # Early on it sees much less.
        early_idx = int(0.1 * len(result.time_s))
        assert result.voltage("out")[early_idx] < 0.8 * v

    def test_lc_oscillation_preserves_amplitude_with_trapezoidal(self):
        # An undamped LC tank excited by an initial capacitor voltage keeps
        # oscillating; trapezoidal integration should not damp it away.
        l, c = 1e-3, 1e-6
        circuit = Circuit()
        circuit.add_capacitor("c", "a", GROUND, c, initial_voltage=1.0)
        circuit.add_inductor("l", "a", GROUND, l)
        circuit.add_current_source("probe", "a", GROUND, 0.0)
        period = 2 * np.pi * np.sqrt(l * c)
        result = circuit.transient(duration_s=5 * period, dt_s=period / 400,
                                   method="trapezoidal")
        volts = result.voltage("a")
        # Amplitude in the final period is still close to the initial 1 V.
        last_period = volts[-400:]
        assert np.max(np.abs(last_period)) > 0.95

    def test_backward_euler_damps_oscillation(self):
        l, c = 1e-3, 1e-6
        circuit = Circuit()
        circuit.add_capacitor("c", "a", GROUND, c, initial_voltage=1.0)
        circuit.add_inductor("l", "a", GROUND, l)
        circuit.add_current_source("probe", "a", GROUND, 0.0)
        period = 2 * np.pi * np.sqrt(l * c)
        result = circuit.transient(duration_s=5 * period, dt_s=period / 50,
                                   method="backward_euler")
        volts = result.voltage("a")
        assert np.max(np.abs(volts[-50:])) < 0.9

    def test_current_source_ramp_produces_growing_ir_drop(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 1.2)
        circuit.add_resistor("r", "in", "load", 0.01)

        def ramp(t):
            return min(8.0, 8.0 * t / 1e-3)

        circuit.add_current_source("i", "load", GROUND, ramp)
        result = circuit.transient(duration_s=2e-3, dt_s=2e-6)
        assert result.final_voltage("load") == pytest.approx(1.2 - 0.08, rel=1e-3)
        assert result.voltage("load")[1] > 1.19


class TestTransientValidation:
    def make_rc(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 1.0)
        circuit.add_resistor("r", "in", "out", 100.0)
        circuit.add_capacitor("c", "out", GROUND, 1e-6)
        return circuit

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            self.make_rc().transient(duration_s=0.0, dt_s=1e-6)

    def test_rejects_dt_larger_than_duration(self):
        with pytest.raises(ValueError):
            self.make_rc().transient(duration_s=1e-6, dt_s=1e-3)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            self.make_rc().transient(duration_s=1e-3, dt_s=1e-6, method="magic")

    def test_rejects_unknown_record_node(self):
        with pytest.raises(KeyError):
            self.make_rc().transient(duration_s=1e-3, dt_s=1e-6, record_nodes=["zzz"])

    def test_rejects_sourceless_circuit(self):
        circuit = Circuit()
        circuit.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(ValueError):
            circuit.transient(duration_s=1e-3, dt_s=1e-6)

    def test_unknown_node_lookup_in_result(self):
        result = self.make_rc().transient(duration_s=1e-4, dt_s=1e-6)
        with pytest.raises(KeyError, match="out"):
            result.voltage("nonexistent")


class TestTransientResultHelpers:
    def test_min_max_final_and_settling(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 1.0)
        circuit.add_resistor("r", "in", "out", 100.0)
        circuit.add_capacitor("c", "out", GROUND, 1e-6)
        result = circuit.transient(duration_s=1e-3, dt_s=1e-6)
        assert result.min_voltage("out") == pytest.approx(0.0, abs=0.02)
        assert result.max_voltage("out") == pytest.approx(1.0, abs=0.01)
        assert result.final_voltage("out") == pytest.approx(1.0, abs=0.01)
        settle = result.settling_time("out", tolerance=0.01)
        assert settle is not None
        assert 2e-4 < settle < 8e-4

    def test_start_from_dc_suppresses_initial_transient(self):
        circuit = Circuit()
        circuit.add_voltage_source("v", "in", GROUND, 1.0)
        circuit.add_resistor("r", "in", "out", 100.0)
        circuit.add_capacitor("c", "out", GROUND, 1e-6)
        result = circuit.transient(duration_s=1e-4, dt_s=1e-6, start_from_dc=True)
        assert result.min_voltage("out") == pytest.approx(1.0, abs=1e-3)
