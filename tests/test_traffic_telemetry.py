"""Streaming-telemetry suite: sketch accuracy, probes, traces, flat memory.

Four contracts anchor this file:

* **Sketch accuracy** — every quantile a :class:`QuantileSketch` answers
  has true normalised rank within ``rank_error_bound`` of the requested
  ``q``, measured against the exact sorted data on adversarial orderings
  (sorted, reversed, organ-pipe, zigzag, clustered duplicates) and on
  hypothesis-generated streams.  ``count``/``sum``/``min``/``max`` are
  exact, always.
* **Mergeability** — merging is exactly commutative (either order answers
  every query identically), associative within the rank bound, and exact
  on the counters; streams, timelines, and sweep/experiment results pool
  across replications and workers.
* **Conservation** — timeline counter columns partition the arrivals:
  ``served + rejected + abandoned == arrivals`` over any completed run,
  fuzzed across both engine modes, queue bounds, and deadlines.
* **Flat memory** — a long ``keep_samples=False`` run holds O(1) metric
  state: the tracemalloc high-water grows by only a few bytes per extra
  request (the engine's O(n) arrival-ordering pointer array), orders of
  magnitude below per-sample retention.  ``$REPRO_MEMTEST_REQUESTS``
  scales the horizon (CI's memory smoke runs it at one million).
"""

from __future__ import annotations

import json
import math
import os
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.traffic import (
    EventTrace,
    FixedService,
    FleetSimulator,
    GammaService,
    GovernorSpec,
    PoissonArrivals,
    QuantileSketch,
    ReplicationPlan,
    Scenario,
    StreamingMoments,
    SweepSpec,
    TelemetrySpec,
    TimelineProbe,
    TraceRecord,
    TrafficSummary,
    TrafficTelemetry,
    TRACE_KINDS,
    generate_requests,
    resolve_telemetry,
    run_replications,
    run_sweep,
)
from repro.traffic.metrics import validate_latencies, validate_slo

CONFIG = SystemConfig.paper_default()


def normalised_rank_error(sorted_values: np.ndarray, estimate: float, q: float) -> float:
    """Distance from ``q`` to the true rank interval of ``estimate``.

    Ties give the estimate a rank *interval* [lo/n, hi/n]; the error is
    the distance from ``q`` to that interval (zero when q lies inside).
    """
    n = len(sorted_values)
    lo = np.searchsorted(sorted_values, estimate, side="left") / n
    hi = np.searchsorted(sorted_values, estimate, side="right") / n
    if q < lo:
        return lo - q
    if q > hi:
        return q - hi
    return 0.0


def adversarial_orderings(n: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    base = rng.exponential(1.0, size=n)
    organ = np.concatenate([np.sort(base)[::2], np.sort(base)[1::2][::-1]])
    zigzag = np.sort(base).copy()
    zigzag[::2], zigzag[1::2] = np.sort(base)[n // 2 :][: len(zigzag[::2])], np.sort(
        base
    )[: n // 2][: len(zigzag[1::2])]
    return {
        "random": base,
        "sorted": np.sort(base),
        "reversed": np.sort(base)[::-1],
        "organ_pipe": organ,
        "zigzag": zigzag,
        "duplicates": np.round(base, 1),
        "clustered": np.concatenate([base[: n // 2] * 1e-3, base[n // 2 :] * 1e3]),
    }


# -- QuantileSketch ---------------------------------------------------------------------


class TestQuantileSketch:
    def test_exact_accumulators(self):
        sketch = QuantileSketch(capacity=64)
        values = np.random.default_rng(0).normal(5.0, 2.0, size=10_000)
        sketch.extend(values)
        assert sketch.count == 10_000
        assert sketch.sum == pytest.approx(values.sum())
        assert sketch.mean == pytest.approx(values.mean())
        assert sketch.min == values.min()
        assert sketch.max == values.max()

    def test_fixed_memory_footprint(self):
        sketch = QuantileSketch(capacity=64)
        sketch.extend(range(100_000))
        # O(capacity · log(n / capacity)) — far below n, bounded per level.
        assert sketch.retained < 64 * 18
        assert sketch.retained < 1000

    def test_deterministic(self):
        values = np.random.default_rng(3).exponential(1.0, size=5_000)
        a, b = QuantileSketch(capacity=64), QuantileSketch(capacity=64)
        a.extend(values)
        b.extend(values)
        qs = np.linspace(0, 1, 21)
        assert a.quantiles(qs) == b.quantiles(qs)

    def test_extremes_snap_exact(self):
        sketch = QuantileSketch(capacity=32)
        sketch.extend([3.0, 1.0, 2.0, 9.0])
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 9.0

    def test_small_stream_is_exact(self):
        sketch = QuantileSketch(capacity=128)
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        sketch.extend(values)
        # Below capacity nothing compacts: every quantile is an exact
        # order statistic.
        assert sketch.quantile(0.5) == 3.0
        assert sketch.retained == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="at least"):
            QuantileSketch(capacity=QuantileSketch.MIN_CAPACITY - 1)
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="at least one value"):
            sketch.quantile(0.5)
        with pytest.raises(ValueError, match="at least one value"):
            sketch.cdf(1.0)
        sketch.add(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            sketch.quantile(1.5)

    @pytest.mark.parametrize("ordering", sorted(adversarial_orderings(8)))
    @pytest.mark.parametrize("capacity", [64, 256])
    def test_rank_error_bound_adversarial(self, ordering, capacity):
        n = 20_000
        values = adversarial_orderings(n)[ordering]
        sketch = QuantileSketch(capacity=capacity)
        sketch.extend(values)
        exact = np.sort(values)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999):
            estimate = sketch.quantile(q)
            err = normalised_rank_error(exact, estimate, q)
            assert err <= sketch.rank_error_bound, (
                f"{ordering} cap={capacity} q={q}: rank error {err:.4f} "
                f"exceeds bound {sketch.rank_error_bound:.4f}"
            )

    def test_cdf_within_bound(self):
        values = adversarial_orderings(20_000)["random"]
        sketch = QuantileSketch(capacity=128)
        sketch.extend(values)
        exact = np.sort(values)
        for x in np.percentile(values, [1, 25, 50, 75, 99]):
            est = sketch.cdf(x)
            true = np.searchsorted(exact, x, side="right") / len(exact)
            assert abs(est - true) <= sketch.rank_error_bound
        assert sketch.cdf(exact[0] - 1) == 0.0
        assert sketch.cdf(exact[-1] + 1) == 1.0

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=2_000,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_rank_error_bound_property(self, values, q):
        sketch = QuantileSketch(capacity=QuantileSketch.MIN_CAPACITY)
        sketch.extend(values)
        estimate = sketch.quantile(q)
        err = normalised_rank_error(np.sort(values), estimate, q)
        assert err <= sketch.rank_error_bound


class TestSketchMerge:
    def test_merge_commutative_exactly(self):
        rng = np.random.default_rng(11)
        a_vals, b_vals = rng.normal(size=3_000), rng.exponential(size=5_000)
        qs = np.linspace(0, 1, 41)

        def feed(values):
            s = QuantileSketch(capacity=64)
            s.extend(values)
            return s

        ab = feed(a_vals).merge(feed(b_vals))
        ba = feed(b_vals).merge(feed(a_vals))
        assert ab.quantiles(qs) == ba.quantiles(qs)
        assert ab.count == ba.count == 8_000

    def test_merge_associative_within_bound(self):
        rng = np.random.default_rng(13)
        shards = [rng.exponential(size=4_000) for _ in range(4)]
        merged = QuantileSketch.merged(
            [self._feed(s) for s in shards]
        )
        exact = np.sort(np.concatenate(shards))
        for q in (0.5, 0.9, 0.99):
            err = normalised_rank_error(exact, merged.quantile(q), q)
            assert err <= merged.rank_error_bound
        assert merged.count == 16_000
        assert merged.sum == pytest.approx(exact.sum())
        assert merged.min == exact[0]
        assert merged.max == exact[-1]

    @staticmethod
    def _feed(values, capacity=64):
        s = QuantileSketch(capacity=capacity)
        s.extend(values)
        return s

    def test_merge_validation(self):
        with pytest.raises(ValueError, match="capacities must match"):
            QuantileSketch(capacity=64).merge(QuantileSketch(capacity=128))
        with pytest.raises(TypeError):
            QuantileSketch().merge([1.0, 2.0])
        with pytest.raises(ValueError, match="at least one sketch"):
            QuantileSketch.merged([])


def test_streaming_moments():
    a, b = StreamingMoments(), StreamingMoments()
    for v in (3.0, 1.0):
        a.add(v)
    b.add(7.0)
    a.merge(b)
    assert (a.count, a.sum, a.min, a.max) == (3, 11.0, 1.0, 7.0)
    assert a.mean == pytest.approx(11.0 / 3)
    assert StreamingMoments().mean == 0.0


# -- sketch summaries against exact summaries -------------------------------------------


def paired_runs(n=400, **fleet_kwargs):
    """The same scenario run sample-backed and sketch-backed (same seed)."""
    requests = generate_requests(
        PoissonArrivals(0.4), GammaService(mean_s=4.0, cv=1.0), n, seed=9
    )
    exact = FleetSimulator(CONFIG, n_devices=3, **fleet_kwargs).run(requests, seed=1)
    flat = FleetSimulator(
        CONFIG, n_devices=3, keep_samples=False, **fleet_kwargs
    ).run(requests, seed=1)
    return exact, flat


class TestSketchSummary:
    def test_counts_exact_percentiles_bounded(self):
        exact, flat = paired_runs()
        se = exact.summary(slo_s=8.0)
        sf = flat.summary(slo_s=8.0)
        assert sf.telemetry_source == "sketch"
        assert se.telemetry_source == "samples"
        assert sf.sketch_rank_error == 8.0 / 512
        assert sf.request_count == se.request_count
        assert sf.sprint_fraction == se.sprint_fraction
        assert sf.mean_latency_s == pytest.approx(se.mean_latency_s)
        assert sf.max_latency_s == se.max_latency_s
        assert sf.makespan_s == pytest.approx(se.makespan_s)
        assert sf.peak_temperature_c == se.peak_temperature_c
        latencies = np.sort(exact.latencies_s)
        for q, value in ((0.5, sf.p50_latency_s), (0.99, sf.p99_latency_s)):
            assert normalised_rank_error(latencies, value, q) <= sf.sketch_rank_error
        assert abs(sf.slo_attainment - se.slo_attainment) <= sf.sketch_rank_error

    def test_flat_run_drops_samples_keeps_counts(self):
        exact, flat = paired_runs()
        assert flat.served == ()
        assert flat.served_count == len(exact.served)
        assert flat.latencies_s.size == 0
        assert flat.telemetry is not None
        assert flat.telemetry.stream.request_count == flat.served_count
        assert flat.horizon_s == pytest.approx(exact.horizon_s)

    def test_summary_without_stream_raises(self):
        from repro.traffic.fleet import FleetResult

        orphan = FleetResult(
            served=(), device_stats=(), policy="least_loaded", served_count=5
        )
        with pytest.raises(ValueError, match="keep_samples"):
            orphan.summary()

    def test_stream_merge_pools_replications(self):
        scenario = Scenario(
            arrivals=PoissonArrivals(0.4),
            service=GammaService(mean_s=4.0, cv=0.8),
            n_requests=150,
            n_devices=2,
            keep_samples=False,
        )
        plan = ReplicationPlan(scenario, n_replications=4)
        result = run_replications(plan, workers=2)
        pooled = result.pooled_stream()
        assert pooled.request_count == sum(
            s.request_count for s in result.summaries
        )
        p99 = result.pooled_quantile(0.99)
        assert max(s.p50_latency_s for s in result.summaries) <= p99
        assert p99 <= max(s.max_latency_s for s in result.summaries)

    def test_sweep_cells_pool_streams(self):
        spec = SweepSpec(
            arrival_rates_hz=(0.5,),
            fleet_sizes=(2,),
            n_requests=120,
            replications=3,
            service_cv=0.5,
            keep_samples=False,
        )
        for workers in (1, 2):
            result = run_sweep(spec, workers=workers)
            for cell in result.cells:
                pooled = cell.pooled_stream()
                assert pooled.request_count == 3 * 120
                assert len(cell.telemetries) == 3

    def test_sweep_without_telemetry_has_nothing_to_pool(self):
        spec = SweepSpec(arrival_rates_hz=(0.5,), fleet_sizes=(1,), n_requests=20)
        cell = run_sweep(spec).cells[0]
        assert cell.telemetry is None
        with pytest.raises(ValueError, match="no streaming telemetry"):
            cell.pooled_stream()


# -- resolve_telemetry / spec validation ------------------------------------------------


class TestTelemetryKnobs:
    def test_resolve_semantics(self):
        assert resolve_telemetry(None, keep_samples=True) is None
        assert resolve_telemetry(None, keep_samples=False) == TelemetrySpec()
        assert resolve_telemetry(False, keep_samples=False) is None
        assert resolve_telemetry(True, keep_samples=True) == TelemetrySpec()
        spec = TelemetrySpec(sketch_capacity=64)
        assert resolve_telemetry(spec, keep_samples=True) is spec
        with pytest.raises(TypeError, match="telemetry must be"):
            resolve_telemetry("yes", keep_samples=True)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="sketch capacity"):
            TelemetrySpec(sketch_capacity=8)
        with pytest.raises(ValueError, match="cadence"):
            TelemetrySpec(timeline_cadence_s=0.0)
        with pytest.raises(ValueError, match="trace capacity"):
            TelemetrySpec(trace_capacity=-1)
        assert not TelemetrySpec(sketch=False).enabled
        assert TelemetrySpec(sketch=False, trace_capacity=16).enabled

    def test_spec_builders(self):
        spec = TelemetrySpec(
            sketch=False, timeline_cadence_s=5.0, trace_capacity=0
        )
        assert spec.build_stream() is None
        assert spec.build_probe(excess_power_w=3.0).excess_power_w == 3.0
        assert spec.build_trace().capacity is None  # 0 means unbounded

    def test_scenario_rejects_bad_knob(self):
        with pytest.raises(TypeError, match="telemetry must be"):
            Scenario(
                arrivals=PoissonArrivals(0.5),
                service=FixedService(2.0),
                n_requests=10,
                telemetry=42,
            )
        with pytest.raises(TypeError, match="telemetry must be"):
            SweepSpec(telemetry=42)


# -- centralized metric validation / round-trips ----------------------------------------


class TestMetricsPlumbing:
    def test_validate_latencies(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_latencies([])
        out = validate_latencies([1, 2])
        assert out.dtype == float

    def test_validate_slo(self):
        validate_slo(None)
        validate_slo(1.0)
        with pytest.raises(ValueError, match="positive"):
            validate_slo(0.0)

    def test_summary_round_trip_includes_telemetry_fields(self):
        _, flat = paired_runs(n=60)
        summary = flat.summary(slo_s=8.0)
        data = json.loads(json.dumps(summary.to_dict()))
        restored = TrafficSummary.from_dict(data)
        assert restored == summary
        assert restored.telemetry_source == "sketch"
        assert restored.sketch_rank_error == summary.sketch_rank_error

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown TrafficSummary"):
            TrafficSummary.from_dict({"request_count": 1, "vibes": "good"})


# -- timeline probe ---------------------------------------------------------------------


def timeline_run(mode, cadence=25.0, **kwargs):
    requests = generate_requests(
        PoissonArrivals(0.5), FixedService(4.0), 200, seed=21
    )
    fleet = FleetSimulator(
        CONFIG,
        n_devices=2,
        mode=mode,
        governor=GovernorSpec.greedy(1),
        telemetry=TelemetrySpec(timeline_cadence_s=cadence),
        **kwargs,
    )
    return fleet.run(requests, seed=2)


class TestTimeline:
    @pytest.mark.parametrize("mode", ["immediate", "central_queue"])
    def test_conservation_and_contiguity(self, mode):
        result = timeline_run(mode)
        timeline = result.telemetry.timeline
        assert int(timeline.arrivals.sum()) == 200
        assert (
            int(timeline.served.sum())
            + int(timeline.rejected.sum())
            + int(timeline.abandoned.sum())
        ) == 200
        assert int(timeline.served.sum()) == len(result.served)
        np.testing.assert_allclose(
            np.diff(timeline.window_start_s), timeline.cadence_s
        )
        assert timeline.window_start_s[-1] <= result.horizon_s
        assert result.horizon_s <= timeline.window_start_s[-1] + timeline.cadence_s

    def test_grants_and_power(self):
        result = timeline_run("central_queue")
        timeline = result.telemetry.timeline
        stats = result.governor_stats
        assert int(timeline.sprints_granted.sum()) == stats.sprints_granted
        assert int(timeline.sprints_denied.sum()) == stats.sprints_denied
        assert timeline.peak_in_flight_sprints.max() <= 1  # greedy(1) cap
        np.testing.assert_allclose(
            timeline.peak_granted_power_w,
            timeline.peak_in_flight_sprints * timeline.excess_power_w,
        )

    def test_merge_doubles_counters_keeps_peaks(self):
        timeline = timeline_run("central_queue").telemetry.timeline
        doubled = timeline.merge(timeline)
        assert int(doubled.arrivals.sum()) == 2 * int(timeline.arrivals.sum())
        np.testing.assert_array_equal(
            doubled.peak_queue_depth, timeline.peak_queue_depth
        )
        with pytest.raises(ValueError, match="cadences must match"):
            timeline.merge(
                timeline_run("central_queue", cadence=10.0).telemetry.timeline
            )

    def test_merge_pads_shorter_timeline(self):
        probe = TimelineProbe(cadence_s=1.0)
        probe.on_arrival(0.5)
        short = probe.finalize()
        long = TimelineProbe(cadence_s=1.0)
        long.on_arrival(4.5)
        merged = short.merge(long.finalize())
        assert merged.n_windows == 5
        assert list(merged.arrivals) == [1, 0, 0, 0, 1]

    def test_to_dict_is_json_ready(self):
        timeline = timeline_run("immediate").telemetry.timeline
        data = json.loads(json.dumps(timeline.to_dict()))
        assert data["cadence_s"] == timeline.cadence_s
        assert data["arrivals"] == [int(v) for v in timeline.arrivals]

    def test_probe_validation(self):
        with pytest.raises(ValueError, match="cadence"):
            TimelineProbe(cadence_s=-1.0)

    def test_gauges_carry_forward_idle_windows(self):
        probe = TimelineProbe(cadence_s=1.0)
        probe.on_queue_depth(0.2, 3)
        probe.on_arrival(5.5)  # four idle windows in between
        timeline = probe.finalize()
        assert list(timeline.peak_queue_depth) == [3, 3, 3, 3, 3, 3]


@settings(deadline=None)
@given(
    mode=st.sampled_from(["immediate", "central_queue"]),
    queue_bound=st.sampled_from([None, 2, 8]),
    deadline_s=st.sampled_from([None, 6.0]),
    rate=st.floats(min_value=0.2, max_value=1.5),
    n=st.integers(min_value=1, max_value=80),
)
def test_timeline_conserves_requests(mode, queue_bound, deadline_s, rate, n):
    """Fuzzed conservation: every arrival lands in exactly one fate column."""
    requests = generate_requests(
        PoissonArrivals(rate),
        GammaService(mean_s=3.0, cv=0.7),
        n,
        seed=4,
        deadline_s=deadline_s,
    )
    fleet = FleetSimulator(
        CONFIG,
        n_devices=2,
        mode=mode,
        queue_bound=queue_bound if mode == "central_queue" else None,
        keep_samples=False,
        telemetry=TelemetrySpec(timeline_cadence_s=20.0),
    )
    result = fleet.run(requests, seed=5)
    timeline = result.telemetry.timeline
    assert int(timeline.arrivals.sum()) == n
    fates = (
        int(timeline.served.sum())
        + int(timeline.rejected.sum())
        + int(timeline.abandoned.sum())
    )
    assert fates == n
    assert int(timeline.served.sum()) == result.served_count
    assert int(timeline.rejected.sum()) == result.rejected_count
    assert int(timeline.abandoned.sum()) == result.abandoned_count


# -- event tracing ----------------------------------------------------------------------


class TestEventTrace:
    def test_ring_overwrites_oldest(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.add(float(i), "arrival", request_index=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [r.request_index for r in trace.records] == [2, 3, 4]

    def test_unbounded_keeps_everything(self):
        trace = EventTrace(capacity=None)
        for i in range(10):
            trace.add(float(i), "complete")
        assert len(trace) == 10 and trace.dropped == 0

    def test_kind_validation(self):
        trace = EventTrace()
        with pytest.raises(ValueError, match="unknown trace kind"):
            trace.add(0.0, "teleport")
        with pytest.raises(ValueError, match="unknown trace kind"):
            trace.by_kind("teleport")
        with pytest.raises(ValueError, match="positive"):
            EventTrace(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.add(1.5, "grant", request_index=7, device_id=2)
        trace.add(2.0, "trip", detail=42.5)
        path = tmp_path / "trace.jsonl"
        assert trace.write_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {
            "time_s": 1.5, "kind": "grant", "request_index": 7, "device_id": 2
        }
        assert lines[1] == {"time_s": 2.0, "kind": "trip", "detail": 42.5}
        assert "\n".join(r.to_json() for r in trace.records) == trace.to_jsonl()

    def test_engine_emits_lifecycle_records(self):
        requests = generate_requests(
            PoissonArrivals(1.0), FixedService(5.0), 60, seed=6
        )
        fleet = FleetSimulator(
            CONFIG,
            n_devices=2,
            mode="central_queue",
            governor=GovernorSpec.token_bucket(sprint_rate_hz=0.05, burst_sprints=2),
            telemetry=TelemetrySpec(sketch=False, trace_capacity=0),
        )
        result = fleet.run(requests, seed=7)
        trace = result.telemetry.trace
        kinds = {r.kind for r in trace.records}
        assert {"arrival", "dispatch", "complete"} <= kinds
        assert len(trace.by_kind("arrival")) == 60
        assert len(trace.by_kind("complete")) == len(result.served)
        grants = len(trace.by_kind("grant"))
        denies = len(trace.by_kind("deny"))
        stats = result.governor_stats
        assert grants == stats.sprints_granted
        assert denies == stats.sprints_denied
        times = [r.time_s for r in trace.records]
        # ring keeps records in engine-processing order
        assert all(isinstance(r, TraceRecord) for r in trace.records)
        assert set(kinds) <= set(TRACE_KINDS)
        assert len(times) == len(trace.records)


# -- flat-memory regression -------------------------------------------------------------


MEMTEST_REQUESTS = int(os.environ.get("REPRO_MEMTEST_REQUESTS", "200000"))


def _flat_run_peak_bytes(n: int) -> int:
    """Tracemalloc high-water of a keep_samples=False run of n requests."""
    requests = generate_requests(PoissonArrivals(50.0), FixedService(0.5), n, seed=8)
    fleet = FleetSimulator(
        CONFIG, n_devices=1, keep_samples=False,
        telemetry=TelemetrySpec(sketch_capacity=512),
    )
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        result = fleet.run(requests)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert result.served_count == n
    assert result.telemetry.stream.request_count == n
    summary = result.summary()
    assert summary.telemetry_source == "sketch"
    assert summary.p99_latency_s >= summary.p50_latency_s
    return peak - before


def test_flat_memory_high_water():
    """Metric memory stays O(1) as the horizon grows.

    The only O(n) allocation a ``keep_samples=False`` run makes is the
    engine's arrival-ordering pointer array (8 bytes per request); the
    incremental high-water per extra request must stay within a few
    pointer-widths of that — per-sample retention costs hundreds of bytes
    per request and fails this by two orders of magnitude.
    """
    small = MEMTEST_REQUESTS // 4
    peak_small = _flat_run_peak_bytes(small)
    peak_full = _flat_run_peak_bytes(MEMTEST_REQUESTS)
    per_request = (peak_full - peak_small) / (MEMTEST_REQUESTS - small)
    assert per_request < 64, (
        f"flat-mode high-water grew {per_request:.0f} B/request "
        f"({peak_small} -> {peak_full} bytes); metric state is not O(1)"
    )


def test_flat_memory_run_matches_exact_tail():
    """The long-horizon sketch p99 lands inside the exact rank band."""
    n = min(MEMTEST_REQUESTS, 200_000)
    requests = generate_requests(PoissonArrivals(50.0), FixedService(0.5), n, seed=8)
    flat = FleetSimulator(CONFIG, n_devices=1, keep_samples=False).run(requests)
    exact = FleetSimulator(CONFIG, n_devices=1).run(requests)
    latencies = np.sort(exact.latencies_s)
    summary = flat.summary()
    for q, value in (
        (0.50, summary.p50_latency_s),
        (0.95, summary.p95_latency_s),
        (0.99, summary.p99_latency_s),
    ):
        err = normalised_rank_error(latencies, value, q)
        assert err <= summary.sketch_rank_error
    assert summary.mean_latency_s == pytest.approx(latencies.mean())
    assert summary.max_latency_s == latencies[-1]


# -- observers never perturb the simulation ---------------------------------------------


def test_instruments_do_not_perturb_results():
    """Full instrumentation must leave every sample bit-identical."""
    requests = generate_requests(
        PoissonArrivals(0.5), GammaService(mean_s=4.0, cv=1.0), 150, seed=31
    )

    def run(**kwargs):
        fleet = FleetSimulator(
            CONFIG,
            n_devices=3,
            mode="central_queue",
            governor=GovernorSpec.greedy(2),
            **kwargs,
        )
        return fleet.run(requests, seed=32)

    bare = run()
    instrumented = run(
        telemetry=TelemetrySpec(timeline_cadence_s=10.0, trace_capacity=256)
    )
    np.testing.assert_array_equal(bare.latencies_s, instrumented.latencies_s)
    assert bare.summary() == instrumented.summary()
    assert [s.device_id for s in bare.served] == [
        s.device_id for s in instrumented.served
    ]
    assert instrumented.telemetry.timeline is not None
    assert instrumented.telemetry.trace is not None


def test_run_telemetry_is_picklable():
    import pickle

    result = timeline_run("central_queue")
    clone = pickle.loads(pickle.dumps(result.telemetry))
    assert clone.stream is None or isinstance(clone.stream, TrafficTelemetry)
    np.testing.assert_array_equal(
        clone.timeline.arrivals, result.telemetry.timeline.arrivals
    )


def test_telemetry_module_math_consistency():
    # rank_error_bound is 8/capacity by contract — documented in README.
    assert QuantileSketch(capacity=512).rank_error_bound == 8.0 / 512
    assert math.isclose(QuantileSketch(capacity=64).rank_error_bound, 0.125)
