"""Equivalence suite for the engine's vectorized (batched) execution mode.

The fast path (:mod:`repro.traffic.fastpath`) must be *bit-identical* to the
exact heap engine wherever it engages, and must fall back honestly — with a
stated reason — wherever it cannot.  These tests lock both properties across
the scenario matrix of policies × modes × governors × thermal backends, plus
the streaming entry points (``run_blocks`` / ``run_stream``) and the
flat-memory ``keep_samples=False`` mode.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.fleet import FleetSimulator
from repro.traffic.governor import GovernorSpec
from repro.traffic.request import (
    GammaService,
    RequestBlock,
    generate_request_blocks,
    generate_requests,
)

POLICIES = ("round_robin", "random", "least_loaded", "thermal_aware")
MODES = ("immediate", "central_queue")
GOVERNORS = (
    GovernorSpec(),
    GovernorSpec(policy="greedy", max_concurrent_sprints=2),
)
THERMALS = ("linear", "rc", "pcm")

#: The envelope fastpath.unsupported_reason promises to vectorize.
BATCHABLE = ("round_robin", "random")


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_default()


@pytest.fixture(scope="module")
def requests():
    # Poisson at moderate load with bursty gamma demands: exercises idle
    # drains, full sprints, partial sprints, and queue build-up.
    return generate_requests(
        PoissonArrivals(0.6), GammaService(2.0, cv=1.0), n=250, seed=13
    )


def build_fleet(config, engine, *, policy="round_robin", mode="immediate",
                governor="unlimited", thermal="linear", **kw):
    return FleetSimulator(
        config,
        n_devices=4,
        policy=policy,
        mode=mode,
        governor=governor,
        thermal=thermal,
        engine=engine,
        **kw,
    )


def assert_identical(exact, fast):
    """Both runs produced the same result, bit for bit."""
    assert exact.served == fast.served
    assert exact.device_stats == fast.device_stats
    assert exact.rejected == fast.rejected
    assert exact.abandoned == fast.abandoned
    assert exact.served_count == fast.served_count
    assert exact.final_event_s == fast.final_event_s
    assert np.array_equal(exact.latencies_s, fast.latencies_s)


class TestScenarioMatrix:
    """batched == exact on every cell of the golden scenario matrix."""

    @pytest.mark.parametrize("thermal", THERMALS)
    @pytest.mark.parametrize("governor", GOVERNORS, ids=lambda g: g.policy)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_matches_exact(
        self, config, requests, policy, mode, governor, thermal
    ):
        exact = build_fleet(
            config, "exact", policy=policy, mode=mode,
            governor=governor, thermal=thermal,
        ).run(requests, seed=7)
        fast = build_fleet(
            config, "batched", policy=policy, mode=mode,
            governor=governor, thermal=thermal,
        ).run(requests, seed=7)
        assert_identical(exact, fast)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_engagement_matches_envelope(self, config, policy):
        """The vector core engages exactly where the envelope says it can."""
        engine = build_fleet(config, "batched", policy=policy)._make_engine()
        if policy in BATCHABLE:
            assert engine.fast_path_reason is None
        else:
            assert "state" in engine.fast_path_reason


class TestFallbackReasons:
    """Every unsupported knob names why it forces the exact loop."""

    def test_exact_mode_never_engages(self, config, requests):
        fleet = build_fleet(config, "exact")
        engine = fleet._make_engine()
        engine.run(requests, np.random.default_rng(0))
        assert not engine.last_run_fast_path

    def test_eligible_batched_engages(self, config, requests):
        fleet = build_fleet(config, "batched")
        engine = fleet._make_engine()
        assert engine.fast_path_reason is None
        engine.run(requests, np.random.default_rng(0))
        assert engine.last_run_fast_path

    def test_central_queue_reason(self, config):
        engine = build_fleet(config, "batched", mode="central_queue")._make_engine()
        assert "queue" in engine.fast_path_reason

    def test_governed_reason(self, config):
        engine = build_fleet(
            config, "batched",
            governor=GovernorSpec(policy="greedy", max_concurrent_sprints=1),
        )._make_engine()
        assert "grant" in engine.fast_path_reason

    def test_physics_thermal_reason(self, config):
        engine = build_fleet(config, "batched", thermal="rc")._make_engine()
        assert "thermal backend" in engine.fast_path_reason

    def test_observer_reason(self, config):
        fleet = build_fleet(config, "batched", telemetry=True)
        stream, probe, trace = fleet._prepare_observers()
        engine = fleet._make_engine(stream=stream, probe=probe, trace=trace)
        assert "observers" in engine.fast_path_reason

    def test_custom_dispatch_callable_reason(self, config):
        from repro.traffic.engine import DISPATCH_POLICIES

        engine = build_fleet(
            config, "batched", policy=DISPATCH_POLICIES["round_robin"]
        )._make_engine()
        assert engine.fast_path_reason is not None

    def test_ineligible_batched_run_falls_back(self, config, requests):
        fleet = build_fleet(config, "batched", policy="least_loaded")
        engine = fleet._make_engine()
        engine.run(requests, np.random.default_rng(0))
        assert not engine.last_run_fast_path


class TestStreamingEntryPoints:
    ARRIVALS = PoissonArrivals(0.6)
    SERVICE = GammaService(2.0, cv=1.0)

    @pytest.mark.parametrize("chunk", [32, 1000])
    def test_run_blocks_matches_run(self, config, chunk):
        """Chunked block execution == materialise-then-run, same seeds."""
        scalar = generate_requests(self.ARRIVALS, self.SERVICE, n=300, seed=17)
        fleet = build_fleet(config, "batched")
        via_run = fleet.run(scalar, seed=5)
        via_stream = fleet.run_stream(
            self.ARRIVALS, self.SERVICE, 300,
            request_seed=17, run_seed=5, chunk_size=chunk,
        )
        assert_identical(via_run, via_stream)

    def test_run_stream_exact_engine_matches_batched(self, config):
        exact = build_fleet(config, "exact").run_stream(
            self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5
        )
        fast = build_fleet(config, "batched").run_stream(
            self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5
        )
        assert_identical(exact, fast)

    def test_keep_samples_false_keeps_counts_and_device_state(self, config):
        kept = build_fleet(config, "batched", keep_samples=True).run_stream(
            self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5
        )
        flat = build_fleet(
            config, "batched", keep_samples=False, telemetry=False
        ).run_stream(self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5)
        assert flat.served == ()
        assert flat.served_count == kept.served_count == 300
        assert flat.device_stats == kept.device_stats
        assert flat.final_event_s == kept.final_event_s

    def test_random_policy_consumes_identical_rng_stream(self, config):
        """One block draw of assignments == per-request scalar draws."""
        scalar = generate_requests(self.ARRIVALS, self.SERVICE, n=200, seed=3)
        exact = build_fleet(config, "exact", policy="random").run(scalar, seed=11)
        fast = build_fleet(config, "batched", policy="random").run(scalar, seed=11)
        assert_identical(exact, fast)
        assert [s.device_id for s in exact.served] == [
            s.device_id for s in fast.served
        ]

    def test_out_of_order_blocks_rejected(self, config):
        engine = build_fleet(config, "batched")._make_engine()
        blocks = [
            RequestBlock(0, np.array([5.0, 6.0]), np.array([1.0, 1.0])),
            RequestBlock(2, np.array([1.0, 2.0]), np.array([1.0, 1.0])),
        ]
        with pytest.raises(ValueError, match="time-ordered"):
            engine.run_blocks(iter(blocks), np.random.default_rng(0))
