"""Equivalence suite for the engine's vectorized (batched) execution mode.

The fast path (:mod:`repro.traffic.fastpath`) must be *bit-identical* to the
exact heap engine wherever it engages, and must fall back honestly — with a
stated reason — wherever it cannot.  These tests lock both properties across
the scenario matrix of policies × modes × governors × thermal backends, plus
the streaming entry points (``run_blocks`` / ``run_stream``) and the
flat-memory ``keep_samples=False`` mode.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.fleet import FleetSimulator
from repro.traffic.governor import GovernorSpec
from repro.traffic.request import (
    GammaService,
    RequestBlock,
    generate_request_blocks,
    generate_requests,
)
from repro.traffic.topology import TopologySpec

POLICIES = ("round_robin", "random", "least_loaded", "thermal_aware")
MODES = ("immediate", "central_queue")
GOVERNORS = (
    GovernorSpec(),
    GovernorSpec(policy="greedy", max_concurrent_sprints=2),
    GovernorSpec.cooperative(trip_headroom_w=30.0),
)
THERMALS = ("linear", "rc", "pcm")

#: The envelope fastpath.unsupported_reason promises to vectorize.
BATCHABLE = ("round_robin", "random")


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_default()


@pytest.fixture(scope="module")
def requests():
    # Poisson at moderate load with bursty gamma demands: exercises idle
    # drains, full sprints, partial sprints, and queue build-up.
    return generate_requests(
        PoissonArrivals(0.6), GammaService(2.0, cv=1.0), n=250, seed=13
    )


def build_fleet(config, engine, *, policy="round_robin", mode="immediate",
                governor="unlimited", thermal="linear", **kw):
    return FleetSimulator(
        config,
        n_devices=4,
        policy=policy,
        mode=mode,
        governor=governor,
        thermal=thermal,
        engine=engine,
        **kw,
    )


def assert_identical(exact, fast):
    """Both runs produced the same result, bit for bit."""
    assert exact.served == fast.served
    assert exact.device_stats == fast.device_stats
    assert exact.rejected == fast.rejected
    assert exact.abandoned == fast.abandoned
    assert exact.served_count == fast.served_count
    assert exact.final_event_s == fast.final_event_s
    assert exact.governor_stats == fast.governor_stats
    assert np.array_equal(exact.latencies_s, fast.latencies_s)


class TestScenarioMatrix:
    """batched == exact on every cell of the golden scenario matrix."""

    @pytest.mark.parametrize("thermal", THERMALS)
    @pytest.mark.parametrize("governor", GOVERNORS, ids=lambda g: g.policy)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_matches_exact(
        self, config, requests, policy, mode, governor, thermal
    ):
        exact = build_fleet(
            config, "exact", policy=policy, mode=mode,
            governor=governor, thermal=thermal,
        ).run(requests, seed=7)
        fast = build_fleet(
            config, "batched", policy=policy, mode=mode,
            governor=governor, thermal=thermal,
        ).run(requests, seed=7)
        assert_identical(exact, fast)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_engagement_matches_envelope(self, config, policy):
        """The vector core engages exactly where the envelope says it can."""
        engine = build_fleet(config, "batched", policy=policy)._make_engine()
        if policy in BATCHABLE:
            assert engine.fast_path_reason is None
        else:
            assert "state" in engine.fast_path_reason


class TestFallbackReasons:
    """Every unsupported knob names why it forces the exact loop."""

    def test_exact_mode_never_engages(self, config, requests):
        fleet = build_fleet(config, "exact")
        engine = fleet._make_engine()
        engine.run(requests, np.random.default_rng(0))
        assert not engine.last_run_fast_path

    def test_eligible_batched_engages(self, config, requests):
        fleet = build_fleet(config, "batched")
        engine = fleet._make_engine()
        assert engine.fast_path_reason is None
        engine.run(requests, np.random.default_rng(0))
        assert engine.last_run_fast_path

    def test_central_fifo_engages(self, config):
        """Central-queue FIFO is inside the envelope now."""
        engine = build_fleet(config, "batched", mode="central_queue")._make_engine()
        assert engine.fast_path_reason is None

    def test_edf_discipline_reason(self, config):
        engine = build_fleet(
            config, "batched", mode="central_queue", discipline="edf"
        )._make_engine()
        assert "re-sorts" in engine.fast_path_reason

    def test_replayable_governor_engages(self, config):
        """Greedy/cooperative budgets replay exactly through the event core."""
        for governor in GOVERNORS[1:]:
            engine = build_fleet(config, "batched", governor=governor)._make_engine()
            assert engine.fast_path_reason is None

    def test_token_bucket_governor_reason(self, config):
        engine = build_fleet(
            config, "batched", governor=GovernorSpec.token_bucket(0.5, 3.0)
        )._make_engine()
        assert "grant replay" in engine.fast_path_reason

    def test_physics_thermal_reason(self, config):
        engine = build_fleet(config, "batched", thermal="rc")._make_engine()
        assert "thermal backend" in engine.fast_path_reason

    def test_observers_ride_the_fast_path(self, config, requests):
        """Streaming instruments no longer force the exact loop."""
        fleet = build_fleet(config, "batched", telemetry=True)
        stream, probe, trace = fleet._prepare_observers()
        engine = fleet._make_engine(stream=stream, probe=probe, trace=trace)
        assert engine.fast_path_reason is None
        engine.run(requests, np.random.default_rng(0))
        assert engine.last_run_fast_path

    def test_custom_dispatch_callable_reason(self, config):
        from repro.traffic.engine import DISPATCH_POLICIES

        engine = build_fleet(
            config, "batched", policy=DISPATCH_POLICIES["round_robin"]
        )._make_engine()
        assert engine.fast_path_reason is not None

    def test_ineligible_batched_run_falls_back(self, config, requests):
        fleet = build_fleet(config, "batched", policy="least_loaded")
        engine = fleet._make_engine()
        engine.run(requests, np.random.default_rng(0))
        assert not engine.last_run_fast_path


class TestStreamingEntryPoints:
    ARRIVALS = PoissonArrivals(0.6)
    SERVICE = GammaService(2.0, cv=1.0)

    @pytest.mark.parametrize("chunk", [32, 1000])
    def test_run_blocks_matches_run(self, config, chunk):
        """Chunked block execution == materialise-then-run, same seeds."""
        scalar = generate_requests(self.ARRIVALS, self.SERVICE, n=300, seed=17)
        fleet = build_fleet(config, "batched")
        via_run = fleet.run(scalar, seed=5)
        via_stream = fleet.run_stream(
            self.ARRIVALS, self.SERVICE, 300,
            request_seed=17, run_seed=5, chunk_size=chunk,
        )
        assert_identical(via_run, via_stream)

    def test_run_stream_exact_engine_matches_batched(self, config):
        exact = build_fleet(config, "exact").run_stream(
            self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5
        )
        fast = build_fleet(config, "batched").run_stream(
            self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5
        )
        assert_identical(exact, fast)

    def test_keep_samples_false_keeps_counts_and_device_state(self, config):
        kept = build_fleet(config, "batched", keep_samples=True).run_stream(
            self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5
        )
        flat = build_fleet(
            config, "batched", keep_samples=False, telemetry=False
        ).run_stream(self.ARRIVALS, self.SERVICE, 300, request_seed=17, run_seed=5)
        assert flat.served == ()
        assert flat.served_count == kept.served_count == 300
        assert flat.device_stats == kept.device_stats
        assert flat.final_event_s == kept.final_event_s

    def test_random_policy_consumes_identical_rng_stream(self, config):
        """One block draw of assignments == per-request scalar draws."""
        scalar = generate_requests(self.ARRIVALS, self.SERVICE, n=200, seed=3)
        exact = build_fleet(config, "exact", policy="random").run(scalar, seed=11)
        fast = build_fleet(config, "batched", policy="random").run(scalar, seed=11)
        assert_identical(exact, fast)
        assert [s.device_id for s in exact.served] == [
            s.device_id for s in fast.served
        ]

    def test_out_of_order_blocks_rejected(self, config):
        engine = build_fleet(config, "batched")._make_engine()
        blocks = [
            RequestBlock(0, np.array([5.0, 6.0]), np.array([1.0, 1.0])),
            RequestBlock(2, np.array([1.0, 2.0]), np.array([1.0, 1.0])),
        ]
        with pytest.raises(ValueError, match="time-ordered"):
            engine.run_blocks(iter(blocks), np.random.default_rng(0))


FUZZ_GOVERNORS = (
    GovernorSpec(),
    GovernorSpec.greedy(2),
    GovernorSpec.cooperative(trip_headroom_w=30.0),
    GovernorSpec.token_bucket(0.5, 3.0),
)
FUZZ_DISCIPLINES = ("immediate", "fifo", "edf")


def fuzz_configs(n):
    """Deterministic random draws over the full knob space."""
    rng = np.random.default_rng(20260807)
    for _ in range(n):
        yield dict(
            policy=POLICIES[rng.integers(len(POLICIES))],
            discipline=FUZZ_DISCIPLINES[rng.integers(len(FUZZ_DISCIPLINES))],
            governor=FUZZ_GOVERNORS[rng.integers(len(FUZZ_GOVERNORS))],
            thermal=THERMALS[rng.integers(len(THERMALS))],
            telemetry=bool(rng.integers(2)),
        )


class TestEnvelopeHonestyFuzz:
    """Random (governor × discipline × thermal × telemetry) configurations:
    every one is bit-identical across engines, engages exactly where the
    envelope predicate promises, and otherwise names its fallback reason."""

    @pytest.mark.parametrize(
        "knobs",
        list(fuzz_configs(24)),
        ids=lambda k: (
            f"{k['policy']}-{k['discipline']}-{k['governor'].policy}"
            f"-{k['thermal']}-{'tele' if k['telemetry'] else 'plain'}"
        ),
    )
    def test_fuzzed_config_is_honest(self, config, requests, knobs):
        central = knobs["discipline"] != "immediate"
        kw = dict(
            policy=knobs["policy"],
            mode="central_queue" if central else "immediate",
            discipline=knobs["discipline"] if central else "fifo",
            governor=knobs["governor"],
            thermal=knobs["thermal"],
            telemetry=knobs["telemetry"],
        )
        exact = build_fleet(config, "exact", **kw).run(requests, seed=7)
        fast = build_fleet(config, "batched", **kw).run(requests, seed=7)
        assert_identical(exact, fast)
        # Telemetry sketches must agree too, not just sample lists.
        if knobs["telemetry"]:
            for q in (0.5, 0.9, 0.99):
                assert exact.telemetry.stream.latency.quantile(
                    q
                ) == fast.telemetry.stream.latency.quantile(q)
        # Honest engagement: the run's path matches the static envelope.
        expected = (
            knobs["thermal"] == "linear"
            and knobs["governor"].policy != "token_bucket"
            and (
                knobs["discipline"] == "fifo"
                if central
                else knobs["policy"] in BATCHABLE
            )
        )
        assert fast.fast_path == expected
        assert (fast.fast_path_reason is None) == expected
        assert not exact.fast_path


class TestGovernedCentralAcceptance:
    """The issue's headline scenario: 256 governed devices behind a central
    FIFO with full telemetry — summary, grant ledger, and sketch quantiles
    bit-identical between the exact loop and the vector core."""

    def run_once(self, config, engine):
        fleet = FleetSimulator(
            config,
            n_devices=256,
            mode="central_queue",
            discipline="fifo",
            governor=GovernorSpec.greedy(64),
            telemetry=True,
            engine=engine,
        )
        return fleet.run_stream(
            PoissonArrivals(50.0),
            GammaService(2.0, cv=1.0),
            4000,
            request_seed=9,
            run_seed=9,
        )

    def test_bit_identical_at_fleet_scale(self, config):
        exact = self.run_once(config, "exact")
        fast = self.run_once(config, "batched")
        assert fast.fast_path
        assert fast.fast_path_reason is None
        assert_identical(exact, fast)
        assert exact.summary() == fast.summary()
        assert exact.governor_stats == fast.governor_stats
        for q in (0.5, 0.9, 0.99, 0.999):
            assert exact.telemetry.stream.latency.quantile(
                q
            ) == fast.telemetry.stream.latency.quantile(q)


class TestShardedFastPath:
    """Sharded topology runs ride the vector core per rack and stay
    bit-identical at any shard worker count."""

    TOPOLOGY = TopologySpec.uniform(2, 2, 4)

    def run_once(self, config, engine, workers=1):
        fleet = FleetSimulator(
            config,
            topology=self.TOPOLOGY,
            policy="round_robin",
            engine=engine,
            shard_workers=workers,
        )
        return fleet.run_stream(
            PoissonArrivals(1.2),
            GammaService(2.0, cv=1.0),
            400,
            request_seed=21,
            run_seed=21,
        )

    def test_racks_ride_vector_core(self, config):
        exact = self.run_once(config, "exact")
        fast = self.run_once(config, "batched")
        assert fast.fast_path
        assert fast.fast_path_reason is None
        assert not exact.fast_path
        assert_identical(exact, fast)

    def test_invariant_under_shard_workers(self, config):
        serial = self.run_once(config, "batched", workers=1)
        fanned = self.run_once(config, "batched", workers=3)
        assert fanned.fast_path
        assert_identical(serial, fanned)


class TestPushMany:
    """LeastLoadedIndex.push_many is pick-equivalent to per-position updates."""

    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_matches_sequential_updates(self, config, batch):
        from repro.traffic.device import SprintDevice
        from repro.traffic.engine import LeastLoadedIndex
        from repro.traffic.request import Request

        rng = np.random.default_rng(batch)
        devices = [SprintDevice(config, device_id=i) for i in range(16)]
        mirror = [SprintDevice(config, device_id=i) for i in range(16)]
        indexed = LeastLoadedIndex(devices)
        reference = LeastLoadedIndex(mirror)
        t = 0.0
        for step in range(20):
            t += float(rng.exponential(2.0))
            positions = [int(p) for p in rng.integers(16, size=batch)]
            for pos in positions:
                request = Request(
                    index=0, arrival_s=t, sustained_time_s=float(rng.uniform(1, 4))
                )
                devices[pos].serve(request)
                mirror[pos].serve(request)
                reference.update(pos)
            indexed.push_many(positions)
            assert indexed.pick(t) == reference.pick(t)
