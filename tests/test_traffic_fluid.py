"""Tests for the calibrated fluid (mean-field) fleet mode.

Two kinds of guarantee are locked here: the *hard* ones (determinism,
validation, lifecycle accounting, fleet/scenario/sweep wiring) and the
*calibrated* one — the accuracy contract in
:data:`repro.traffic.fluid.FLUID_ACCURACY_CONTRACT`, measured against the
exact engine with the CRN paired-comparison machinery on the reference
regime the contract states.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.experiments import Scenario, compare
from repro.traffic.fleet import FleetSimulator
from repro.traffic.fluid import FLUID_ACCURACY_CONTRACT, FluidFleetModel, FluidResult
from repro.traffic.request import GammaService, generate_requests
from repro.traffic.sweep import SweepSpec, expand_cells, run_cell


@pytest.fixture(scope="module")
def config():
    return SystemConfig.paper_default()


def stream(n=400, rate=1.0, mean_s=2.0, cv=0.8, seed=7):
    requests = generate_requests(
        PoissonArrivals(rate), GammaService(mean_s, cv=cv), n, seed=seed
    )
    arrival = np.array([r.arrival_s for r in requests])
    sustained = np.array([r.sustained_time_s for r in requests])
    return arrival, sustained


class TestFluidModel:
    def test_run_is_deterministic(self, config):
        arrival, sustained = stream()
        model = FluidFleetModel(config, n_devices=8)
        a = model.run(arrival, sustained)
        b = model.run(arrival, sustained)
        assert np.array_equal(a.latencies_s, b.latencies_s)
        assert np.array_equal(a.stored_heat_j, b.stored_heat_j)
        assert a.summary(2.0) == b.summary(2.0)

    def test_result_shape_and_accounting(self, config):
        arrival, sustained = stream(n=300)
        result = FluidFleetModel(config, n_devices=8).run(arrival, sustained)
        assert isinstance(result, FluidResult)
        assert result.served_count == result.request_count == 300
        assert result.latencies_s.shape == arrival.shape
        # Latency is queueing plus execution; execution cannot exceed the
        # sustained demand nor undercut the full-sprint time.
        execution = result.latencies_s - result.queueing_s
        assert np.all(execution <= sustained + 1e-12)
        assert np.all(execution >= sustained / 10.0 - 1e-12)
        assert np.all(result.queueing_s >= 0.0)
        assert result.horizon_s >= float(arrival[-1])

    def test_sprint_disabled_runs_sustained(self, config):
        arrival, sustained = stream(n=200)
        result = FluidFleetModel(config, n_devices=8, sprint_enabled=False).run(
            arrival, sustained
        )
        assert not result.sprinted.any()
        assert np.all(result.sprint_fullness == 0.0)
        assert np.all(result.stored_heat_j == 0.0)

    def test_refuse_partial_gives_all_or_nothing_fullness(self, config):
        # Load heavy enough that headroom runs out mid-run.
        arrival, sustained = stream(n=600, rate=4.0, mean_s=4.0)
        result = FluidFleetModel(
            config, n_devices=2, refuse_partial_sprints=True
        ).run(arrival, sustained)
        assert set(np.unique(result.sprint_fullness)) <= {0.0, 1.0}

    def test_empty_stream(self, config):
        result = FluidFleetModel(config, n_devices=4).run(
            np.empty(0), np.empty(0)
        )
        assert result.served_count == 0
        assert result.summary().request_count == 0

    def test_deadline_miss_counting(self, config):
        arrival, sustained = stream(n=200)
        model = FluidFleetModel(config, n_devices=8)
        generous = model.run(arrival, sustained, deadline_at_s=arrival + 1e9)
        assert generous.deadline_miss_count == 0
        tight = model.run(arrival, sustained, deadline_at_s=arrival + 1e-9)
        assert tight.deadline_miss_count == 200
        assert tight.summary().deadline_miss_count == 200

    def test_summary_provenance_is_fluid(self, config):
        arrival, sustained = stream(n=100)
        summary = FluidFleetModel(config, n_devices=4).run(arrival, sustained).summary(2.0)
        assert summary.telemetry_source == "fluid"
        assert summary.slo_attainment is not None

    def test_validation(self, config):
        with pytest.raises(ValueError):
            FluidFleetModel(config, n_devices=0)
        with pytest.raises(ValueError):
            FluidFleetModel(config, n_devices=1, sprint_speedup=0.5)
        with pytest.raises(TypeError):
            FluidFleetModel(config, n_devices=1, thermal=42)
        model = FluidFleetModel(config, n_devices=4)
        with pytest.raises(ValueError, match="sorted"):
            model.run(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="aligned"):
            model.run(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError, match="non-negative"):
            model.run(np.array([1.0, 2.0]), np.array([1.0, -1.0]))


class TestFleetWiring:
    def test_fleet_mode_fluid_runs(self, config):
        requests = generate_requests(
            PoissonArrivals(1.0), GammaService(2.0, cv=0.8), 200, seed=3
        )
        fleet = FleetSimulator(config, n_devices=8, mode="fluid")
        result = fleet.run(requests)
        assert isinstance(result, FluidResult)
        assert result.served_count == 200

    def test_run_stream_matches_run(self, config):
        requests = generate_requests(
            PoissonArrivals(1.0), GammaService(2.0, cv=0.8), 200, seed=3
        )
        fleet = FleetSimulator(config, n_devices=8, mode="fluid")
        via_run = fleet.run(requests)
        via_stream = fleet.run_stream(
            PoissonArrivals(1.0), GammaService(2.0, cv=0.8), 200, request_seed=3
        )
        assert np.array_equal(via_run.latencies_s, via_stream.latencies_s)
        assert np.array_equal(via_run.arrival_s, via_stream.arrival_s)

    def test_incompatible_knobs_rejected(self, config):
        from repro.traffic.governor import GovernorSpec

        governed = GovernorSpec(policy="greedy", max_concurrent_sprints=2)
        with pytest.raises(ValueError, match="ungoverned"):
            FleetSimulator(config, n_devices=4, mode="fluid", governor=governed)
        with pytest.raises(ValueError, match="queue"):
            FleetSimulator(config, n_devices=4, mode="fluid", queue_bound=10)
        with pytest.raises(ValueError, match="instruments"):
            FleetSimulator(config, n_devices=4, mode="fluid", telemetry=True)

    def test_scenario_validation_mirrors_fleet(self):
        base = dict(
            arrivals=PoissonArrivals(1.0),
            service=GammaService(2.0),
            n_requests=50,
            n_devices=4,
            mode="fluid",
        )
        from repro.traffic.governor import GovernorSpec

        Scenario(**base)  # valid
        governed = GovernorSpec(policy="greedy", max_concurrent_sprints=2)
        with pytest.raises(ValueError, match="ungoverned"):
            Scenario(**base, governor=governed)
        with pytest.raises(ValueError, match="queue"):
            Scenario(**base, queue_bound=5)
        with pytest.raises(ValueError, match="instruments"):
            Scenario(**base, telemetry=True)


class TestSweepWiring:
    def test_fluid_cells_collapse_orthogonal_axes(self):
        spec = SweepSpec(
            policies=("round_robin", "least_loaded"),
            arrival_rates_hz=(0.1, 0.2),
            fleet_sizes=(2, 4),
            disciplines=("immediate", "fluid"),
            queue_bounds=(None, 8),
            n_requests=40,
        )
        cells = expand_cells(spec)
        fluid = [c for c in cells if c.discipline == "fluid"]
        # One fluid cell per rate x fleet (policy and bound axes collapse);
        # immediate cells keep the full policy x bound cross.
        assert len(fluid) == 4
        assert all(c.queue_bound is None for c in fluid)
        assert all(c.governor.policy == "unlimited" for c in fluid)

    def test_fluid_cell_runs_and_reports(self):
        spec = SweepSpec(
            disciplines=("fluid",),
            arrival_rates_hz=(0.2,),
            fleet_sizes=(4,),
            service_cv=0.5,
            n_requests=60,
        )
        (cell,) = expand_cells(spec)
        result = run_cell(spec, cell, SystemConfig.paper_default())
        assert result.summary.request_count == 60
        assert result.summary.telemetry_source == "fluid"


class TestAccuracyContract:
    def test_contract_holds_on_reference_regime(self, config):
        """|fluid - exact| <= band * |exact| + CI half-width, per field.

        The reference regime of FLUID_ACCURACY_CONTRACT: Poisson arrivals,
        16 devices (>= 8), 1000 requests (>= 50 per device), per-device
        sustained utilisation 1.0 * 2.5 / 16 ~= 0.16 (<= ~0.25).  CRN
        pairing replays identical request streams through both arms, so
        the paired deltas measure pure approximation error.
        """
        baseline = Scenario(
            arrivals=PoissonArrivals(1.0),
            service=GammaService(2.5, cv=0.7),
            n_requests=1000,
            n_devices=16,
            policy="round_robin",
        )
        duel = compare(
            baseline, baseline.with_options(mode="fluid"),
            n_replications=10, pairing="crn", base_seed=42, config=config,
        )
        failures = []
        for metric, band in FLUID_ACCURACY_CONTRACT.items():
            delta = duel.delta(metric)
            exact_mean = duel.baseline.estimate(metric).mean
            allowed = band * abs(exact_mean) + delta.half_width
            if abs(delta.mean_delta) > allowed:
                failures.append(
                    f"{metric}: |delta| {abs(delta.mean_delta):.4g} > "
                    f"{band:.0%} * {abs(exact_mean):.4g} + {delta.half_width:.4g}"
                )
        assert not failures, "\n".join(failures)

    def test_contract_throughput_holds_under_heavy_load(self, config):
        """The work-conserving fluid queue tracks throughput at any load,
        even where the latency fields are out of contract.  The exact
        comparator is central-queue FIFO — the work-conserving system the
        fluid limit is the limit *of*; immediate dispatch adds per-device
        queue imbalance the pooled fluid deliberately has none of."""
        baseline = Scenario(
            arrivals=PoissonArrivals(3.0),
            service=GammaService(4.0, cv=1.0),
            n_requests=800,
            n_devices=8,
            mode="central_queue",
        )
        duel = compare(
            baseline, baseline.with_options(mode="fluid"),
            n_replications=8, pairing="crn", base_seed=7, config=config,
        )
        delta = duel.delta("throughput_rps")
        exact_mean = duel.baseline.estimate("throughput_rps").mean
        band = FLUID_ACCURACY_CONTRACT["throughput_rps"]
        assert abs(delta.mean_delta) <= band * abs(exact_mean) + delta.half_width
