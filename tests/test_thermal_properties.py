"""Property-based tests (hypothesis) for the thermal substrate invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.network import ThermalNetwork
from repro.thermal.package import PcmPackage
from repro.thermal.pcm import PhaseChangeBlock

# Keep runtimes modest: the RC solver sub-steps internally.
COMMON_SETTINGS = dict(max_examples=30, deadline=None)


class TestPcmBlockProperties:
    @given(
        mass_g=st.floats(min_value=0.001, max_value=1.0),
        heat_j=st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_melt_fraction_always_in_unit_interval(self, mass_g, heat_j):
        block = PhaseChangeBlock(mass_g=mass_g, initial_temperature_c=25.0)
        block.add_heat(heat_j)
        assert 0.0 <= block.melt_fraction <= 1.0

    @given(
        heats=st.lists(st.floats(min_value=-20.0, max_value=20.0), min_size=1, max_size=20)
    )
    @settings(**COMMON_SETTINGS)
    def test_enthalpy_is_sum_of_heat_added(self, heats):
        block = PhaseChangeBlock(mass_g=0.15, initial_temperature_c=60.0)
        for heat in heats:
            block.add_heat(heat)
        assert block.enthalpy_j == pytest.approx(sum(heats), abs=1e-9)

    @given(
        temperature=st.floats(min_value=-20.0, max_value=150.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_set_temperature_round_trips(self, temperature):
        block = PhaseChangeBlock(mass_g=0.15)
        block.set_temperature(temperature)
        assert block.temperature_c == pytest.approx(temperature, abs=1e-9)

    @given(
        heat_j=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_temperature_never_decreases_when_adding_heat(self, heat_j):
        block = PhaseChangeBlock(mass_g=0.15, initial_temperature_c=30.0)
        before = block.temperature_c
        block.add_heat(heat_j)
        assert block.temperature_c >= before - 1e-12


class TestNetworkProperties:
    @given(
        power_w=st.floats(min_value=0.0, max_value=20.0),
        duration_s=st.floats(min_value=0.01, max_value=5.0),
        capacitance=st.floats(min_value=0.05, max_value=10.0),
        resistance=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_energy_is_conserved(self, power_w, duration_s, capacitance, resistance):
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("node", capacitance)
        net.add_fixed_node("ambient")
        net.connect("node", "ambient", resistance)
        net.step(duration_s, {"node": power_w})
        balance = net.stored_energy_j() + net.dissipated_energy_j
        assert balance == pytest.approx(net.injected_energy_j, rel=1e-6, abs=1e-9)

    @given(
        power_w=st.floats(min_value=0.0, max_value=20.0),
        duration_s=st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_energy_conserved_with_pcm_in_the_loop(self, power_w, duration_s):
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("junction", 0.03)
        net.add_pcm_node("pcm", PhaseChangeBlock(mass_g=0.15))
        net.add_fixed_node("ambient")
        net.connect("junction", "pcm", 0.5)
        net.connect("pcm", "ambient", 33.5)
        net.step(duration_s, {"junction": power_w})
        balance = net.stored_energy_j() + net.dissipated_energy_j
        assert balance == pytest.approx(net.injected_energy_j, rel=1e-6, abs=1e-9)

    @given(
        power_w=st.floats(min_value=0.0, max_value=10.0),
        resistance=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_temperature_never_exceeds_steady_state_bound(self, power_w, resistance):
        # For a single RC stage driven by constant power, the temperature can
        # never exceed ambient + P * R.
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("node", 0.5)
        net.add_fixed_node("ambient")
        net.connect("node", "ambient", resistance)
        net.step(20.0, {"node": power_w})
        assert net.temperature("node") <= 25.0 + power_w * resistance + 1e-6

    @given(
        start_c=st.floats(min_value=25.0, max_value=80.0),
        duration_s=st.floats(min_value=0.1, max_value=30.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_unpowered_network_never_drops_below_ambient(self, start_c, duration_s):
        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("node", 1.0, initial_temperature_c=start_c)
        net.add_fixed_node("ambient")
        net.connect("node", "ambient", 10.0)
        net.step(duration_s)
        assert net.temperature("node") >= 25.0 - 1e-9
        assert net.temperature("node") <= start_c + 1e-9


class TestPackageProperties:
    @given(
        mass_g=st.floats(min_value=0.001, max_value=0.5),
        power_w=st.floats(min_value=4.0, max_value=20.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_sprint_budget_grows_with_pcm_mass(self, mass_g, power_w):
        small = PcmPackage(pcm_mass_g=mass_g)
        large = PcmPackage(pcm_mass_g=mass_g * 2)
        assert large.sprint_budget_j(power_w) > small.sprint_budget_j(power_w)

    @given(power_w=st.floats(min_value=2.0, max_value=20.0))
    @settings(max_examples=15, deadline=None)
    def test_estimated_duration_decreases_with_power(self, power_w):
        pkg = PcmPackage(pcm_mass_g=0.15)
        shorter = pkg.estimated_sprint_duration_s(power_w * 1.5)
        longer = pkg.estimated_sprint_duration_s(power_w)
        assert shorter <= longer
