"""Tests for workload characterisation and the Table 1 suite."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import SobelKernel
from repro.kernels.base import OperationCounts
from repro.workloads import (
    INPUT_CLASSES,
    characterize_kernel,
    default_workloads,
    descriptor_from_counts,
    kernel_suite,
    largest_workloads,
)
from repro.workloads.descriptor import MemoryBehaviour, ParallelBehaviour
from repro.workloads.suite import DEFAULT_CLASS


class TestDescriptorFromCounts:
    def test_builds_descriptor_with_mix(self):
        counts = OperationCounts(int_alu=40, int_mul=5, fp=15, load=25, store=10, branch=5)
        descriptor = descriptor_from_counts(
            "toy", counts, MemoryBehaviour(), ParallelBehaviour(), input_label="A"
        )
        assert descriptor.total_instructions == counts.total
        assert descriptor.instruction_mix.memory_fraction == pytest.approx(0.35)
        assert descriptor.input_label == "A"

    def test_rejects_empty_counts(self):
        with pytest.raises(ValueError):
            descriptor_from_counts(
                "toy", OperationCounts(), MemoryBehaviour(), ParallelBehaviour()
            )


class TestCharacterizeKernel:
    def test_uses_kernel_hints(self):
        kernel = SobelKernel()
        descriptor = characterize_kernel(kernel, (480, 640), input_label="A")
        assert descriptor.name == "sobel"
        assert descriptor.input_label == "A"
        assert descriptor.total_instructions == pytest.approx(
            kernel.operation_counts((480, 640)).total
        )
        assert descriptor.memory.l1_miss_rate == pytest.approx(
            kernel.streaming_intensity()
        )
        assert descriptor.parallel.parallel_fraction == pytest.approx(
            kernel.parallel_fraction()
        )

    def test_bytes_per_miss_override(self):
        descriptor = characterize_kernel(
            SobelKernel(), (100, 100), bytes_per_l2_miss=128.0
        )
        assert descriptor.memory.bytes_per_l2_miss == 128.0


class TestKernelSuite:
    def setup_method(self):
        self.suite = kernel_suite()

    def test_contains_all_table1_kernels(self):
        assert set(self.suite) == set(INPUT_CLASSES)
        assert len(self.suite) == 6

    def test_input_classes_per_kernel(self):
        # Figure 9: feature and texture go up to C, the rest to D.
        assert self.suite["feature"].input_labels == ["A", "B", "C"]
        assert self.suite["texture"].input_labels == ["A", "B", "C"]
        assert self.suite["sobel"].input_labels == ["A", "B", "C", "D"]

    def test_classes_grow_in_work(self):
        for family in self.suite.values():
            sizes = [
                family.workload(label).total_instructions
                for label in family.input_labels
            ]
            assert all(later > earlier for earlier, later in zip(sizes, sizes[1:]))

    def test_default_inputs_are_multi_second_tasks(self):
        # The paper's responsiveness story: tasks of a few seconds on one core.
        for workload in default_workloads().values():
            seconds = workload.single_core_seconds(1e9)
            assert 0.8 <= seconds <= 10.0

    def test_missing_class_falls_back_to_largest(self):
        workload = self.suite["feature"].workload("D")
        assert workload.input_label == "C"

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            self.suite["sobel"].workload("Z")

    def test_entries_are_cached(self):
        family = self.suite["sobel"]
        assert family.entry("B") is family.entry("B")

    def test_workload_for_megapixels(self):
        family = self.suite["sobel"]
        small = family.workload_for_megapixels(1.0)
        large = family.workload_for_megapixels(4.0)
        assert large.total_instructions == pytest.approx(
            4 * small.total_instructions, rel=0.05
        )
        with pytest.raises(ValueError):
            family.workload_for_megapixels(0.0)

    def test_largest_workloads_pick_final_class(self):
        largest = largest_workloads()
        assert largest["sobel"].input_label == "D"
        assert largest["feature"].input_label == "C"

    def test_default_class_is_defined_for_every_kernel(self):
        for name, classes in INPUT_CLASSES.items():
            assert DEFAULT_CLASS in classes, name

    def test_missing_class_table_raises(self):
        with pytest.raises(KeyError):
            kernel_suite(classes={"sobel": {"A": 1.0}})

    @settings(max_examples=10, deadline=None)
    @given(mp=st.floats(min_value=0.05, max_value=16.0))
    def test_arbitrary_sizes_produce_valid_descriptors(self, mp):
        workload = self.suite["sobel"].workload_for_megapixels(mp)
        assert workload.total_instructions > 0
        assert 0.0 < workload.instruction_mix.memory_fraction < 1.0
        assert workload.memory.working_set_bytes > 0
