"""Back-of-envelope heat-storage sizing calculators (Sections 4.1-4.3).

The paper sizes three candidate heat stores for a 16 J sprint over a
64 mm^2 die:

* a 7.2 mm thick copper block (volumetric heat capacity 3.45 J/cm^3 K,
  allowing a 10 C temperature rise),
* a 10.3 mm thick aluminium block (2.42 J/cm^3 K, same rise),
* a 2.3 mm thick / ~150 mg block of PCM with 100 J/g latent heat and
  1 g/cm^3 density.

It also observes that the peak heat flux of a 16 W sprint over 64 mm^2 is
25 W/cm^2, within the range handled by conventional thermal interface
materials.  These helpers reproduce those calculations and are exercised by
the ``sizing`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.materials import Material

MM2_PER_CM2 = 100.0
MM_PER_CM = 10.0


def sprint_heat_j(power_w: float, duration_s: float) -> float:
    """Total heat deposited by a sprint of the given power and duration."""
    if power_w < 0 or duration_s < 0:
        raise ValueError("power and duration must be non-negative")
    return power_w * duration_s


def heat_flux_w_cm2(power_w: float, die_area_mm2: float) -> float:
    """Heat flux through the die footprint in W/cm^2."""
    if die_area_mm2 <= 0:
        raise ValueError("die area must be positive")
    return power_w / (die_area_mm2 / MM2_PER_CM2)


def solid_block_thickness_mm(
    material: Material,
    heat_j: float,
    die_area_mm2: float,
    allowed_rise_c: float,
) -> float:
    """Thickness of a solid block absorbing ``heat_j`` with a bounded rise.

    Matches the Section 4.1 calculation: the block covers the die footprint
    and stores heat in sensible form only.
    """
    if heat_j < 0:
        raise ValueError("heat must be non-negative")
    if allowed_rise_c <= 0:
        raise ValueError("allowed temperature rise must be positive")
    if die_area_mm2 <= 0:
        raise ValueError("die area must be positive")
    volume_cm3 = heat_j / (material.volumetric_heat_j_cm3k * allowed_rise_c)
    area_cm2 = die_area_mm2 / MM2_PER_CM2
    return volume_cm3 / area_cm2 * MM_PER_CM


def pcm_mass_g_for_heat(material: Material, heat_j: float) -> float:
    """Mass of PCM whose latent heat alone absorbs ``heat_j`` joules."""
    if not material.is_phase_change:
        raise ValueError(f"material {material.name!r} has no latent heat")
    if heat_j < 0:
        raise ValueError("heat must be non-negative")
    return heat_j / material.latent_heat_j_g


def pcm_thickness_mm(material: Material, heat_j: float, die_area_mm2: float) -> float:
    """Thickness of a PCM block (covering the die) absorbing ``heat_j`` latently."""
    mass_g = pcm_mass_g_for_heat(material, heat_j)
    volume_cm3 = mass_g / material.density_g_cm3
    area_cm2 = die_area_mm2 / MM2_PER_CM2
    return volume_cm3 / area_cm2 * MM_PER_CM


@dataclass(frozen=True)
class HeatStoreOption:
    """One candidate heat store compared in Section 4."""

    material_name: str
    kind: str  # "sensible" or "latent"
    thickness_mm: float
    mass_g: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.material_name}: {self.thickness_mm:.1f} mm, "
            f"{self.mass_g * 1000:.0f} mg ({self.kind})"
        )


def compare_heat_stores(
    heat_j: float,
    die_area_mm2: float,
    allowed_rise_c: float,
    solid_materials: list[Material],
    pcm_materials: list[Material],
) -> list[HeatStoreOption]:
    """Compare solid and PCM heat stores for the same sprint energy.

    Returns one :class:`HeatStoreOption` per material, in the order given
    (solids first).  This reproduces the Section 4.1/4.2 comparison table.
    """
    options: list[HeatStoreOption] = []
    area_cm2 = die_area_mm2 / MM2_PER_CM2
    for material in solid_materials:
        thickness = solid_block_thickness_mm(material, heat_j, die_area_mm2, allowed_rise_c)
        volume_cm3 = thickness / MM_PER_CM * area_cm2
        options.append(
            HeatStoreOption(
                material_name=material.name,
                kind="sensible",
                thickness_mm=thickness,
                mass_g=material.mass_for_volume(volume_cm3),
            )
        )
    for material in pcm_materials:
        thickness = pcm_thickness_mm(material, heat_j, die_area_mm2)
        options.append(
            HeatStoreOption(
                material_name=material.name,
                kind="latent",
                thickness_mm=thickness,
                mass_g=pcm_mass_g_for_heat(material, heat_j),
            )
        )
    return options
