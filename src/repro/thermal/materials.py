"""Material property database for thermal design.

The thermal design chapter of the paper (Section 4) sizes heat-storage
blocks made of copper, aluminium, or phase change material (PCM) placed
close to the die.  This module provides the material constants used by the
sizing calculators (:mod:`repro.thermal.sizing`) and by the package builders
(:mod:`repro.thermal.package`).

All quantities use SI-derived units convenient for package-scale work:

* density               -- g / cm^3
* specific heat         -- J / (g K)
* volumetric heat       -- J / (cm^3 K)   (derived)
* latent heat of fusion -- J / g          (zero for materials that never melt
                                           in the operating range)
* melting point         -- degrees Celsius
* thermal conductivity  -- W / (m K)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """Thermophysical properties of a packaging or heat-storage material.

    Parameters
    ----------
    name:
        Human readable identifier.
    density_g_cm3:
        Mass density in grams per cubic centimetre.
    specific_heat_j_gk:
        Specific heat capacity in joules per gram-kelvin.
    conductivity_w_mk:
        Thermal conductivity in watts per metre-kelvin.
    latent_heat_j_g:
        Latent heat of fusion in joules per gram.  Zero for materials that do
        not change phase at package temperatures.
    melting_point_c:
        Melting point in degrees Celsius.  ``None`` when the material does
        not melt in the operating range (metals, silicon).
    """

    name: str
    density_g_cm3: float
    specific_heat_j_gk: float
    conductivity_w_mk: float
    latent_heat_j_g: float = 0.0
    melting_point_c: float | None = None

    def __post_init__(self) -> None:
        if self.density_g_cm3 <= 0:
            raise ValueError(f"density must be positive, got {self.density_g_cm3}")
        if self.specific_heat_j_gk <= 0:
            raise ValueError(
                f"specific heat must be positive, got {self.specific_heat_j_gk}"
            )
        if self.conductivity_w_mk <= 0:
            raise ValueError(
                f"conductivity must be positive, got {self.conductivity_w_mk}"
            )
        if self.latent_heat_j_g < 0:
            raise ValueError(
                f"latent heat must be non-negative, got {self.latent_heat_j_g}"
            )

    @property
    def volumetric_heat_j_cm3k(self) -> float:
        """Volumetric heat capacity in J/(cm^3 K)."""
        return self.density_g_cm3 * self.specific_heat_j_gk

    @property
    def is_phase_change(self) -> bool:
        """True when the material stores latent heat at a melting point."""
        return self.latent_heat_j_g > 0 and self.melting_point_c is not None

    def heat_capacity_j_k(self, mass_g: float) -> float:
        """Sensible heat capacity (J/K) of ``mass_g`` grams of material."""
        if mass_g < 0:
            raise ValueError(f"mass must be non-negative, got {mass_g}")
        return mass_g * self.specific_heat_j_gk

    def latent_capacity_j(self, mass_g: float) -> float:
        """Total latent heat (J) available from melting ``mass_g`` grams."""
        if mass_g < 0:
            raise ValueError(f"mass must be non-negative, got {mass_g}")
        return mass_g * self.latent_heat_j_g

    def mass_for_volume(self, volume_cm3: float) -> float:
        """Mass (g) of a block of the given volume (cm^3)."""
        if volume_cm3 < 0:
            raise ValueError(f"volume must be non-negative, got {volume_cm3}")
        return volume_cm3 * self.density_g_cm3


# --- Reference materials -----------------------------------------------------
#
# Copper and aluminium volumetric heat capacities (3.45 and 2.42 J/cm^3 K) are
# the values quoted in Section 4.1 of the paper.  Icosane is the candle-wax
# PCM cited in Section 4.2 (melting point 36.8 C, latent heat 241 J/g).  The
# "generic" PCM matches the paper's working assumption of 100 J/g latent heat,
# 1 g/cm^3 density, and a 60 C melting point chosen to sit between the
# sustained junction temperature and the 70 C junction limit.

COPPER = Material(
    name="copper",
    density_g_cm3=8.96,
    specific_heat_j_gk=0.385,
    conductivity_w_mk=401.0,
)

ALUMINIUM = Material(
    name="aluminium",
    density_g_cm3=2.70,
    specific_heat_j_gk=0.897,
    conductivity_w_mk=237.0,
)

SILICON = Material(
    name="silicon",
    density_g_cm3=2.329,
    specific_heat_j_gk=0.705,
    conductivity_w_mk=149.0,
)

ICOSANE = Material(
    name="icosane",
    density_g_cm3=0.789,
    specific_heat_j_gk=2.21,
    conductivity_w_mk=0.25,
    latent_heat_j_g=241.0,
    melting_point_c=36.8,
)

GENERIC_PCM = Material(
    name="generic-pcm",
    density_g_cm3=1.0,
    specific_heat_j_gk=0.5,
    conductivity_w_mk=5.0,
    latent_heat_j_g=100.0,
    melting_point_c=60.0,
)

_REGISTRY: dict[str, Material] = {
    material.name: material
    for material in (COPPER, ALUMINIUM, SILICON, ICOSANE, GENERIC_PCM)
}


def get_material(name: str) -> Material:
    """Look up a reference material by name.

    Raises
    ------
    KeyError
        If the material is unknown.  The error message lists the known names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown material {name!r}; known materials: {known}") from None


def register_material(material: Material, *, overwrite: bool = False) -> None:
    """Add a material to the registry so experiments can refer to it by name."""
    if material.name in _REGISTRY and not overwrite:
        raise ValueError(f"material {material.name!r} already registered")
    _REGISTRY[material.name] = material


def list_materials() -> list[str]:
    """Names of all registered materials, sorted alphabetically."""
    return sorted(_REGISTRY)
