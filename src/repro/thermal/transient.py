"""Transient thermal simulation drivers.

These helpers wrap :class:`~repro.thermal.network.ThermalNetwork` with the
specific scenarios evaluated in the paper:

* :func:`simulate_sprint` — Figure 4(a): apply sprint power from idle until
  the junction reaches its maximum temperature (or the workload finishes).
* :func:`simulate_cooldown` — Figure 4(b): let the package cool back toward
  ambient after a sprint and report how long until it is "close to ambient".
* :func:`simulate_sprint_and_cooldown` — the two chained together.

Traces are returned as :class:`ThermalTrace` objects with numpy arrays, which
the experiment modules turn directly into the series plotted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.thermal.network import ThermalNetwork
from repro.thermal.package import JUNCTION, PCM, PcmPackage


@dataclass
class ThermalTrace:
    """Sampled temperatures over time for one transient scenario."""

    time_s: np.ndarray
    junction_c: np.ndarray
    pcm_c: np.ndarray | None = None
    melt_fraction: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.time_s) != len(self.junction_c):
            raise ValueError("time and junction arrays must have equal length")
        if len(self.time_s) == 0:
            raise ValueError("trace must contain at least one sample")

    @property
    def duration_s(self) -> float:
        """Total simulated time covered by the trace."""
        return float(self.time_s[-1] - self.time_s[0])

    @property
    def peak_junction_c(self) -> float:
        """Maximum junction temperature reached."""
        return float(np.max(self.junction_c))

    @property
    def final_junction_c(self) -> float:
        """Junction temperature at the end of the trace."""
        return float(self.junction_c[-1])

    def time_to_reach(self, temperature_c: float) -> float | None:
        """First time (s, relative to trace start) the junction reaches a temperature.

        Returns ``None`` if the temperature is never reached.
        """
        above = np.nonzero(self.junction_c >= temperature_c)[0]
        if len(above) == 0:
            return None
        return float(self.time_s[above[0]] - self.time_s[0])

    def time_above(self, temperature_c: float) -> float:
        """Total time (s) the junction spends at or above a temperature."""
        if len(self.time_s) < 2:
            return 0.0
        dt = np.diff(self.time_s)
        mask = self.junction_c[:-1] >= temperature_c
        return float(np.sum(dt[mask]))

    def plateau_duration(self, temperature_c: float, tolerance_c: float = 1.0) -> float:
        """Time the junction spends within ``tolerance_c`` of a temperature.

        Used to measure the melt plateau of Figure 4(a) and the freeze
        plateau of Figure 4(b).
        """
        if len(self.time_s) < 2:
            return 0.0
        dt = np.diff(self.time_s)
        mask = np.abs(self.junction_c[:-1] - temperature_c) <= tolerance_c
        return float(np.sum(dt[mask]))

    def time_to_cool_within(self, ambient_c: float, tolerance_c: float) -> float | None:
        """Time until the junction falls and stays within tolerance of ambient."""
        within = self.junction_c <= ambient_c + tolerance_c
        # Find the first index after which the trace never leaves the band.
        for idx in range(len(within)):
            if within[idx] and bool(np.all(within[idx:])):
                return float(self.time_s[idx] - self.time_s[0])
        return None


@dataclass
class SprintThermalResult:
    """Outcome of a sprint transient (Figure 4(a))."""

    trace: ThermalTrace
    sprint_power_w: float
    #: Time at which the junction first reached the maximum temperature, or
    #: None if the sprint ran to its requested duration without overheating.
    exhausted_at_s: float | None
    #: Duration of the melt plateau (junction near the PCM melting point).
    melt_plateau_s: float
    #: Melt fraction of the PCM at the end of the sprint.
    final_melt_fraction: float

    @property
    def sustainable(self) -> bool:
        """True when the sprint never hit the junction limit."""
        return self.exhausted_at_s is None

    @property
    def sprint_duration_s(self) -> float:
        """Usable sprint time: until exhaustion or the end of the trace."""
        if self.exhausted_at_s is not None:
            return self.exhausted_at_s
        return self.trace.duration_s


@dataclass
class CooldownResult:
    """Outcome of a post-sprint cooldown transient (Figure 4(b))."""

    trace: ThermalTrace
    #: Time until the junction is within ``tolerance_c`` of ambient, if reached.
    time_to_near_ambient_s: float | None
    #: Duration of the freeze plateau (junction near the PCM melting point).
    freeze_plateau_s: float
    tolerance_c: float


def _trace_from_states(states, has_pcm: bool) -> ThermalTrace:
    time_s = np.array([s.time_s for s in states])
    junction = np.array([s.temperatures_c[JUNCTION] for s in states])
    pcm = None
    melt = None
    if has_pcm:
        pcm = np.array([s.temperatures_c[PCM] for s in states])
        melt = np.array([s.melt_fractions.get(PCM, 0.0) for s in states])
    return ThermalTrace(time_s=time_s, junction_c=junction, pcm_c=pcm, melt_fraction=melt)


def simulate_constant_power(
    network: ThermalNetwork,
    power_w: float,
    duration_s: float,
    sample_dt_s: float = 0.005,
    stop_at_junction_c: float | None = None,
) -> ThermalTrace:
    """Apply constant power at the junction and record the response.

    If ``stop_at_junction_c`` is given, the simulation terminates early once
    the junction reaches that temperature.
    """
    has_pcm = PCM in network.node_names
    states = [network.state()]
    elapsed = 0.0
    while elapsed < duration_s - 1e-12:
        step = min(sample_dt_s, duration_s - elapsed)
        network.step(step, {JUNCTION: power_w})
        elapsed += step
        states.append(network.state())
        if (
            stop_at_junction_c is not None
            and states[-1].temperatures_c[JUNCTION] >= stop_at_junction_c
        ):
            break
    return _trace_from_states(states, has_pcm)


def simulate_sprint(
    package: PcmPackage,
    sprint_power_w: float,
    max_duration_s: float = 3.0,
    sample_dt_s: float = 0.005,
    initial_temperature_c: float | None = None,
) -> SprintThermalResult:
    """Simulate a sprint from idle at constant power (Figure 4(a)).

    The sprint runs until the junction reaches the package's maximum
    temperature or ``max_duration_s`` elapses, whichever comes first.
    """
    if sprint_power_w <= 0:
        raise ValueError("sprint power must be positive")
    network = package.build(initial_temperature_c=initial_temperature_c)
    trace = simulate_constant_power(
        network,
        power_w=sprint_power_w,
        duration_s=max_duration_s,
        sample_dt_s=sample_dt_s,
        stop_at_junction_c=package.limits.max_junction_c,
    )
    exhausted_at = trace.time_to_reach(package.limits.max_junction_c)
    plateau = trace.plateau_duration(package.melting_point_c, tolerance_c=1.5)
    melt_fraction = (
        float(trace.melt_fraction[-1]) if trace.melt_fraction is not None else 0.0
    )
    return SprintThermalResult(
        trace=trace,
        sprint_power_w=sprint_power_w,
        exhausted_at_s=exhausted_at,
        melt_plateau_s=plateau,
        final_melt_fraction=melt_fraction,
    )


def simulate_cooldown(
    network: ThermalNetwork,
    package: PcmPackage,
    duration_s: float = 30.0,
    sample_dt_s: float = 0.02,
    tolerance_c: float = 5.0,
) -> CooldownResult:
    """Let a (hot) network cool with no power applied (Figure 4(b))."""
    has_pcm = PCM in network.node_names
    states = network.run(duration_s, power_w={}, sample_dt_s=sample_dt_s)
    trace = _trace_from_states(states, has_pcm)
    time_to_ambient = trace.time_to_cool_within(package.limits.ambient_c, tolerance_c)
    plateau = trace.plateau_duration(package.melting_point_c, tolerance_c=1.5)
    return CooldownResult(
        trace=trace,
        time_to_near_ambient_s=time_to_ambient,
        freeze_plateau_s=plateau,
        tolerance_c=tolerance_c,
    )


def simulate_sprint_and_cooldown(
    package: PcmPackage,
    sprint_power_w: float,
    max_sprint_s: float = 3.0,
    cooldown_s: float = 30.0,
    sample_dt_s: float = 0.005,
) -> tuple[SprintThermalResult, CooldownResult]:
    """Run a sprint to exhaustion followed by a cooldown on the same package."""
    network = package.build()
    sprint_trace = simulate_constant_power(
        network,
        power_w=sprint_power_w,
        duration_s=max_sprint_s,
        sample_dt_s=sample_dt_s,
        stop_at_junction_c=package.limits.max_junction_c,
    )
    exhausted_at = sprint_trace.time_to_reach(package.limits.max_junction_c)
    sprint_result = SprintThermalResult(
        trace=sprint_trace,
        sprint_power_w=sprint_power_w,
        exhausted_at_s=exhausted_at,
        melt_plateau_s=sprint_trace.plateau_duration(package.melting_point_c, 1.5),
        final_melt_fraction=(
            float(sprint_trace.melt_fraction[-1])
            if sprint_trace.melt_fraction is not None
            else 0.0
        ),
    )
    cooldown_result = simulate_cooldown(
        network, package, duration_s=cooldown_s, sample_dt_s=0.02
    )
    return sprint_result, cooldown_result


def max_sprint_duration_s(
    package: PcmPackage,
    sprint_power_w: float,
    max_duration_s: float = 10.0,
    sample_dt_s: float = 0.005,
) -> float:
    """Measured (simulated) maximum sprint duration at the given power."""
    result = simulate_sprint(
        package, sprint_power_w, max_duration_s=max_duration_s, sample_dt_s=sample_dt_s
    )
    return result.sprint_duration_s
