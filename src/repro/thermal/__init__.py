"""Thermal substrate: materials, PCM storage, RC networks, packages, transients.

This package implements the thermal design of Section 4 of the paper:
an RC thermal-equivalent network of a smart-phone package, optionally
augmented with a phase change material block close to the die, plus the
transient drivers that regenerate Figure 4 and the heat-store sizing
calculations of Sections 4.1-4.3.
"""

from repro.thermal.materials import (
    ALUMINIUM,
    COPPER,
    GENERIC_PCM,
    ICOSANE,
    SILICON,
    Material,
    get_material,
    list_materials,
    register_material,
)
from repro.thermal.network import NetworkState, ThermalNetwork
from repro.thermal.package import (
    AMBIENT,
    CASE,
    CONVENTIONAL_PACKAGE,
    FULL_PCM_PACKAGE,
    JUNCTION,
    PCM,
    SMALL_PCM_PACKAGE,
    ConventionalPackage,
    PcmPackage,
    ThermalLimits,
)
from repro.thermal.pcm import PhaseChangeBlock
from repro.thermal.sizing import (
    HeatStoreOption,
    compare_heat_stores,
    heat_flux_w_cm2,
    pcm_mass_g_for_heat,
    pcm_thickness_mm,
    solid_block_thickness_mm,
    sprint_heat_j,
)
from repro.thermal.transient import (
    CooldownResult,
    SprintThermalResult,
    ThermalTrace,
    max_sprint_duration_s,
    simulate_constant_power,
    simulate_cooldown,
    simulate_sprint,
    simulate_sprint_and_cooldown,
)

__all__ = [
    "ALUMINIUM",
    "AMBIENT",
    "CASE",
    "CONVENTIONAL_PACKAGE",
    "COPPER",
    "CooldownResult",
    "ConventionalPackage",
    "FULL_PCM_PACKAGE",
    "GENERIC_PCM",
    "HeatStoreOption",
    "ICOSANE",
    "JUNCTION",
    "Material",
    "NetworkState",
    "PCM",
    "PcmPackage",
    "PhaseChangeBlock",
    "SILICON",
    "SMALL_PCM_PACKAGE",
    "SprintThermalResult",
    "ThermalLimits",
    "ThermalNetwork",
    "ThermalTrace",
    "compare_heat_stores",
    "get_material",
    "heat_flux_w_cm2",
    "list_materials",
    "max_sprint_duration_s",
    "pcm_mass_g_for_heat",
    "pcm_thickness_mm",
    "register_material",
    "simulate_constant_power",
    "simulate_cooldown",
    "simulate_sprint",
    "simulate_sprint_and_cooldown",
    "solid_block_thickness_mm",
    "sprint_heat_j",
]
