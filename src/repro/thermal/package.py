"""Thermal package configurations for the sprinting system.

Two package styles from Figure 3 of the paper:

* :class:`ConventionalPackage` — die junction, case, and ambient (Figure
  3(a)/(b)), sized so that sustained single-core (~1 W) operation keeps the
  junction below its limit using passive convection only.
* :class:`PcmPackage` — the same stack augmented with a phase change
  material block adjacent to the die (Figure 3(c)/(d)).  The amount of
  computation possible during a sprint is set primarily by the PCM's latent
  capacity; the maximum sprint power by the resistance from junction into the
  PCM; and the sustained power by the total resistance to ambient.

Default component values are calibrated (see DESIGN.md) so that the package
reproduces the paper's headline numbers: ~1 W sustained keeps the junction
just below the 60 C PCM melting point with 25 C ambient, a 16 W sprint with
150 mg of PCM lasts a little over one second with a ~0.95 s melt plateau,
and cooling back to near ambient takes on the order of 24 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.thermal.materials import GENERIC_PCM, Material
from repro.thermal.network import ThermalNetwork
from repro.thermal.pcm import PhaseChangeBlock

#: Node names shared by all package builders.
JUNCTION = "junction"
PCM = "pcm"
CASE = "case"
AMBIENT = "ambient"


@dataclass(frozen=True)
class ThermalLimits:
    """Operating temperature limits of the platform."""

    ambient_c: float = 25.0
    max_junction_c: float = 70.0

    def __post_init__(self) -> None:
        if self.max_junction_c <= self.ambient_c:
            raise ValueError(
                "max junction temperature must exceed ambient "
                f"({self.max_junction_c} <= {self.ambient_c})"
            )

    @property
    def headroom_c(self) -> float:
        """Temperature headroom between ambient and the junction limit."""
        return self.max_junction_c - self.ambient_c


@dataclass(frozen=True)
class ConventionalPackage:
    """Package without dedicated sprint thermal storage (Figure 3(a)/(b)).

    Parameters
    ----------
    junction_capacitance_j_k:
        Lumped capacitance of the die and its immediate spreader.
    case_capacitance_j_k:
        Capacitance of the phone case / board mass.
    junction_to_case_k_w:
        Conduction resistance from die through package/PCB to the case.
    case_to_ambient_k_w:
        Passive convection resistance from case to ambient.
    limits:
        Ambient and maximum junction temperatures.
    """

    junction_capacitance_j_k: float = 0.03
    case_capacitance_j_k: float = 60.0
    junction_to_case_k_w: float = 25.5
    case_to_ambient_k_w: float = 8.5
    limits: ThermalLimits = field(default_factory=ThermalLimits)

    @property
    def total_resistance_k_w(self) -> float:
        """Series resistance from junction to ambient."""
        return self.junction_to_case_k_w + self.case_to_ambient_k_w

    @property
    def sustainable_power_w(self) -> float:
        """Maximum steady-state power (TDP) that keeps the junction at its limit."""
        return self.limits.headroom_c / self.total_resistance_k_w

    def build(self, initial_temperature_c: float | None = None) -> ThermalNetwork:
        """Construct the thermal network for this package."""
        start = (
            self.limits.ambient_c
            if initial_temperature_c is None
            else initial_temperature_c
        )
        net = ThermalNetwork(ambient_c=self.limits.ambient_c)
        net.add_capacitance_node(
            JUNCTION, self.junction_capacitance_j_k, initial_temperature_c=start
        )
        net.add_capacitance_node(
            CASE, self.case_capacitance_j_k, initial_temperature_c=start
        )
        net.add_fixed_node(AMBIENT, temperature_c=self.limits.ambient_c)
        net.connect(JUNCTION, CASE, self.junction_to_case_k_w)
        net.connect(CASE, AMBIENT, self.case_to_ambient_k_w)
        return net


@dataclass(frozen=True)
class PcmPackage:
    """Package augmented with a PCM block close to the die (Figure 3(c)/(d)).

    The three resistances map onto the circled quantities of Figure 3(d):

    * ``junction_to_pcm_k_w`` (2) bounds the maximum sprint power,
    * ``pcm_to_case_k_w`` + ``case_to_ambient_k_w`` (3) set how quickly the
      system cools between sprints,
    * their sum (2 + 3) sets the sustainable power.
    """

    pcm_mass_g: float = 0.150
    pcm_material: Material = field(default_factory=lambda: GENERIC_PCM)
    junction_capacitance_j_k: float = 0.03
    case_capacitance_j_k: float = 60.0
    junction_to_pcm_k_w: float = 0.5
    pcm_to_case_k_w: float = 25.0
    case_to_ambient_k_w: float = 8.5
    limits: ThermalLimits = field(default_factory=ThermalLimits)

    def __post_init__(self) -> None:
        if self.pcm_mass_g <= 0:
            raise ValueError("PCM mass must be positive")
        melting = self.pcm_material.melting_point_c
        if melting is None:
            raise ValueError("PCM material must have a melting point")
        if not (self.limits.ambient_c < melting < self.limits.max_junction_c):
            raise ValueError(
                "PCM melting point must lie between ambient and the junction limit, "
                f"got {melting} with ambient {self.limits.ambient_c} and limit "
                f"{self.limits.max_junction_c}"
            )

    # -- derived design quantities ------------------------------------------------

    @property
    def melting_point_c(self) -> float:
        """Melting point of the installed PCM."""
        assert self.pcm_material.melting_point_c is not None
        return self.pcm_material.melting_point_c

    @property
    def total_resistance_k_w(self) -> float:
        """Series resistance from junction to ambient."""
        return (
            self.junction_to_pcm_k_w + self.pcm_to_case_k_w + self.case_to_ambient_k_w
        )

    @property
    def sustainable_power_w(self) -> float:
        """Steady-state power that keeps the junction just at the PCM melting point.

        The paper selects the sustained single-core budget so the PCM does not
        melt during sustained operation (Section 4.4).
        """
        return (self.melting_point_c - self.limits.ambient_c) / self.total_resistance_k_w

    @property
    def max_sprint_power_w(self) -> float:
        """Largest sprint power that keeps the junction below its limit while melting.

        While the PCM is melting its temperature is pinned at the melting
        point, so the junction sits at ``T_melt + P * R_junction_to_pcm``.
        """
        return (
            self.limits.max_junction_c - self.melting_point_c
        ) / self.junction_to_pcm_k_w

    @property
    def latent_capacity_j(self) -> float:
        """Latent heat available from the PCM block in joules."""
        return self.pcm_material.latent_capacity_j(self.pcm_mass_g)

    def sprint_budget_j(self, sprint_power_w: float) -> float:
        """Approximate heat (J) a sprint may deposit before hitting the limit.

        This is the latent capacity plus the sensible headroom of the PCM and
        junction between ambient and the junction limit; it is the quantity
        the runtime's energy-based budget estimator tracks (Section 7).
        """
        if sprint_power_w <= 0:
            raise ValueError("sprint power must be positive")
        sensible = (
            self.pcm_material.heat_capacity_j_k(self.pcm_mass_g)
            + self.junction_capacitance_j_k
        ) * self.limits.headroom_c
        return self.latent_capacity_j + sensible

    def estimated_sprint_duration_s(self, sprint_power_w: float) -> float:
        """First-order estimate of how long a sprint at the given power lasts.

        Assumes the net heat accumulating locally is the sprint power minus
        what leaks toward ambient at the melt-plateau temperature.
        """
        leak_w = (self.melting_point_c - self.limits.ambient_c) / (
            self.pcm_to_case_k_w + self.case_to_ambient_k_w
        )
        net_w = sprint_power_w - leak_w
        if net_w <= 0:
            return float("inf")
        return self.sprint_budget_j(sprint_power_w) / net_w

    def estimated_cooldown_s(self, sprint_duration_s: float, sprint_power_w: float) -> float:
        """Paper's rule of thumb: cooldown = sprint duration x (sprint power / TDP)."""
        if sprint_duration_s < 0 or sprint_power_w < 0:
            raise ValueError("sprint duration and power must be non-negative")
        return sprint_duration_s * sprint_power_w / self.sustainable_power_w

    def with_pcm_mass(self, mass_g: float) -> "PcmPackage":
        """Copy of this package with a different PCM mass (e.g. 1.5 mg vs 150 mg)."""
        return replace(self, pcm_mass_g=mass_g)

    def build(self, initial_temperature_c: float | None = None) -> ThermalNetwork:
        """Construct the thermal network for this package."""
        start = (
            self.limits.ambient_c
            if initial_temperature_c is None
            else initial_temperature_c
        )
        net = ThermalNetwork(ambient_c=self.limits.ambient_c)
        net.add_capacitance_node(
            JUNCTION, self.junction_capacitance_j_k, initial_temperature_c=start
        )
        net.add_pcm_node(
            PCM,
            PhaseChangeBlock(
                mass_g=self.pcm_mass_g,
                material=self.pcm_material,
                initial_temperature_c=start,
            ),
        )
        net.add_capacitance_node(
            CASE, self.case_capacitance_j_k, initial_temperature_c=start
        )
        net.add_fixed_node(AMBIENT, temperature_c=self.limits.ambient_c)
        net.connect(JUNCTION, PCM, self.junction_to_pcm_k_w)
        net.connect(PCM, CASE, self.pcm_to_case_k_w)
        net.connect(CASE, AMBIENT, self.case_to_ambient_k_w)
        return net


#: The paper's fully provisioned design point: 150 mg of PCM.
FULL_PCM_PACKAGE = PcmPackage(pcm_mass_g=0.150)

#: The artificially constrained design point used to study truncated sprints:
#: 100x less PCM (1.5 mg), as in Section 8.3.
SMALL_PCM_PACKAGE = PcmPackage(pcm_mass_g=0.0015)

#: Conventional package with no sprint-oriented heat storage.
CONVENTIONAL_PACKAGE = ConventionalPackage()
