"""Phase change material (PCM) thermal storage model.

The key enabler of long sprints in the paper is a block of phase change
material placed close to the die (Section 4.2).  While the PCM melts, heat
injected into it is absorbed as latent heat and its temperature stays pinned
at the melting point, which is what produces the temperature plateau of
Figure 4(a).

The model here is a standard enthalpy formulation: the state of the node is
its total stored enthalpy relative to a fully solid block at the melting
point.  Temperature is recovered from enthalpy:

* enthalpy below zero            -> solid, ``T = T_melt + h / C_sensible``
* enthalpy in ``[0, latent]``    -> melting, ``T = T_melt`` (mixed phase)
* enthalpy above ``latent``      -> liquid, ``T = T_melt + (h - latent) / C_sensible``

The same sensible capacity is used for solid and liquid phases, which is the
usual lumped simplification and adequate for the tens-of-degrees excursions
seen in sprinting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.thermal.materials import GENERIC_PCM, Material


@dataclass
class PhaseChangeBlock:
    """A lumped block of phase change material tracked by enthalpy.

    Parameters
    ----------
    mass_g:
        Mass of PCM in grams.  The paper's full design point uses 150 mg and
        the artificially constrained design point uses 1.5 mg.
    material:
        Material properties; defaults to the paper's working assumption of a
        100 J/g, 60 C PCM.
    initial_temperature_c:
        Temperature the block starts at (fully solid when below the melting
        point).
    """

    mass_g: float
    material: Material = field(default_factory=lambda: GENERIC_PCM)
    initial_temperature_c: float = 25.0

    def __post_init__(self) -> None:
        if self.mass_g <= 0:
            raise ValueError(f"PCM mass must be positive, got {self.mass_g}")
        if not self.material.is_phase_change:
            raise ValueError(
                f"material {self.material.name!r} has no latent heat; "
                "use a plain capacitance node instead"
            )
        self._enthalpy_j = self._enthalpy_for_temperature(self.initial_temperature_c)

    # -- capacities -----------------------------------------------------------

    @property
    def melting_point_c(self) -> float:
        """Melting temperature of the block in Celsius."""
        assert self.material.melting_point_c is not None
        return self.material.melting_point_c

    @property
    def sensible_capacity_j_k(self) -> float:
        """Sensible (single phase) heat capacity in J/K."""
        return self.material.heat_capacity_j_k(self.mass_g)

    @property
    def latent_capacity_j(self) -> float:
        """Total latent heat available across the full melt, in joules."""
        return self.material.latent_capacity_j(self.mass_g)

    # -- state ----------------------------------------------------------------

    @property
    def enthalpy_j(self) -> float:
        """Stored enthalpy relative to fully-solid-at-melting-point, in joules."""
        return self._enthalpy_j

    @property
    def melt_fraction(self) -> float:
        """Fraction of the block that is liquid, in ``[0, 1]``."""
        if self.latent_capacity_j == 0:
            return 0.0
        return min(1.0, max(0.0, self._enthalpy_j / self.latent_capacity_j))

    @property
    def is_melting(self) -> bool:
        """True while the block is in the mixed solid/liquid region."""
        return 0.0 < self._enthalpy_j < self.latent_capacity_j

    @property
    def temperature_c(self) -> float:
        """Current block temperature recovered from the enthalpy state."""
        if self._enthalpy_j < 0.0:
            return self.melting_point_c + self._enthalpy_j / self.sensible_capacity_j_k
        if self._enthalpy_j <= self.latent_capacity_j:
            return self.melting_point_c
        excess = self._enthalpy_j - self.latent_capacity_j
        return self.melting_point_c + excess / self.sensible_capacity_j_k

    @property
    def remaining_latent_j(self) -> float:
        """Latent heat still available before the block is fully molten."""
        return max(0.0, self.latent_capacity_j - max(0.0, self._enthalpy_j))

    # -- dynamics -------------------------------------------------------------

    def add_heat(self, joules: float) -> None:
        """Add (positive) or remove (negative) heat from the block."""
        self._enthalpy_j += joules

    def set_temperature(self, temperature_c: float) -> None:
        """Reset the block to a single-phase state at the given temperature.

        Temperatures below the melting point produce a fully solid block and
        temperatures above produce a fully liquid one; setting exactly the
        melting point produces a fully solid block on the verge of melting.
        """
        self._enthalpy_j = self._enthalpy_for_temperature(temperature_c)

    def effective_capacity_j_k(self, reference_delta_c: float = 1.0) -> float:
        """Capacity (J/K) the block currently presents to a small heat input.

        During melting the effective capacity is "infinite" in the ideal
        model; we report the latent heat spread over ``reference_delta_c`` so
        solver heuristics can reason about time constants without dividing by
        zero.
        """
        if reference_delta_c <= 0:
            raise ValueError("reference_delta_c must be positive")
        if self.is_melting:
            return self.latent_capacity_j / reference_delta_c
        return self.sensible_capacity_j_k

    def _enthalpy_for_temperature(self, temperature_c: float) -> float:
        delta = temperature_c - self.melting_point_c
        if delta <= 0:
            return delta * self.sensible_capacity_j_k
        return self.latent_capacity_j + delta * self.sensible_capacity_j_k

    def copy(self) -> "PhaseChangeBlock":
        """Independent copy of the block, preserving the enthalpy state."""
        clone = PhaseChangeBlock(
            mass_g=self.mass_g,
            material=self.material,
            initial_temperature_c=self.initial_temperature_c,
        )
        clone._enthalpy_j = self._enthalpy_j
        return clone
