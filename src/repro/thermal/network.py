"""Lumped RC thermal network solver.

Figure 3 of the paper models the phone's thermal path as an equivalent
electrical circuit: heat sources inject power into capacitive nodes (die
junction, PCM block, case) connected by thermal resistances, with the
ambient environment acting as a fixed-temperature rail.  This module
implements that abstraction as a small graph-based solver:

* :class:`ThermalNetwork` holds nodes and resistive connections,
* capacitive nodes integrate ``C dT/dt = sum of heat flows + injected power``,
* PCM nodes use the enthalpy formulation from :mod:`repro.thermal.pcm`,
* fixed nodes (ambient) never change temperature and absorb whatever heat
  reaches them.

Integration uses forward-Euler with automatic sub-stepping so that the step
size is always well below the smallest node time constant; this keeps the
solver simple, robust to the stiff junction node (tiny capacitance, small
resistance to the PCM), and exactly energy conserving up to float rounding,
which the property tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.thermal.pcm import PhaseChangeBlock

PowerMap = Mapping[str, float]


@dataclass
class _CapacitanceNode:
    name: str
    capacitance_j_k: float
    temperature_c: float

    def add_heat(self, joules: float) -> None:
        self.temperature_c += joules / self.capacitance_j_k

    def effective_capacity(self) -> float:
        return self.capacitance_j_k


@dataclass
class _PcmNode:
    name: str
    block: PhaseChangeBlock

    @property
    def temperature_c(self) -> float:
        return self.block.temperature_c

    def add_heat(self, joules: float) -> None:
        self.block.add_heat(joules)

    def effective_capacity(self) -> float:
        return self.block.effective_capacity_j_k()


@dataclass
class _FixedNode:
    name: str
    temperature_c: float
    absorbed_j: float = 0.0

    def add_heat(self, joules: float) -> None:
        self.absorbed_j += joules

    def effective_capacity(self) -> float:
        return float("inf")


@dataclass(frozen=True)
class _Edge:
    node_a: str
    node_b: str
    resistance_k_w: float


@dataclass
class NetworkState:
    """Snapshot of node temperatures and bookkeeping counters."""

    time_s: float
    temperatures_c: dict[str, float]
    melt_fractions: dict[str, float] = field(default_factory=dict)


class ThermalNetwork:
    """A lumped-parameter thermal RC network.

    Typical construction (mirroring Figure 3(d) of the paper)::

        net = ThermalNetwork(ambient_c=25.0)
        net.add_capacitance_node("junction", capacitance_j_k=0.1)
        net.add_pcm_node("pcm", PhaseChangeBlock(mass_g=0.150))
        net.add_capacitance_node("case", capacitance_j_k=20.0)
        net.add_fixed_node("ambient", temperature_c=25.0)
        net.connect("junction", "pcm", resistance_k_w=0.5)
        net.connect("pcm", "case", resistance_k_w=3.5)
        net.connect("case", "ambient", resistance_k_w=30.0)
        net.step(dt_s=0.01, power_w={"junction": 16.0})
    """

    #: Fraction of the smallest node time constant used as the sub-step size.
    #: Forward Euler is stable below 1.0; 0.05 keeps the discretisation error
    #: of exponential decays below a few percent.
    stability_safety = 0.05

    def __init__(self, ambient_c: float = 25.0) -> None:
        self.ambient_c = ambient_c
        self._nodes: dict[str, _CapacitanceNode | _PcmNode | _FixedNode] = {}
        self._edges: list[_Edge] = []
        self._time_s = 0.0
        self._injected_j = 0.0

    # -- construction ----------------------------------------------------------

    def add_capacitance_node(
        self,
        name: str,
        capacitance_j_k: float,
        initial_temperature_c: float | None = None,
    ) -> None:
        """Add a node with plain sensible heat capacity."""
        self._check_new_name(name)
        if capacitance_j_k <= 0:
            raise ValueError(f"capacitance must be positive, got {capacitance_j_k}")
        temperature = (
            self.ambient_c if initial_temperature_c is None else initial_temperature_c
        )
        self._nodes[name] = _CapacitanceNode(name, capacitance_j_k, temperature)

    def add_pcm_node(self, name: str, block: PhaseChangeBlock) -> None:
        """Add a node whose state is a :class:`PhaseChangeBlock`."""
        self._check_new_name(name)
        self._nodes[name] = _PcmNode(name, block)

    def add_fixed_node(self, name: str, temperature_c: float | None = None) -> None:
        """Add a fixed-temperature node (the ambient environment)."""
        self._check_new_name(name)
        temperature = self.ambient_c if temperature_c is None else temperature_c
        self._nodes[name] = _FixedNode(name, temperature)

    def connect(self, node_a: str, node_b: str, resistance_k_w: float) -> None:
        """Connect two nodes with a thermal resistance in K/W."""
        if resistance_k_w <= 0:
            raise ValueError(f"resistance must be positive, got {resistance_k_w}")
        for name in (node_a, node_b):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        if node_a == node_b:
            raise ValueError("cannot connect a node to itself")
        self._edges.append(_Edge(node_a, node_b, resistance_k_w))

    def _check_new_name(self, name: str) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        if name in self._nodes:
            raise ValueError(f"node {name!r} already exists")

    # -- introspection ---------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction (seconds)."""
        return self._time_s

    @property
    def node_names(self) -> list[str]:
        """Names of all nodes in insertion order."""
        return list(self._nodes)

    def temperature(self, name: str) -> float:
        """Temperature of a single node in Celsius."""
        return self._nodes[name].temperature_c

    def temperatures(self) -> dict[str, float]:
        """Mapping from node name to current temperature."""
        return {name: node.temperature_c for name, node in self._nodes.items()}

    def melt_fraction(self, name: str) -> float:
        """Melt fraction of a PCM node (0 for non-PCM nodes)."""
        node = self._nodes[name]
        if isinstance(node, _PcmNode):
            return node.block.melt_fraction
        return 0.0

    def pcm_block(self, name: str) -> PhaseChangeBlock:
        """Return the PCM block backing a PCM node."""
        node = self._nodes[name]
        if not isinstance(node, _PcmNode):
            raise TypeError(f"node {name!r} is not a PCM node")
        return node.block

    def state(self) -> NetworkState:
        """Snapshot of the current network state."""
        melt = {
            name: node.block.melt_fraction
            for name, node in self._nodes.items()
            if isinstance(node, _PcmNode)
        }
        return NetworkState(self._time_s, self.temperatures(), melt)

    # -- energy accounting ------------------------------------------------------

    @property
    def injected_energy_j(self) -> float:
        """Total energy injected through :meth:`step` power maps."""
        return self._injected_j

    @property
    def dissipated_energy_j(self) -> float:
        """Total energy absorbed by fixed-temperature (ambient) nodes."""
        return sum(
            node.absorbed_j
            for node in self._nodes.values()
            if isinstance(node, _FixedNode)
        )

    def stored_energy_j(self, reference_c: float | None = None) -> float:
        """Energy stored in capacitive/PCM nodes relative to a reference.

        The reference defaults to the ambient temperature, so that a network
        in equilibrium with the environment stores zero energy.
        """
        reference = self.ambient_c if reference_c is None else reference_c
        total = 0.0
        for node in self._nodes.values():
            if isinstance(node, _CapacitanceNode):
                total += node.capacitance_j_k * (node.temperature_c - reference)
            elif isinstance(node, _PcmNode):
                block = node.block
                baseline = block.sensible_capacity_j_k * (
                    reference - block.melting_point_c
                )
                if reference > block.melting_point_c:
                    baseline += block.latent_capacity_j
                total += block.enthalpy_j - baseline
        return total

    # -- integration -------------------------------------------------------------

    def step(self, dt_s: float, power_w: PowerMap | None = None) -> None:
        """Advance the network by ``dt_s`` seconds.

        Parameters
        ----------
        dt_s:
            Duration to advance.  Internally split into sub-steps that
            respect the smallest node time constant.
        power_w:
            Mapping from node name to injected power in watts, held constant
            over the step.  Unlisted nodes receive no power.
        """
        if dt_s < 0:
            raise ValueError(f"dt must be non-negative, got {dt_s}")
        if dt_s == 0:
            return
        power = dict(power_w or {})
        for name in power:
            if name not in self._nodes:
                raise KeyError(f"power injected into unknown node {name!r}")

        remaining = dt_s
        while remaining > 1e-15:
            sub_dt = min(remaining, self._stable_dt())
            self._euler_substep(sub_dt, power)
            remaining -= sub_dt
        self._time_s += dt_s
        self._injected_j += sum(power.values()) * dt_s

    def run(
        self,
        duration_s: float,
        power_w: PowerMap | Callable[[float], PowerMap],
        sample_dt_s: float = 0.01,
        callback: Callable[[NetworkState], None] | None = None,
    ) -> list[NetworkState]:
        """Run for ``duration_s`` seconds, sampling the state periodically.

        ``power_w`` may be a constant mapping or a callable of simulated time
        returning a mapping.  Returns the list of sampled states including
        the initial state.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if sample_dt_s <= 0:
            raise ValueError("sample_dt_s must be positive")
        states = [self.state()]
        if callback is not None:
            callback(states[0])
        elapsed = 0.0
        while elapsed < duration_s - 1e-12:
            step = min(sample_dt_s, duration_s - elapsed)
            current_power = power_w(self._time_s) if callable(power_w) else power_w
            self.step(step, current_power)
            elapsed += step
            snapshot = self.state()
            states.append(snapshot)
            if callback is not None:
                callback(snapshot)
        return states

    # -- internals ----------------------------------------------------------------

    def _stable_dt(self) -> float:
        """Largest forward-Euler step that keeps every node stable."""
        conductance: dict[str, float] = {name: 0.0 for name in self._nodes}
        for edge in self._edges:
            g = 1.0 / edge.resistance_k_w
            conductance[edge.node_a] += g
            conductance[edge.node_b] += g
        smallest = float("inf")
        for name, node in self._nodes.items():
            g = conductance[name]
            if g == 0.0:
                continue
            capacity = node.effective_capacity()
            if capacity == float("inf"):
                continue
            smallest = min(smallest, capacity / g)
        if smallest == float("inf"):
            # No resistive couplings: any step size is stable.
            return float("inf")
        return self.stability_safety * smallest

    def _euler_substep(self, dt_s: float, power: dict[str, float]) -> None:
        heat: dict[str, float] = {name: 0.0 for name in self._nodes}
        temps = {name: node.temperature_c for name, node in self._nodes.items()}
        for edge in self._edges:
            flow_w = (temps[edge.node_a] - temps[edge.node_b]) / edge.resistance_k_w
            heat[edge.node_a] -= flow_w * dt_s
            heat[edge.node_b] += flow_w * dt_s
        for name, watts in power.items():
            heat[name] += watts * dt_s
        for name, joules in heat.items():
            self._nodes[name].add_heat(joules)


def total_resistance_between(
    edges: Iterable[tuple[str, str, float]], path: list[str]
) -> float:
    """Sum series resistances along a node path.

    Convenience helper used by package builders and tests to reason about
    steady-state temperature drops: the sustained power budget of the paper's
    design is ``(T_melt - T_ambient) / total_resistance``.
    """
    lookup: dict[frozenset[str], float] = {}
    for node_a, node_b, resistance in edges:
        lookup[frozenset((node_a, node_b))] = resistance
    total = 0.0
    for node_a, node_b in zip(path, path[1:]):
        key = frozenset((node_a, node_b))
        if key not in lookup:
            raise KeyError(f"no edge between {node_a!r} and {node_b!r}")
        total += lookup[key]
    return total
