"""Figure 4: sprint-initiation and post-sprint cooldown transients.

Figure 4(a): a 16 W sprint on the 1 W-TDP, 150 mg-PCM package — the junction
rises quickly, plateaus near the PCM melting point for ~0.95 s, then climbs
to the 70 C limit; total usable sprint is a little over one second.
Figure 4(b): the subsequent cooldown back to near ambient takes on the order
of 24 seconds, with a freeze plateau as the PCM re-solidifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.package import FULL_PCM_PACKAGE, PcmPackage
from repro.thermal.transient import (
    CooldownResult,
    SprintThermalResult,
    simulate_sprint_and_cooldown,
)


@dataclass(frozen=True)
class Fig04Result:
    """Both panels of Figure 4 plus the headline scalar observations."""

    sprint: SprintThermalResult
    cooldown: CooldownResult
    sprint_power_w: float
    package: PcmPackage

    @property
    def melt_plateau_s(self) -> float:
        """Duration of the constant-temperature melt plateau (paper: ~0.95 s).

        Measured from the PCM melt fraction: the interval between melt onset
        and the PCM becoming fully liquid.  (While melting, the junction sits
        a fixed offset above the melting point — ``P x R_junction_to_pcm`` —
        so measuring "time near T_melt" on the junction trace would miss it.)
        """
        trace = self.sprint.trace
        if trace.melt_fraction is None:
            return self.sprint.melt_plateau_s
        melting = (trace.melt_fraction > 0.0) & (trace.melt_fraction < 1.0)
        if not melting.any():
            return 0.0
        times = trace.time_s[melting]
        return float(times[-1] - times[0])

    @property
    def max_sprint_duration_s(self) -> float:
        """Usable sprint length before the junction limit (paper: a little over 1 s)."""
        return self.sprint.sprint_duration_s

    @property
    def cooldown_to_ambient_s(self) -> float | None:
        """Time to return near ambient after the sprint (paper: ~24 s)."""
        return self.cooldown.time_to_near_ambient_s

    @property
    def paper_cooldown_rule_s(self) -> float:
        """The paper's rule of thumb: sprint duration x (sprint power / TDP)."""
        return self.max_sprint_duration_s * (
            self.sprint_power_w / self.package.sustainable_power_w
        )


def run(
    package: PcmPackage = FULL_PCM_PACKAGE,
    sprint_power_w: float = 16.0,
    max_sprint_s: float = 3.0,
    cooldown_s: float = 40.0,
) -> Fig04Result:
    """Regenerate both Figure 4 transients."""
    if sprint_power_w <= 0:
        raise ValueError("sprint power must be positive")
    sprint, cooldown = simulate_sprint_and_cooldown(
        package,
        sprint_power_w=sprint_power_w,
        max_sprint_s=max_sprint_s,
        cooldown_s=cooldown_s,
    )
    return Fig04Result(
        sprint=sprint,
        cooldown=cooldown,
        sprint_power_w=sprint_power_w,
        package=package,
    )
