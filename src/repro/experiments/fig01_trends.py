"""Figure 1: power density and dark-silicon projections per process node."""

from __future__ import annotations

from dataclasses import dataclass

from repro.trends.scaling import (
    PAPER_NODES_NM,
    PAPER_SCENARIOS,
    ScalingScenario,
    power_density_trend,
)


@dataclass(frozen=True)
class TrendSeries:
    """One scenario's series for both panels of Figure 1."""

    scenario: str
    nodes_nm: tuple[int, ...]
    power_density: tuple[float, ...]
    dark_percent: tuple[float, ...]


@dataclass(frozen=True)
class Fig01Result:
    """All three scenario series."""

    series: tuple[TrendSeries, ...]

    def by_scenario(self, name: str) -> TrendSeries:
        """Look a series up by scenario name."""
        for entry in self.series:
            if entry.scenario == name:
                return entry
        raise KeyError(f"no scenario named {name!r}")


def run(
    scenarios: tuple[ScalingScenario, ...] = PAPER_SCENARIOS,
    nodes_nm: tuple[int, ...] = PAPER_NODES_NM,
) -> Fig01Result:
    """Regenerate both panels of Figure 1."""
    series = []
    for scenario in scenarios:
        points = power_density_trend(scenario, nodes_nm)
        series.append(
            TrendSeries(
                scenario=scenario.name,
                nodes_nm=tuple(p.node_nm for p in points),
                power_density=tuple(p.power_density for p in points),
                dark_percent=tuple(p.dark_percent for p in points),
            )
        )
    return Fig01Result(series=tuple(series))


def format_table(result: Fig01Result) -> str:
    """Human-readable table of the Figure 1 series."""
    lines = ["scenario | node (nm) | power density | dark silicon (%)"]
    for series in result.series:
        for node, density, dark in zip(
            series.nodes_nm, series.power_density, series.dark_percent
        ):
            lines.append(f"{series.scenario} | {node} | {density:.2f} | {dark:.1f}")
    return "\n".join(lines)
