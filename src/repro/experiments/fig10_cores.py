"""Figure 10: parallel speedup versus core count at fixed voltage/frequency.

Sweeps 1, 4, 16 and 64 sprinting cores for every kernel at its largest
input, without thermal constraints (the paper evaluates raw scaling here).
Also reproduces the Section 8.5 observation that doubling the per-channel
memory bandwidth lifts the bandwidth-limited kernels (feature, disparity)
at 64 cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig, PAPER_MACHINE
from repro.arch.simulator import ManyCoreSimulator
from repro.workloads.suite import kernel_suite

#: Core counts on the x-axis of Figure 10.
PAPER_CORE_COUNTS: tuple[int, ...] = (1, 4, 16, 64)


@dataclass(frozen=True)
class CoreScalingRow:
    """Speedups of one kernel across core counts."""

    kernel: str
    input_label: str
    core_counts: tuple[int, ...]
    speedups: tuple[float, ...]
    #: Speedup at the largest core count with doubled memory bandwidth.
    speedup_max_cores_2x_bandwidth: float

    def speedup_at(self, cores: int) -> float:
        """Speedup at one core count."""
        try:
            return self.speedups[self.core_counts.index(cores)]
        except ValueError as error:
            raise KeyError(f"core count {cores} was not simulated") from error

    @property
    def scales_to_max_cores(self) -> bool:
        """Whether the kernel keeps gaining from the last doubling of cores."""
        return self.speedups[-1] > 1.3 * self.speedups[-2]


@dataclass(frozen=True)
class Fig10Result:
    """All kernels' scaling rows."""

    rows: tuple[CoreScalingRow, ...]
    core_counts: tuple[int, ...]

    def by_kernel(self, name: str) -> CoreScalingRow:
        """Look up one kernel's row."""
        for row in self.rows:
            if row.kernel == name:
                return row
        raise KeyError(f"no kernel named {name!r}")


def run(
    core_counts: tuple[int, ...] = PAPER_CORE_COUNTS,
    machine: MachineConfig = PAPER_MACHINE,
    kernels: tuple[str, ...] | None = None,
    quantum_s: float = 1e-3,
) -> Fig10Result:
    """Regenerate Figure 10 (plus the 2x-bandwidth study)."""
    if not core_counts or core_counts[0] < 1:
        raise ValueError("core counts must start at 1 or more")
    suite = kernel_suite()
    names = kernels or ("feature", "disparity", "sobel", "texture", "segment", "kmeans")
    simulator = ManyCoreSimulator(machine)
    doubled = ManyCoreSimulator(machine.with_memory_bandwidth_scale(2.0))

    rows = []
    for name in names:
        family = suite[name]
        workload = family.workload(family.largest_label)
        baseline = simulator.run(workload, cores=1, quantum_s=5 * quantum_s)
        speedups = []
        for cores in core_counts:
            if cores == 1:
                speedups.append(1.0)
                continue
            run_result = simulator.run(workload, cores=cores, quantum_s=quantum_s)
            speedups.append(run_result.speedup_over(baseline))
        doubled_result = doubled.run(workload, cores=core_counts[-1], quantum_s=quantum_s)
        rows.append(
            CoreScalingRow(
                kernel=name,
                input_label=family.largest_label,
                core_counts=tuple(core_counts),
                speedups=tuple(speedups),
                speedup_max_cores_2x_bandwidth=doubled_result.speedup_over(baseline),
            )
        )
    return Fig10Result(rows=tuple(rows), core_counts=tuple(core_counts))


def format_table(result: Fig10Result) -> str:
    """Human-readable Figure 10 table."""
    header = "kernel | " + " | ".join(f"{c} cores" for c in result.core_counts)
    lines = [header + " | 64 cores (2x BW)"]
    for row in result.rows:
        cells = " | ".join(f"{s:.1f}x" for s in row.speedups)
        lines.append(
            f"{row.kernel} | {cells} | {row.speedup_max_cores_2x_bandwidth:.1f}x"
        )
    return "\n".join(lines)
