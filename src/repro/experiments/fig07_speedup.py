"""Figure 7: 16-core parallel sprint vs idealised DVFS sprint, both PCM sizes.

For each of the six kernels at the default input size, report the speedup
over the single-core non-sprinting baseline for four configurations: a
parallel sprint and a DVFS sprint, each with the fully provisioned package
(150 mg of PCM) and with the artificially constrained one (1.5 mg,
Section 8.3).  The paper's headline: parallel sprinting averages 10.2x with
the full PCM, drops when the sprint is truncated, and DVFS sprinting is
capped near 16^(1/3) ~ 2.5x by the cube-root rule.

Note on "idealised DVFS": the paper assumes a frequency boost speeds the
whole system up linearly.  This simulator keeps DRAM latency fixed in
nanoseconds, so the simulated DVFS speedup is below the ideal bound; the
analytic bound is reported alongside for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.simulation import SprintSimulation
from repro.workloads.suite import DEFAULT_CLASS, kernel_suite


@dataclass(frozen=True)
class SpeedupRow:
    """Speedups for one kernel (the four bars of Figure 7)."""

    kernel: str
    input_label: str
    parallel_full_pcm: float
    parallel_small_pcm: float
    dvfs_full_pcm: float
    dvfs_small_pcm: float
    dvfs_ideal_bound: float
    baseline_time_s: float
    sprint_truncated_small_pcm: bool


@dataclass(frozen=True)
class Fig07Result:
    """All kernels plus the headline averages."""

    rows: tuple[SpeedupRow, ...]

    def by_kernel(self, name: str) -> SpeedupRow:
        """Look up one kernel's row."""
        for row in self.rows:
            if row.kernel == name:
                return row
        raise KeyError(f"no kernel named {name!r}")

    @property
    def average_parallel_full_pcm(self) -> float:
        """Average 16-core speedup with 150 mg PCM (paper: 10.2x)."""
        return sum(r.parallel_full_pcm for r in self.rows) / len(self.rows)

    @property
    def average_parallel_small_pcm(self) -> float:
        """Average 16-core speedup with 1.5 mg PCM."""
        return sum(r.parallel_small_pcm for r in self.rows) / len(self.rows)

    @property
    def average_dvfs_full_pcm(self) -> float:
        """Average DVFS-sprint speedup with 150 mg PCM."""
        return sum(r.dvfs_full_pcm for r in self.rows) / len(self.rows)


def run(
    input_label: str = DEFAULT_CLASS,
    kernels: tuple[str, ...] | None = None,
    baseline_quantum_s: float = 2e-3,
) -> Fig07Result:
    """Regenerate Figure 7."""
    suite = kernel_suite()
    names = kernels or ("sobel", "feature", "kmeans", "disparity", "texture", "segment")

    full_config = SystemConfig.paper_default()
    small_config = SystemConfig.small_pcm()
    full_sim = SprintSimulation(full_config)
    small_sim = SprintSimulation(small_config)
    dvfs_ideal = full_config.policy.dvfs.max_boost_for_headroom(
        full_config.policy.power_headroom
    )

    rows = []
    for name in names:
        workload = suite[name].workload(input_label)
        baseline = full_sim.run_baseline(workload, quantum_s=baseline_quantum_s)
        parallel_full = full_sim.run(workload)
        parallel_small = small_sim.run(workload)
        dvfs_full = full_sim.run_dvfs_sprint(workload)
        dvfs_small = small_sim.run_dvfs_sprint(workload)
        rows.append(
            SpeedupRow(
                kernel=name,
                input_label=input_label,
                parallel_full_pcm=parallel_full.speedup_over(baseline),
                parallel_small_pcm=parallel_small.speedup_over(baseline),
                dvfs_full_pcm=dvfs_full.speedup_over(baseline),
                dvfs_small_pcm=dvfs_small.speedup_over(baseline),
                dvfs_ideal_bound=dvfs_ideal,
                baseline_time_s=baseline.total_time_s,
                sprint_truncated_small_pcm=parallel_small.sprint_was_truncated,
            )
        )
    return Fig07Result(rows=tuple(rows))


def format_table(result: Fig07Result) -> str:
    """Human-readable Figure 7 summary."""
    lines = [
        "kernel | parallel 150mg | parallel 1.5mg | DVFS 150mg | DVFS 1.5mg | DVFS ideal"
    ]
    for row in result.rows:
        lines.append(
            f"{row.kernel} | {row.parallel_full_pcm:.1f}x | {row.parallel_small_pcm:.1f}x | "
            f"{row.dvfs_full_pcm:.1f}x | {row.dvfs_small_pcm:.1f}x | {row.dvfs_ideal_bound:.1f}x"
        )
    lines.append(
        f"average parallel (150mg): {result.average_parallel_full_pcm:.1f}x "
        "(paper: 10.2x)"
    )
    return "\n".join(lines)
