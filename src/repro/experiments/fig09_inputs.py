"""Figure 9: 16-core speedup across input-size classes for both PCM sizes.

For every kernel and every input class (A-D where available), report the
parallel-sprint speedup with the fully provisioned (150 mg) and constrained
(1.5 mg) packages.  The paper's trend: larger inputs exhibit higher parallel
speedup but need more thermal capacitance to finish inside the sprint, so
the gap between the two PCM sizes widens with input size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.simulation import SprintSimulation
from repro.workloads.suite import kernel_suite


@dataclass(frozen=True)
class InputSizePoint:
    """One (kernel, input class) bar pair of Figure 9."""

    kernel: str
    input_label: str
    megapixels: float
    parallel_full_pcm: float
    parallel_small_pcm: float
    baseline_time_s: float
    small_pcm_truncated: bool


@dataclass(frozen=True)
class Fig09Result:
    """All bars of Figure 9."""

    points: tuple[InputSizePoint, ...]

    def kernel_series(self, kernel: str) -> tuple[InputSizePoint, ...]:
        """All input classes of one kernel, smallest first."""
        series = tuple(p for p in self.points if p.kernel == kernel)
        if not series:
            raise KeyError(f"no kernel named {kernel!r}")
        return tuple(sorted(series, key=lambda p: p.input_label))

    def speedup_grows_with_input(self, kernel: str) -> bool:
        """Paper trend: larger inputs see equal-or-higher full-PCM speedups."""
        series = self.kernel_series(kernel)
        return series[-1].parallel_full_pcm >= series[0].parallel_full_pcm * 0.9


def run(
    kernels: tuple[str, ...] | None = None,
    baseline_quantum_s: float = 2e-3,
) -> Fig09Result:
    """Regenerate Figure 9."""
    suite = kernel_suite()
    names = kernels or ("feature", "disparity", "sobel", "texture", "segment", "kmeans")
    full_sim = SprintSimulation(SystemConfig.paper_default())
    small_sim = SprintSimulation(SystemConfig.small_pcm())

    points = []
    for name in names:
        family = suite[name]
        for label in family.input_labels:
            entry = family.entry(label)
            workload = entry.workload
            baseline = full_sim.run_baseline(workload, quantum_s=baseline_quantum_s)
            parallel_full = full_sim.run(workload)
            parallel_small = small_sim.run(workload)
            points.append(
                InputSizePoint(
                    kernel=name,
                    input_label=label,
                    megapixels=entry.megapixels,
                    parallel_full_pcm=parallel_full.speedup_over(baseline),
                    parallel_small_pcm=parallel_small.speedup_over(baseline),
                    baseline_time_s=baseline.total_time_s,
                    small_pcm_truncated=parallel_small.sprint_was_truncated,
                )
            )
    return Fig09Result(points=tuple(points))


def format_table(result: Fig09Result) -> str:
    """Human-readable Figure 9 series."""
    lines = ["kernel | class | MP | parallel 150mg | parallel 1.5mg"]
    for p in result.points:
        lines.append(
            f"{p.kernel} | {p.input_label} | {p.megapixels:g} | "
            f"{p.parallel_full_pcm:.1f}x | {p.parallel_small_pcm:.1f}x"
        )
    return "\n".join(lines)
