"""Section 6: can the power source deliver the sprint current?

Reproduces the paper's power-source analysis for a 16 x 1 W sprint lasting
up to a second: a conventional phone Li-ion battery (bursts of ~10 W) cannot
power all sixteen cores, a high-discharge Li-polymer pack or an
ultracapacitor can, and delivering ~16 A over the package pins at 1 V would
need on the order of 320 power/ground pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.sources import (
    LI_POLYMER_HIGH_DISCHARGE,
    NESSCAP_25F,
    PHONE_HYBRID,
    PHONE_LI_ION,
    PowerSource,
    SourceAssessment,
    assess_sources,
    pins_required,
)

#: The candidate sources the paper discusses, in presentation order.
PAPER_SOURCES: tuple[PowerSource, ...] = (
    PHONE_LI_ION,
    LI_POLYMER_HIGH_DISCHARGE,
    NESSCAP_25F,
    PHONE_HYBRID,
)


@dataclass(frozen=True)
class SourcesResult:
    """Assessments of every candidate source plus the pin-count estimate."""

    assessments: tuple[SourceAssessment, ...]
    sprint_power_w: float
    sprint_duration_s: float
    core_power_w: float
    pins_for_sprint_current: int

    def by_name(self, name: str) -> SourceAssessment:
        """Look up one source's assessment by name."""
        for assessment in self.assessments:
            if assessment.source_name == name:
                return assessment
        raise KeyError(f"no source named {name!r}")

    @property
    def phone_battery_sufficient(self) -> bool:
        """Paper: a standard phone Li-ion battery cannot power 16 x 1 W."""
        return self.by_name(PHONE_LI_ION.name).feasible

    @property
    def feasible_sources(self) -> tuple[str, ...]:
        """Names of the sources able to deliver the full sprint."""
        return tuple(a.source_name for a in self.assessments if a.feasible)


def run(
    sprint_cores: int = 16,
    core_power_w: float = 1.0,
    sprint_duration_s: float = 1.0,
    supply_voltage_v: float = 1.0,
    sources: tuple[PowerSource, ...] = PAPER_SOURCES,
) -> SourcesResult:
    """Regenerate the Section 6 feasibility analysis."""
    if sprint_cores < 1:
        raise ValueError("sprint core count must be positive")
    if core_power_w <= 0 or sprint_duration_s <= 0 or supply_voltage_v <= 0:
        raise ValueError("power, duration and voltage must be positive")
    sprint_power = sprint_cores * core_power_w
    assessments = assess_sources(
        list(sources),
        sprint_power_w=sprint_power,
        sprint_duration_s=sprint_duration_s,
        core_power_w=core_power_w,
    )
    return SourcesResult(
        assessments=tuple(assessments),
        sprint_power_w=sprint_power,
        sprint_duration_s=sprint_duration_s,
        core_power_w=core_power_w,
        pins_for_sprint_current=pins_required(sprint_power / supply_voltage_v),
    )


def format_table(result: SourcesResult) -> str:
    """Human-readable Section 6 summary."""
    lines = [
        f"sprint: {result.sprint_power_w:.0f} W for {result.sprint_duration_s:.1f} s, "
        f"{result.pins_for_sprint_current} power/ground pins (paper: ~320)",
        "source | max sprint cores | sufficient",
    ]
    for assessment in result.assessments:
        lines.append(
            f"{assessment.source_name} | {assessment.max_cores} | "
            f"{'yes' if assessment.feasible else 'NO'}"
        )
    return "\n".join(lines)
