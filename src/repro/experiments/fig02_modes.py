"""Figure 2: cores-active, cumulative computation and temperature over time.

The paper's Figure 2 contrasts three execution regimes for the same burst of
computation: (a) sustained single-core execution, (b) a bare sprint whose
temperature ramps quickly to the limit, and (c) a sprint augmented with
phase change material whose melt plateau extends the sprint.  This
experiment reproduces those three columns by running one workload under
each regime and reporting the three traces the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SystemConfig
from repro.core.modes import ExecutionMode
from repro.core.simulation import SprintSimulation
from repro.thermal.package import PcmPackage
from repro.workloads.descriptor import WorkloadDescriptor
from repro.workloads.suite import kernel_suite


@dataclass(frozen=True)
class ModeTrace:
    """The three Figure 2 rows for one execution regime."""

    label: str
    time_s: np.ndarray
    active_cores: np.ndarray
    cumulative_instructions: np.ndarray
    junction_c: np.ndarray
    total_time_s: float

    @property
    def final_temperature_c(self) -> float:
        """Junction temperature when the computation finishes."""
        return float(self.junction_c[-1])


@dataclass(frozen=True)
class Fig02Result:
    """Traces for the sustained, bare-sprint and PCM-augmented regimes."""

    sustained: ModeTrace
    sprint_without_pcm: ModeTrace
    sprint_with_pcm: ModeTrace

    @property
    def sprint_speedup(self) -> float:
        """Responsiveness of the PCM-augmented sprint over sustained execution."""
        return self.sustained.total_time_s / self.sprint_with_pcm.total_time_s

    @property
    def pcm_extends_sprint(self) -> bool:
        """True when the PCM-augmented sprint completes more work while sprinting."""
        return (
            self.sprint_with_pcm.total_time_s <= self.sprint_without_pcm.total_time_s
        )


def _trace(simulation: SprintSimulation, workload, mode: ExecutionMode, label: str) -> ModeTrace:
    result = simulation.run(workload, execution_mode=mode)
    trace = result.execution_trace
    times = trace.times_s()
    return ModeTrace(
        label=label,
        time_s=times,
        active_cores=trace.active_cores(),
        cumulative_instructions=trace.cumulative_instructions(),
        junction_c=result.junction_trace_c[1 : len(times) + 1],
        total_time_s=result.total_time_s,
    )


def run(
    workload: WorkloadDescriptor | None = None,
    config: SystemConfig | None = None,
) -> Fig02Result:
    """Regenerate the three columns of Figure 2 for one workload."""
    config = config or SystemConfig.paper_default()
    if workload is None:
        workload = kernel_suite()["sobel"].workload("B")

    pcm_sim = SprintSimulation(config)
    # "Without PCM": shrink the PCM to a sliver so only sensible heat remains,
    # mirroring Figure 2(b)'s un-augmented sprint.
    bare_package: PcmPackage = config.package.with_pcm_mass(config.package.pcm_mass_g / 100.0)
    bare_sim = SprintSimulation(config.with_package(bare_package))

    sustained = _trace(
        pcm_sim, workload, ExecutionMode.SUSTAINED_SINGLE_CORE, "sustained"
    )
    sprint_bare = _trace(
        bare_sim, workload, ExecutionMode.PARALLEL_SPRINT, "sprint (no PCM)"
    )
    sprint_pcm = _trace(
        pcm_sim, workload, ExecutionMode.PARALLEL_SPRINT, "sprint (PCM)"
    )
    return Fig02Result(
        sustained=sustained,
        sprint_without_pcm=sprint_bare,
        sprint_with_pcm=sprint_pcm,
    )
