"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning plain dataclasses
with the same rows/series the paper plots, so the benchmarks, the examples
and EXPERIMENTS.md all draw from one implementation:

==================  =========================================================
Module              Paper content
==================  =========================================================
``fig01_trends``    power density and dark-silicon fraction vs process node
``fig02_modes``     cores/compute/temperature traces for the three regimes
``fig04_thermal``   sprint-initiation and cooldown transients
``fig06_activation`` supply voltage for abrupt / 1.28 µs / 128 µs ramps
``table1_kernels``  the six-kernel workload suite
``fig07_speedup``   16-core parallel vs DVFS sprints, both PCM sizes
``fig08_sobel``     sobel speedup vs input megapixels
``fig09_inputs``    speedup across input classes A-D
``fig10_cores``     speedup vs core count (1/4/16/64)
``fig11_energy``    normalised dynamic energy vs core count
``sec4_sizing``     heat-store sizing numbers of Sections 4.1-4.3
``sec6_sources``    power-source feasibility of Section 6
==================  =========================================================
"""

from repro.experiments import (
    fig01_trends,
    fig02_modes,
    fig04_thermal,
    fig06_activation,
    fig07_speedup,
    fig08_sobel,
    fig09_inputs,
    fig10_cores,
    fig11_energy,
    sec4_sizing,
    sec6_sources,
    table1_kernels,
)

__all__ = [
    "fig01_trends",
    "fig02_modes",
    "fig04_thermal",
    "fig06_activation",
    "fig07_speedup",
    "fig08_sobel",
    "fig09_inputs",
    "fig10_cores",
    "fig11_energy",
    "sec4_sizing",
    "sec6_sources",
    "table1_kernels",
]
