"""Figures 5 and 6: power-delivery integrity under different activation ramps.

The Figure 5 RLC network is simulated for the three activation schedules of
Figure 6: all sixteen cores at once (within 1 ns), a 1.28 µs linear ramp,
and a 128 µs linear ramp.  The paper's findings: abrupt activation and the
fast ramp violate the 2% supply tolerance, the slow ramp stays within it,
and the settled voltage sits roughly 10 mV below nominal due to resistive
drop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.activation import (
    ActivationSchedule,
    PAPER_ABRUPT,
    PAPER_FAST_RAMP,
    PAPER_SLOW_RAMP,
)
from repro.power.pdn import ActivationAnalysis, PdnConfig, PowerDeliveryNetwork


@dataclass(frozen=True)
class ActivationRow:
    """One Figure 6 panel's summary metrics."""

    label: str
    ramp_s: float
    min_voltage_v: float
    max_voltage_v: float
    worst_droop_v: float
    settling_voltage_v: float
    settling_time_s: float | None
    within_tolerance: bool
    analysis: ActivationAnalysis


@dataclass(frozen=True)
class Fig06Result:
    """All three activation panels."""

    rows: tuple[ActivationRow, ...]
    tolerance_v: float
    supply_v: float

    def by_label(self, label: str) -> ActivationRow:
        """Look up one panel by its label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no activation row labelled {label!r}")

    @property
    def slow_ramp_ok(self) -> bool:
        """The paper's conclusion: only the 128 µs ramp meets tolerance."""
        return self.by_label("128us ramp").within_tolerance


#: The three panels of Figure 6 with their paper labels.
PAPER_SCHEDULES: tuple[tuple[str, ActivationSchedule], ...] = (
    ("instantaneous", PAPER_ABRUPT),
    ("1.28us ramp", PAPER_FAST_RAMP),
    ("128us ramp", PAPER_SLOW_RAMP),
)


def run(
    config: PdnConfig | None = None,
    schedules: tuple[tuple[str, ActivationSchedule], ...] = PAPER_SCHEDULES,
) -> Fig06Result:
    """Simulate the Figure 6 activation transients."""
    config = config or PdnConfig()
    network = PowerDeliveryNetwork(config)
    rows = []
    for label, schedule in schedules:
        analysis = network.simulate_activation(schedule)
        rows.append(
            ActivationRow(
                label=label,
                ramp_s=schedule.duration_s(config.n_cores),
                min_voltage_v=analysis.min_voltage_v,
                max_voltage_v=analysis.max_voltage_v,
                worst_droop_v=analysis.worst_droop_v,
                settling_voltage_v=analysis.settling_voltage_v,
                settling_time_s=analysis.settling_time_s,
                within_tolerance=analysis.within_tolerance,
                analysis=analysis,
            )
        )
    return Fig06Result(
        rows=tuple(rows), tolerance_v=config.tolerance_v, supply_v=config.supply_v
    )


def format_table(result: Fig06Result) -> str:
    """Human-readable summary matching the Figure 6 observations."""
    lines = [
        f"supply {result.supply_v:.2f} V, tolerance +-{result.tolerance_v * 1e3:.0f} mV",
        "schedule | min V | droop (mV) | settled V | within tolerance",
    ]
    for row in result.rows:
        lines.append(
            f"{row.label} | {row.min_voltage_v:.3f} | {row.worst_droop_v * 1e3:.1f} | "
            f"{row.settling_voltage_v:.3f} | {'yes' if row.within_tolerance else 'NO'}"
        )
    return "\n".join(lines)
