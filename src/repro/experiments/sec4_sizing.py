"""Sections 4.1-4.3: heat-store sizing and heat-flux numbers.

Reproduces the paper's back-of-envelope design calculations:

* absorbing 16 J over a 64 mm^2 die with a 10 C rise needs a 7.2 mm copper
  block or a 10.3 mm aluminium block (Section 4.1),
* a PCM with 100 J/g latent heat and 1 g/cm^3 density needs about 150 mg —
  a 2.3 mm thick layer — to absorb the same 16 J (Section 4.2),
* the peak heat flux of a 16 W sprint over 64 mm^2 is 25 W/cm^2, below the
  range typical of high-end processors (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.materials import ALUMINIUM, COPPER, GENERIC_PCM, Material
from repro.thermal.sizing import (
    heat_flux_w_cm2,
    pcm_mass_g_for_heat,
    pcm_thickness_mm,
    solid_block_thickness_mm,
    sprint_heat_j,
)


@dataclass(frozen=True)
class SizingResult:
    """The Section 4 design numbers."""

    sprint_heat_j: float
    copper_thickness_mm: float
    aluminium_thickness_mm: float
    pcm_mass_g: float
    pcm_thickness_mm: float
    peak_heat_flux_w_cm2: float

    #: The values the paper reports, for side-by-side comparison.
    paper_copper_mm: float = 7.2
    paper_aluminium_mm: float = 10.3
    paper_pcm_mass_g: float = 0.150
    paper_pcm_thickness_mm: float = 2.3
    paper_heat_flux_w_cm2: float = 25.0

    def within_percent(self, measured: float, expected: float, tolerance: float = 15.0) -> bool:
        """Whether a measured value is within ``tolerance`` percent of the paper's."""
        if expected == 0:
            raise ValueError("expected value must be non-zero")
        return abs(measured - expected) / abs(expected) * 100.0 <= tolerance


def run(
    sprint_power_w: float = 16.0,
    sprint_duration_s: float = 1.0,
    die_area_mm2: float = 64.0,
    allowed_rise_c: float = 10.0,
    copper: Material = COPPER,
    aluminium: Material = ALUMINIUM,
    pcm: Material = GENERIC_PCM,
) -> SizingResult:
    """Regenerate the Section 4 sizing calculations."""
    heat = sprint_heat_j(sprint_power_w, sprint_duration_s)
    return SizingResult(
        sprint_heat_j=heat,
        copper_thickness_mm=solid_block_thickness_mm(
            copper, heat, die_area_mm2, allowed_rise_c
        ),
        aluminium_thickness_mm=solid_block_thickness_mm(
            aluminium, heat, die_area_mm2, allowed_rise_c
        ),
        pcm_mass_g=pcm_mass_g_for_heat(pcm, heat),
        pcm_thickness_mm=pcm_thickness_mm(pcm, heat, die_area_mm2),
        peak_heat_flux_w_cm2=heat_flux_w_cm2(sprint_power_w, die_area_mm2),
    )


def format_table(result: SizingResult) -> str:
    """Human-readable sizing comparison."""
    rows = [
        ("copper thickness (mm)", result.copper_thickness_mm, result.paper_copper_mm),
        ("aluminium thickness (mm)", result.aluminium_thickness_mm, result.paper_aluminium_mm),
        ("PCM mass (g)", result.pcm_mass_g, result.paper_pcm_mass_g),
        ("PCM thickness (mm)", result.pcm_thickness_mm, result.paper_pcm_thickness_mm),
        ("peak heat flux (W/cm^2)", result.peak_heat_flux_w_cm2, result.paper_heat_flux_w_cm2),
    ]
    lines = ["quantity | this repo | paper"]
    for label, measured, expected in rows:
        lines.append(f"{label} | {measured:.2f} | {expected:.2f}")
    return "\n".join(lines)
