"""Table 1: the parallel kernels used in the evaluation.

Regenerates the kernel inventory — name, description, provenance and the
characterised workload parameters (instructions, memory behaviour, parallel
structure) for the default input class of each kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.suite import DEFAULT_CLASS, kernel_suite

#: The paper's one-line descriptions, keyed by kernel name.
PAPER_DESCRIPTIONS: dict[str, str] = {
    "sobel": "Edge detection filter; parallelized with OpenMP",
    "feature": "Feature extraction (SURF) from MEVBench",
    "kmeans": "Partition based clustering; parallelized with OpenMP",
    "disparity": "Stereo image disparity detection; adapted from SD-VBS",
    "texture": "Image composition; adapted from SD-VBS",
    "segment": "Image feature classification; adapted from SD-VBS",
}


@dataclass(frozen=True)
class KernelRow:
    """One Table 1 row plus the characterised workload parameters."""

    name: str
    description: str
    input_label: str
    megapixels: float
    total_instructions: float
    memory_fraction: float
    parallel_fraction: float
    max_parallelism: int
    single_core_estimate_s: float


@dataclass(frozen=True)
class Table1Result:
    """All six kernel rows."""

    rows: tuple[KernelRow, ...]

    def by_name(self, name: str) -> KernelRow:
        """Look up a kernel row by name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no kernel named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        """Kernel names in Table 1 order."""
        return tuple(row.name for row in self.rows)


#: Table 1's row order.
TABLE1_ORDER = ("sobel", "feature", "kmeans", "disparity", "texture", "segment")


def run(input_label: str = DEFAULT_CLASS, frequency_hz: float = 1e9) -> Table1Result:
    """Regenerate Table 1 with the characterised workload parameters."""
    suite = kernel_suite()
    rows = []
    for name in TABLE1_ORDER:
        entry = suite[name].entry(input_label)
        workload = entry.workload
        rows.append(
            KernelRow(
                name=name,
                description=PAPER_DESCRIPTIONS[name],
                input_label=entry.input_label,
                megapixels=entry.megapixels,
                total_instructions=workload.total_instructions,
                memory_fraction=workload.instruction_mix.memory_fraction,
                parallel_fraction=workload.parallel.parallel_fraction,
                max_parallelism=workload.parallel.max_parallelism,
                single_core_estimate_s=workload.single_core_seconds(frequency_hz),
            )
        )
    return Table1Result(rows=tuple(rows))


def format_table(result: Table1Result) -> str:
    """Human-readable Table 1."""
    lines = ["kernel | description | input | Minstr | est. 1-core time"]
    for row in result.rows:
        lines.append(
            f"{row.name} | {row.description} | {row.input_label} ({row.megapixels:g} MP) | "
            f"{row.total_instructions / 1e6:.0f} | {row.single_core_estimate_s:.2f} s"
        )
    return "\n".join(lines)
