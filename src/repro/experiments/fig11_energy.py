"""Figure 11: normalised dynamic energy versus core count.

For every kernel at its largest input, report the dynamic energy of the
parallel execution on 1, 4, 16 and 64 cores normalised to the single-core
execution, plus the energy of a DVFS sprint using the full power headroom.
The paper's observations: in the linear-scaling regime parallel energy
matches single-core energy; on 16 cores the overhead is under 10% for five
of six kernels and 12% on average; beyond 16 cores overheads grow (up to
~1.8x at 64); and voltage-boost sprinting costs ~6x more energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig, PAPER_MACHINE
from repro.arch.simulator import ManyCoreSimulator
from repro.energy.dvfs import PAPER_DVFS
from repro.workloads.suite import kernel_suite
from repro.experiments.fig10_cores import PAPER_CORE_COUNTS


@dataclass(frozen=True)
class EnergyRow:
    """Normalised energy of one kernel across core counts."""

    kernel: str
    input_label: str
    core_counts: tuple[int, ...]
    normalized_energy: tuple[float, ...]
    dvfs_energy_ratio: float

    def energy_at(self, cores: int) -> float:
        """Normalised energy at one core count."""
        try:
            return self.normalized_energy[self.core_counts.index(cores)]
        except ValueError as error:
            raise KeyError(f"core count {cores} was not simulated") from error


@dataclass(frozen=True)
class Fig11Result:
    """All kernels' energy rows."""

    rows: tuple[EnergyRow, ...]
    core_counts: tuple[int, ...]

    def by_kernel(self, name: str) -> EnergyRow:
        """Look up one kernel's row."""
        for row in self.rows:
            if row.kernel == name:
                return row
        raise KeyError(f"no kernel named {name!r}")

    def average_overhead_at(self, cores: int) -> float:
        """Average normalised energy across kernels at one core count."""
        values = [row.energy_at(cores) for row in self.rows]
        return sum(values) / len(values)


def run(
    core_counts: tuple[int, ...] = PAPER_CORE_COUNTS,
    machine: MachineConfig = PAPER_MACHINE,
    kernels: tuple[str, ...] | None = None,
    quantum_s: float = 1e-3,
) -> Fig11Result:
    """Regenerate Figure 11 (plus the DVFS energy comparison of Section 8.6)."""
    suite = kernel_suite()
    names = kernels or ("feature", "disparity", "sobel", "texture", "segment", "kmeans")
    simulator = ManyCoreSimulator(machine)
    dvfs_point = PAPER_DVFS.boosted_point_for_headroom(16.0)

    rows = []
    for name in names:
        family = suite[name]
        workload = family.workload(family.largest_label)
        baseline = simulator.run(workload, cores=1, quantum_s=5 * quantum_s)
        energies = []
        for cores in core_counts:
            if cores == 1:
                energies.append(1.0)
                continue
            result = simulator.run(workload, cores=cores, quantum_s=quantum_s)
            energies.append(result.energy_ratio_over(baseline))
        dvfs_run = simulator.run(
            workload, cores=1, operating_point=dvfs_point, quantum_s=quantum_s
        )
        rows.append(
            EnergyRow(
                kernel=name,
                input_label=family.largest_label,
                core_counts=tuple(core_counts),
                normalized_energy=tuple(energies),
                dvfs_energy_ratio=dvfs_run.energy_ratio_over(baseline),
            )
        )
    return Fig11Result(rows=tuple(rows), core_counts=tuple(core_counts))


def format_table(result: Fig11Result) -> str:
    """Human-readable Figure 11 table."""
    header = "kernel | " + " | ".join(f"{c} cores" for c in result.core_counts)
    lines = [header + " | DVFS (16x headroom)"]
    for row in result.rows:
        cells = " | ".join(f"{e:.2f}" for e in row.normalized_energy)
        lines.append(f"{row.kernel} | {cells} | {row.dvfs_energy_ratio:.1f}")
    lines.append(
        f"average at 16 cores: {result.average_overhead_at(16):.2f} (paper: ~1.12)"
    )
    return "\n".join(lines)
