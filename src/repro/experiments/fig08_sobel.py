"""Figure 8: sobel speedup versus input size (megapixels).

Sweeps the sobel kernel from sub-megapixel images to 12 MP and reports the
speedup over the single-core baseline for four configurations: a 16-core
parallel sprint with the full 150 mg PCM, the same with 1.5 mg, a DVFS
sprint with 1.5 mg, and the single-core baseline itself (1.0 by
definition).  The paper's shape: the full design sustains ~linear 16-core
speedup at every resolution, while the constrained design's speedup falls
away as a fixed-size sprint covers less of a growing computation, and DVFS
collapses even sooner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.simulation import SprintSimulation
from repro.workloads.suite import kernel_suite

#: Image sizes on the x-axis (megapixels).
PAPER_MEGAPIXELS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0)


@dataclass(frozen=True)
class SobelPoint:
    """Speedups at one image size."""

    megapixels: float
    parallel_full_pcm: float
    parallel_small_pcm: float
    dvfs_small_pcm: float
    single_core: float
    baseline_time_s: float
    small_pcm_truncated: bool


@dataclass(frozen=True)
class Fig08Result:
    """The full sweep."""

    points: tuple[SobelPoint, ...]

    @property
    def megapixels(self) -> tuple[float, ...]:
        """The x-axis values."""
        return tuple(p.megapixels for p in self.points)

    @property
    def full_pcm_sustains_all_sizes(self) -> bool:
        """Paper: the 150 mg design sustains the sprint at every resolution."""
        speedups = [p.parallel_full_pcm for p in self.points]
        return min(speedups) >= 0.75 * max(speedups)

    @property
    def small_pcm_drops_off(self) -> bool:
        """Paper: the 1.5 mg design's speedup falls as the input grows."""
        return self.points[-1].parallel_small_pcm < self.points[0].parallel_small_pcm


def run(
    megapixels: tuple[float, ...] = PAPER_MEGAPIXELS,
    baseline_quantum_s: float = 2e-3,
) -> Fig08Result:
    """Regenerate Figure 8."""
    if not megapixels:
        raise ValueError("at least one image size is required")
    family = kernel_suite()["sobel"]
    full_sim = SprintSimulation(SystemConfig.paper_default())
    small_sim = SprintSimulation(SystemConfig.small_pcm())

    points = []
    for mp in megapixels:
        workload = family.workload_for_megapixels(mp)
        baseline = full_sim.run_baseline(workload, quantum_s=baseline_quantum_s)
        parallel_full = full_sim.run(workload)
        parallel_small = small_sim.run(workload)
        dvfs_small = small_sim.run_dvfs_sprint(workload)
        points.append(
            SobelPoint(
                megapixels=mp,
                parallel_full_pcm=parallel_full.speedup_over(baseline),
                parallel_small_pcm=parallel_small.speedup_over(baseline),
                dvfs_small_pcm=dvfs_small.speedup_over(baseline),
                single_core=1.0,
                baseline_time_s=baseline.total_time_s,
                small_pcm_truncated=parallel_small.sprint_was_truncated,
            )
        )
    return Fig08Result(points=tuple(points))


def format_table(result: Fig08Result) -> str:
    """Human-readable Figure 8 series."""
    lines = ["MP | parallel 150mg | parallel 1.5mg | DVFS 1.5mg"]
    for p in result.points:
        lines.append(
            f"{p.megapixels:g} | {p.parallel_full_pcm:.1f}x | "
            f"{p.parallel_small_pcm:.1f}x | {p.dvfs_small_pcm:.1f}x"
        )
    return "\n".join(lines)
