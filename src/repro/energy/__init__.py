"""Energy substrate: instruction energy tables, core power states, DVFS.

Implements the McPAT-derived per-instruction energy accounting of Section
8.1, the 10%-power sleep state used on PAUSE, and the voltage/frequency
scaling rules behind the DVFS-sprinting comparison of Sections 8.4 and 8.6.
"""

from repro.energy.core import (
    ChipPowerAccount,
    CorePowerModel,
    CoreState,
    DEFAULT_INSTRUCTION_MIX,
)
from repro.energy.dvfs import PAPER_DVFS, DvfsModel, OperatingPoint
from repro.energy.instruction import (
    DEFAULT_MIX,
    EnergyTable,
    InstructionClass,
    InstructionEnergyModel,
    InstructionMix,
    PAPER_22NM_LOP,
)

__all__ = [
    "ChipPowerAccount",
    "CorePowerModel",
    "CoreState",
    "DEFAULT_INSTRUCTION_MIX",
    "DEFAULT_MIX",
    "DvfsModel",
    "EnergyTable",
    "InstructionClass",
    "InstructionEnergyModel",
    "InstructionMix",
    "OperatingPoint",
    "PAPER_22NM_LOP",
    "PAPER_DVFS",
]
