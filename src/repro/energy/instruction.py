"""Per-instruction dynamic energy model (McPAT substitute).

The paper derives per-instruction energy estimates from McPAT configured for
a 1 GHz, 1 W core in a 22 nm low-operating-power (LOP) process, and samples
the energy consumed by each core every 1000 cycles to drive the thermal
model (Section 8.1).  McPAT itself is not available, so this module provides
a table-driven equivalent: each instruction class carries a dynamic energy
cost, memory-hierarchy events carry their own costs, and the table is
calibrated so that a fully active core executing a typical instruction mix
at 1 GHz dissipates approximately 1 W.

The absolute values matter less than the constraints they encode:

* an active core is ~1 W at nominal frequency and voltage,
* a sleeping core (executing PAUSE) consumes 10% of an active core,
* memory accesses are significantly more expensive than ALU operations, so
  memory-bound workloads burn energy in the uncore as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum


class InstructionClass(Enum):
    """Coarse instruction classes distinguished by the energy model."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    PAUSE = "pause"


@dataclass(frozen=True)
class EnergyTable:
    """Dynamic energy per event, in picojoules.

    ``base_cycle_pj`` is charged for every executed cycle (clock tree,
    fetch/decode, register file) on top of the per-instruction cost.
    """

    base_cycle_pj: float = 600.0
    int_alu_pj: float = 250.0
    int_mul_pj: float = 500.0
    fp_pj: float = 700.0
    load_pj: float = 450.0
    store_pj: float = 500.0
    branch_pj: float = 200.0
    pause_pj: float = 95.0
    l1_hit_pj: float = 100.0
    l2_hit_pj: float = 800.0
    dram_access_pj: float = 8000.0

    def __post_init__(self) -> None:
        for item in fields(self):
            value = getattr(self, item.name)
            if value < 0:
                raise ValueError(f"{item.name} must be non-negative, got {value}")

    def instruction_pj(self, kind: InstructionClass) -> float:
        """Dynamic energy of one instruction of the given class (pJ)."""
        return {
            InstructionClass.INT_ALU: self.int_alu_pj,
            InstructionClass.INT_MUL: self.int_mul_pj,
            InstructionClass.FP: self.fp_pj,
            InstructionClass.LOAD: self.load_pj,
            InstructionClass.STORE: self.store_pj,
            InstructionClass.BRANCH: self.branch_pj,
            InstructionClass.PAUSE: self.pause_pj,
        }[kind]


#: Energy table calibrated so a 1 GHz in-order core running a typical mix is ~1 W.
PAPER_22NM_LOP = EnergyTable()


@dataclass(frozen=True)
class InstructionMix:
    """Fractional breakdown of a workload's dynamic instruction stream.

    Fractions must be non-negative and sum to 1 (PAUSE instructions are
    accounted separately by the runtime, not as part of the mix).
    """

    int_alu: float = 0.45
    int_mul: float = 0.05
    fp: float = 0.10
    load: float = 0.22
    store: float = 0.10
    branch: float = 0.08

    def __post_init__(self) -> None:
        values = self.as_dict().values()
        if any(v < 0 for v in values):
            raise ValueError("instruction mix fractions must be non-negative")
        total = sum(values)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"instruction mix fractions must sum to 1, got {total}")

    def as_dict(self) -> dict[str, float]:
        """Mapping from field name to fraction."""
        return {
            "int_alu": self.int_alu,
            "int_mul": self.int_mul,
            "fp": self.fp,
            "load": self.load,
            "store": self.store,
            "branch": self.branch,
        }

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory (loads + stores)."""
        return self.load + self.store


class InstructionEnergyModel:
    """Computes dynamic energy from instruction counts and cache events."""

    def __init__(self, table: EnergyTable | None = None) -> None:
        self.table = table or PAPER_22NM_LOP

    def average_instruction_pj(self, mix: InstructionMix) -> float:
        """Average per-instruction energy (pJ) for a mix, excluding caches."""
        table = self.table
        return (
            table.base_cycle_pj
            + mix.int_alu * table.int_alu_pj
            + mix.int_mul * table.int_mul_pj
            + mix.fp * table.fp_pj
            + mix.load * table.load_pj
            + mix.store * table.store_pj
            + mix.branch * table.branch_pj
        )

    def instructions_energy_j(self, instructions: float, mix: InstructionMix) -> float:
        """Dynamic energy (J) of executing ``instructions`` with the given mix."""
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        return instructions * self.average_instruction_pj(mix) * 1e-12

    def memory_energy_j(
        self, l1_hits: float, l2_hits: float, dram_accesses: float
    ) -> float:
        """Dynamic energy (J) of the memory hierarchy events."""
        if min(l1_hits, l2_hits, dram_accesses) < 0:
            raise ValueError("event counts must be non-negative")
        table = self.table
        return (
            l1_hits * table.l1_hit_pj
            + l2_hits * table.l2_hit_pj
            + dram_accesses * table.dram_access_pj
        ) * 1e-12

    def pause_energy_j(self, pause_cycles: float) -> float:
        """Energy (J) of cycles spent asleep after a PAUSE instruction."""
        if pause_cycles < 0:
            raise ValueError("pause cycle count must be non-negative")
        return pause_cycles * self.table.pause_pj * 1e-12

    def core_power_w(
        self, mix: InstructionMix, frequency_hz: float, ipc: float = 1.0
    ) -> float:
        """Average core power (W) running flat out at the given frequency.

        Assumes the in-order pipeline of the paper: one instruction per cycle
        unless stalled, so power = energy/instruction x IPC x frequency.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0 < ipc <= 1.0:
            raise ValueError("ipc must be in (0, 1] for the in-order core model")
        per_instruction_j = self.average_instruction_pj(mix) * 1e-12
        return per_instruction_j * ipc * frequency_hz


#: Default instruction mix used when a workload does not provide its own.
DEFAULT_MIX = InstructionMix()
