"""Core-level power states and power accounting.

The paper's evaluation uses a simple core power model layered on the
per-instruction energy table:

* an **active** core at nominal voltage/frequency dissipates ~1 W,
* a core sleeping after a PAUSE instruction dissipates 10% of an active
  core (Section 8.1),
* a power-gated ("dark") core dissipates essentially nothing.

Frequency and voltage scaling are handled by :mod:`repro.energy.dvfs`; this
module multiplies the resulting scale factors into per-state power numbers
and accumulates per-core energy for the thermal coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.energy.dvfs import OperatingPoint
from repro.energy.instruction import (
    DEFAULT_MIX,
    InstructionEnergyModel,
    InstructionMix,
)


class CoreState(Enum):
    """Power state of a single core."""

    OFF = "off"
    SLEEP = "sleep"
    ACTIVE = "active"


@dataclass(frozen=True)
class CorePowerModel:
    """Power of one core in each state, with voltage/frequency scaling.

    Parameters
    ----------
    nominal:
        The nominal operating point (1 GHz at 1.0 V in the paper's design).
    active_power_w:
        Peak power of an active core at the nominal operating point.
    sleep_fraction:
        Power of a sleeping core relative to an active one (0.1 in the paper).
    off_power_w:
        Residual power of a power-gated core (assumed negligible).
    """

    nominal: OperatingPoint = field(
        default_factory=lambda: OperatingPoint(frequency_hz=1e9, voltage_v=1.0)
    )
    active_power_w: float = 1.0
    sleep_fraction: float = 0.1
    off_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.active_power_w <= 0:
            raise ValueError("active power must be positive")
        if not 0 <= self.sleep_fraction <= 1:
            raise ValueError("sleep fraction must be in [0, 1]")
        if self.off_power_w < 0:
            raise ValueError("off power must be non-negative")

    def power_w(
        self, state: CoreState, operating_point: OperatingPoint | None = None
    ) -> float:
        """Power of a core in ``state`` at the given operating point."""
        if state is CoreState.OFF:
            return self.off_power_w
        point = operating_point or self.nominal
        scale = point.dynamic_power_scale(self.nominal)
        active = self.active_power_w * scale
        if state is CoreState.SLEEP:
            return active * self.sleep_fraction
        return active

    def energy_j(
        self,
        state: CoreState,
        duration_s: float,
        operating_point: OperatingPoint | None = None,
    ) -> float:
        """Energy consumed by a core held in ``state`` for ``duration_s``."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.power_w(state, operating_point) * duration_s

    def calibrated_energy_model(
        self, mix: InstructionMix | None = None
    ) -> InstructionEnergyModel:
        """Instruction energy model consistent with ``active_power_w``.

        The default table is already calibrated for ~1 W at 1 GHz; this
        helper exists so callers can sanity-check the two views agree.
        """
        return InstructionEnergyModel()

    def sleep_power_w(self, operating_point: OperatingPoint | None = None) -> float:
        """Convenience accessor for the sleeping-core power."""
        return self.power_w(CoreState.SLEEP, operating_point)


@dataclass
class ChipPowerAccount:
    """Accumulates energy consumed by every core of the chip over time.

    The sprint runtime (Section 7) estimates the remaining thermal budget
    from dissipated energy; this account is the bookkeeping it relies on.
    """

    model: CorePowerModel
    n_cores: int
    energy_j_per_core: list[float] = field(default_factory=list)
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if not self.energy_j_per_core:
            self.energy_j_per_core = [0.0] * self.n_cores
        elif len(self.energy_j_per_core) != self.n_cores:
            raise ValueError("energy_j_per_core length must equal n_cores")

    def charge(
        self,
        core_states: list[CoreState],
        duration_s: float,
        operating_point: OperatingPoint | None = None,
    ) -> float:
        """Charge each core for ``duration_s`` in its current state.

        Returns the total energy added in this interval (joules).
        """
        if len(core_states) != self.n_cores:
            raise ValueError(
                f"expected {self.n_cores} core states, got {len(core_states)}"
            )
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        added = 0.0
        for index, state in enumerate(core_states):
            energy = self.model.energy_j(state, duration_s, operating_point)
            self.energy_j_per_core[index] += energy
            added += energy
        self.elapsed_s += duration_s
        return added

    def charge_energy(self, core_index: int, energy_j: float) -> None:
        """Directly add measured energy (e.g. from instruction counts) to a core."""
        if not 0 <= core_index < self.n_cores:
            raise ValueError(f"core index {core_index} out of range")
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self.energy_j_per_core[core_index] += energy_j

    @property
    def total_energy_j(self) -> float:
        """Total energy consumed by all cores since the account was opened."""
        return sum(self.energy_j_per_core)

    @property
    def average_power_w(self) -> float:
        """Average chip power over the elapsed interval (0 if no time elapsed)."""
        if self.elapsed_s == 0.0:
            return 0.0
        return self.total_energy_j / self.elapsed_s

    def reset(self) -> None:
        """Zero the account (e.g. at sprint start)."""
        self.energy_j_per_core = [0.0] * self.n_cores
        self.elapsed_s = 0.0


#: Default mix re-exported for convenience alongside the power model.
DEFAULT_INSTRUCTION_MIX = DEFAULT_MIX
