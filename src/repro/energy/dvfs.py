"""Dynamic voltage and frequency scaling (DVFS) model.

The paper compares parallel sprinting against "sprinting" by boosting the
voltage and frequency of a single core (Section 8.4).  The governing
arithmetic is:

* dynamic power is ``P ∝ f·V²``,
* raising frequency requires a roughly proportional rise in supply voltage,
  so effectively ``P ∝ f³``,
* therefore a ``16x`` power headroom only buys a ``16^(1/3) ≈ 2.5x``
  frequency (and performance) boost,
* and because energy per unit of work scales with ``V²``, using the full
  headroom for voltage boosting costs roughly ``2.5² ≈ 6x`` more energy than
  running the same work at nominal voltage (Section 8.6).

:class:`DvfsModel` encapsulates these relations and produces
:class:`OperatingPoint` objects that the core power model understands.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair a core can run at."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.voltage_v <= 0:
            raise ValueError("voltage must be positive")

    def dynamic_power_scale(self, nominal: "OperatingPoint") -> float:
        """Dynamic power relative to ``nominal``: (f/f0) * (V/V0)^2."""
        return (self.frequency_hz / nominal.frequency_hz) * (
            self.voltage_v / nominal.voltage_v
        ) ** 2

    def energy_per_work_scale(self, nominal: "OperatingPoint") -> float:
        """Energy per instruction relative to ``nominal``: (V/V0)^2."""
        return (self.voltage_v / nominal.voltage_v) ** 2

    def speedup_over(self, nominal: "OperatingPoint") -> float:
        """Performance ratio (frequency ratio) over ``nominal``."""
        return self.frequency_hz / nominal.frequency_hz


@dataclass(frozen=True)
class DvfsModel:
    """Frequency/voltage scaling rules for a single core.

    ``voltage_slope`` expresses how much the supply voltage must rise for a
    given frequency increase: ``V = V0 * (f/f0) ** voltage_slope``.  The
    paper's cube-root argument corresponds to ``voltage_slope = 1`` (voltage
    proportional to frequency).
    """

    nominal: OperatingPoint = OperatingPoint(frequency_hz=1e9, voltage_v=1.0)
    voltage_slope: float = 1.0
    min_frequency_hz: float = 50e6
    max_frequency_hz: float = 3.0e9

    def __post_init__(self) -> None:
        if self.voltage_slope < 0:
            raise ValueError("voltage slope must be non-negative")
        if self.min_frequency_hz <= 0:
            raise ValueError("minimum frequency must be positive")
        if self.max_frequency_hz < self.min_frequency_hz:
            raise ValueError("maximum frequency must be at least the minimum")
        if not (
            self.min_frequency_hz <= self.nominal.frequency_hz <= self.max_frequency_hz
        ):
            raise ValueError("nominal frequency must lie within [min, max]")

    # -- operating point construction ---------------------------------------------

    def operating_point(self, frequency_hz: float) -> OperatingPoint:
        """Operating point at ``frequency_hz`` with the implied voltage."""
        if not self.min_frequency_hz <= frequency_hz <= self.max_frequency_hz:
            raise ValueError(
                f"frequency {frequency_hz:.3e} Hz outside the supported range "
                f"[{self.min_frequency_hz:.3e}, {self.max_frequency_hz:.3e}]"
            )
        ratio = frequency_hz / self.nominal.frequency_hz
        voltage = self.nominal.voltage_v * ratio**self.voltage_slope
        return OperatingPoint(frequency_hz=frequency_hz, voltage_v=voltage)

    def power_scale(self, frequency_hz: float) -> float:
        """Dynamic power at ``frequency_hz`` relative to nominal."""
        return self.operating_point(frequency_hz).dynamic_power_scale(self.nominal)

    # -- headroom arithmetic --------------------------------------------------------

    def power_exponent(self) -> float:
        """Exponent ``k`` in ``P ∝ f^k`` (3 for voltage tracking frequency)."""
        return 1.0 + 2.0 * self.voltage_slope

    def max_boost_for_headroom(self, power_headroom: float) -> float:
        """Largest frequency multiple allowed by a power headroom multiple.

        The paper: a 16x TDP headroom allows a frequency boost of about
        ``16^(1/3) ≈ 2.5x``.
        """
        if power_headroom < 1.0:
            raise ValueError("power headroom must be at least 1x")
        return power_headroom ** (1.0 / self.power_exponent())

    def boosted_point_for_headroom(self, power_headroom: float) -> OperatingPoint:
        """Operating point using the whole power headroom for a voltage boost.

        The frequency is clamped to the model's maximum if the headroom would
        exceed it.
        """
        boost = self.max_boost_for_headroom(power_headroom)
        frequency = min(
            self.max_frequency_hz, self.nominal.frequency_hz * boost
        )
        return self.operating_point(frequency)

    def energy_overhead_for_headroom(self, power_headroom: float) -> float:
        """Energy-per-work multiple when sprinting via voltage boosting.

        For the paper's 16x headroom this is about 6x (2.5 squared),
        matching the Section 8.6 observation.
        """
        point = self.boosted_point_for_headroom(power_headroom)
        return point.energy_per_work_scale(self.nominal)

    def throttled_point(self, active_cores: int, sustainable_cores: int = 1) -> OperatingPoint:
        """Emergency throttle frequency when too many cores remain active.

        Section 7: if software fails to deactivate cores in time, hardware
        divides the frequency by the ratio of active to sustainable cores so
        that total power returns under the sustainable budget.  Voltage is
        held at nominal (it cannot drop below the functional minimum), which
        is conservative for power.
        """
        if active_cores <= 0 or sustainable_cores <= 0:
            raise ValueError("core counts must be positive")
        factor = max(1.0, active_cores / sustainable_cores)
        frequency = max(self.min_frequency_hz, self.nominal.frequency_hz / factor)
        return OperatingPoint(frequency_hz=frequency, voltage_v=self.nominal.voltage_v)


#: DVFS model with the paper's assumptions (voltage tracks frequency).
PAPER_DVFS = DvfsModel()
