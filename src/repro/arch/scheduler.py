"""Thread scheduling, migration and PAUSE/sleep behaviour.

Section 7 of the paper: software activates sprinting when there are more
runnable threads than powered cores, migrates threads onto newly woken
cores, and — when the thermal budget nears exhaustion — migrates every
thread back onto a single core and multiplexes them there.  Section 8.1
adds that the runtime inserts PAUSE instructions on barriers and failed
task-steals, putting the core to sleep for 1000 cycles at 10% power.

The execution engine is analytic, so the scheduler's job is bookkeeping:
which threads exist, which cores they occupy, what a migration costs, and
how much time multiplexed threads lose to context switching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ThreadState(Enum):
    """State of one software thread."""

    RUNNABLE = "runnable"
    RUNNING = "running"
    PAUSED = "paused"
    FINISHED = "finished"


@dataclass(frozen=True)
class MigrationModel:
    """Cost of moving threads between cores at sprint termination.

    ``per_thread_overhead_s`` covers the OS context switch and the cache
    state lost by the migrating thread; ``cold_cache_misses`` is the number
    of extra L1 misses paid after arrival (refilling a private cache is at
    most one miss per line).
    """

    per_thread_overhead_s: float = 20e-6
    cold_cache_misses: float = 512.0
    #: Cycles a core sleeps when it executes a PAUSE (Section 8.1).
    pause_sleep_cycles: int = 1000

    def __post_init__(self) -> None:
        if self.per_thread_overhead_s < 0:
            raise ValueError("per-thread overhead must be non-negative")
        if self.cold_cache_misses < 0:
            raise ValueError("cold cache misses must be non-negative")
        if self.pause_sleep_cycles <= 0:
            raise ValueError("pause sleep cycles must be positive")

    def migration_cost_s(self, threads: int) -> float:
        """Wall-clock cost of migrating ``threads`` threads to one core."""
        if threads < 0:
            raise ValueError("thread count must be non-negative")
        return threads * self.per_thread_overhead_s


@dataclass
class ThreadScheduler:
    """Maps software threads onto the currently powered cores."""

    n_threads: int
    n_cores: int
    migration: MigrationModel = field(default_factory=MigrationModel)
    #: Relative time lost to context switches per extra thread multiplexed
    #: onto one core (the paper treats this as negligible; keep it small).
    multiplex_overhead: float = 0.005

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("thread count must be positive")
        if self.n_cores <= 0:
            raise ValueError("core count must be positive")
        if self.multiplex_overhead < 0:
            raise ValueError("multiplex overhead must be non-negative")
        self._active_cores = min(self.n_threads, self.n_cores)
        self._pending_migration_s = 0.0
        self._states = [ThreadState.RUNNABLE] * self.n_threads

    # -- queries ---------------------------------------------------------------

    @property
    def active_cores(self) -> int:
        """Number of cores currently running threads."""
        return self._active_cores

    @property
    def threads_per_core(self) -> float:
        """Average multiplexing degree on the active cores."""
        return self.n_threads / self._active_cores

    @property
    def pending_migration_s(self) -> float:
        """Wall-clock migration cost not yet consumed by the engine."""
        return self._pending_migration_s

    def thread_states(self) -> list[ThreadState]:
        """Current state of every thread."""
        return list(self._states)

    def multiplexing_slowdown(self) -> float:
        """Throughput penalty factor (>= 1) from multiplexing threads.

        One thread per core costs nothing; each additional thread sharing a
        core adds ``multiplex_overhead`` of context-switch time.
        """
        extra = max(0.0, self.threads_per_core - 1.0)
        return 1.0 + extra * self.multiplex_overhead

    # -- transitions ------------------------------------------------------------

    def set_active_cores(self, cores: int) -> float:
        """Change the number of powered cores; returns the migration cost (s).

        Shrinking (sprint termination) pays the migration cost of every
        thread that loses its core.  Growing (sprint start) is modelled as
        free here because the activation ramp is accounted for separately by
        the power-delivery constraint (Section 5.3).
        """
        if cores <= 0:
            raise ValueError("core count must be positive")
        cores = min(cores, self.n_cores)
        new_active = min(self.n_threads, cores)
        cost = 0.0
        if new_active < self._active_cores:
            displaced = min(self.n_threads, self._active_cores) - new_active
            cost = self.migration.migration_cost_s(displaced)
            self._pending_migration_s += cost
        self._active_cores = new_active
        return cost

    def consume_migration(self, dt_s: float) -> float:
        """Consume up to ``dt_s`` of pending migration stall; returns the stall used."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        used = min(dt_s, self._pending_migration_s)
        self._pending_migration_s -= used
        return used

    def mark_running(self, count: int) -> None:
        """Mark the first ``count`` threads as running and the rest paused."""
        if not 0 <= count <= self.n_threads:
            raise ValueError("running count out of range")
        for index in range(self.n_threads):
            if self._states[index] is ThreadState.FINISHED:
                continue
            self._states[index] = (
                ThreadState.RUNNING if index < count else ThreadState.PAUSED
            )

    def finish_all(self) -> None:
        """Mark every thread finished (workload complete)."""
        self._states = [ThreadState.FINISHED] * self.n_threads
