"""Architectural substrate: the many-core performance simulator of Section 8.1.

The paper evaluates sprinting on an instruction-level simulator of a
cache-coherent many-core with in-order cores (CPI of one plus cache miss
penalties), private 32 KB L1 caches, a shared 4 MB last-level cache with a
20-cycle hit latency, and a dual-channel memory interface with 4 GB/s
channels and 60 ns uncontended latency.  This package reproduces that
machine as a quantum-based analytic simulator:

* :mod:`repro.arch.cache` — cache geometry and capacity/sharing effects on
  miss rates,
* :mod:`repro.arch.memory` — the dual-channel DRAM interface with bandwidth
  contention,
* :mod:`repro.arch.coherence` — directory-protocol traffic for shared lines,
* :mod:`repro.arch.core` — the in-order core timing model,
* :mod:`repro.arch.machine` — the full machine configuration,
* :mod:`repro.arch.scheduler` — thread placement, migration and PAUSE/sleep,
* :mod:`repro.arch.simulator` — the execution engine that retires a
  :class:`~repro.workloads.descriptor.WorkloadDescriptor` quantum by quantum
  and reports per-quantum instruction and energy samples for the thermal
  coupling.
"""

from repro.arch.cache import CacheConfig, CacheHierarchy, MissRates
from repro.arch.coherence import CoherenceConfig, DirectoryProtocol
from repro.arch.core import CoreTimingModel, CyclesBreakdown
from repro.arch.machine import PAPER_MACHINE, MachineConfig
from repro.arch.memory import MemoryConfig, MemorySystem
from repro.arch.scheduler import (
    MigrationModel,
    ThreadScheduler,
    ThreadState,
)
from repro.arch.simulator import (
    ExecutionEngine,
    ExecutionTrace,
    ManyCoreSimulator,
    QuantumSample,
    RunResult,
)

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CoherenceConfig",
    "CoreTimingModel",
    "CyclesBreakdown",
    "DirectoryProtocol",
    "ExecutionEngine",
    "ExecutionTrace",
    "MachineConfig",
    "ManyCoreSimulator",
    "MemoryConfig",
    "MemorySystem",
    "MigrationModel",
    "MissRates",
    "PAPER_MACHINE",
    "QuantumSample",
    "RunResult",
    "ThreadScheduler",
    "ThreadState",
]
