"""Cache geometry and miss-rate models for the many-core machine.

The paper's cores have private 32 KB 8-way L1 caches and share a 4 MB
16-way last-level cache (Section 8.1).  Simulating individual cache lines
for billions of accesses is neither feasible in Python nor necessary to
reproduce the paper's results, so this module models the two effects that
matter for the reported speedups:

* **Capacity** — a workload whose working set fits comfortably in a cache
  level misses less in that level; as the working set grows past the
  capacity, the miss rate approaches the workload's intrinsic streaming miss
  rate.  The transition follows the widely used square-root-of-capacity
  rule of thumb for set-associative caches.
* **Sharing** — when ``n`` cores run the parallel phase, they share the
  last-level cache, so each core effectively owns ``1/n`` of it, raising the
  L2 miss rate; conversely the L1s are private so per-core working sets
  shrink as the data is partitioned, lowering the L1 miss rate slightly.

Both effects saturate so that miss rates always remain in ``[floor, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.line_bytes <= 0:
            raise ValueError("line size must be positive")
        if self.size_bytes % self.line_bytes != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if self.hit_latency_cycles < 0:
            raise ValueError("hit latency must be non-negative")

    @property
    def lines(self) -> int:
        """Number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        """Number of sets."""
        if self.lines % self.associativity != 0:
            raise ValueError("line count must be divisible by associativity")
        return self.lines // self.associativity

    def fits(self, working_set_bytes: float) -> bool:
        """True when the working set fits entirely in this cache."""
        return working_set_bytes <= self.size_bytes


#: Private L1 data cache of the paper's cores: 32 KB, 8-way.
PAPER_L1 = CacheConfig(size_bytes=32 * 1024, associativity=8, hit_latency_cycles=1)

#: Shared last-level cache: 4 MB, 16-way, 20-cycle hit latency.
PAPER_L2 = CacheConfig(
    size_bytes=4 * 1024 * 1024, associativity=16, hit_latency_cycles=20
)


@dataclass(frozen=True)
class MissRates:
    """Effective per-memory-instruction miss rates for one execution phase."""

    l1_miss_rate: float
    l2_miss_rate: float

    def __post_init__(self) -> None:
        for name in ("l1_miss_rate", "l2_miss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def dram_rate(self) -> float:
        """Fraction of memory instructions that reach DRAM."""
        return self.l1_miss_rate * self.l2_miss_rate


def capacity_miss_scale(working_set_bytes: float, capacity_bytes: float) -> float:
    """Scale factor applied to a workload's intrinsic miss rate.

    Returns a value in ``(0, 1]``: near zero when the working set fits with
    lots of room to spare, 1 when the working set greatly exceeds capacity.
    The square-root form reflects the classic observation that miss rate
    falls roughly with the square root of cache size for a fixed workload.
    """
    if working_set_bytes <= 0:
        raise ValueError("working set must be positive")
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    ratio = working_set_bytes / capacity_bytes
    if ratio >= 1.0:
        return 1.0
    # Below capacity the miss rate decays with sqrt of the occupancy ratio.
    return math.sqrt(ratio)


@dataclass(frozen=True)
class CacheHierarchy:
    """The private-L1 / shared-L2 hierarchy of the paper's machine."""

    l1: CacheConfig = PAPER_L1
    l2: CacheConfig = PAPER_L2
    #: Miss rates never drop below this floor (cold misses, conflict misses).
    miss_rate_floor: float = 0.002

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate_floor < 1.0:
            raise ValueError("miss rate floor must be in [0, 1)")
        if self.l2.size_bytes < self.l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")

    def effective_miss_rates(
        self,
        intrinsic_l1_miss: float,
        intrinsic_l2_miss: float,
        working_set_bytes: float,
        sharers: int = 1,
    ) -> MissRates:
        """Miss rates of one core given working set and L2 sharers.

        ``intrinsic_*`` are the workload's miss rates measured (or estimated)
        for a single core touching its full working set — the values stored
        in a :class:`~repro.workloads.descriptor.MemoryBehaviour`.  When the
        data is partitioned across ``sharers`` cores, each core touches
        roughly ``1/sharers`` of the working set but owns only
        ``1/sharers`` of the shared L2.
        """
        if not 0.0 <= intrinsic_l1_miss <= 1.0:
            raise ValueError("intrinsic L1 miss rate must be in [0, 1]")
        if not 0.0 <= intrinsic_l2_miss <= 1.0:
            raise ValueError("intrinsic L2 miss rate must be in [0, 1]")
        if working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        if sharers < 1:
            raise ValueError("sharers must be at least 1")

        per_core_ws = working_set_bytes / sharers

        # L1 is private: the per-core share of the data determines locality.
        l1_scale = capacity_miss_scale(per_core_ws, self.l1.size_bytes)
        l1_miss = max(self.miss_rate_floor, intrinsic_l1_miss * l1_scale)

        # L2 is shared: per-core slice of capacity versus per-core working set.
        l2_slice = self.l2.size_bytes / sharers
        l2_scale = capacity_miss_scale(per_core_ws, l2_slice)
        l2_miss = max(self.miss_rate_floor, intrinsic_l2_miss * l2_scale)

        return MissRates(l1_miss_rate=min(1.0, l1_miss), l2_miss_rate=min(1.0, l2_miss))

    def l1_miss_penalty_cycles(self) -> int:
        """Latency of an L1 miss that hits in the shared L2."""
        return self.l2.hit_latency_cycles

    def cold_start_misses(self, working_set_bytes: float) -> float:
        """Extra L1 misses incurred because L1s start empty at sprint begin.

        Section 8.1: "When sprinting begins, the L1 caches are initially
        empty".  Filling a working set (capped at the L1 capacity) costs one
        miss per line.
        """
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        bytes_to_fill = min(working_set_bytes, float(self.l1.size_bytes))
        return bytes_to_fill / self.l1.line_bytes


#: Hierarchy with the paper's parameters.
PAPER_HIERARCHY = CacheHierarchy()
