"""Full machine configuration for the many-core sprinting chip.

Bundles the cache hierarchy, memory system, coherence protocol, core count
and nominal operating point into one object so that the execution engine,
the sprint runtime and the experiment harnesses all agree on the machine
they are simulating.  :data:`PAPER_MACHINE` is the configuration of Section
8.1: 16 in-order 1 GHz cores, 32 KB private L1s, a shared 4 MB L2, and a
dual-channel 4 GB/s-per-channel memory interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.cache import CacheHierarchy, PAPER_HIERARCHY
from repro.arch.coherence import CoherenceConfig, PAPER_COHERENCE
from repro.arch.core import CoreTimingModel
from repro.arch.memory import MemoryConfig, PAPER_MEMORY
from repro.energy.dvfs import DvfsModel, OperatingPoint, PAPER_DVFS


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated chip."""

    n_cores: int = 16
    nominal: OperatingPoint = field(
        default_factory=lambda: OperatingPoint(frequency_hz=1e9, voltage_v=1.0)
    )
    hierarchy: CacheHierarchy = PAPER_HIERARCHY
    memory: MemoryConfig = PAPER_MEMORY
    coherence: CoherenceConfig = PAPER_COHERENCE
    dvfs: DvfsModel = PAPER_DVFS
    base_cpi: float = 1.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("core count must be positive")
        if self.base_cpi <= 0:
            raise ValueError("base CPI must be positive")

    @property
    def frequency_hz(self) -> float:
        """Nominal core clock frequency."""
        return self.nominal.frequency_hz

    def timing_model(self) -> CoreTimingModel:
        """Core timing model consistent with this machine."""
        return CoreTimingModel(hierarchy=self.hierarchy, base_cpi=self.base_cpi)

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """Copy of this machine with a different core count (Figure 10)."""
        return replace(self, n_cores=n_cores)

    def with_memory_bandwidth_scale(self, factor: float) -> "MachineConfig":
        """Copy with scaled memory bandwidth (Section 8.5's 2x study)."""
        return replace(self, memory=self.memory.with_bandwidth_scale(factor))

    def with_frequency(self, frequency_hz: float) -> "MachineConfig":
        """Copy running at a different nominal frequency (DVFS sprints)."""
        point = self.dvfs.operating_point(frequency_hz)
        return replace(self, nominal=point)


#: The evaluation machine of Section 8.1.
PAPER_MACHINE = MachineConfig()
