"""Directory-based cache coherence traffic model.

The paper's machine uses a standard invalidation-based coherence protocol
with the directory co-located with the last-level cache (Section 8.1).
Coherence does not change the headline results much (the kernels are mostly
data-parallel with little sharing), but it does add latency to the fraction
of misses caused by communication, and that cost grows mildly with the
number of sharers.  This module captures that effect.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoherenceConfig:
    """Cost parameters of the invalidation-based directory protocol."""

    #: Cycles to consult the directory (co-located with the L2, so about an
    #: L2 hit worth of latency).
    directory_lookup_cycles: int = 20
    #: Cycles for a cache-to-cache transfer once the owner is known.
    forward_latency_cycles: int = 25
    #: Extra cycles per additional sharer that must be invalidated on a write
    #: to a shared line.
    invalidation_cycles_per_sharer: float = 2.0

    def __post_init__(self) -> None:
        if self.directory_lookup_cycles < 0:
            raise ValueError("directory lookup cycles must be non-negative")
        if self.forward_latency_cycles < 0:
            raise ValueError("forward latency must be non-negative")
        if self.invalidation_cycles_per_sharer < 0:
            raise ValueError("invalidation cost must be non-negative")


class DirectoryProtocol:
    """Latency of coherence misses under the directory protocol."""

    def __init__(self, config: CoherenceConfig | None = None) -> None:
        self.config = config or CoherenceConfig()

    def coherence_miss_cycles(self, sharers: int) -> float:
        """Average latency of a miss served by another core's cache.

        A coherence miss consults the directory, forwards the request to the
        owner, and (for upgrades) invalidates the remaining sharers.  With a
        single core there can be no coherence misses, so the cost is zero.
        """
        if sharers < 1:
            raise ValueError("sharers must be at least 1")
        if sharers == 1:
            return 0.0
        cfg = self.config
        invalidations = cfg.invalidation_cycles_per_sharer * (sharers - 1)
        return cfg.directory_lookup_cycles + cfg.forward_latency_cycles + invalidations

    def effective_coherence_fraction(
        self, base_fraction: float, sharers: int
    ) -> float:
        """Fraction of L1 misses that are coherence misses at ``sharers`` cores.

        With one core there is no communication.  The fraction grows with
        the logarithm of the sharer count (boundary sharing between adjacent
        tiles grows slowly relative to the partitioned data volume) and is
        capped at three times the workload's intrinsic value.
        """
        if not 0.0 <= base_fraction <= 1.0:
            raise ValueError("base coherence fraction must be in [0, 1]")
        if sharers < 1:
            raise ValueError("sharers must be at least 1")
        if sharers == 1 or base_fraction == 0.0:
            return 0.0
        import math

        growth = 1.0 + math.log2(sharers) / 4.0
        return min(1.0, min(3.0 * base_fraction, base_fraction * growth))


#: Default protocol parameters used by the paper machine.
PAPER_COHERENCE = CoherenceConfig()
