"""Off-chip memory system: dual-channel DRAM with bandwidth contention.

Section 8.1 gives the machine a dual-channel memory interface with 4 GB/s
per channel and an uncontended 60 ns round-trip latency.  Sections 8.5 and
8.6 show that two of the six kernels (feature and disparity) are limited by
this bandwidth at high core counts and that doubling the per-channel
bandwidth lifts both to a 12x speedup on 64 cores — so the contention model
matters for reproducing Figure 10.

The model here is deliberately simple and monotonic:

* each core generates DRAM traffic at a rate set by its miss rates and
  frequency,
* when the aggregate demand exceeds the peak bandwidth, every core's memory
  throughput is scaled back proportionally (a fair-share bandwidth model),
* queueing delay grows as utilisation approaches one, increasing the
  effective round-trip latency seen by the cores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MemoryConfig:
    """Parameters of the off-chip memory interface."""

    channels: int = 2
    bandwidth_per_channel_gbs: float = 4.0
    uncontended_latency_ns: float = 60.0
    #: Utilisation beyond which queueing delay starts to grow noticeably.
    queueing_knee: float = 0.6
    #: Maximum latency multiplier at full utilisation.
    max_latency_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("channel count must be positive")
        if self.bandwidth_per_channel_gbs <= 0:
            raise ValueError("per-channel bandwidth must be positive")
        if self.uncontended_latency_ns <= 0:
            raise ValueError("uncontended latency must be positive")
        if not 0.0 < self.queueing_knee < 1.0:
            raise ValueError("queueing knee must be in (0, 1)")
        if self.max_latency_multiplier < 1.0:
            raise ValueError("max latency multiplier must be at least 1")

    @property
    def peak_bandwidth_bytes_s(self) -> float:
        """Aggregate peak bandwidth in bytes per second."""
        return self.channels * self.bandwidth_per_channel_gbs * 1e9

    def with_bandwidth_scale(self, factor: float) -> "MemoryConfig":
        """Copy with per-channel bandwidth scaled (Section 8.5's 2x study)."""
        if factor <= 0:
            raise ValueError("bandwidth scale factor must be positive")
        return replace(
            self, bandwidth_per_channel_gbs=self.bandwidth_per_channel_gbs * factor
        )

    def latency_cycles(self, frequency_hz: float) -> float:
        """Uncontended round-trip latency expressed in core cycles."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.uncontended_latency_ns * 1e-9 * frequency_hz


@dataclass(frozen=True)
class BandwidthShare:
    """Outcome of arbitrating a bandwidth demand against the memory system."""

    demanded_bytes_s: float
    granted_bytes_s: float
    utilization: float
    latency_multiplier: float

    @property
    def throttle_factor(self) -> float:
        """Fraction of the demanded traffic actually served (<= 1)."""
        if self.demanded_bytes_s == 0:
            return 1.0
        return self.granted_bytes_s / self.demanded_bytes_s

    @property
    def saturated(self) -> bool:
        """True when demand had to be throttled."""
        return self.throttle_factor < 1.0 - 1e-12


class MemorySystem:
    """Arbitrates DRAM bandwidth and computes effective access latency."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()

    def arbitrate(self, demanded_bytes_s: float) -> BandwidthShare:
        """Grant bandwidth to an aggregate demand.

        Demand above the peak is clipped; utilisation and the resulting
        queueing-delay multiplier are reported alongside.
        """
        if demanded_bytes_s < 0:
            raise ValueError("demanded bandwidth must be non-negative")
        peak = self.config.peak_bandwidth_bytes_s
        granted = min(demanded_bytes_s, peak)
        utilization = granted / peak
        return BandwidthShare(
            demanded_bytes_s=demanded_bytes_s,
            granted_bytes_s=granted,
            utilization=utilization,
            latency_multiplier=self.latency_multiplier(utilization),
        )

    def latency_multiplier(self, utilization: float) -> float:
        """Queueing-delay multiplier applied to the uncontended latency.

        Flat at 1.0 below the knee, then rises linearly to
        ``max_latency_multiplier`` at full utilisation.  A piecewise-linear
        form keeps the model monotonic and easy to reason about in tests.
        """
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError("utilization must be in [0, 1]")
        utilization = min(1.0, utilization)
        knee = self.config.queueing_knee
        if utilization <= knee:
            return 1.0
        slope = (self.config.max_latency_multiplier - 1.0) / (1.0 - knee)
        return 1.0 + slope * (utilization - knee)

    def effective_latency_cycles(
        self, frequency_hz: float, utilization: float
    ) -> float:
        """Round-trip DRAM latency in core cycles at a given utilisation."""
        base = self.config.latency_cycles(frequency_hz)
        return base * self.latency_multiplier(utilization)


#: The paper's dual-channel, 4 GB/s-per-channel, 60 ns memory system.
PAPER_MEMORY = MemoryConfig()
