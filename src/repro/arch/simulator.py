"""Quantum-based many-core execution engine.

This is the reproduction of the paper's instruction-level simulator
(Section 8.1).  Rather than interpreting x86 instructions, the engine
advances a :class:`~repro.workloads.descriptor.WorkloadDescriptor` in time
quanta, applying the same arithmetic the paper's simulator applies per
instruction:

* in-order cores retire one instruction per cycle plus cache miss penalties,
* private L1s and a shared L2 determine those penalties (with capacity and
  sharing effects),
* a dual-channel memory interface caps aggregate DRAM bandwidth and adds
  queueing latency as it saturates,
* load imbalance and barrier overhead blunt parallel efficiency, and cores
  that run out of work PAUSE-sleep at 10% power,
* per-quantum dynamic energy is reported so the sprint runtime can drive
  the thermal model (the paper samples energy every 1000 cycles; the engine
  reports exact per-quantum energy instead).

The engine supports changing the number of powered cores and the operating
point between quanta, which is how the sprint runtime terminates a sprint
(migrate to one core) or sprints via DVFS instead of parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.coherence import DirectoryProtocol
from repro.arch.machine import MachineConfig, PAPER_MACHINE
from repro.arch.memory import MemorySystem
from repro.arch.scheduler import ThreadScheduler
from repro.energy.core import CorePowerModel, CoreState
from repro.energy.dvfs import OperatingPoint
from repro.energy.instruction import InstructionEnergyModel
from repro.workloads.descriptor import WorkloadDescriptor

#: Smallest quantum the engine will simulate (guards against zero-size steps).
_MIN_DT_S = 1e-12


@dataclass(frozen=True)
class QuantumSample:
    """Everything that happened during one simulated quantum."""

    time_s: float
    dt_s: float
    phase: str
    active_cores: int
    usable_cores: int
    instructions_retired: float
    energy_j: float
    dram_bytes: float
    bandwidth_utilization: float
    cpi: float
    executing_core_seconds: float
    sleeping_core_seconds: float
    finished: bool

    @property
    def chip_power_w(self) -> float:
        """Average chip power over the quantum."""
        if self.dt_s <= 0:
            return 0.0
        return self.energy_j / self.dt_s

    @property
    def throughput_ips(self) -> float:
        """Aggregate instructions per second retired during the quantum."""
        if self.dt_s <= 0:
            return 0.0
        return self.instructions_retired / self.dt_s


@dataclass
class ExecutionTrace:
    """Ordered list of quantum samples with array accessors."""

    samples: list[QuantumSample] = field(default_factory=list)

    def append(self, sample: QuantumSample) -> None:
        """Record one quantum."""
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def empty(self) -> bool:
        """True when nothing has been recorded."""
        return not self.samples

    def times_s(self) -> np.ndarray:
        """End-of-quantum timestamps."""
        return np.array([s.time_s + s.dt_s for s in self.samples])

    def power_w(self) -> np.ndarray:
        """Chip power per quantum."""
        return np.array([s.chip_power_w for s in self.samples])

    def active_cores(self) -> np.ndarray:
        """Powered core count per quantum."""
        return np.array([s.active_cores for s in self.samples])

    def cumulative_instructions(self) -> np.ndarray:
        """Cumulative instructions retired (the paper's "cumulative computation")."""
        return np.cumsum([s.instructions_retired for s in self.samples])

    @property
    def total_energy_j(self) -> float:
        """Total dynamic energy over the trace."""
        return float(sum(s.energy_j for s in self.samples))

    @property
    def total_instructions(self) -> float:
        """Total instructions retired over the trace."""
        return float(sum(s.instructions_retired for s in self.samples))

    @property
    def duration_s(self) -> float:
        """Total simulated time covered by the trace."""
        return float(sum(s.dt_s for s in self.samples))


@dataclass(frozen=True)
class RunResult:
    """Summary of running one workload to completion on a fixed configuration."""

    workload_name: str
    cores: int
    operating_point: OperatingPoint
    total_time_s: float
    total_energy_j: float
    total_instructions: float
    trace: ExecutionTrace

    @property
    def average_power_w(self) -> float:
        """Average chip power over the run."""
        if self.total_time_s == 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    def speedup_over(self, baseline: "RunResult") -> float:
        """Wall-clock speedup relative to another run of the same workload."""
        if self.total_time_s == 0:
            raise ZeroDivisionError("run completed in zero time")
        return baseline.total_time_s / self.total_time_s

    def energy_ratio_over(self, baseline: "RunResult") -> float:
        """Dynamic energy relative to another run (Figure 11's normalisation)."""
        if baseline.total_energy_j == 0:
            raise ZeroDivisionError("baseline consumed zero energy")
        return self.total_energy_j / baseline.total_energy_j


@dataclass
class _PhaseProgress:
    """Mutable record of how much of each phase remains."""

    serial_remaining: float
    parallel_remaining: float
    sync_remaining: float = 0.0
    #: Core count the current sync overhead was charged for.
    sync_charged_for: int = 0

    @property
    def total_remaining(self) -> float:
        return self.serial_remaining + self.parallel_remaining + self.sync_remaining

    @property
    def done(self) -> bool:
        return self.total_remaining <= 1e-6


class ExecutionEngine:
    """Advances one workload through time on the simulated many-core chip."""

    def __init__(
        self,
        workload: WorkloadDescriptor,
        machine: MachineConfig | None = None,
        n_threads: int | None = None,
        energy_model: InstructionEnergyModel | None = None,
        power_model: CorePowerModel | None = None,
    ) -> None:
        self.workload = workload
        self.machine = machine or PAPER_MACHINE
        self.energy_model = energy_model or InstructionEnergyModel()
        self.power_model = power_model or CorePowerModel(nominal=self.machine.nominal)
        self.timing = self.machine.timing_model()
        self.memory = MemorySystem(self.machine.memory)
        self.protocol = DirectoryProtocol(self.machine.coherence)

        threads = self.machine.n_cores if n_threads is None else n_threads
        self.scheduler = ThreadScheduler(n_threads=threads, n_cores=self.machine.n_cores)

        parallel_fraction = workload.parallel.parallel_fraction
        self._progress = _PhaseProgress(
            serial_remaining=workload.total_instructions * (1.0 - parallel_fraction),
            parallel_remaining=workload.total_instructions * parallel_fraction,
        )
        self._time_s = 0.0
        self._active_cores = 1
        self.trace = ExecutionTrace()

    # -- queries ---------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated time elapsed so far."""
        return self._time_s

    @property
    def done(self) -> bool:
        """True when every instruction of the workload has been retired."""
        return self._progress.done

    @property
    def active_cores(self) -> int:
        """Number of currently powered cores."""
        return self._active_cores

    @property
    def remaining_instructions(self) -> float:
        """Instructions (including sync overhead) not yet retired."""
        return self._progress.total_remaining

    @property
    def progress_fraction(self) -> float:
        """Fraction of the original workload completed (sync overhead excluded)."""
        original = self.workload.total_instructions
        remaining = self._progress.serial_remaining + self._progress.parallel_remaining
        return 1.0 - remaining / original

    # -- control ----------------------------------------------------------------

    def set_active_cores(self, cores: int) -> float:
        """Power ``cores`` cores; returns the thread-migration stall incurred (s)."""
        if cores < 1:
            raise ValueError("at least one core must stay powered")
        cores = min(cores, self.machine.n_cores)
        cost = self.scheduler.set_active_cores(cores)
        self._active_cores = cores
        return cost

    # -- execution ----------------------------------------------------------------

    def advance(
        self,
        dt_s: float,
        operating_point: OperatingPoint | None = None,
    ) -> QuantumSample:
        """Simulate ``dt_s`` seconds of execution and return what happened.

        The quantum may span a phase boundary (serial work finishing and
        parallel work starting); the engine handles that internally so the
        returned sample always covers exactly ``dt_s`` of wall-clock time
        (less if the workload finishes within the quantum).
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if self.done:
            raise RuntimeError("workload already finished")
        op = operating_point or self.machine.nominal

        remaining_dt = dt_s
        instructions = 0.0
        energy = 0.0
        dram_bytes = 0.0
        executing_core_seconds = 0.0
        utilization_peak = 0.0
        cpi_weighted = 0.0
        start_time = self._time_s
        phase_label = self._current_phase()

        # Migration stall: cores sit idle (sleep power) until threads arrive.
        stall = self.scheduler.consume_migration(remaining_dt)
        if stall > 0:
            energy += self._idle_energy(stall, self._active_cores, op)
            remaining_dt -= stall

        while remaining_dt > _MIN_DT_S and not self.done:
            step = self._advance_phase(remaining_dt, op)
            instructions += step.instructions
            energy += step.energy_j
            dram_bytes += step.dram_bytes
            executing_core_seconds += step.executing_core_seconds
            utilization_peak = max(utilization_peak, step.utilization)
            cpi_weighted += step.cpi * step.instructions
            remaining_dt -= step.dt_s

        consumed = dt_s - remaining_dt if self.done else dt_s
        # If the workload finished early the idle tail is not simulated: the
        # caller decides what happens next (cool down, next task, ...).
        self._time_s += consumed
        total_core_seconds = self._active_cores * consumed
        sleeping = max(0.0, total_core_seconds - executing_core_seconds)
        if self.done:
            self.scheduler.finish_all()

        sample = QuantumSample(
            time_s=start_time,
            dt_s=consumed,
            phase=phase_label,
            active_cores=self._active_cores,
            usable_cores=self._usable_cores(),
            instructions_retired=instructions,
            energy_j=energy,
            dram_bytes=dram_bytes,
            bandwidth_utilization=utilization_peak,
            cpi=(cpi_weighted / instructions) if instructions > 0 else 0.0,
            executing_core_seconds=executing_core_seconds,
            sleeping_core_seconds=sleeping,
            finished=self.done,
        )
        self.trace.append(sample)
        return sample

    # -- internals ----------------------------------------------------------------

    def _current_phase(self) -> str:
        if self._progress.serial_remaining > 1e-6:
            return "serial"
        return "parallel"

    def _usable_cores(self) -> int:
        if self._current_phase() == "serial":
            return 1
        return self.workload.parallel.usable_cores(self._active_cores)

    @dataclass(frozen=True)
    class _StepOutcome:
        dt_s: float
        instructions: float
        energy_j: float
        dram_bytes: float
        executing_core_seconds: float
        utilization: float
        cpi: float

    def _advance_phase(self, dt_s: float, op: OperatingPoint) -> "_StepOutcome":
        """Advance within the current phase for at most ``dt_s`` seconds."""
        phase = self._current_phase()
        usable = self._usable_cores()
        parallel_phase = phase == "parallel"

        if parallel_phase and usable > 1:
            self._charge_sync_overhead(usable)

        remaining_work = (
            self._progress.serial_remaining
            if not parallel_phase
            else self._progress.parallel_remaining + self._progress.sync_remaining
        )

        throughput, utilization, cpi, bytes_per_instruction = self._throughput(
            usable if parallel_phase else 1, op, parallel_phase
        )
        if throughput <= 0:
            raise RuntimeError("execution throughput collapsed to zero")

        time_to_finish = remaining_work / throughput
        step_dt = min(dt_s, time_to_finish)
        work_done = throughput * step_dt
        work_done = min(work_done, remaining_work)

        self._retire(work_done, parallel_phase)

        # Busy core-seconds: retiring `work_done` at one core's rate.  Because
        # imbalance and multiplexing lower the aggregate rate below
        # `usable * per_core_rate`, busy time is less than `usable * step_dt`
        # and the difference is spent asleep (PAUSE) at 10% power.
        cores_in_phase = usable if parallel_phase else 1
        per_core_rate = op.frequency_hz / cpi
        executing_core_seconds = min(
            work_done / max(per_core_rate, 1e-30), cores_in_phase * step_dt
        )

        energy = self._dynamic_energy(work_done, op, usable if parallel_phase else 1)
        idle_core_seconds = self._active_cores * step_dt - executing_core_seconds
        energy += self._sleep_energy(max(0.0, idle_core_seconds), op)

        return self._StepOutcome(
            dt_s=step_dt,
            instructions=work_done,
            energy_j=energy,
            dram_bytes=work_done * bytes_per_instruction,
            executing_core_seconds=executing_core_seconds,
            utilization=utilization,
            cpi=cpi,
        )

    def _charge_sync_overhead(self, usable: int) -> None:
        """Add barrier/task-queue instructions for a new parallel configuration."""
        if self._progress.sync_charged_for == usable:
            return
        per_core = self.workload.parallel.sync_instructions_per_core
        self._progress.sync_remaining += per_core * usable
        self._progress.sync_charged_for = usable

    def _retire(self, work: float, parallel_phase: bool) -> None:
        if not parallel_phase:
            self._progress.serial_remaining = max(
                0.0, self._progress.serial_remaining - work
            )
            return
        # Sync overhead retires alongside the useful parallel work.
        sync = self._progress.sync_remaining
        if sync > 0:
            total = self._progress.parallel_remaining + sync
            sync_share = work * (sync / total)
            self._progress.sync_remaining = max(0.0, sync - sync_share)
            work -= sync_share
        self._progress.parallel_remaining = max(
            0.0, self._progress.parallel_remaining - work
        )

    def _throughput(
        self, cores: int, op: OperatingPoint, parallel_phase: bool
    ) -> tuple[float, float, float, float]:
        """Aggregate instruction throughput, bandwidth utilisation, CPI, bytes/inst."""
        workload = self.workload
        memory_behaviour = workload.memory
        frequency = op.frequency_hz

        def breakdown(utilization: float):
            return self.timing.effective_breakdown(
                mix=workload.instruction_mix,
                intrinsic_l1_miss=memory_behaviour.l1_miss_rate,
                intrinsic_l2_miss=memory_behaviour.l2_miss_rate,
                working_set_bytes=memory_behaviour.working_set_bytes,
                sharers=cores,
                frequency_hz=frequency,
                memory=self.memory,
                utilization=utilization,
                protocol=self.protocol,
                base_coherence_fraction=memory_behaviour.coherence_miss_fraction,
            )

        coherence_fraction = self.protocol.effective_coherence_fraction(
            memory_behaviour.coherence_miss_fraction, cores
        )
        miss_rates = self.timing.hierarchy.effective_miss_rates(
            memory_behaviour.l1_miss_rate,
            memory_behaviour.l2_miss_rate,
            memory_behaviour.working_set_bytes,
            sharers=cores,
        )
        bytes_per_instruction = (
            workload.instruction_mix.memory_fraction
            * miss_rates.l1_miss_rate
            * (1.0 - coherence_fraction)
            * miss_rates.l2_miss_rate
            * memory_behaviour.bytes_per_l2_miss
        )

        # First pass with uncontended latency, then refine once with the
        # utilisation implied by the first-pass demand (a single fixed-point
        # iteration keeps the model deterministic and fast).
        first = breakdown(0.0)
        per_core = frequency / first.total_cpi
        aggregate = self._aggregate_rate(per_core, cores, parallel_phase)
        demand = aggregate * bytes_per_instruction
        share = self.memory.arbitrate(demand)

        refined = breakdown(share.utilization)
        per_core = frequency / refined.total_cpi
        aggregate = self._aggregate_rate(per_core, cores, parallel_phase)
        if bytes_per_instruction > 0:
            bandwidth_cap = (
                self.memory.config.peak_bandwidth_bytes_s / bytes_per_instruction
            )
            aggregate = min(aggregate, bandwidth_cap)
        final_demand = aggregate * bytes_per_instruction
        final_share = self.memory.arbitrate(final_demand)
        return aggregate, final_share.utilization, refined.total_cpi, bytes_per_instruction

    def _aggregate_rate(
        self, per_core_rate: float, cores: int, parallel_phase: bool
    ) -> float:
        if not parallel_phase or cores == 1:
            # Post-sprint multiplexing of many threads onto one core pays a
            # small context-switch overhead.
            return per_core_rate / self.scheduler.multiplexing_slowdown()
        imbalance = self.workload.parallel.imbalance
        return per_core_rate * cores / imbalance

    def _dynamic_energy(self, instructions: float, op: OperatingPoint, cores: int) -> float:
        """Dynamic energy of retiring ``instructions`` at operating point ``op``."""
        workload = self.workload
        mix = workload.instruction_mix
        scale = op.energy_per_work_scale(self.machine.nominal)

        base = self.energy_model.instructions_energy_j(instructions, mix)
        memory_behaviour = workload.memory
        miss_rates = self.timing.hierarchy.effective_miss_rates(
            memory_behaviour.l1_miss_rate,
            memory_behaviour.l2_miss_rate,
            memory_behaviour.working_set_bytes,
            sharers=cores,
        )
        memory_instructions = instructions * mix.memory_fraction
        l1_hits = memory_instructions * (1.0 - miss_rates.l1_miss_rate)
        l1_misses = memory_instructions * miss_rates.l1_miss_rate
        dram = l1_misses * miss_rates.l2_miss_rate * (
            1.0 - memory_behaviour.coherence_miss_fraction
        )
        l2_hits = l1_misses - dram
        hierarchy_energy = self.energy_model.memory_energy_j(l1_hits, l2_hits, dram)
        return (base + hierarchy_energy) * scale

    def _sleep_energy(self, core_seconds: float, op: OperatingPoint) -> float:
        """Energy of cores sleeping (PAUSE) for the given core-seconds."""
        return self.power_model.power_w(CoreState.SLEEP, op) * core_seconds

    def _idle_energy(self, dt_s: float, cores: int, op: OperatingPoint) -> float:
        """Energy of all powered cores idling during a stall."""
        return self._sleep_energy(dt_s * cores, op)


class ManyCoreSimulator:
    """Runs whole workloads to completion on a fixed machine configuration.

    This is the entry point for the thermally-unconstrained studies of
    Figures 10 and 11 (speedup and energy versus core count) and for the
    baselines against which sprints are compared.
    """

    def __init__(self, machine: MachineConfig | None = None) -> None:
        self.machine = machine or PAPER_MACHINE

    def run(
        self,
        workload: WorkloadDescriptor,
        cores: int,
        operating_point: OperatingPoint | None = None,
        quantum_s: float = 1e-3,
        max_time_s: float = 600.0,
    ) -> RunResult:
        """Execute ``workload`` on ``cores`` cores until it completes."""
        if cores < 1:
            raise ValueError("core count must be at least 1")
        if cores > self.machine.n_cores:
            machine = self.machine.with_cores(cores)
        else:
            machine = self.machine
        if quantum_s <= 0:
            raise ValueError("quantum must be positive")
        op = operating_point or machine.nominal

        engine = ExecutionEngine(workload, machine=machine, n_threads=cores)
        engine.set_active_cores(cores)
        elapsed = 0.0
        while not engine.done:
            if elapsed >= max_time_s:
                raise RuntimeError(
                    f"workload {workload.name!r} did not finish within {max_time_s}s"
                )
            sample = engine.advance(quantum_s, operating_point=op)
            elapsed += sample.dt_s

        trace = engine.trace
        return RunResult(
            workload_name=workload.name,
            cores=cores,
            operating_point=op,
            total_time_s=trace.duration_s,
            total_energy_j=trace.total_energy_j,
            total_instructions=trace.total_instructions,
            trace=trace,
        )

    def single_core_baseline(
        self, workload: WorkloadDescriptor, quantum_s: float = 1e-3
    ) -> RunResult:
        """The paper's non-sprinting baseline: one core at the nominal point."""
        return self.run(workload, cores=1, quantum_s=quantum_s)
