"""In-order core timing model: CPI of one plus cache miss penalties.

Section 8.1: "we model in-order x86 cores with a CPI of one plus cache miss
penalties".  Given a workload's instruction mix and effective miss rates,
this module computes the average cycles per instruction and hence the
instruction throughput of one core, along with a breakdown of where the
cycles go (base pipeline, L2 hits, DRAM accesses, coherence misses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cache import CacheHierarchy, MissRates, PAPER_HIERARCHY
from repro.arch.coherence import DirectoryProtocol
from repro.arch.memory import MemorySystem
from repro.energy.instruction import InstructionMix


@dataclass(frozen=True)
class CyclesBreakdown:
    """Average cycles per instruction broken down by source."""

    base_cpi: float
    l2_hit_cpi: float
    dram_cpi: float
    coherence_cpi: float

    def __post_init__(self) -> None:
        for name in ("base_cpi", "l2_hit_cpi", "dram_cpi", "coherence_cpi"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_cpi(self) -> float:
        """Total average cycles per instruction."""
        return self.base_cpi + self.l2_hit_cpi + self.dram_cpi + self.coherence_cpi

    @property
    def memory_stall_fraction(self) -> float:
        """Fraction of cycles spent stalled on the memory hierarchy."""
        stalls = self.l2_hit_cpi + self.dram_cpi + self.coherence_cpi
        return stalls / self.total_cpi


@dataclass(frozen=True)
class CoreTimingModel:
    """Computes per-core instruction throughput for the in-order pipeline."""

    hierarchy: CacheHierarchy = PAPER_HIERARCHY
    base_cpi: float = 1.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError("base CPI must be positive")

    def cycles_breakdown(
        self,
        mix: InstructionMix,
        miss_rates: MissRates,
        dram_latency_cycles: float,
        coherence_fraction: float = 0.0,
        coherence_latency_cycles: float = 0.0,
    ) -> CyclesBreakdown:
        """Average CPI with miss penalties for the given behaviour.

        ``coherence_fraction`` is the share of L1 misses served by another
        core's cache instead of the L2/DRAM path; those misses pay
        ``coherence_latency_cycles`` instead.
        """
        if dram_latency_cycles < 0:
            raise ValueError("DRAM latency must be non-negative")
        if not 0.0 <= coherence_fraction <= 1.0:
            raise ValueError("coherence fraction must be in [0, 1]")
        if coherence_latency_cycles < 0:
            raise ValueError("coherence latency must be non-negative")

        memory_per_instruction = mix.memory_fraction
        l1_misses = memory_per_instruction * miss_rates.l1_miss_rate
        demand_misses = l1_misses * (1.0 - coherence_fraction)
        coherence_misses = l1_misses * coherence_fraction

        l2_hit_latency = self.hierarchy.l1_miss_penalty_cycles()
        # Every demand L1 miss at least reaches the L2; the fraction that also
        # misses there additionally pays the DRAM round trip.
        l2_hit_cpi = demand_misses * l2_hit_latency
        dram_cpi = demand_misses * miss_rates.l2_miss_rate * dram_latency_cycles
        coherence_cpi = coherence_misses * coherence_latency_cycles

        return CyclesBreakdown(
            base_cpi=self.base_cpi,
            l2_hit_cpi=l2_hit_cpi,
            dram_cpi=dram_cpi,
            coherence_cpi=coherence_cpi,
        )

    def instructions_per_second(
        self, frequency_hz: float, breakdown: CyclesBreakdown
    ) -> float:
        """Throughput of one core at the given frequency."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return frequency_hz / breakdown.total_cpi

    def effective_breakdown(
        self,
        mix: InstructionMix,
        intrinsic_l1_miss: float,
        intrinsic_l2_miss: float,
        working_set_bytes: float,
        sharers: int,
        frequency_hz: float,
        memory: MemorySystem,
        utilization: float,
        protocol: DirectoryProtocol,
        base_coherence_fraction: float,
    ) -> CyclesBreakdown:
        """Convenience wrapper that resolves miss rates and latencies first."""
        miss_rates = self.hierarchy.effective_miss_rates(
            intrinsic_l1_miss=intrinsic_l1_miss,
            intrinsic_l2_miss=intrinsic_l2_miss,
            working_set_bytes=working_set_bytes,
            sharers=sharers,
        )
        dram_latency = memory.effective_latency_cycles(frequency_hz, utilization)
        coherence_fraction = protocol.effective_coherence_fraction(
            base_coherence_fraction, sharers
        )
        coherence_latency = protocol.coherence_miss_cycles(sharers)
        return self.cycles_breakdown(
            mix=mix,
            miss_rates=miss_rates,
            dram_latency_cycles=dram_latency,
            coherence_fraction=coherence_fraction,
            coherence_latency_cycles=coherence_latency,
        )
