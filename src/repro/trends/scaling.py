"""Power-density and dark-silicon projections (Figure 1).

Figure 1 plots, for a fixed-area chip across process nodes from 45 nm down
to 6 nm, (a) the relative power density and (b) the fraction of the chip
that must remain dark, under three sets of scaling assumptions: the ITRS
roadmap, Borkar's projections, and ITRS density with Borkar's more
pessimistic supply-voltage scaling.

The underlying arithmetic is the standard dark-silicon argument
(Borkar & Chien [5], Esmaeilzadeh et al. [13]):

* transistor density roughly doubles per node,
* per-device capacitance falls by ~25% per node (Borkar) or a little faster
  (ITRS),
* supply voltage falls slowly (ITRS) or barely at all (Borkar),
* frequency is held flat (the paper's conservative assumption),

so relative power density scales as ``density x capacitance x voltage^2``
and the fraction of the chip that can be active at the 45 nm power budget
is the reciprocal of that growth.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Process nodes on Figure 1's x-axis, in nanometres.
PAPER_NODES_NM: tuple[int, ...] = (45, 32, 22, 16, 11, 8, 6)


@dataclass(frozen=True)
class ScalingScenario:
    """Per-generation scaling factors for one set of assumptions.

    Each factor is the multiplicative change *per process generation* (one
    step along Figure 1's x-axis).
    """

    name: str
    density_per_gen: float
    capacitance_per_gen: float
    voltage_per_gen: float
    frequency_per_gen: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "density_per_gen",
            "capacitance_per_gen",
            "voltage_per_gen",
            "frequency_per_gen",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def power_density_after(self, generations: int) -> float:
        """Relative power density after ``generations`` steps (1.0 at the start)."""
        if generations < 0:
            raise ValueError("generation count must be non-negative")
        per_gen = (
            self.density_per_gen
            * self.capacitance_per_gen
            * self.voltage_per_gen**2
            * self.frequency_per_gen
        )
        return per_gen**generations

    def active_fraction_after(self, generations: int) -> float:
        """Fraction of the chip that can be powered at the original budget."""
        return min(1.0, 1.0 / self.power_density_after(generations))

    def dark_fraction_after(self, generations: int) -> float:
        """Fraction of the chip that must stay dark."""
        return 1.0 - self.active_fraction_after(generations)


#: ITRS roadmap: modest capacitance and voltage scaling each generation.
ITRS = ScalingScenario(
    name="ITRS",
    density_per_gen=2.0,
    capacitance_per_gen=0.70,
    voltage_per_gen=0.95,
)

#: Borkar's projections: 75% density increase, 25% capacitance reduction,
#: essentially flat supply voltage.
BORKAR = ScalingScenario(
    name="Borkar",
    density_per_gen=1.75,
    capacitance_per_gen=0.75,
    voltage_per_gen=0.985,
)

#: ITRS density/capacitance with Borkar's pessimistic voltage scaling —
#: the worst of both, and the steepest curve in Figure 1.
ITRS_BORKAR_VDD = ScalingScenario(
    name="ITRS + Borkar Vdd scaling",
    density_per_gen=2.0,
    capacitance_per_gen=0.70,
    voltage_per_gen=0.985,
)

#: The three scenarios in the order the paper's legend lists them.
PAPER_SCENARIOS: tuple[ScalingScenario, ...] = (ITRS, BORKAR, ITRS_BORKAR_VDD)


@dataclass(frozen=True)
class TrendPoint:
    """One point of a Figure 1 series."""

    scenario: str
    node_nm: int
    power_density: float
    dark_fraction: float

    @property
    def dark_percent(self) -> float:
        """Dark-silicon percentage (the y-axis of Figure 1(b))."""
        return 100.0 * self.dark_fraction


def power_density_trend(
    scenario: ScalingScenario, nodes_nm: tuple[int, ...] = PAPER_NODES_NM
) -> list[TrendPoint]:
    """The Figure 1(a) series for one scenario."""
    if not nodes_nm:
        raise ValueError("at least one process node is required")
    return [
        TrendPoint(
            scenario=scenario.name,
            node_nm=node,
            power_density=scenario.power_density_after(generation),
            dark_fraction=scenario.dark_fraction_after(generation),
        )
        for generation, node in enumerate(nodes_nm)
    ]


def dark_silicon_trend(
    scenario: ScalingScenario, nodes_nm: tuple[int, ...] = PAPER_NODES_NM
) -> list[TrendPoint]:
    """The Figure 1(b) series for one scenario (same points, different axis)."""
    return power_density_trend(scenario, nodes_nm)


def dark_silicon_at_2019_prediction(scenario: ScalingScenario = ITRS_BORKAR_VDD) -> float:
    """Active-silicon percentage at the last node — Mike Muller's "9% by 2019" claim."""
    generations = len(PAPER_NODES_NM) - 1
    return 100.0 * scenario.active_fraction_after(generations)
