"""Technology scaling projections behind the dark-silicon motivation (Figure 1)."""

from repro.trends.scaling import (
    BORKAR,
    ITRS,
    ITRS_BORKAR_VDD,
    PAPER_NODES_NM,
    ScalingScenario,
    TrendPoint,
    dark_silicon_trend,
    power_density_trend,
)

__all__ = [
    "BORKAR",
    "ITRS",
    "ITRS_BORKAR_VDD",
    "PAPER_NODES_NM",
    "ScalingScenario",
    "TrendPoint",
    "dark_silicon_trend",
    "power_density_trend",
]
