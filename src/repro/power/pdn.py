"""Power distribution network (PDN) model of the sprint-enabled chip.

This module builds the RLC network of Figure 5 — voltage regulator, board,
package, and an on-chip grid feeding the (power-gated) cores — and analyses
the supply-voltage transients caused by core activation.  Cores are modelled
as current sources, as in the paper.

Simplifications relative to the SPICE netlist (documented in DESIGN.md):

* The separate power and ground rails are lumped into a single path whose
  series resistance and inductance are doubled, which preserves the loop
  impedance seen by the load.
* The 2-D on-chip mesh between adjacent cores is modelled as a 1-D chain.

With the paper's component values this reproduces the qualitative result of
Section 5: abrupt activation and a 1.28 us ramp violate a 2% supply
tolerance, while a 128 us ramp stays within tolerance and settles roughly
10 mV below nominal because of the resistive drop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.activation import ActivationSchedule
from repro.power.circuit import GROUND, Circuit, TransientResult

#: Node name of the shared package rail.
PACKAGE_NODE = "package"
#: Node name of the board rail.
BOARD_NODE = "board"
#: Node name of the regulator output.
REGULATOR_NODE = "regulator"


def core_node(index: int) -> str:
    """Name of the on-chip supply node of core ``index``."""
    return f"core{index}"


@dataclass(frozen=True)
class PdnConfig:
    """Component values of the power delivery network (Figure 5).

    Resistances are in ohms, inductances in henries, capacitances in farads.
    The ``*_r`` / ``*_l`` values are round-trip (power + ground) quantities,
    i.e. twice the per-rail values printed in Figure 5.
    """

    n_cores: int = 16
    supply_v: float = 1.2
    #: Average current drawn by one active core (the paper uses 0.5 A).
    core_average_current_a: float = 0.5
    #: Peak current drawn by one active core (1 A in the paper).
    core_peak_current_a: float = 1.0
    #: Allowed supply fluctuation as a fraction of nominal (1-2% typical).
    tolerance_fraction: float = 0.02

    regulator_decap_f: float = 1e-3
    board_r: float = 2 * 0.5e-3
    board_l: float = 2 * 5e-9
    board_decap_f: float = 30e-6
    package_r: float = 2 * 150e-6
    package_l: float = 2 * 0.1e-9
    package_decap_f: float = 1e-6
    #: Per-core feed from the package rail onto the die.
    chip_feed_r: float = 2 * 3.2e-3
    chip_feed_l: float = 2 * 32e-12
    #: On-chip grid segment between adjacent cores.
    grid_r: float = 2 * 1.6e-3
    grid_l: float = 2 * 128e-15
    core_decap_f: float = 16e-12
    core_decap_esr: float = 90e-3

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.supply_v <= 0:
            raise ValueError("supply voltage must be positive")
        if not 0 < self.tolerance_fraction < 1:
            raise ValueError("tolerance fraction must be in (0, 1)")
        if self.core_average_current_a < 0 or self.core_peak_current_a < 0:
            raise ValueError("core currents must be non-negative")

    @property
    def tolerance_v(self) -> float:
        """Allowed fluctuation in volts."""
        return self.supply_v * self.tolerance_fraction

    @property
    def total_sprint_current_a(self) -> float:
        """Average current when all cores are active."""
        return self.n_cores * self.core_average_current_a


@dataclass
class ActivationAnalysis:
    """Supply integrity metrics for one activation transient (Figure 6)."""

    config: PdnConfig
    schedule: ActivationSchedule
    result: TransientResult
    monitored_node: str
    #: Minimum and maximum voltage observed at the monitored core node.
    min_voltage_v: float = 0.0
    max_voltage_v: float = 0.0
    #: Voltage at the end of the run (the settled value).
    settling_voltage_v: float = 0.0
    #: Time to come (and stay) within tolerance of the settled value.
    settling_time_s: float | None = None

    def __post_init__(self) -> None:
        waveform = self.result.voltage(self.monitored_node)
        self.min_voltage_v = float(np.min(waveform))
        self.max_voltage_v = float(np.max(waveform))
        self.settling_voltage_v = float(waveform[-1])
        self.settling_time_s = self.result.settling_time(
            self.monitored_node, self.config.tolerance_v
        )

    @property
    def worst_droop_v(self) -> float:
        """Largest drop below the nominal supply voltage."""
        return self.config.supply_v - self.min_voltage_v

    @property
    def worst_overshoot_v(self) -> float:
        """Largest rise above the nominal supply voltage."""
        return max(0.0, self.max_voltage_v - self.config.supply_v)

    @property
    def within_tolerance(self) -> bool:
        """True when the supply never leaves the +-tolerance band around nominal."""
        return (
            self.worst_droop_v <= self.config.tolerance_v
            and self.worst_overshoot_v <= self.config.tolerance_v
        )

    @property
    def resistive_drop_v(self) -> float:
        """Settled voltage reduction due to IR drop (Section 5.3's ~10 mV)."""
        return self.config.supply_v - self.settling_voltage_v


class PowerDeliveryNetwork:
    """Builds and simulates the Figure 5 RLC network."""

    def __init__(self, config: PdnConfig | None = None) -> None:
        self.config = config or PdnConfig()

    # -- circuit construction -----------------------------------------------------

    def build_circuit(
        self, schedule: ActivationSchedule, core_current_a: float | None = None
    ) -> Circuit:
        """Assemble the RLC circuit with per-core load current sources."""
        cfg = self.config
        current = (
            cfg.core_average_current_a if core_current_a is None else core_current_a
        )
        circuit = Circuit()
        circuit.add_voltage_source("vreg", REGULATOR_NODE, GROUND, cfg.supply_v)
        circuit.add_capacitor("c_reg", REGULATOR_NODE, GROUND, cfg.regulator_decap_f)

        circuit.add_resistor("r_board", REGULATOR_NODE, "board_mid", cfg.board_r)
        circuit.add_inductor("l_board", "board_mid", BOARD_NODE, cfg.board_l)
        circuit.add_capacitor("c_board", BOARD_NODE, GROUND, cfg.board_decap_f)

        circuit.add_resistor("r_package", BOARD_NODE, "package_mid", cfg.package_r)
        circuit.add_inductor("l_package", "package_mid", PACKAGE_NODE, cfg.package_l)
        circuit.add_capacitor("c_package", PACKAGE_NODE, GROUND, cfg.package_decap_f)

        for k in range(cfg.n_cores):
            node = core_node(k)
            circuit.add_resistor(f"r_feed{k}", PACKAGE_NODE, f"feed{k}", cfg.chip_feed_r)
            circuit.add_inductor(f"l_feed{k}", f"feed{k}", node, cfg.chip_feed_l)
            circuit.add_capacitor(f"c_core{k}", node, f"esr{k}", cfg.core_decap_f)
            circuit.add_resistor(f"r_esr{k}", f"esr{k}", GROUND, cfg.core_decap_esr)
            if k > 0:
                circuit.add_resistor(
                    f"r_grid{k}", core_node(k - 1), f"grid{k}", cfg.grid_r
                )
                circuit.add_inductor(f"l_grid{k}", f"grid{k}", node, cfg.grid_l)
            circuit.add_current_source(
                f"i_core{k}",
                node,
                GROUND,
                schedule.core_current_waveform(k, cfg.n_cores, current),
            )
        return circuit

    # -- analyses -------------------------------------------------------------------

    def simulate_activation(
        self,
        schedule: ActivationSchedule,
        duration_s: float | None = None,
        dt_s: float | None = None,
        monitored_core: int = 0,
        method: str = "backward_euler",
    ) -> ActivationAnalysis:
        """Simulate a sprint activation transient and analyse supply integrity.

        The monitored node is the supply node of ``monitored_core`` (core 0
        by default — the core electrically farthest from the last ones to
        activate in the chain layout, and the one the paper plots).
        """
        cfg = self.config
        ramp = schedule.duration_s(cfg.n_cores)
        if duration_s is None:
            # Long enough for the ramp plus electrical settling of the board loop.
            duration_s = max(4 * ramp, 50e-6) + 100e-6
        if dt_s is None:
            dt_s = self._default_dt(ramp, duration_s)
        circuit = self.build_circuit(schedule)
        node = core_node(monitored_core)
        result = circuit.transient(
            duration_s,
            dt_s,
            method=method,
            record_nodes=[node, PACKAGE_NODE, BOARD_NODE],
            start_from_dc=True,
        )
        return ActivationAnalysis(
            config=cfg, schedule=schedule, result=result, monitored_node=node
        )

    def steady_state_voltage(self, active_cores: int) -> float:
        """Settled core-0 supply voltage with ``active_cores`` cores drawing current.

        Uses the DC operating point (inductors short, capacitors open); this
        is the resistive-drop-only voltage the transient settles towards.
        """
        cfg = self.config
        if not 0 <= active_cores <= cfg.n_cores:
            raise ValueError(
                f"active_cores must be between 0 and {cfg.n_cores}, got {active_cores}"
            )
        from repro.power.activation import StaggeredActivation

        # Cores that should be on are given a negative activation time so the
        # DC solve (which evaluates load waveforms at t=0) sees them active.
        times = [-1.0 if k < active_cores else float("inf") for k in range(cfg.n_cores)]
        schedule = StaggeredActivation(times_s=times)
        circuit = self.build_circuit(schedule)
        voltages = circuit.dc_operating_point()
        return voltages[core_node(0)]

    def _default_dt(self, ramp_s: float, duration_s: float) -> float:
        """Pick a step small enough for the ramp but bounded for tractability."""
        dt = min(50e-9, max(1e-9, ramp_s / 64.0)) if ramp_s > 0 else 10e-9
        # Cap the number of steps to keep run times reasonable.
        max_steps = 40_000
        return max(dt, duration_s / max_steps)
