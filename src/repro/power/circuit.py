"""Transient RLC circuit simulation via modified nodal analysis (MNA).

Section 5 of the paper models the sprint-enabled processor's power
distribution network as an RLC circuit (Figure 5) and uses SPICE to study
supply-voltage bounce when cores are activated.  SPICE is not available
here, so this module implements the small subset needed: linear resistors,
capacitors, inductors, ideal DC voltage sources, and time-varying current
sources, integrated with the trapezoidal rule or backward Euler.

The circuit sizes involved (tens of nodes) make a dense numpy formulation
perfectly adequate: the MNA matrix is assembled and LU-factorised once per
run (the step size is fixed), and each time step is a single
back-substitution plus companion-model updates.

Sign conventions
----------------
* Node ``GROUND`` ("0") is the reference; its voltage is identically zero.
* A current source ``add_current_source(n_plus, n_minus, i)`` draws ``i``
  amperes *out of* ``n_plus`` and returns it into ``n_minus`` — i.e. it
  models a load connected between the supply rail (``n_plus``) and ground
  (``n_minus``), which is the natural orientation for power-grid loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy.linalg import lu_factor, lu_solve

#: Name of the reference node.
GROUND = "0"

CurrentWaveform = Callable[[float], float]


@dataclass(frozen=True)
class _Resistor:
    name: str
    n1: str
    n2: str
    ohms: float


@dataclass(frozen=True)
class _Capacitor:
    name: str
    n1: str
    n2: str
    farads: float
    initial_voltage: float


@dataclass(frozen=True)
class _Inductor:
    name: str
    n1: str
    n2: str
    henries: float
    initial_current: float


@dataclass(frozen=True)
class _VoltageSource:
    name: str
    n_plus: str
    n_minus: str
    volts: float


@dataclass(frozen=True)
class _CurrentSource:
    name: str
    n_plus: str
    n_minus: str
    waveform: CurrentWaveform


@dataclass
class TransientResult:
    """Node voltages (and branch currents) sampled over a transient run."""

    time_s: np.ndarray
    node_voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray] = field(default_factory=dict)

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a node (volts)."""
        try:
            return self.node_voltages[node]
        except KeyError:
            known = ", ".join(sorted(self.node_voltages))
            raise KeyError(f"unknown node {node!r}; known nodes: {known}") from None

    def min_voltage(self, node: str) -> float:
        """Minimum voltage seen at a node over the run."""
        return float(np.min(self.voltage(node)))

    def max_voltage(self, node: str) -> float:
        """Maximum voltage seen at a node over the run."""
        return float(np.max(self.voltage(node)))

    def final_voltage(self, node: str) -> float:
        """Voltage at the last sample (used as the settling voltage)."""
        return float(self.voltage(node)[-1])

    def settling_time(self, node: str, tolerance: float) -> float | None:
        """Time after which the node stays within ``tolerance`` (absolute volts)
        of its final value.  ``None`` if it never settles inside the window."""
        waveform = self.voltage(node)
        final = waveform[-1]
        inside = np.abs(waveform - final) <= tolerance
        for idx in range(len(inside)):
            if inside[idx] and bool(np.all(inside[idx:])):
                return float(self.time_s[idx])
        return None


class Circuit:
    """A linear circuit assembled from R, L, C, V and I elements."""

    def __init__(self) -> None:
        self._resistors: list[_Resistor] = []
        self._capacitors: list[_Capacitor] = []
        self._inductors: list[_Inductor] = []
        self._voltage_sources: list[_VoltageSource] = []
        self._current_sources: list[_CurrentSource] = []
        self._names: set[str] = set()
        self._nodes: set[str] = set()

    # -- element construction ---------------------------------------------------

    def _register(self, name: str, *nodes: str) -> None:
        if not name:
            raise ValueError("element name must be non-empty")
        if name in self._names:
            raise ValueError(f"element {name!r} already exists")
        self._names.add(name)
        for node in nodes:
            if not node:
                raise ValueError("node name must be non-empty")
            self._nodes.add(node)

    def add_resistor(self, name: str, n1: str, n2: str, ohms: float) -> None:
        """Add a resistor of ``ohms`` between two nodes."""
        if ohms <= 0:
            raise ValueError(f"resistance must be positive, got {ohms}")
        self._register(name, n1, n2)
        self._resistors.append(_Resistor(name, n1, n2, ohms))

    def add_capacitor(
        self, name: str, n1: str, n2: str, farads: float, initial_voltage: float = 0.0
    ) -> None:
        """Add a capacitor; ``initial_voltage`` is v(n1) - v(n2) at t=0."""
        if farads <= 0:
            raise ValueError(f"capacitance must be positive, got {farads}")
        self._register(name, n1, n2)
        self._capacitors.append(_Capacitor(name, n1, n2, farads, initial_voltage))

    def add_inductor(
        self, name: str, n1: str, n2: str, henries: float, initial_current: float = 0.0
    ) -> None:
        """Add an inductor; ``initial_current`` flows from n1 to n2 at t=0."""
        if henries <= 0:
            raise ValueError(f"inductance must be positive, got {henries}")
        self._register(name, n1, n2)
        self._inductors.append(_Inductor(name, n1, n2, henries, initial_current))

    def add_voltage_source(
        self, name: str, n_plus: str, n_minus: str, volts: float
    ) -> None:
        """Add an ideal DC voltage source (n_plus held ``volts`` above n_minus)."""
        self._register(name, n_plus, n_minus)
        self._voltage_sources.append(_VoltageSource(name, n_plus, n_minus, volts))

    def add_current_source(
        self,
        name: str,
        n_plus: str,
        n_minus: str,
        waveform: CurrentWaveform | float,
    ) -> None:
        """Add a load current source drawing current out of ``n_plus``.

        ``waveform`` is either a constant (amperes) or a callable of time.
        """
        self._register(name, n_plus, n_minus)
        if callable(waveform):
            func = waveform
        else:
            amps = float(waveform)

            def func(_t: float, _amps: float = amps) -> float:
                return _amps

        self._current_sources.append(_CurrentSource(name, n_plus, n_minus, func))

    # -- introspection ------------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        """All node names excluding ground, sorted."""
        return sorted(self._nodes - {GROUND})

    @property
    def element_count(self) -> int:
        """Total number of circuit elements."""
        return (
            len(self._resistors)
            + len(self._capacitors)
            + len(self._inductors)
            + len(self._voltage_sources)
            + len(self._current_sources)
        )

    # -- simulation ---------------------------------------------------------------

    def dc_operating_point(self) -> dict[str, float]:
        """Solve the DC operating point (capacitors open, inductors short).

        Inductors are replaced by 0-volt sources (shorts) and capacitors are
        simply omitted.  Returns node voltages including ground.
        """
        voltages, _ = self._solve_dc()
        return voltages

    def transient(
        self,
        duration_s: float,
        dt_s: float,
        method: str = "trapezoidal",
        record_nodes: Sequence[str] | None = None,
        start_from_dc: bool = False,
    ) -> TransientResult:
        """Run a fixed-step transient simulation.

        Parameters
        ----------
        duration_s, dt_s:
            Total simulated time and the (fixed) step size.
        method:
            ``"trapezoidal"`` (second order, slight ringing on unresolved
            modes) or ``"backward_euler"`` (first order, numerically damped).
        record_nodes:
            Node names to record; defaults to every non-ground node.
        start_from_dc:
            When true, capacitor voltages and inductor currents are
            initialised from the DC operating point with all current sources
            evaluated at ``t=0`` (useful to start a ramp study from a settled
            grid rather than from an all-zero state).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if dt_s <= 0 or dt_s > duration_s:
            raise ValueError("dt must be positive and no larger than the duration")
        if method not in ("trapezoidal", "backward_euler"):
            raise ValueError(f"unknown integration method {method!r}")
        if not self._voltage_sources and not self._current_sources:
            raise ValueError("circuit has no sources")

        nodes = self.node_names
        node_index = {name: i for i, name in enumerate(nodes)}
        n_nodes = len(nodes)
        n_vsrc = len(self._voltage_sources)
        n_ind = len(self._inductors)
        size = n_nodes + n_vsrc + n_ind

        def idx(node: str) -> int | None:
            return None if node == GROUND else node_index[node]

        # --- constant part of the MNA matrix -----------------------------------
        matrix = np.zeros((size, size))

        def stamp_conductance(n1: str, n2: str, conductance: float) -> None:
            i, j = idx(n1), idx(n2)
            if i is not None:
                matrix[i, i] += conductance
            if j is not None:
                matrix[j, j] += conductance
            if i is not None and j is not None:
                matrix[i, j] -= conductance
                matrix[j, i] -= conductance

        for res in self._resistors:
            stamp_conductance(res.n1, res.n2, 1.0 / res.ohms)

        # Capacitor companion conductances.
        theta = 2.0 if method == "trapezoidal" else 1.0
        cap_g = [theta * cap.farads / dt_s for cap in self._capacitors]
        for cap, g in zip(self._capacitors, cap_g):
            stamp_conductance(cap.n1, cap.n2, g)

        # Voltage source rows/columns.
        for k, src in enumerate(self._voltage_sources):
            row = n_nodes + k
            for node, sign in ((src.n_plus, 1.0), (src.n_minus, -1.0)):
                i = idx(node)
                if i is not None:
                    matrix[row, i] += sign
                    matrix[i, row] += sign

        # Inductor rows/columns: branch current is an unknown.
        ind_coeff = [
            (theta * ind.henries / dt_s) for ind in self._inductors
        ]
        for k, (ind, coeff) in enumerate(zip(self._inductors, ind_coeff)):
            row = n_nodes + n_vsrc + k
            for node, sign in ((ind.n1, 1.0), (ind.n2, -1.0)):
                i = idx(node)
                if i is not None:
                    matrix[row, i] += sign
                    matrix[i, row] += sign
            matrix[row, row] -= coeff

        lu = lu_factor(matrix)

        # --- state ---------------------------------------------------------------
        cap_voltage = np.array([c.initial_voltage for c in self._capacitors])
        cap_current = np.zeros(len(self._capacitors))
        ind_current = np.array([l.initial_current for l in self._inductors])
        ind_voltage = np.zeros(len(self._inductors))

        if start_from_dc:
            dc_voltages, dc_ind_currents = self._solve_dc()
            cap_voltage = np.array(
                [dc_voltages[c.n1] - dc_voltages[c.n2] for c in self._capacitors]
            )
            ind_current = dc_ind_currents
            ind_voltage = np.zeros(len(self._inductors))

        recorded = list(record_nodes) if record_nodes is not None else nodes
        for node in recorded:
            if node != GROUND and node not in node_index:
                raise KeyError(f"unknown node {node!r}")

        steps = int(round(duration_s / dt_s))
        times = np.linspace(0.0, steps * dt_s, steps + 1)
        traces = {node: np.zeros(steps + 1) for node in recorded}
        source_traces = {src.name: np.zeros(steps + 1) for src in self._current_sources}

        # Record initial condition (node voltages unknown before the first
        # solve; approximate with the DC solution when requested, else zero).
        if start_from_dc:
            initial_voltages, _ = self._solve_dc()
        else:
            initial_voltages = {name: 0.0 for name in nodes}
            initial_voltages[GROUND] = 0.0
        for node in recorded:
            traces[node][0] = initial_voltages.get(node, 0.0)
        for src in self._current_sources:
            source_traces[src.name][0] = src.waveform(0.0)

        solution = np.zeros(size)
        for step in range(1, steps + 1):
            t = times[step]
            rhs = np.zeros(size)

            for src in self._current_sources:
                amps = src.waveform(t)
                source_traces[src.name][step] = amps
                i, j = idx(src.n_plus), idx(src.n_minus)
                if i is not None:
                    rhs[i] -= amps
                if j is not None:
                    rhs[j] += amps

            for cap, g, v_prev, i_prev in zip(
                self._capacitors, cap_g, cap_voltage, cap_current
            ):
                if method == "trapezoidal":
                    ieq = g * v_prev + i_prev
                else:
                    ieq = g * v_prev
                i, j = idx(cap.n1), idx(cap.n2)
                if i is not None:
                    rhs[i] += ieq
                if j is not None:
                    rhs[j] -= ieq

            for k, src in enumerate(self._voltage_sources):
                rhs[n_nodes + k] = src.volts

            for k, (ind, coeff) in enumerate(zip(self._inductors, ind_coeff)):
                row = n_nodes + n_vsrc + k
                if method == "trapezoidal":
                    rhs[row] = -ind_voltage[k] - coeff * ind_current[k]
                else:
                    rhs[row] = -coeff * ind_current[k]

            solution = lu_solve(lu, rhs)

            node_voltage = {GROUND: 0.0}
            for name, i in node_index.items():
                node_voltage[name] = solution[i]

            # Update companion-model state.
            for k, (cap, g) in enumerate(zip(self._capacitors, cap_g)):
                v_new = node_voltage[cap.n1] - node_voltage[cap.n2]
                if method == "trapezoidal":
                    i_new = g * (v_new - cap_voltage[k]) - cap_current[k]
                else:
                    i_new = g * (v_new - cap_voltage[k])
                cap_voltage[k] = v_new
                cap_current[k] = i_new
            for k, ind in enumerate(self._inductors):
                ind_current[k] = solution[n_nodes + n_vsrc + k]
                ind_voltage[k] = node_voltage[ind.n1] - node_voltage[ind.n2]

            for node in recorded:
                traces[node][step] = node_voltage[node]

        return TransientResult(
            time_s=times, node_voltages=traces, source_currents=source_traces
        )

    # -- internals ------------------------------------------------------------------

    def _solve_dc(self) -> tuple[dict[str, float], np.ndarray]:
        """DC solution: caps open, inductors short (0 V sources)."""
        nodes = self.node_names
        node_index = {name: i for i, name in enumerate(nodes)}
        n_nodes = len(nodes)
        n_vsrc = len(self._voltage_sources)
        n_ind = len(self._inductors)
        size = n_nodes + n_vsrc + n_ind
        if size == 0:
            return {GROUND: 0.0}, np.zeros(0)
        matrix = np.zeros((size, size))
        rhs = np.zeros(size)

        def idx(node: str) -> int | None:
            return None if node == GROUND else node_index[node]

        for res in self._resistors:
            g = 1.0 / res.ohms
            i, j = idx(res.n1), idx(res.n2)
            if i is not None:
                matrix[i, i] += g
            if j is not None:
                matrix[j, j] += g
            if i is not None and j is not None:
                matrix[i, j] -= g
                matrix[j, i] -= g

        for k, src in enumerate(self._voltage_sources):
            row = n_nodes + k
            for node, sign in ((src.n_plus, 1.0), (src.n_minus, -1.0)):
                i = idx(node)
                if i is not None:
                    matrix[row, i] += sign
                    matrix[i, row] += sign
            rhs[row] = src.volts

        for k, ind in enumerate(self._inductors):
            row = n_nodes + n_vsrc + k
            for node, sign in ((ind.n1, 1.0), (ind.n2, -1.0)):
                i = idx(node)
                if i is not None:
                    matrix[row, i] += sign
                    matrix[i, row] += sign
            # Branch equation: v(n1) - v(n2) = 0 (short).

        for src in self._current_sources:
            amps = src.waveform(0.0)
            i, j = idx(src.n_plus), idx(src.n_minus)
            if i is not None:
                rhs[i] -= amps
            if j is not None:
                rhs[j] += amps

        solution = np.linalg.solve(matrix, rhs)
        voltages = {GROUND: 0.0}
        for name, i in node_index.items():
            voltages[name] = float(solution[i])
        ind_currents = solution[n_nodes + n_vsrc:]
        return voltages, ind_currents
