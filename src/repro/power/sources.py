"""Sprint power sources: batteries, ultracapacitors, hybrids, and pins.

Section 6 of the paper asks whether the *electrical* energy source of a
phone can deliver a 16 W burst for a second:

* A typical phone Li-Ion battery tops out around 10 W (2.7 A at 3.7 V) due to
  internal thermal limits, which would cap sprint intensity below ten 1 W
  cores.
* High-discharge Li-polymer packs (e.g. the 51 g Dualsky GT 850 2s: 43 A at
  7 V) easily meet the demand.
* Ultracapacitors (e.g. a 25 F, 2.7 V, 6.5 g NESSCAP part storing 182 J with
  a 20 A peak) can supply sprint current while the battery recharges them
  between sprints.
* Delivering ~16 A onto the die needs many power/ground pins: at 100 mA per
  power/ground pair, 16 A at 1 V needs 320 pins.

These models answer feasibility questions (can this source power N cores for
T seconds?) used by the power-source benchmark and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, inf


@dataclass(frozen=True)
class PowerSource:
    """Base class: anything that can deliver power for some duration."""

    name: str

    def max_power_w(self) -> float:
        """Maximum instantaneous power the source can deliver."""
        raise NotImplementedError

    def max_burst_energy_j(self) -> float:
        """Energy available for a single burst (infinite for batteries)."""
        raise NotImplementedError

    def can_supply(self, power_w: float, duration_s: float) -> bool:
        """True when the source can sustain ``power_w`` for ``duration_s``."""
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        if power_w > self.max_power_w():
            return False
        return power_w * duration_s <= self.max_burst_energy_j()

    def max_sprint_cores(self, core_power_w: float, duration_s: float) -> int:
        """Largest number of cores of ``core_power_w`` sustainable for the burst."""
        if core_power_w <= 0:
            raise ValueError("core power must be positive")
        by_power = int(self.max_power_w() // core_power_w)
        energy = self.max_burst_energy_j()
        by_energy = (
            by_power if energy == inf else int(energy // (core_power_w * duration_s))
        )
        return max(0, min(by_power, by_energy))


@dataclass(frozen=True)
class Battery(PowerSource):
    """A battery characterised by voltage and maximum discharge current."""

    voltage_v: float = 3.7
    max_current_a: float = 2.7
    capacity_wh: float = 5.0
    mass_g: float = 40.0

    def __post_init__(self) -> None:
        if self.voltage_v <= 0 or self.max_current_a <= 0:
            raise ValueError("voltage and max current must be positive")
        if self.capacity_wh <= 0:
            raise ValueError("capacity must be positive")

    def max_power_w(self) -> float:
        return self.voltage_v * self.max_current_a

    def max_burst_energy_j(self) -> float:
        # Battery capacity dwarfs any sub-second burst; treat as unlimited
        # for burst feasibility (the limit is the discharge current).
        return inf

    @property
    def stored_energy_j(self) -> float:
        """Total stored energy in joules."""
        return self.capacity_wh * 3600.0


@dataclass(frozen=True)
class Ultracapacitor(PowerSource):
    """An ultracapacitor characterised by capacitance and rated voltage."""

    capacitance_f: float = 25.0
    rated_voltage_v: float = 2.7
    max_current_a: float = 20.0
    mass_g: float = 6.5
    leakage_current_a: float = 0.1e-3
    #: Fraction of stored energy usable before the terminal voltage is too
    #: low for the downstream regulator (discharging to half voltage releases
    #: 75% of the energy).
    usable_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0 or self.rated_voltage_v <= 0:
            raise ValueError("capacitance and rated voltage must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable fraction must be in (0, 1]")

    def max_power_w(self) -> float:
        return self.rated_voltage_v * self.max_current_a

    @property
    def stored_energy_j(self) -> float:
        """Total stored energy at rated voltage (0.5 C V^2)."""
        return 0.5 * self.capacitance_f * self.rated_voltage_v**2

    def max_burst_energy_j(self) -> float:
        return self.usable_fraction * self.stored_energy_j

    def recharge_time_s(self, charge_power_w: float) -> float:
        """Time to refill the usable energy at a given charging power."""
        if charge_power_w <= 0:
            raise ValueError("charge power must be positive")
        return self.max_burst_energy_j() / charge_power_w

    def self_discharge_w(self) -> float:
        """Standby loss due to leakage at rated voltage."""
        return self.leakage_current_a * self.rated_voltage_v


@dataclass(frozen=True)
class HybridSource(PowerSource):
    """Battery + ultracapacitor hybrid (Section 6).

    The ultracapacitor supplies the sprint burst; the battery covers
    sustained load and recharges the capacitor between sprints.
    """

    battery: Battery = None  # type: ignore[assignment]
    ultracap: Ultracapacitor = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.battery is None or self.ultracap is None:
            raise ValueError("hybrid source requires both a battery and an ultracap")

    def max_power_w(self) -> float:
        return self.battery.max_power_w() + self.ultracap.max_power_w()

    def max_burst_energy_j(self) -> float:
        # The battery contribution to a burst is limited by its power, not
        # energy; model the burst budget as the ultracap's usable energy plus
        # whatever the battery can add over the burst (handled in can_supply).
        return inf

    def can_supply(self, power_w: float, duration_s: float) -> bool:
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        if power_w > self.max_power_w():
            return False
        battery_share = min(power_w, self.battery.max_power_w())
        ultracap_energy_needed = (power_w - battery_share) * duration_s
        return ultracap_energy_needed <= self.ultracap.max_burst_energy_j()

    def max_sprint_cores(self, core_power_w: float, duration_s: float) -> int:
        if core_power_w <= 0:
            raise ValueError("core power must be positive")
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        cores = 0
        while self.can_supply(core_power_w * (cores + 1), duration_s):
            cores += 1
            if cores > 10_000:  # pragma: no cover - guard against runaway loops
                break
        return cores

    def time_between_sprints_s(self, sprint_power_w: float, sprint_duration_s: float) -> float:
        """Time for the battery to recharge the ultracap after a sprint."""
        battery_share = min(sprint_power_w, self.battery.max_power_w())
        drained_j = max(0.0, (sprint_power_w - battery_share) * sprint_duration_s)
        if drained_j == 0.0:
            return 0.0
        return self.ultracap.recharge_time_s(self.battery.max_power_w())


def pins_required(current_a: float, pin_pair_current_a: float = 0.1) -> int:
    """Power/ground pins needed to deliver ``current_a`` onto the die.

    Section 6: at 100 mA per power/ground pair, 16 A requires 320 pins (160
    pairs).  The returned count includes both power and ground pins.
    """
    if current_a < 0:
        raise ValueError("current must be non-negative")
    if pin_pair_current_a <= 0:
        raise ValueError("per-pair current must be positive")
    pairs = ceil(current_a / pin_pair_current_a)
    return 2 * pairs


@dataclass(frozen=True)
class SourceAssessment:
    """Feasibility verdict of one source for a given sprint."""

    source_name: str
    sprint_power_w: float
    sprint_duration_s: float
    feasible: bool
    max_cores: int


def assess_sources(
    sources: list[PowerSource],
    sprint_power_w: float,
    sprint_duration_s: float,
    core_power_w: float = 1.0,
) -> list[SourceAssessment]:
    """Evaluate which sources can power the requested sprint (Section 6 table)."""
    assessments = []
    for source in sources:
        assessments.append(
            SourceAssessment(
                source_name=source.name,
                sprint_power_w=sprint_power_w,
                sprint_duration_s=sprint_duration_s,
                feasible=source.can_supply(sprint_power_w, sprint_duration_s),
                max_cores=source.max_sprint_cores(core_power_w, sprint_duration_s),
            )
        )
    return assessments


#: Representative phone Li-Ion battery: 2.7 A at 3.7 V (~10 W burst limit).
PHONE_LI_ION = Battery(name="phone-li-ion", voltage_v=3.7, max_current_a=2.7,
                       capacity_wh=5.5, mass_g=40.0)

#: High-discharge Li-polymer pack (Dualsky GT 850 2s): 43 A at 7 V, 51 g.
LI_POLYMER_HIGH_DISCHARGE = Battery(
    name="li-polymer-high-discharge",
    voltage_v=7.0,
    max_current_a=43.0,
    capacity_wh=6.3,
    mass_g=51.0,
)

#: 25 F NESSCAP ultracapacitor: 182 J, 20 A peak, 2.7 V, 6.5 g.
NESSCAP_25F = Ultracapacitor(
    name="nesscap-25f",
    capacitance_f=25.0,
    rated_voltage_v=2.7,
    max_current_a=20.0,
    mass_g=6.5,
)

#: Phone battery augmented with the ultracapacitor.
PHONE_HYBRID = HybridSource(
    name="phone-li-ion+ultracap", battery=PHONE_LI_ION, ultracap=NESSCAP_25F
)
