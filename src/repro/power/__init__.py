"""Electrical substrate: RLC circuit solver, PDN model, activation, sources.

Implements Sections 5 and 6 of the paper: the power-delivery network whose
supply integrity constrains how quickly cores may be activated (Figures 5
and 6), and the battery / ultracapacitor sources able to deliver the sprint
current.
"""

from repro.power.activation import (
    PAPER_ABRUPT,
    PAPER_FAST_RAMP,
    PAPER_SLOW_RAMP,
    AbruptActivation,
    ActivationSchedule,
    LinearRampActivation,
    StaggeredActivation,
)
from repro.power.circuit import GROUND, Circuit, TransientResult
from repro.power.pdn import (
    ActivationAnalysis,
    PdnConfig,
    PowerDeliveryNetwork,
    core_node,
)
from repro.power.sources import (
    LI_POLYMER_HIGH_DISCHARGE,
    NESSCAP_25F,
    PHONE_HYBRID,
    PHONE_LI_ION,
    Battery,
    HybridSource,
    PowerSource,
    SourceAssessment,
    Ultracapacitor,
    assess_sources,
    pins_required,
)

__all__ = [
    "ActivationAnalysis",
    "ActivationSchedule",
    "AbruptActivation",
    "Battery",
    "Circuit",
    "GROUND",
    "HybridSource",
    "LI_POLYMER_HIGH_DISCHARGE",
    "LinearRampActivation",
    "NESSCAP_25F",
    "PAPER_ABRUPT",
    "PAPER_FAST_RAMP",
    "PAPER_SLOW_RAMP",
    "PHONE_HYBRID",
    "PHONE_LI_ION",
    "PdnConfig",
    "PowerDeliveryNetwork",
    "PowerSource",
    "SourceAssessment",
    "StaggeredActivation",
    "TransientResult",
    "Ultracapacitor",
    "assess_sources",
    "core_node",
    "pins_required",
]
