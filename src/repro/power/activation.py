"""Core activation schedules for sprint initiation (Section 5).

When a sprint starts, the chip must bring many power-gated cores online.
Doing so abruptly causes a large dI/dt that bounces the supply rails outside
tolerance; spreading activation over a longer ramp keeps the grid stable at
the cost of a (negligible) delay before full parallelism is available.

Three schedules are provided, matching the three cases of Figure 6:

* :class:`AbruptActivation` — all cores at once (within one time step).
* :class:`LinearRampActivation` — cores activated uniformly over a ramp
  (the paper studies 1.28 us and 128 us ramps).
* :class:`StaggeredActivation` — explicit per-core activation times, for
  ablation studies of non-uniform schedules.

Each schedule can answer "how many cores are active at time t" and can
produce per-core current waveforms for the PDN circuit simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


def _smoothstep(t: float, start: float, rise: float) -> float:
    """Fraction of a single core's current drawn at time ``t``.

    Current rises linearly over ``rise`` seconds starting at ``start``; a
    zero rise time gives an ideal step.
    """
    if t <= start:
        return 0.0
    if rise <= 0.0 or t >= start + rise:
        return 1.0
    return (t - start) / rise


@dataclass(frozen=True)
class ActivationSchedule:
    """Base class for activation schedules.

    Subclasses must implement :meth:`activation_times`.
    ``core_rise_s`` is the time a single core takes to go from zero to full
    current once it is switched on (an ideal step when zero).
    """

    start_s: float = 0.0
    core_rise_s: float = 0.0

    def activation_times(self, n_cores: int) -> list[float]:
        """Per-core activation instants (seconds), one per core."""
        raise NotImplementedError

    # -- derived queries ---------------------------------------------------------

    def duration_s(self, n_cores: int) -> float:
        """Time from the first to the last core activation (plus core rise)."""
        times = self.activation_times(n_cores)
        return (max(times) - min(times)) + self.core_rise_s

    def active_cores(self, t: float, n_cores: int) -> int:
        """Number of cores switched on at time ``t`` (ignores partial rise)."""
        return sum(1 for at in self.activation_times(n_cores) if t >= at)

    def total_current_a(self, t: float, n_cores: int, core_current_a: float) -> float:
        """Total current drawn by all cores at time ``t``."""
        self._validate(n_cores, core_current_a)
        return core_current_a * sum(
            _smoothstep(t, at, self.core_rise_s)
            for at in self.activation_times(n_cores)
        )

    def core_current_waveform(
        self, core_index: int, n_cores: int, core_current_a: float
    ) -> Callable[[float], float]:
        """Current waveform (A vs seconds) for one core, for the PDN model."""
        self._validate(n_cores, core_current_a)
        if not 0 <= core_index < n_cores:
            raise ValueError(f"core index {core_index} out of range for {n_cores} cores")
        at = self.activation_times(n_cores)[core_index]
        rise = self.core_rise_s

        def waveform(t: float) -> float:
            return core_current_a * _smoothstep(t, at, rise)

        return waveform

    def _validate(self, n_cores: int, core_current_a: float) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if core_current_a < 0:
            raise ValueError("core current must be non-negative")


@dataclass(frozen=True)
class AbruptActivation(ActivationSchedule):
    """All cores activated simultaneously (Figure 6(a))."""

    def activation_times(self, n_cores: int) -> list[float]:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        return [self.start_s] * n_cores


@dataclass(frozen=True)
class LinearRampActivation(ActivationSchedule):
    """Cores activated uniformly over ``ramp_s`` seconds (Figure 6(b)/(c)).

    Core ``k`` of ``n`` activates at ``start + k * ramp / (n - 1)``, so the
    first core starts immediately and the last exactly ``ramp_s`` later.
    """

    ramp_s: float = 128e-6

    def __post_init__(self) -> None:
        if self.ramp_s < 0:
            raise ValueError("ramp must be non-negative")

    def activation_times(self, n_cores: int) -> list[float]:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if n_cores == 1:
            return [self.start_s]
        spacing = self.ramp_s / (n_cores - 1)
        return [self.start_s + k * spacing for k in range(n_cores)]


@dataclass(frozen=True)
class StaggeredActivation(ActivationSchedule):
    """Explicit per-core activation times (for custom schedules)."""

    times_s: Sequence[float] = ()

    def activation_times(self, n_cores: int) -> list[float]:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if len(self.times_s) != n_cores:
            raise ValueError(
                f"schedule provides {len(self.times_s)} activation times "
                f"but {n_cores} cores were requested"
            )
        return [self.start_s + t for t in self.times_s]


#: The three activation cases studied in Figure 6.
PAPER_ABRUPT = AbruptActivation(core_rise_s=1e-9)
PAPER_FAST_RAMP = LinearRampActivation(ramp_s=1.28e-6)
PAPER_SLOW_RAMP = LinearRampActivation(ramp_s=128e-6)
