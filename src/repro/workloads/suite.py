"""The Table 1 kernel suite with the paper's input-size classes.

Figure 9 evaluates each kernel at several input sizes labelled A-D (feature
and texture only go up to C).  The absolute image sizes are not given in
the paper, so they are chosen here so that single-core task times land in
the "few seconds" range the paper's responsiveness story targets (a
five-second task accelerated to half a second), and so the largest classes
exercise the thermal-capacitance limits of the two PCM design points.

Use :func:`kernel_suite` to get every kernel family, then ask a family for
a specific class::

    suite = kernel_suite()
    workload = suite["sobel"].workload("B")
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels import ALL_KERNELS
from repro.kernels.base import ImageKernel
from repro.kernels.images import shape_for_megapixels
from repro.workloads.characterize import characterize_kernel
from repro.workloads.descriptor import WorkloadDescriptor

#: Input size classes (megapixels) per kernel, ordered smallest to largest.
#: Matches Figure 9's labelling: feature and texture stop at class C.
INPUT_CLASSES: dict[str, dict[str, float]] = {
    "sobel": {"A": 1.0, "B": 2.0, "C": 6.0, "D": 12.0},
    "feature": {"A": 0.3, "B": 0.8, "C": 2.1},
    "kmeans": {"A": 0.10, "B": 0.25, "C": 0.5, "D": 1.0},
    "disparity": {"A": 0.3, "B": 0.75, "C": 1.5, "D": 3.0},
    "texture": {"A": 0.5, "B": 1.0, "C": 2.5},
    "segment": {"A": 0.5, "B": 1.5, "C": 3.0, "D": 6.0},
}

#: Input class used when an experiment asks for "the default input" (Figure 7).
DEFAULT_CLASS = "B"


@dataclass(frozen=True)
class SuiteEntry:
    """One (kernel, input class) pair resolved to a concrete workload."""

    kernel_name: str
    input_label: str
    megapixels: float
    shape: tuple[int, int]
    workload: WorkloadDescriptor


@dataclass
class KernelWorkloadFamily:
    """All input sizes of one Table 1 kernel."""

    kernel: ImageKernel
    classes: dict[str, float]
    _cache: dict[str, SuiteEntry] = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        """Kernel name as used in Table 1."""
        return self.kernel.name

    @property
    def input_labels(self) -> list[str]:
        """Available input classes, smallest first."""
        return sorted(self.classes)

    @property
    def largest_label(self) -> str:
        """The largest available input class (used by Figures 10 and 11)."""
        return self.input_labels[-1]

    def entry(self, label: str = DEFAULT_CLASS) -> SuiteEntry:
        """Resolve an input class to a concrete workload (cached)."""
        if label not in self.classes:
            label = self._fallback(label)
        if label not in self._cache:
            mp = self.classes[label]
            shape = shape_for_megapixels(mp)
            workload = characterize_kernel(self.kernel, shape, input_label=label)
            self._cache[label] = SuiteEntry(
                kernel_name=self.name,
                input_label=label,
                megapixels=mp,
                shape=shape,
                workload=workload,
            )
        return self._cache[label]

    def workload(self, label: str = DEFAULT_CLASS) -> WorkloadDescriptor:
        """Workload descriptor for an input class."""
        return self.entry(label).workload

    def workload_for_megapixels(self, megapixels: float) -> WorkloadDescriptor:
        """Workload for an arbitrary image size (Figure 8's sweep)."""
        if megapixels <= 0:
            raise ValueError("megapixel count must be positive")
        shape = shape_for_megapixels(megapixels)
        return characterize_kernel(
            self.kernel, shape, input_label=f"{megapixels:g}MP"
        )

    def _fallback(self, label: str) -> str:
        """Clamp a missing class label to the largest available one.

        Figure 9 uses classes A-D but feature and texture only define A-C;
        asking for "D" on those returns the largest class they do have.
        """
        if label not in "ABCD":
            raise KeyError(
                f"unknown input class {label!r} for kernel {self.name!r}; "
                f"available: {self.input_labels}"
            )
        return self.largest_label


def kernel_suite(
    classes: dict[str, dict[str, float]] | None = None,
) -> dict[str, KernelWorkloadFamily]:
    """All six Table 1 kernels as workload families keyed by name."""
    table = classes or INPUT_CLASSES
    suite: dict[str, KernelWorkloadFamily] = {}
    for name, kernel_cls in ALL_KERNELS.items():
        if name not in table:
            raise KeyError(f"no input classes defined for kernel {name!r}")
        suite[name] = KernelWorkloadFamily(kernel=kernel_cls(), classes=dict(table[name]))
    return suite


def default_workloads() -> dict[str, WorkloadDescriptor]:
    """The Figure 7 configuration: every kernel at its default input class."""
    return {name: family.workload(DEFAULT_CLASS) for name, family in kernel_suite().items()}


def largest_workloads() -> dict[str, WorkloadDescriptor]:
    """The Figure 10/11 configuration: every kernel at its largest input class."""
    return {
        name: family.workload(family.largest_label)
        for name, family in kernel_suite().items()
    }
