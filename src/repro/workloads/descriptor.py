"""Workload descriptors consumed by the many-core performance simulator.

The paper drives its simulator with native OpenMP binaries; here a workload
is summarised by the quantities that determine its performance and energy on
the in-order many-core of Section 8.1:

* how much work there is (dynamic instructions for a single-threaded run),
* what the instructions are (instruction mix),
* how it touches memory (working set, cache-miss behaviour, DRAM traffic),
* how well it parallelises (parallel fraction, parallelism limit, load
  imbalance, synchronisation cost).

Descriptors are produced either analytically by the kernel suite
(:mod:`repro.workloads.suite`) or by characterising a real kernel run
(:mod:`repro.workloads.characterize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.energy.instruction import DEFAULT_MIX, InstructionMix


@dataclass(frozen=True)
class MemoryBehaviour:
    """Cache and memory-traffic behaviour of a workload.

    ``l1_miss_rate`` and ``l2_miss_rate`` are per *memory instruction* (the
    L2 rate is conditional on an L1 miss).  ``bytes_per_l2_miss`` is the DRAM
    traffic per L2 miss (a cache line, possibly more for streaming writes).
    """

    working_set_bytes: float = 8 * 1024 * 1024
    l1_miss_rate: float = 0.03
    l2_miss_rate: float = 0.3
    bytes_per_l2_miss: float = 64.0
    #: Fraction of L1 misses caused by coherence (invalidations of shared
    #: lines); these hit in the shared L2 rather than DRAM.
    coherence_miss_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        for name in ("l1_miss_rate", "l2_miss_rate", "coherence_miss_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.bytes_per_l2_miss <= 0:
            raise ValueError("bytes per L2 miss must be positive")


@dataclass(frozen=True)
class ParallelBehaviour:
    """How a workload divides across cores.

    ``parallel_fraction`` is the Amdahl fraction of single-threaded work that
    can run in parallel.  ``max_parallelism`` caps useful concurrency (e.g.
    a pipeline stage count).  ``imbalance`` is the ratio of the slowest
    thread's work to the average in the parallel phase (1.0 = perfectly
    balanced).  ``sync_instructions_per_core`` models per-core barrier and
    task-queue overhead added when running in parallel.
    """

    parallel_fraction: float = 0.97
    max_parallelism: int = 1024
    imbalance: float = 1.05
    sync_instructions_per_core: float = 100_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel fraction must be in [0, 1]")
        if self.max_parallelism < 1:
            raise ValueError("max parallelism must be at least 1")
        if self.imbalance < 1.0:
            raise ValueError("imbalance must be at least 1.0")
        if self.sync_instructions_per_core < 0:
            raise ValueError("sync instructions must be non-negative")

    def usable_cores(self, cores: int) -> int:
        """Number of cores the workload can actually keep busy."""
        if cores < 1:
            raise ValueError("cores must be at least 1")
        return min(cores, self.max_parallelism)


@dataclass(frozen=True)
class WorkloadDescriptor:
    """Complete description of one task for the performance simulator."""

    name: str
    total_instructions: float
    instruction_mix: InstructionMix = field(default_factory=lambda: DEFAULT_MIX)
    memory: MemoryBehaviour = field(default_factory=MemoryBehaviour)
    parallel: ParallelBehaviour = field(default_factory=ParallelBehaviour)
    #: Free-form label of the input size class (A-D in Figure 9).
    input_label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if self.total_instructions <= 0:
            raise ValueError("total instructions must be positive")

    # -- convenience -------------------------------------------------------------

    @property
    def memory_instructions(self) -> float:
        """Number of load/store instructions in a single-threaded run."""
        return self.total_instructions * self.instruction_mix.memory_fraction

    @property
    def dram_traffic_bytes(self) -> float:
        """Approximate DRAM traffic of a single-threaded run."""
        l2_misses = (
            self.memory_instructions
            * self.memory.l1_miss_rate
            * (1.0 - self.memory.coherence_miss_fraction)
            * self.memory.l2_miss_rate
        )
        return l2_misses * self.memory.bytes_per_l2_miss

    def single_core_seconds(self, frequency_hz: float, cpi: float = 1.0) -> float:
        """Back-of-envelope single-core runtime ignoring cache stalls."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if cpi <= 0:
            raise ValueError("cpi must be positive")
        return self.total_instructions * cpi / frequency_hz

    def scaled(self, factor: float, input_label: str | None = None) -> "WorkloadDescriptor":
        """A copy with ``factor`` times the work (e.g. a larger input image)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            total_instructions=self.total_instructions * factor,
            memory=replace(
                self.memory, working_set_bytes=self.memory.working_set_bytes * factor
            ),
            input_label=self.input_label if input_label is None else input_label,
        )

    def with_parallel(self, parallel: ParallelBehaviour) -> "WorkloadDescriptor":
        """A copy with different parallel behaviour (for ablations)."""
        return replace(self, parallel=parallel)

    def with_memory(self, memory: MemoryBehaviour) -> "WorkloadDescriptor":
        """A copy with different memory behaviour (for ablations)."""
        return replace(self, memory=memory)
