"""Workload descriptors and the Table 1 kernel suite.

The many-core simulator consumes :class:`WorkloadDescriptor` objects; this
package produces them, either by characterising a kernel analytically
(:mod:`repro.workloads.characterize`) or via the pre-packaged suite with the
paper's input-size classes (:mod:`repro.workloads.suite`).
"""

from repro.workloads.characterize import (
    characterize_kernel,
    descriptor_from_counts,
)
from repro.workloads.descriptor import (
    MemoryBehaviour,
    ParallelBehaviour,
    WorkloadDescriptor,
)
from repro.workloads.suite import (
    INPUT_CLASSES,
    KernelWorkloadFamily,
    SuiteEntry,
    default_workloads,
    kernel_suite,
    largest_workloads,
)

__all__ = [
    "INPUT_CLASSES",
    "KernelWorkloadFamily",
    "MemoryBehaviour",
    "ParallelBehaviour",
    "SuiteEntry",
    "WorkloadDescriptor",
    "characterize_kernel",
    "default_workloads",
    "descriptor_from_counts",
    "kernel_suite",
    "largest_workloads",
]
