"""Turn a kernel's analytic cost model into a workload descriptor.

The paper drives its simulator with compiled OpenMP binaries; this
repository replaces that step with characterisation: each kernel reports the
scalar operations, memory footprint and parallel structure of a given input
size (:class:`~repro.kernels.base.ImageKernel`), and this module assembles
those numbers into the :class:`~repro.workloads.descriptor.WorkloadDescriptor`
the execution engine consumes.
"""

from __future__ import annotations

from repro.kernels.base import ImageKernel, OperationCounts
from repro.workloads.descriptor import (
    MemoryBehaviour,
    ParallelBehaviour,
    WorkloadDescriptor,
)


def descriptor_from_counts(
    name: str,
    counts: OperationCounts,
    memory: MemoryBehaviour,
    parallel: ParallelBehaviour,
    input_label: str = "",
) -> WorkloadDescriptor:
    """Build a descriptor directly from operation counts and behaviours."""
    if counts.total <= 0:
        raise ValueError("operation counts must describe at least one instruction")
    return WorkloadDescriptor(
        name=name,
        total_instructions=counts.total,
        instruction_mix=counts.instruction_mix(),
        memory=memory,
        parallel=parallel,
        input_label=input_label,
    )


def characterize_kernel(
    kernel: ImageKernel,
    shape: tuple[int, int],
    input_label: str = "",
    bytes_per_l2_miss: float | None = None,
    sync_instructions_per_core: float = 150_000.0,
) -> WorkloadDescriptor:
    """Characterise one kernel at one input size.

    The memory behaviour comes from the kernel's streaming hints; the
    parallel behaviour from its structural hints (Amdahl fraction, useful
    parallelism bound, imbalance).
    """
    counts = kernel.operation_counts(shape)
    memory = MemoryBehaviour(
        working_set_bytes=kernel.working_set_bytes(shape),
        l1_miss_rate=kernel.streaming_intensity(),
        l2_miss_rate=kernel.l2_miss_rate(),
        bytes_per_l2_miss=(
            kernel.bytes_per_l2_miss() if bytes_per_l2_miss is None else bytes_per_l2_miss
        ),
        coherence_miss_fraction=kernel.coherence_miss_fraction(),
    )
    parallel = ParallelBehaviour(
        parallel_fraction=kernel.parallel_fraction(),
        max_parallelism=kernel.max_parallelism(shape),
        imbalance=kernel.load_imbalance(),
        sync_instructions_per_core=sync_instructions_per_core,
    )
    return descriptor_from_counts(
        name=kernel.name,
        counts=counts,
        memory=memory,
        parallel=parallel,
        input_label=input_label,
    )
