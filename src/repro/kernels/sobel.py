"""Sobel edge detection (Table 1: "Edge detection filter").

The real implementation convolves the image with the two 3x3 Sobel kernels
and produces the gradient magnitude.  The analytic model counts the scalar
work of the naive OpenMP loop nest the paper's version parallelises: for
every interior pixel, two 3x3 stencils (shared loads), a magnitude, and a
threshold test.

Sobel is embarrassingly parallel (rows are independent), streams the image
once, and is the kernel the paper uses for the input-size sweep of
Figure 8.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ImageKernel, KernelOutput, OperationCounts


class SobelKernel(ImageKernel):
    """3x3 Sobel gradient-magnitude edge detector."""

    name = "sobel"

    #: Ratio of dynamic instructions in the paper's scalar in-order binary to
    #: the idealised per-pixel operation count (loop/index/addressing
    #: overhead of the SD-VBS-style C code; see DESIGN.md calibration note).
    scalar_overhead = 25.0

    def __init__(self, threshold: float | None = None) -> None:
        if threshold is not None and not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold

    # -- real execution ------------------------------------------------------------

    def run(self, image: np.ndarray) -> KernelOutput:
        """Compute the Sobel gradient magnitude (and edge mask if thresholding)."""
        gray = self._as_grayscale(image)
        if gray.shape[0] < 3 or gray.shape[1] < 3:
            raise ValueError("image must be at least 3x3 for a Sobel stencil")
        gx = self._convolve3x3(gray, np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]]))
        gy = self._convolve3x3(gray, np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]]))
        magnitude = np.sqrt(gx**2 + gy**2)
        peak = float(magnitude.max())
        if peak > 0:
            magnitude = magnitude / peak
        extras = None
        if self.threshold is not None:
            extras = {"edges": magnitude >= self.threshold}
        return KernelOutput(name=self.name, data=magnitude.astype(np.float32), extras=extras)

    @staticmethod
    def _convolve3x3(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        rows, cols = image.shape
        out = np.zeros_like(image, dtype=np.float32)
        acc = np.zeros((rows - 2, cols - 2), dtype=np.float32)
        for dy in range(3):
            for dx in range(3):
                weight = float(kernel[dy, dx])
                if weight == 0.0:
                    continue
                acc += weight * image[dy : dy + rows - 2, dx : dx + cols - 2]
        out[1:-1, 1:-1] = acc
        return out

    # -- analytic model --------------------------------------------------------------

    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        rows, cols = self._validate_shape(shape)
        pixels = rows * cols
        # Per interior pixel: 9 pixel loads shared by both stencils, 12
        # multiply-accumulates (the non-zero taps of both kernels), the
        # magnitude (2 squares, 1 add, 1 sqrt), normalisation and a compare.
        per_pixel = OperationCounts(
            int_alu=14.0,
            int_mul=2.0,
            fp=10.0,
            load=10.0,
            store=1.0,
            branch=3.0,
        )
        return per_pixel.scaled(pixels * self.scalar_overhead)

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        rows, cols = self._validate_shape(shape)
        # Input image plus the gradient output, single precision.
        return float(rows * cols * 4 * 2)

    def parallel_fraction(self) -> float:
        return 0.995

    def load_imbalance(self) -> float:
        return 1.02

    def streaming_intensity(self) -> float:
        # Streaming stencil: roughly one compulsory miss per line of new data.
        return 0.02

    def l2_miss_rate(self) -> float:
        return 0.85
