"""Vision and image-analysis kernels of Table 1.

The paper evaluates sprinting on six parallel kernels "inspired by
camera-based search": sobel edge detection, SURF feature extraction,
k-means clustering, stereo disparity, texture/image composition, and image
segmentation/classification.  The originals are OpenMP programs from
SD-VBS and MEVBench; here each kernel is

* a **real numpy implementation** that runs on synthetic images (used by the
  examples and to validate the analytic characterisation), and
* an **analytic operation-count model** (:class:`OperationCounts`) describing
  the work a scalar in-order core would perform, which the workload
  characteriser converts into the descriptors consumed by the many-core
  simulator.
"""

from repro.kernels.base import (
    ImageKernel,
    KernelOutput,
    OperationCounts,
)
from repro.kernels.disparity import DisparityKernel
from repro.kernels.feature import FeatureExtractionKernel
from repro.kernels.images import (
    synthetic_image,
    synthetic_stereo_pair,
)
from repro.kernels.kmeans import KMeansKernel
from repro.kernels.segment import SegmentKernel
from repro.kernels.sobel import SobelKernel
from repro.kernels.texture import TextureKernel

#: All Table 1 kernels keyed by their paper name.
ALL_KERNELS = {
    "sobel": SobelKernel,
    "feature": FeatureExtractionKernel,
    "kmeans": KMeansKernel,
    "disparity": DisparityKernel,
    "texture": TextureKernel,
    "segment": SegmentKernel,
}

__all__ = [
    "ALL_KERNELS",
    "DisparityKernel",
    "FeatureExtractionKernel",
    "ImageKernel",
    "KMeansKernel",
    "KernelOutput",
    "OperationCounts",
    "SegmentKernel",
    "SobelKernel",
    "TextureKernel",
    "synthetic_image",
    "synthetic_stereo_pair",
]
