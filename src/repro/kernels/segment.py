"""Image segmentation and feature classification (Table 1: "segment").

A region-based segmenter in the spirit of SD-VBS's image segmentation:
quantise pixels into intensity bands, extract connected regions with a
two-pass union-find labelling, compute per-region features (area, mean
intensity, bounding box, edge density) and classify regions into a small
set of categories.

The labelling pass has limited parallelism (merging labels across tile
boundaries is serial work), which is why segment tops out around 6-7x on 16
cores in the paper (Figure 7) and stops scaling beyond that (Figure 10).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ImageKernel, KernelOutput, OperationCounts


class _UnionFind:
    """Union-find over region labels for the second labelling pass."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[index] != root:
            self.parent[index], index = root, self.parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


class SegmentKernel(ImageKernel):
    """Band-quantised connected-component segmentation with region classification."""

    name = "segment"

    scalar_overhead = 10.0

    def __init__(self, bands: int = 8, min_region_pixels: int = 16) -> None:
        if bands < 2:
            raise ValueError("at least two intensity bands are required")
        if min_region_pixels < 1:
            raise ValueError("minimum region size must be positive")
        self.bands = bands
        self.min_region_pixels = min_region_pixels

    # -- real execution ------------------------------------------------------------

    def run(self, image: np.ndarray) -> KernelOutput:
        """Segment the image; returns the label map and per-region classes."""
        gray = self._as_grayscale(image)
        quantised = np.minimum(
            (gray * self.bands).astype(np.int64), self.bands - 1
        )
        labels = self._connected_components(quantised)
        regions = self._region_features(gray, labels)
        classes = {
            label: self._classify(features) for label, features in regions.items()
        }
        return KernelOutput(
            name=self.name,
            data=labels,
            extras={"regions": regions, "classes": classes},
        )

    def _connected_components(self, quantised: np.ndarray) -> np.ndarray:
        rows, cols = quantised.shape
        labels = np.zeros((rows, cols), dtype=np.int64)
        next_label = 1
        uf = _UnionFind(rows * cols // 2 + 2)
        for r in range(rows):
            for c in range(cols):
                band = quantised[r, c]
                up = labels[r - 1, c] if r > 0 and quantised[r - 1, c] == band else 0
                left = labels[r, c - 1] if c > 0 and quantised[r, c - 1] == band else 0
                if up == 0 and left == 0:
                    labels[r, c] = next_label
                    next_label += 1
                    if next_label >= len(uf.parent):
                        uf.parent.extend(range(len(uf.parent), next_label + 1))
                elif up and left:
                    labels[r, c] = min(up, left)
                    uf.union(up, left)
                else:
                    labels[r, c] = max(up, left)
        # Second pass: resolve equivalences to canonical labels.
        flat = labels.ravel()
        resolved = np.array([uf.find(int(v)) if v else 0 for v in flat], dtype=np.int64)
        return resolved.reshape(rows, cols)

    def _region_features(
        self, gray: np.ndarray, labels: np.ndarray
    ) -> dict[int, dict[str, float]]:
        regions: dict[int, dict[str, float]] = {}
        unique, counts = np.unique(labels, return_counts=True)
        gy, gx = np.gradient(gray)
        edges = np.hypot(gx, gy)
        for label, count in zip(unique, counts):
            if label == 0 or count < self.min_region_pixels:
                continue
            mask = labels == label
            regions[int(label)] = {
                "area": float(count),
                "mean_intensity": float(gray[mask].mean()),
                "edge_density": float(edges[mask].mean()),
                "extent": float(mask.any(axis=1).sum() * mask.any(axis=0).sum()),
            }
        return regions

    @staticmethod
    def _classify(features: dict[str, float]) -> str:
        if features["edge_density"] > 0.08:
            return "textured"
        if features["mean_intensity"] > 0.6:
            return "bright"
        if features["area"] > 4096:
            return "background"
        return "object"

    # -- analytic model --------------------------------------------------------------

    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        rows, cols = self._validate_shape(shape)
        pixels = rows * cols
        # Quantisation, the two labelling passes (neighbour loads, compares,
        # occasional union-find work), gradient/edge density, and the region
        # feature accumulation.
        per_pixel = OperationCounts(
            int_alu=30.0,
            int_mul=2.0,
            fp=12.0,
            load=22.0,
            store=8.0,
            branch=16.0,
        )
        return per_pixel.scaled(pixels * self.scalar_overhead)

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        rows, cols = self._validate_shape(shape)
        # Image, quantised bands, label map and the equivalence table.
        return float(rows * cols * (4 + 8 + 8))

    def parallel_fraction(self) -> float:
        # Boundary merging and the equivalence resolution are serial.
        return 0.92

    def max_parallelism(self, shape: tuple[int, int]) -> int:
        rows, _ = self._validate_shape(shape)
        return max(1, min(rows // 16, 32))

    def load_imbalance(self) -> float:
        return 1.15

    def coherence_miss_fraction(self) -> float:
        # Tile-boundary labels are genuinely shared between workers.
        return 0.08

    def streaming_intensity(self) -> float:
        return 0.045

    def l2_miss_rate(self) -> float:
        return 0.55
