"""Shared kernel abstractions: outputs and scalar operation counts.

The characterisation pipeline needs to know, for a given input size, how
many instructions of each class a scalar in-order core would execute.  Each
kernel provides that analytically via :meth:`ImageKernel.operation_counts`;
the numbers are derived from the arithmetic the numpy implementation
actually performs (so the two views stay consistent), expressed per pixel
or per element.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields

import numpy as np

from repro.energy.instruction import InstructionMix


@dataclass(frozen=True)
class OperationCounts:
    """Scalar operation counts of one kernel invocation."""

    int_alu: float = 0.0
    int_mul: float = 0.0
    fp: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0

    def __post_init__(self) -> None:
        for item in fields(self):
            if getattr(self, item.name) < 0:
                raise ValueError(f"{item.name} must be non-negative")

    @property
    def total(self) -> float:
        """Total dynamic instruction count."""
        return self.int_alu + self.int_mul + self.fp + self.load + self.store + self.branch

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            int_alu=self.int_alu + other.int_alu,
            int_mul=self.int_mul + other.int_mul,
            fp=self.fp + other.fp,
            load=self.load + other.load,
            store=self.store + other.store,
            branch=self.branch + other.branch,
        )

    def scaled(self, factor: float) -> "OperationCounts":
        """Counts multiplied by a constant factor."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return OperationCounts(
            int_alu=self.int_alu * factor,
            int_mul=self.int_mul * factor,
            fp=self.fp * factor,
            load=self.load * factor,
            store=self.store * factor,
            branch=self.branch * factor,
        )

    def instruction_mix(self) -> InstructionMix:
        """Normalise the counts into an :class:`InstructionMix`."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot build a mix from zero operations")
        return InstructionMix(
            int_alu=self.int_alu / total,
            int_mul=self.int_mul / total,
            fp=self.fp / total,
            load=self.load / total,
            store=self.store / total,
            branch=self.branch / total,
        )


@dataclass(frozen=True)
class KernelOutput:
    """Result of actually running a kernel on an input image."""

    name: str
    data: np.ndarray
    #: Auxiliary outputs (keypoints, labels, cluster centres, ...).
    extras: dict | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the primary output array."""
        return tuple(self.data.shape)


class ImageKernel(abc.ABC):
    """Base class for the Table 1 kernels.

    Subclasses implement the real computation (:meth:`run`) and the analytic
    cost model (:meth:`operation_counts`, :meth:`working_set_bytes`) plus the
    parallel-structure hints the characteriser needs
    (:meth:`parallel_fraction`, :meth:`max_parallelism`, ...).
    """

    #: Name used in Table 1 and throughout the evaluation.
    name: str = "kernel"

    # -- real execution -----------------------------------------------------------

    @abc.abstractmethod
    def run(self, image: np.ndarray) -> KernelOutput:
        """Execute the kernel on an image and return its output."""

    # -- analytic cost model --------------------------------------------------------

    @abc.abstractmethod
    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        """Scalar operations a single in-order core executes for this input."""

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        """Bytes of data the kernel touches repeatedly (default: the image)."""
        rows, cols = self._validate_shape(shape)
        return float(rows * cols * 4)

    # -- parallel structure ----------------------------------------------------------

    def parallel_fraction(self) -> float:
        """Amdahl parallel fraction of the kernel (most are embarrassingly parallel)."""
        return 0.99

    def max_parallelism(self, shape: tuple[int, int]) -> int:
        """Upper bound on useful concurrency (rows, tiles, clusters, ...)."""
        rows, _ = self._validate_shape(shape)
        return rows

    def load_imbalance(self) -> float:
        """Ratio of slowest to average worker in the parallel phase."""
        return 1.05

    def coherence_miss_fraction(self) -> float:
        """Fraction of L1 misses caused by sharing between workers."""
        return 0.02

    def streaming_intensity(self) -> float:
        """Intrinsic L1 miss rate per memory instruction (streaming kernels are higher)."""
        return 0.03

    def l2_miss_rate(self) -> float:
        """Intrinsic L2 miss rate conditional on an L1 miss."""
        return 0.3

    def bytes_per_l2_miss(self) -> float:
        """DRAM traffic per L2 miss (one line, more for streaming write-allocate)."""
        return 64.0

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _validate_shape(shape: tuple[int, int]) -> tuple[int, int]:
        if len(shape) != 2:
            raise ValueError(f"expected a 2-D shape, got {shape}")
        rows, cols = int(shape[0]), int(shape[1])
        if rows <= 0 or cols <= 0:
            raise ValueError(f"image dimensions must be positive, got {shape}")
        return rows, cols

    @staticmethod
    def _as_grayscale(image: np.ndarray) -> np.ndarray:
        """Coerce an input image to 2-D float32 grayscale."""
        if image.ndim == 3:
            image = image.mean(axis=2)
        if image.ndim != 2:
            raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")
        return np.asarray(image, dtype=np.float32)
