"""Stereo disparity estimation (Table 1: "disparity", adapted from SD-VBS).

Block-matching stereo: for every pixel of the left image, find the
horizontal shift of the right image that minimises the sum of squared
differences over a small window.  The cost volume sweeps both images once
per candidate disparity, so the kernel touches far more data than fits in
the caches — the paper finds disparity (together with feature) limited by
memory bandwidth at high core counts and lifted to 12x at 64 cores when the
per-channel bandwidth is doubled (Section 8.5).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ImageKernel, KernelOutput, OperationCounts


class DisparityKernel(ImageKernel):
    """Window-based SSD block matching over a fixed disparity range."""

    name = "disparity"

    scalar_overhead = 8.0

    def __init__(self, max_disparity: int = 16, window: int = 5) -> None:
        if max_disparity < 1:
            raise ValueError("max disparity must be at least 1")
        if window < 1 or window % 2 == 0:
            raise ValueError("window must be a positive odd integer")
        self.max_disparity = max_disparity
        self.window = window

    # -- real execution ------------------------------------------------------------

    def run(self, image: np.ndarray) -> KernelOutput:
        """Match a stacked stereo pair; ``image`` is (rows, 2*cols) [left|right]."""
        gray = self._as_grayscale(image)
        rows, double_cols = gray.shape
        if double_cols % 2 != 0:
            raise ValueError("stacked stereo input must have an even number of columns")
        cols = double_cols // 2
        left = gray[:, :cols]
        right = gray[:, cols:]
        return self.run_pair(left, right)

    def run_pair(self, left: np.ndarray, right: np.ndarray) -> KernelOutput:
        """Match an explicit left/right pair and return the disparity map."""
        left = self._as_grayscale(left)
        right = self._as_grayscale(right)
        if left.shape != right.shape:
            raise ValueError("left and right images must have the same shape")
        rows, cols = left.shape
        best_cost = np.full((rows, cols), np.inf, dtype=np.float32)
        best_disparity = np.zeros((rows, cols), dtype=np.int64)
        half = self.window // 2
        kernel_area = self.window * self.window

        for disparity in range(self.max_disparity):
            shifted = np.roll(right, disparity, axis=1)
            diff = (left - shifted) ** 2
            cost = self._box_filter(diff, half) / kernel_area
            if disparity > 0:
                cost[:, :disparity] = np.inf
            better = cost < best_cost
            best_cost = np.where(better, cost, best_cost)
            best_disparity = np.where(better, disparity, best_disparity)
        return KernelOutput(
            name=self.name,
            data=best_disparity,
            extras={"cost": best_cost},
        )

    @staticmethod
    def _box_filter(values: np.ndarray, half: int) -> np.ndarray:
        """Sliding-window sum using a padded integral image."""
        padded = np.pad(values, half, mode="edge")
        integral = np.cumsum(np.cumsum(padded, axis=0), axis=1)
        integral = np.pad(integral, ((1, 0), (1, 0)))
        size = 2 * half + 1
        rows, cols = values.shape
        a = integral[size : size + rows, size : size + cols]
        b = integral[:rows, size : size + cols]
        c = integral[size : size + rows, :cols]
        d = integral[:rows, :cols]
        return (a - b - c + d).astype(np.float32)

    # -- analytic model --------------------------------------------------------------

    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        rows, cols = self._validate_shape(shape)
        pixels = rows * cols
        # Per pixel per candidate disparity: squared difference, incremental
        # window sum (integral-image style: a handful of adds/loads), compare
        # and conditional update of the best cost and label.
        per_disparity = OperationCounts(
            fp=8.0, load=7.0, store=2.0, int_alu=6.0, int_mul=1.0, branch=2.0
        )
        per_pixel = per_disparity.scaled(self.max_disparity)
        return per_pixel.scaled(pixels * self.scalar_overhead)

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        rows, cols = self._validate_shape(shape)
        # Both images plus cost and disparity maps, re-swept once per
        # candidate disparity.
        return float(rows * cols * 4 * 4)

    def parallel_fraction(self) -> float:
        return 0.99

    def load_imbalance(self) -> float:
        return 1.05

    def streaming_intensity(self) -> float:
        # Re-streaming both images per disparity evicts the L1 constantly.
        return 0.07

    def l2_miss_rate(self) -> float:
        return 0.6

    def bytes_per_l2_miss(self) -> float:
        # The cost volume is write-allocated and streamed back out.
        return 96.0

    def coherence_miss_fraction(self) -> float:
        return 0.02
