"""SURF-style feature extraction (Table 1: "feature", from MEVBench).

This is the kernel that motivates the paper's camera-based-search scenario:
extract robust local features from a high-resolution photo so only a
compact descriptor vector needs to be transmitted.  The implementation
follows the SURF recipe at reduced fidelity:

1. integral image,
2. box-filter approximations of the Hessian determinant at several scales,
3. non-maximum suppression to pick keypoints,
4. a small orientation-binned gradient descriptor per keypoint.

The analytic cost model mirrors those stages.  Feature extraction is
memory-bandwidth hungry (it sweeps the full-resolution image repeatedly at
multiple scales), which is why the paper finds it bandwidth-limited at high
core counts (Section 8.5).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ImageKernel, KernelOutput, OperationCounts


class FeatureExtractionKernel(ImageKernel):
    """Box-filter Hessian keypoint detector with small patch descriptors."""

    name = "feature"

    scalar_overhead = 10.0

    def __init__(
        self,
        scales: tuple[int, ...] = (3, 5, 7, 9),
        max_keypoints: int = 256,
        descriptor_bins: int = 16,
    ) -> None:
        if not scales or any(s < 3 or s % 2 == 0 for s in scales):
            raise ValueError("scales must be odd integers of at least 3")
        if max_keypoints < 1:
            raise ValueError("max keypoints must be positive")
        if descriptor_bins < 1:
            raise ValueError("descriptor bins must be positive")
        self.scales = tuple(scales)
        self.max_keypoints = max_keypoints
        self.descriptor_bins = descriptor_bins

    # -- real execution ------------------------------------------------------------

    def run(self, image: np.ndarray) -> KernelOutput:
        """Detect keypoints and compute descriptors; returns the response map."""
        gray = self._as_grayscale(image)
        integral = self._integral_image(gray)
        best_response = np.zeros_like(gray, dtype=np.float32)
        for scale in self.scales:
            if scale + 2 >= min(gray.shape):
                continue
            response = self._hessian_response(integral, scale)
            best_response = np.maximum(best_response, response)
        keypoints = self._select_keypoints(best_response)
        descriptors = self._descriptors(gray, keypoints)
        return KernelOutput(
            name=self.name,
            data=best_response,
            extras={"keypoints": keypoints, "descriptors": descriptors},
        )

    @staticmethod
    def _integral_image(image: np.ndarray) -> np.ndarray:
        return np.cumsum(np.cumsum(image.astype(np.float64), axis=0), axis=1)

    @staticmethod
    def _box_sum(integral: np.ndarray, half: int) -> np.ndarray:
        """Sum of each (2*half+1)^2 box, for interior pixels (zero elsewhere)."""
        rows, cols = integral.shape
        out = np.zeros((rows, cols), dtype=np.float64)
        size = 2 * half + 1
        if rows <= size or cols <= size:
            return out
        padded = np.zeros((rows + 1, cols + 1), dtype=np.float64)
        padded[1:, 1:] = integral
        a = padded[size:, size:]
        b = padded[:-size, size:]
        c = padded[size:, :-size]
        d = padded[:-size, :-size]
        sums = a - b - c + d
        out[half : half + sums.shape[0], half : half + sums.shape[1]] = sums
        return out

    def _hessian_response(self, integral: np.ndarray, scale: int) -> np.ndarray:
        half = scale // 2
        quarter = max(1, half // 2)
        full = self._box_sum(integral, half)
        inner = self._box_sum(integral, quarter)
        # Difference-of-boxes approximates the Laplacian/Hessian response.
        area_full = (2 * half + 1) ** 2
        area_inner = (2 * quarter + 1) ** 2
        response = np.abs(inner / area_inner - full / area_full).astype(np.float32)
        # Only keep pixels where both boxes fit entirely inside the image;
        # nearer the border the two sums cover different areas and the
        # difference is a boundary artefact, not image structure.
        border = half + 1
        mask = np.zeros_like(response)
        if response.shape[0] > 2 * border and response.shape[1] > 2 * border:
            mask[border:-border, border:-border] = 1.0
        return response * mask

    def _select_keypoints(self, response: np.ndarray) -> np.ndarray:
        flat = response.ravel()
        count = min(self.max_keypoints, flat.size)
        if count == 0:
            return np.empty((0, 2), dtype=np.int64)
        indices = np.argpartition(flat, -count)[-count:]
        rows, cols = np.unravel_index(indices, response.shape)
        order = np.argsort(-flat[indices])
        return np.stack([rows[order], cols[order]], axis=1)

    def _descriptors(self, gray: np.ndarray, keypoints: np.ndarray) -> np.ndarray:
        if keypoints.size == 0:
            return np.empty((0, self.descriptor_bins), dtype=np.float32)
        gy, gx = np.gradient(gray)
        angles = np.arctan2(gy, gx)
        magnitude = np.hypot(gx, gy)
        bins = (
            (angles + np.pi) / (2 * np.pi + 1e-9) * self.descriptor_bins
        ).astype(np.int64)
        bins = np.clip(bins, 0, self.descriptor_bins - 1)
        descriptors = np.zeros((len(keypoints), self.descriptor_bins), dtype=np.float32)
        half = 4
        rows, cols = gray.shape
        for index, (r, c) in enumerate(keypoints):
            r0, r1 = max(0, r - half), min(rows, r + half + 1)
            c0, c1 = max(0, c - half), min(cols, c + half + 1)
            patch_bins = bins[r0:r1, c0:c1].ravel()
            patch_mag = magnitude[r0:r1, c0:c1].ravel()
            descriptors[index] = np.bincount(
                patch_bins, weights=patch_mag, minlength=self.descriptor_bins
            )
            norm = float(np.linalg.norm(descriptors[index]))
            if norm > 0:
                descriptors[index] /= norm
        return descriptors

    # -- analytic model --------------------------------------------------------------

    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        rows, cols = self._validate_shape(shape)
        pixels = rows * cols
        n_scales = len(self.scales)
        # Integral image: 2 adds + 2 loads + 1 store per pixel (two passes).
        integral = OperationCounts(fp=4.0, load=4.0, store=2.0, int_alu=4.0, branch=1.0)
        # Per scale: two box sums (4 loads + 3 adds each), normalisation and max.
        per_scale = OperationCounts(
            fp=12.0, load=10.0, store=2.0, int_alu=10.0, int_mul=2.0, branch=2.0
        )
        # Gradient + orientation for the descriptor pass over the whole image.
        gradient = OperationCounts(fp=10.0, load=6.0, store=3.0, int_alu=6.0, branch=1.0)
        per_pixel = integral + per_scale.scaled(n_scales) + gradient
        # Per keypoint: a 9x9 descriptor accumulation plus normalisation.
        per_keypoint = OperationCounts(
            fp=81 * 3.0, load=81 * 2.0, store=81.0, int_alu=81 * 2.0, branch=81.0
        )
        total = per_pixel.scaled(pixels) + per_keypoint.scaled(self.max_keypoints)
        return total.scaled(self.scalar_overhead)

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        rows, cols = self._validate_shape(shape)
        # Image + integral image (double) + response map: streamed repeatedly.
        return float(rows * cols * (4 + 8 + 4))

    def parallel_fraction(self) -> float:
        return 0.985

    def load_imbalance(self) -> float:
        return 1.08

    def streaming_intensity(self) -> float:
        # Multi-scale sweeps over a footprint far larger than the L1.
        return 0.085

    def l2_miss_rate(self) -> float:
        return 0.8

    def bytes_per_l2_miss(self) -> float:
        # The integral image is double precision and written back as it is built.
        return 80.0

    def coherence_miss_fraction(self) -> float:
        return 0.03
