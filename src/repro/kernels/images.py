"""Synthetic image generation for the kernel suite.

The paper's kernels run on camera images; no image corpus ships with this
repository, so the examples, tests and characterisation runs use synthetic
scenes: a smooth illumination gradient, a set of rectangles and discs with
distinct intensities (structure for edges, features and segmentation), and
optional Gaussian noise.  Stereo pairs are produced by shifting the scene
content horizontally by a known, depth-dependent disparity so the disparity
kernel has ground truth to recover.
"""

from __future__ import annotations

import numpy as np


def _shapes(rng: np.random.Generator, rows: int, cols: int, count: int) -> np.ndarray:
    """A layer of random rectangles and discs with distinct intensities."""
    layer = np.zeros((rows, cols), dtype=np.float32)
    yy, xx = np.mgrid[0:rows, 0:cols]
    for _ in range(count):
        intensity = float(rng.uniform(0.2, 1.0))
        if rng.uniform() < 0.5:
            r0 = int(rng.integers(0, max(1, rows - 2)))
            c0 = int(rng.integers(0, max(1, cols - 2)))
            height = int(rng.integers(rows // 8 + 1, rows // 3 + 2))
            width = int(rng.integers(cols // 8 + 1, cols // 3 + 2))
            layer[r0 : min(rows, r0 + height), c0 : min(cols, c0 + width)] = intensity
        else:
            cy = float(rng.uniform(0, rows))
            cx = float(rng.uniform(0, cols))
            radius = float(rng.uniform(min(rows, cols) / 10 + 1, min(rows, cols) / 4 + 2))
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
            layer[mask] = intensity
    return layer


def synthetic_image(
    rows: int,
    cols: int,
    n_shapes: int = 12,
    noise: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """A grayscale scene with gradient illumination, shapes and noise.

    Values lie in ``[0, 1]`` and the dtype is float32, matching what the
    kernels expect.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("image dimensions must be positive")
    if n_shapes < 0:
        raise ValueError("shape count must be non-negative")
    if noise < 0:
        raise ValueError("noise level must be non-negative")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:rows, 0:cols]
    gradient = 0.25 + 0.5 * (xx / max(cols - 1, 1)) * (yy / max(rows - 1, 1))
    scene = gradient.astype(np.float32)
    scene = np.maximum(scene, _shapes(rng, rows, cols, n_shapes))
    if noise > 0:
        scene = scene + rng.normal(0.0, noise, size=scene.shape).astype(np.float32)
    return np.clip(scene, 0.0, 1.0).astype(np.float32)


def synthetic_stereo_pair(
    rows: int,
    cols: int,
    max_disparity: int = 16,
    n_shapes: int = 10,
    noise: float = 0.01,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A left/right stereo pair plus the ground-truth disparity map.

    The scene is split into horizontal depth bands; content in nearer bands
    is shifted further between the two views.  Returns ``(left, right,
    true_disparity)``.
    """
    if max_disparity < 1:
        raise ValueError("max disparity must be at least 1")
    left = synthetic_image(rows, cols, n_shapes=n_shapes, noise=0.0, seed=seed)
    disparity = np.zeros((rows, cols), dtype=np.int64)
    bands = 4
    for band in range(bands):
        r0 = band * rows // bands
        r1 = (band + 1) * rows // bands
        disparity[r0:r1, :] = int(round(max_disparity * (band + 1) / bands)) - 1
    disparity = np.clip(disparity, 0, max_disparity - 1)

    right = np.empty_like(left)
    for row in range(rows):
        shift = int(disparity[row, 0])
        right[row, :] = np.roll(left[row, :], -shift)
    if noise > 0:
        rng = np.random.default_rng(seed + 1)
        left = np.clip(left + rng.normal(0, noise, left.shape), 0, 1).astype(np.float32)
        right = np.clip(right + rng.normal(0, noise, right.shape), 0, 1).astype(
            np.float32
        )
    return left, right, disparity


def megapixels(shape: tuple[int, int]) -> float:
    """Image size in megapixels (the x-axis of Figure 8)."""
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ValueError("image dimensions must be positive")
    return rows * cols / 1e6


def shape_for_megapixels(mp: float, aspect: float = 4 / 3) -> tuple[int, int]:
    """Image dimensions for a target megapixel count and aspect ratio."""
    if mp <= 0:
        raise ValueError("megapixel count must be positive")
    if aspect <= 0:
        raise ValueError("aspect ratio must be positive")
    pixels = mp * 1e6
    cols = int(round((pixels * aspect) ** 0.5))
    rows = int(round(pixels / cols))
    return max(1, rows), max(1, cols)
