"""K-means clustering (Table 1: "Partition based clustering").

Clusters pixels by a small feature vector (intensity, local gradient and
normalised position) using Lloyd's algorithm with a fixed iteration count.
K-means is compute-dense (distance evaluations dominate), has a small
working set per worker, and parallelises essentially perfectly across
pixels — which is why the paper finds it keeps scaling all the way to 64
cores (Figure 10).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ImageKernel, KernelOutput, OperationCounts


class KMeansKernel(ImageKernel):
    """Lloyd's k-means over per-pixel feature vectors."""

    name = "kmeans"

    scalar_overhead = 4.0

    def __init__(self, clusters: int = 16, iterations: int = 10, seed: int = 0) -> None:
        if clusters < 2:
            raise ValueError("at least two clusters are required")
        if iterations < 1:
            raise ValueError("iteration count must be positive")
        self.clusters = clusters
        self.iterations = iterations
        self.seed = seed

    #: Features per pixel: intensity, |gradient|, row, column, intensity^2.
    features_per_pixel = 5

    # -- real execution ------------------------------------------------------------

    def run(self, image: np.ndarray) -> KernelOutput:
        """Cluster the pixels; returns the label map and cluster centres."""
        gray = self._as_grayscale(image)
        features = self._features(gray)
        rng = np.random.default_rng(self.seed)
        indices = rng.choice(features.shape[0], size=self.clusters, replace=False)
        centres = features[indices].copy()

        labels = np.zeros(features.shape[0], dtype=np.int64)
        for _ in range(self.iterations):
            distances = ((features[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
            labels = np.argmin(distances, axis=1)
            for k in range(self.clusters):
                members = features[labels == k]
                if len(members) > 0:
                    centres[k] = members.mean(axis=0)
        label_map = labels.reshape(gray.shape)
        inertia = float(
            ((features - centres[labels]) ** 2).sum()
        )
        return KernelOutput(
            name=self.name,
            data=label_map,
            extras={"centres": centres, "inertia": inertia},
        )

    def _features(self, gray: np.ndarray) -> np.ndarray:
        rows, cols = gray.shape
        gy, gx = np.gradient(gray)
        magnitude = np.hypot(gx, gy)
        yy, xx = np.mgrid[0:rows, 0:cols]
        features = np.stack(
            [
                gray,
                magnitude,
                yy / max(rows - 1, 1),
                xx / max(cols - 1, 1),
                gray**2,
            ],
            axis=2,
        ).astype(np.float32)
        return features.reshape(-1, self.features_per_pixel)

    # -- analytic model --------------------------------------------------------------

    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        rows, cols = self._validate_shape(shape)
        pixels = rows * cols
        dims = self.features_per_pixel
        # Per pixel per iteration per cluster: dims subtract/multiply/add plus
        # a compare; the centre update adds dims accumulations per pixel.
        assign = OperationCounts(
            fp=3.0 * dims * self.clusters,
            load=1.0 * dims * self.clusters,
            int_alu=2.0 * self.clusters,
            branch=1.0 * self.clusters,
            store=1.0,
        )
        update = OperationCounts(fp=dims, load=dims, store=0.2 * dims, int_alu=2.0, branch=1.0)
        feature_build = OperationCounts(fp=8.0, load=4.0, store=dims, int_alu=4.0, branch=1.0)
        per_pixel = (assign + update).scaled(self.iterations) + feature_build
        return per_pixel.scaled(pixels * self.scalar_overhead)

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        rows, cols = self._validate_shape(shape)
        # Feature matrix (float32 x dims) plus labels; centres are tiny.
        return float(rows * cols * (4 * self.features_per_pixel + 8))

    def parallel_fraction(self) -> float:
        # Only the centre reduction at the end of each iteration is serial.
        return 0.997

    def load_imbalance(self) -> float:
        return 1.03

    def streaming_intensity(self) -> float:
        return 0.018

    def l2_miss_rate(self) -> float:
        return 0.5
