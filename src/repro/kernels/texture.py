"""Texture / image composition (Table 1: "texture", adapted from SD-VBS).

Composites a multi-level Laplacian pyramid of the input with a synthetic
texture layer: build Gaussian and Laplacian pyramids, blend each level with
a smooth mask, and collapse the pyramid back into a full-resolution image
(the core of panoramic stitching and seamless composition workloads the
paper's introduction motivates).

Because pyramid levels shrink geometrically and the collapse is inherently
level-by-level, the useful parallelism is bounded — the paper finds texture
limited by available parallelism rather than bandwidth (Section 8.5).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import ImageKernel, KernelOutput, OperationCounts


class TextureKernel(ImageKernel):
    """Laplacian-pyramid blend of the image with a generated texture layer."""

    name = "texture"

    scalar_overhead = 15.0

    def __init__(self, levels: int = 4, seed: int = 0) -> None:
        if levels < 1:
            raise ValueError("pyramid must have at least one level")
        self.levels = levels
        self.seed = seed

    # -- real execution ------------------------------------------------------------

    def run(self, image: np.ndarray) -> KernelOutput:
        """Blend the image with a procedural texture using a Laplacian pyramid."""
        gray = self._as_grayscale(image)
        rng = np.random.default_rng(self.seed)
        texture = self._procedural_texture(gray.shape, rng)
        mask = self._blend_mask(gray.shape)

        pyramid_a = self._laplacian_pyramid(gray)
        pyramid_b = self._laplacian_pyramid(texture)
        mask_pyramid = self._gaussian_pyramid(mask, len(pyramid_a))

        blended = [
            m * a + (1.0 - m) * b
            for a, b, m in zip(pyramid_a, pyramid_b, mask_pyramid)
        ]
        result = self._collapse(blended)
        return KernelOutput(
            name=self.name,
            data=np.clip(result, 0.0, 1.0).astype(np.float32),
            extras={"levels": len(blended)},
        )

    @staticmethod
    def _procedural_texture(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        rows, cols = shape
        yy, xx = np.mgrid[0:rows, 0:cols]
        base = 0.5 + 0.25 * np.sin(xx / 7.0) * np.cos(yy / 11.0)
        noise = rng.normal(0.0, 0.05, size=shape)
        return np.clip(base + noise, 0.0, 1.0).astype(np.float32)

    @staticmethod
    def _blend_mask(shape: tuple[int, int]) -> np.ndarray:
        rows, cols = shape
        xx = np.linspace(0.0, 1.0, cols, dtype=np.float32)
        return np.tile(xx, (rows, 1))

    @staticmethod
    def _downsample(image: np.ndarray) -> np.ndarray:
        blurred = TextureKernel._blur(image)
        return blurred[::2, ::2]

    @staticmethod
    def _upsample(image: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
        rows, cols = shape
        upsampled = np.zeros(shape, dtype=np.float32)
        upsampled[: image.shape[0] * 2 : 2, : image.shape[1] * 2 : 2] = image
        upsampled = TextureKernel._blur(upsampled) * 4.0
        return upsampled[:rows, :cols]

    @staticmethod
    def _blur(image: np.ndarray) -> np.ndarray:
        kernel = np.array([0.25, 0.5, 0.25], dtype=np.float32)
        padded = np.pad(image, 1, mode="edge")
        horizontal = (
            kernel[0] * padded[1:-1, :-2]
            + kernel[1] * padded[1:-1, 1:-1]
            + kernel[2] * padded[1:-1, 2:]
        )
        padded = np.pad(horizontal, 1, mode="edge")
        return (
            kernel[0] * padded[:-2, 1:-1]
            + kernel[1] * padded[1:-1, 1:-1]
            + kernel[2] * padded[2:, 1:-1]
        ).astype(np.float32)

    def _gaussian_pyramid(self, image: np.ndarray, levels: int) -> list[np.ndarray]:
        pyramid = [image.astype(np.float32)]
        for _ in range(levels - 1):
            if min(pyramid[-1].shape) < 4:
                break
            pyramid.append(self._downsample(pyramid[-1]))
        while len(pyramid) < levels:
            pyramid.append(pyramid[-1])
        return pyramid

    def _laplacian_pyramid(self, image: np.ndarray) -> list[np.ndarray]:
        gaussian = self._gaussian_pyramid(image, self.levels)
        laplacian = []
        for level in range(len(gaussian) - 1):
            upsampled = self._upsample(gaussian[level + 1], gaussian[level].shape)
            laplacian.append(gaussian[level] - upsampled)
        laplacian.append(gaussian[-1])
        return laplacian

    def _collapse(self, pyramid: list[np.ndarray]) -> np.ndarray:
        result = pyramid[-1]
        for level in range(len(pyramid) - 2, -1, -1):
            result = pyramid[level] + self._upsample(result, pyramid[level].shape)
        return result

    # -- analytic model --------------------------------------------------------------

    def operation_counts(self, shape: tuple[int, int]) -> OperationCounts:
        rows, cols = self._validate_shape(shape)
        pixels = rows * cols
        # Pyramid work is a geometric series: sum over levels of (1/4)^level.
        series = sum(0.25**level for level in range(self.levels))
        # Per pixel per pyramid pass: separable 3-tap blur (6 MACs), the
        # difference/up-sample, and the blend.  Three pyramids are built and
        # one collapsed, so charge four sweeps.
        per_pixel = OperationCounts(
            fp=30.0, load=20.0, store=6.0, int_alu=16.0, int_mul=4.0, branch=4.0
        )
        return per_pixel.scaled(pixels * series * self.scalar_overhead)

    def working_set_bytes(self, shape: tuple[int, int]) -> float:
        rows, cols = self._validate_shape(shape)
        # Three pyramids (image, texture, mask) at ~4/3 of the base footprint.
        return float(rows * cols * 4 * 4)

    def parallel_fraction(self) -> float:
        # Level-by-level dependencies and the small upper levels serialise a
        # noticeable share of the work.
        return 0.95

    def max_parallelism(self, shape: tuple[int, int]) -> int:
        rows, _ = self._validate_shape(shape)
        # Rows of the coarsest pyramid level bound useful concurrency.
        return max(1, min(rows // (2 ** (self.levels - 1)), 24))

    def load_imbalance(self) -> float:
        return 1.12

    def streaming_intensity(self) -> float:
        return 0.04

    def l2_miss_rate(self) -> float:
        return 0.6
