"""Vectorized and batch-replayed execution: the engine's numpy fast path.

The exact engine (:mod:`repro.traffic.engine`) resolves one heap event per
request in pure Python.  This module is the ``engine="batched"`` execution
strategy: the same runs, bit-identical, at a fraction of the interpreter
work.  Two cores divide the envelope:

* **The lockstep vector core** (ungoverned immediate dispatch) — when the
  device assignment sequence is known up front (``round_robin`` is
  ``(cursor + i) mod n``; ``random`` is one block draw of ``rng.integers``,
  bit-identical to the scalar per-request draws), every device's request
  chain is independent, so all devices advance in lockstep *rounds*:
  round ``k`` executes the ``k``-th request of every device that has one,
  as ~30 vectorized ops over the active-device axis.  The linear-reservoir
  sprint decision (drain, headroom, full / partial / sustained, deposit)
  is elementwise ``max``/``where`` arithmetic whose float operations are
  exactly the scalar pacer's.
* **The batch-replay event core** (governed sprinting, central-queue FIFO)
  — event *interleaving* matters there, so the core keeps the exact
  loop's event semantics (same event kinds, same tie-break order, same
  float paths) but strips its interpreter overhead: arrivals merge from
  the sorted column stream instead of living in the heap, the FIFO queue
  is a deque of tokens, device execution is the linear-reservoir
  arithmetic inlined on plain floats, and request/outcome objects are
  only constructed when a caller actually keeps them.  Grant decisions go
  through the *real* governor object at the exact event timestamps, so
  ``GovernorStats`` ledgers replay exactly — for ``greedy``,
  ``cooperative_threshold``, and any cascade of them.

Streaming observers no longer disqualify the fast path: the telemetry
sketch is fed from per-chunk columnar buffers
(:meth:`~repro.traffic.telemetry.TrafficTelemetry.observe_batch`), the
timeline probe from per-window batch counters, and the (ring-bounded)
event trace from a scalar replay in processing order — all bit-identical
to the per-event callbacks.

Configurations still outside the envelope — EDF queue re-sorting,
token-bucket grant refill, state-dependent policies like
``least_loaded``, physics thermal backends — keep the exact event loop:
``batched`` execution falls back honestly rather than approximate.  The
:func:`unsupported_reason` predicate is the single source of truth for
that envelope, and ``ServingEngine.last_run_fast_path`` reports which
path a run actually took.

Requests are consumed as ``(times, demands, requests, deadline_at,
start_index)`` column blocks, so the streaming entry point
(``ServingEngine.run_blocks`` under ``keep_samples=False``) holds one
chunk in memory regardless of horizon.

Usage — :func:`unsupported_reason` names exactly what keeps a
configuration on the exact loop:

>>> from repro.core.config import SystemConfig
>>> from repro.traffic.device import SprintDevice
>>> from repro.traffic.engine import DISPATCH_POLICIES, ServingEngine
>>> from repro.traffic.fastpath import unsupported_reason
>>> devices = [
...     SprintDevice(SystemConfig.paper_default(), device_id=i) for i in range(2)
... ]
>>> unsupported_reason(
...     ServingEngine(devices, DISPATCH_POLICIES["round_robin"], "round_robin")
... ) is None
True
>>> unsupported_reason(
...     ServingEngine(devices, DISPATCH_POLICIES["least_loaded"], "least_loaded")
... )
"policy 'least_loaded' depends on per-request fleet state"
>>> unsupported_reason(
...     ServingEngine(
...         devices,
...         DISPATCH_POLICIES["round_robin"],
...         "round_robin",
...         mode="central_queue",
...         discipline="edf",
...     )
... )
"queue discipline 'edf' re-sorts the shared queue on deadlines"
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.thermal_backend import LinearReservoir
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.traffic.engine import EngineResult, ServingEngine

#: Immediate-mode policies whose assignment sequence is precomputable.
BATCHABLE_POLICIES = ("round_robin", "random")

#: One chunk's stream element: (times, demands, requests, deadline_at,
#: start_index).  ``requests`` is None unless outcome objects are needed
#: (keep_samples / probe / trace); ``deadline_at`` is the absolute-deadline
#: column (None when the chunk carries no deadlines and no observer needs
#: them); ``start_index`` recovers request indices when objects are absent.
StreamChunk = tuple[
    np.ndarray,
    np.ndarray,
    "Sequence[Request] | None",
    "np.ndarray | None",
    "int | None",
]


def unsupported_reason(engine: "ServingEngine") -> str | None:
    """Why this engine configuration cannot take the vector fast path.

    Returns ``None`` when the fast path applies.  The conditions mirror the
    module docstring: anything whose exact replay cannot be proven —
    deadline-ordered queue re-sorting, state-dependent dispatch,
    token-bucket refill arithmetic, open-form thermal physics — forces the
    exact heap loop.  Streaming observers and power governors are *inside*
    the envelope now: observers are fed from columnar buffers, and grant
    policies that declare ``supports_batched_replay`` are replayed through
    the real governor object.
    """
    from repro.traffic.engine import DISPATCH_POLICIES

    if engine.mode == "central_queue":
        # Central dispatch never consults the immediate-mode policy; only
        # the queue ordering matters.  FIFO drains in token order, which
        # the batch core reproduces with a deque; EDF re-sorts on absolute
        # deadlines and keeps the exact heap.
        if engine.discipline != "fifo":
            return (
                f"queue discipline {engine.discipline!r} re-sorts the "
                "shared queue on deadlines"
            )
    else:
        if engine.policy_name not in BATCHABLE_POLICIES:
            return (
                f"policy {engine.policy_name!r} depends on per-request fleet state"
            )
        if engine.dispatch is not DISPATCH_POLICIES[engine.policy_name]:
            return "custom dispatch callable must be consulted per request"
    governor = engine.governor
    if governor is not None and not governor.is_unlimited:
        if not getattr(governor, "supports_batched_replay", False):
            return (
                f"governor {governor.name!r} has no exact batched grant replay"
            )
    for device in engine.devices:
        if type(device.thermal_backend) is not LinearReservoir:
            return (
                f"thermal backend {device.thermal_backend.name!r} has no "
                "closed vector form"
            )
    return None


class _FleetState:
    """Columnar mirror of per-device pacer/reservoir state for one run."""

    def __init__(self, devices: Sequence[SprintDevice]) -> None:
        self.devices = devices
        n = len(devices)
        pacers = [d.pacer for d in devices]
        backends = [p.backend for p in pacers]
        self.device_ids = np.array([d.device_id for d in devices], dtype=np.int64)
        self.drain_w = np.array([b.drain_power_w for b in backends])
        self.excess_w = np.array(
            [p.config.sprint_power_w - p.drain_power_w for p in pacers]
        )
        self.speedup = np.array([p.sprint_speedup for p in pacers])
        self.capacity = np.array([b.capacity_j for b in backends])
        self.ambient = np.array([b.limits.ambient_c for b in backends])
        self.headroom_c = np.array([b.limits.headroom_c for b in backends])
        self.allow = np.array([d.sprint_enabled for d in devices], dtype=bool)
        self.refuse = np.array(
            [p.refuse_partial_sprints for p in pacers], dtype=bool
        )
        # Mutable state, synced back through absorb_batch() at the end.
        self.clock = np.array([p.busy_until_s for p in pacers])
        self.stored = np.array([b.stored_heat_j for b in backends])
        self.served = np.zeros(n, dtype=np.int64)
        self.sprints = np.zeros(n, dtype=np.int64)
        self.busy_seconds = np.zeros(n)
        self.fullness_total = np.zeros(n)
        self.deposited = np.zeros(n)
        self.drained = np.zeros(n)
        self.peak_stored = np.full(n, -np.inf)
        self.last_arrival = np.full(n, -np.inf)

    def sync_back(self) -> None:
        """Fold the run's aggregates into the live device objects.

        Counters and heat land exactly where the scalar path would have left
        them; per-device peaks use the linear backend's monotone
        heat-to-temperature map, so the run's hottest instant is the request
        with the most stored heat.
        """
        for pos, device in enumerate(self.devices):
            count = int(self.served[pos])
            if count == 0:
                continue
            peak_stored = float(self.peak_stored[pos])
            capacity = self.capacity[pos]
            if capacity > 0.0:
                peak_temp = float(
                    self.ambient[pos]
                    + (peak_stored / capacity) * self.headroom_c[pos]
                )
            else:
                peak_temp = float(self.ambient[pos])
            device.absorb_batch(
                served=count,
                busy_seconds=float(self.busy_seconds[pos]),
                sprints=int(self.sprints[pos]),
                fullness_total=float(self.fullness_total[pos]),
                clock_s=float(self.clock[pos]),
                last_arrival_s=float(self.last_arrival[pos]),
                stored_heat_j=float(self.stored[pos]),
                deposited_j=float(self.deposited[pos]),
                drained_j=float(self.drained[pos]),
                peak_stored_heat_j=peak_stored,
                peak_temperature_c=peak_temp,
            )


def _assignments(
    engine: "ServingEngine", count: int, cursor: int, rng: np.random.Generator
) -> np.ndarray:
    """Device position of each request in a chunk, matching the scalar policy."""
    n_devices = len(engine.devices)
    if engine.policy_name == "round_robin":
        return (cursor + np.arange(count, dtype=np.int64)) % n_devices
    # random: one block draw consumes the bit stream exactly like the
    # scalar loop's per-request rng.integers(n) calls.
    return rng.integers(n_devices, size=count)


def _advance_chunk(
    state: _FleetState,
    assign: np.ndarray,
    times: np.ndarray,
    demands: np.ndarray,
    collect: bool,
) -> tuple[np.ndarray, ...] | None:
    """Advance every device through its requests in this chunk.

    Requests for one device execute in arrival order; lockstep round ``k``
    processes the ``k``-th request of every device that has one.  Returns
    per-request output columns (in chunk order) when ``collect`` is set —
    for kept samples or for feeding streaming observers columnarly.
    """
    count = times.size
    order = np.argsort(assign, kind="stable")
    counts = np.bincount(assign, minlength=len(state.devices))
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))

    if collect:
        out_queueing = np.empty(count)
        out_response = np.empty(count)
        out_before = np.empty(count)
        out_after = np.empty(count)
        out_fullness = np.empty(count)
        out_temp = np.empty(count)
        out_sprinted = np.empty(count, dtype=bool)

    rounds = int(counts.max()) if count else 0
    for k in range(rounds):
        active = np.flatnonzero(counts > k)
        idx = order[offsets[active] + k]
        t_k = times[idx]
        s_k = demands[idx]

        clock_a = state.clock[active]
        stored_a = state.stored[active]
        start = np.maximum(t_k, clock_a)
        # Idle-gap drain, then the sprint decision — the exact elementwise
        # float ops of SprintPacer.execute_at over a LinearReservoir.
        after_drain = np.maximum(
            0.0, stored_a - state.drain_w[active] * (start - clock_a)
        )
        headroom = np.maximum(0.0, state.capacity[active] - after_drain)
        sprint_time = s_k / state.speedup[active]
        demand = np.maximum(0.0, state.excess_w[active] * sprint_time)
        allow = state.allow[active]
        full = allow & (demand <= headroom)
        partial = allow & ~full & ~state.refuse[active] & (headroom > 0.0)

        response = s_k.copy()
        fullness = np.zeros(active.size)
        deposit = np.zeros(active.size)
        response[full] = sprint_time[full]
        fullness[full] = 1.0
        deposit[full] = demand[full]
        if partial.any():
            frac = headroom[partial] / demand[partial]
            fullness[partial] = frac
            response[partial] = (
                frac * sprint_time[partial] + (1.0 - frac) * s_k[partial]
            )
            deposit[partial] = headroom[partial]
        stored_new = after_drain + deposit
        sprinted = full | partial

        state.clock[active] = start + response
        state.stored[active] = stored_new
        state.served[active] += 1
        state.sprints[active] += sprinted
        state.busy_seconds[active] += response
        state.fullness_total[active] += fullness
        state.deposited[active] += deposit
        state.drained[active] += stored_a - after_drain
        state.peak_stored[active] = np.maximum(state.peak_stored[active], stored_new)
        state.last_arrival[active] = t_k

        if collect:
            out_queueing[idx] = start - t_k
            out_response[idx] = response
            out_before[idx] = after_drain
            out_after[idx] = stored_new
            out_fullness[idx] = fullness
            out_sprinted[idx] = sprinted
            capacity = state.capacity[active]
            fill = np.divide(
                stored_new,
                capacity,
                out=np.zeros(active.size),
                where=capacity > 0.0,
            )
            out_temp[idx] = state.ambient[active] + fill * state.headroom_c[active]

    if not collect:
        return None
    return (
        out_queueing,
        out_response,
        out_before,
        out_after,
        out_fullness,
        out_temp,
        out_sprinted,
    )


def _check_chunk_order(
    times: np.ndarray, previous_end: float
) -> float:
    """Assert one chunk continues a time-ordered stream; return its end."""
    if times[0] < previous_end or np.any(np.diff(times) < 0):
        raise ValueError("batched execution needs time-ordered arrivals")
    return float(times[-1])


def _run_immediate_core(
    engine: "ServingEngine",
    stream: Iterable[StreamChunk],
    rng: np.random.Generator,
) -> "EngineResult":
    """The lockstep vector core: ungoverned immediate dispatch.

    Observers are fed per chunk from the same output columns that kept
    samples use: the telemetry sketch through ``observe_batch``, the
    timeline probe through its windowed batch counters (immediate
    ungoverned runs touch no gauges), and the event trace through a scalar
    replay in processing order — each bit-identical to the exact loop's
    per-event callbacks because every one of those instruments is either
    order-free (window counters, peaks) or fed in the exact processing
    order (sketch columns, trace records).
    """
    from repro.traffic.engine import EngineResult

    state = _FleetState(engine.devices)
    keep = engine.keep_samples
    telemetry = engine.telemetry
    probe = engine.probe
    trace = engine.trace
    collect = keep or telemetry is not None or probe is not None or trace is not None
    labels = [d.label for d in engine.devices]
    served: list[ServedRequest] = []
    served_count = 0
    cursor = 0
    last_s = 0.0
    previous_end = -np.inf

    for times, demands, requests, deadline_at, start_index in stream:
        count = times.size
        if count == 0:
            continue
        previous_end = _check_chunk_order(times, previous_end)
        assign = _assignments(engine, count, cursor, rng)
        cursor += count
        outputs = _advance_chunk(state, assign, times, demands, collect)
        served_count += count
        last_s = previous_end
        if not collect:
            continue
        queueing, response, before, after, fullness, temp, sprinted = outputs
        latency = queueing + response
        completed = times + latency
        device_ids = state.device_ids[assign]
        if probe is not None:
            probe.on_arrival_batch(times)
            probe.on_served_batch(completed, sprinted, temp)
        if telemetry is not None:
            missed = 0
            if deadline_at is not None:
                missed = int(np.count_nonzero(completed > deadline_at))
            telemetry.observe_batch(
                latencies=latency.tolist(),
                queueing_delays=queueing.tolist(),
                stored_heats=after.tolist(),
                sprinted_count=int(np.count_nonzero(sprinted)),
                fullness=fullness.tolist(),
                deadline_miss_count=missed,
                peak_temperature_c=float(temp.max()),
                peak_melt_fraction=0.0,
                first_arrival_s=float(times[0]),
                last_completion_s=float(completed.max()),
            )
        if trace is not None:
            base = 0 if start_index is None else start_index
            t_l = times.tolist()
            c_l = completed.tolist()
            lat_l = latency.tolist()
            pos_l = assign.tolist()
            gid_l = device_ids.tolist()
            for i in range(count):
                ridx = requests[i].index if requests is not None else base + i
                pos = pos_l[i]
                trace.add(t_l[i], "arrival", request_index=ridx)
                trace.add(
                    t_l[i],
                    "dispatch",
                    request_index=ridx,
                    device_id=pos,
                    label=labels[pos],
                )
                trace.add(
                    c_l[i],
                    "complete",
                    request_index=ridx,
                    device_id=gid_l[i],
                    detail=lat_l[i],
                    label=labels[pos],
                )
        if keep:
            assert requests is not None
            served.extend(
                ServedRequest(
                    request=requests[i],
                    device_id=int(device_ids[i]),
                    sprinted=bool(sprinted[i]),
                    queueing_delay_s=float(queueing[i]),
                    service_time_s=float(response[i]),
                    stored_heat_before_j=float(before[i]),
                    stored_heat_after_j=float(after[i]),
                    sprint_fullness=float(fullness[i]),
                    package_temperature_c=float(temp[i]),
                    melt_fraction=0.0,
                )
                for i in range(count)
            )

    state.sync_back()
    return EngineResult(
        served=tuple(served),
        rejected=(),
        abandoned=(),
        governor_stats=None,
        final_time_s=last_s,
        served_count=served_count,
        rejected_count=0,
        abandoned_count=0,
    )


def _run_event_core(
    engine: "ServingEngine",
    stream: Iterable[StreamChunk],
    rng: np.random.Generator,
) -> "EngineResult":
    """The batch-replay event core: governed sprinting and central-queue FIFO.

    The exact loop's semantics with its interpreter overhead stripped.
    Three structural changes, each order-preserving by construction:

    * **Arrivals merge from the sorted column stream** instead of living in
      the heap.  At most one ARRIVAL is ever in the exact heap, and at
      equal timestamps ARRIVAL beats only DEADLINE, so an arrival at ``t``
      is processed exactly after every heap event ``(t', kind)`` with
      ``t' < t`` or ``t' == t and kind < ARRIVAL``.
    * **The FIFO queue is a deque of tokens** with a ``waiting`` dict for
      lazy deadline deletion.  The exact heap keys FIFO entries by their
      monotonically increasing token, so heap order *is* append order.
    * **Device execution is inlined** linear-reservoir arithmetic on plain
      floats — the same operations, in the same order, as
      ``SprintPacer.execute_at`` — and ``Request``/``ServedRequest``
      objects are only constructed when kept samples, the probe, or the
      trace actually need them.

    Grant decisions, releases, and breaker resets go through the *real*
    governor object at the exact event timestamps (the heap carries
    GRANT_RELEASE/BREAKER_RESET/DEVICE_FREE/DEADLINE events with the exact
    loop's tie-break kinds), so ``GovernorStats`` — and every cascade
    level's ledger — replays exactly.
    """
    from repro.traffic.engine import EngineResult

    devices = engine.devices
    n = len(devices)
    state = _FleetState(devices)
    # Plain-float mirrors of the columnar state: attribute lookups and
    # numpy scalar boxing are what the exact loop spends its time on.
    clock = state.clock.tolist()
    stored = state.stored.tolist()
    drain_w = state.drain_w.tolist()
    excess_w = state.excess_w.tolist()
    speedup = state.speedup.tolist()
    capacity = state.capacity.tolist()
    ambient = state.ambient.tolist()
    headroom_c = state.headroom_c.tolist()
    dev_allow = state.allow.tolist()
    refuse = state.refuse.tolist()
    device_ids = state.device_ids.tolist()
    labels = [d.label for d in devices]
    served_n = [0] * n
    sprints_n = [0] * n
    busy_sec = [0.0] * n
    full_tot = [0.0] * n
    dep_tot = [0.0] * n
    drn_tot = [0.0] * n
    peak_st = [-np.inf] * n
    last_arr = [-np.inf] * n

    keep = engine.keep_samples
    telemetry = engine.telemetry
    probe = engine.probe
    trace = engine.trace
    need_objects = keep or probe is not None or trace is not None

    governor = engine.governor
    governed = governor is not None and not governor.is_unlimited
    central = engine.mode == "central_queue"
    random_policy = engine.policy_name == "random"
    queue_bound = engine.queue_bound
    inf = float("inf")

    # Breaker-trip detection only feeds the probe and the trace; a
    # telemetry-only run never reads it, so skip the per-grant ledger reads.
    grant_observing = probe is not None or trace is not None

    # The greedy governor is the common governed configuration and its
    # grant protocol is pure counter arithmetic, so when nothing watches
    # individual grants the core mirrors its ledger in local variables —
    # the same operations as SprintGovernor.acquire/release/_update_cap,
    # in the same order, written back before finalize().  Any other policy
    # (or a probed/traced run) drives the real governor object.
    from repro.traffic.governor import GreedyGovernor

    greedy_inline = governed and type(governor) is GreedyGovernor and not grant_observing
    g_active = g_granted = g_denied = g_released = g_peak = 0
    g_trips: list[float] = []
    g_penalty_until = -inf
    g_cap_since: float | None = None
    g_time_at_cap = 0.0
    g_max = g_excess = g_penalty_s = 0.0
    g_headroom: float | None = None
    if greedy_inline:
        g_active = governor._active
        g_granted = governor._granted
        g_denied = governor._denied
        g_released = governor._released_unused
        g_peak = governor._peak_active
        g_trips = governor._trips
        g_penalty_until = governor._penalty_until
        g_cap_since = governor._cap_since
        g_time_at_cap = governor._time_at_cap
        g_max = governor.max_concurrent_sprints
        g_excess = governor.excess_power_w
        g_penalty_s = governor.penalty_s
        g_headroom = governor.trip_headroom_w

    heappush = heapq.heappush
    heappop = heapq.heappop
    ctr = itertools.count()
    # The event heap: (time, kind, seq, payload) with the exact loop's
    # kind codes (0=GRANT_RELEASE, 1=BREAKER_RESET, 2=DEVICE_FREE,
    # 4=DEADLINE).  seq values differ from the exact loop's but preserve
    # the relative push order within every equal (time, kind) class, which
    # is all the tie-break ever uses.
    events: list[tuple[float, int, int, object]] = []
    if central:
        for pos, device in enumerate(devices):
            events.append((device.busy_until_s, 2, next(ctr), pos))
        heapq.heapify(events)
    fifo: deque[int] = deque()
    # token -> (arrival, demand, deadline_at, request-or-None, index)
    waiting: dict[int, tuple] = {}
    idle: list[tuple[int, int]] = []

    served: list[ServedRequest] = []
    rejected: list[Request] = []
    abandoned: list[Request] = []
    served_count = rejected_count = abandoned_count = 0
    last_s = 0.0
    cursor = 0

    # Telemetry column buffers, flushed in served order; extrema and
    # counters that the stream folds order-free are tracked as scalars.
    b_lat: list[float] = []
    b_que: list[float] = []
    b_heat: list[float] = []
    b_full: list[float] = []
    tele_sprints = 0
    tele_missed = 0
    tele_peak_t = -inf
    tele_first_a = inf
    tele_last_c = -inf

    def flush_telemetry() -> None:
        nonlocal tele_sprints, tele_missed, tele_peak_t, tele_first_a, tele_last_c
        if not b_lat:
            return
        telemetry.observe_batch(
            latencies=b_lat,
            queueing_delays=b_que,
            stored_heats=b_heat,
            sprinted_count=tele_sprints,
            fullness=b_full,
            deadline_miss_count=tele_missed,
            peak_temperature_c=tele_peak_t,
            peak_melt_fraction=0.0,
            first_arrival_s=tele_first_a,
            last_completion_s=tele_last_c,
        )
        # Cleared in place: serve_on binds the buffer objects as defaults.
        del b_lat[:]
        del b_que[:]
        del b_heat[:]
        del b_full[:]
        tele_sprints = 0
        tele_missed = 0
        tele_peak_t = -inf
        tele_first_a = inf
        tele_last_c = -inf

    # The hot closures below bind their read-only cell variables as default
    # arguments: LOAD_FAST instead of LOAD_DEREF on every access, which is
    # a measurable share of the per-request budget at fleet scale.
    def serve_on(
        pos: int,
        t_arr: float,
        s_dem: float,
        dl_at: float,
        start: float,
        req_obj,
        ridx: int,
        now: float,
        dev_allow=dev_allow,
        refuse=refuse,
        stored=stored,
        clock=clock,
        drain_w=drain_w,
        excess_w=excess_w,
        speedup=speedup,
        capacity=capacity,
        ambient=ambient,
        headroom_c=headroom_c,
        served_n=served_n,
        sprints_n=sprints_n,
        busy_sec=busy_sec,
        full_tot=full_tot,
        dep_tot=dep_tot,
        drn_tot=drn_tot,
        peak_st=peak_st,
        last_arr=last_arr,
        events=events,
        heappush=heappush,
        b_lat=b_lat,
        b_que=b_que,
        b_heat=b_heat,
        b_full=b_full,
        governed=governed,
        greedy_inline=greedy_inline,
    ) -> float:
        """Grant handshake + inlined execution + emission; returns busy-until."""
        nonlocal served_count, tele_sprints, tele_missed
        nonlocal tele_peak_t, tele_first_a, tele_last_c
        nonlocal g_active, g_granted, g_denied, g_released, g_peak
        nonlocal g_penalty_until, g_cap_since, g_time_at_cap
        allowed = dev_allow[pos]
        if governed and allowed:
            if greedy_inline:
                # GreedyGovernor.acquire, mirrored on locals.
                grant = False if now < g_penalty_until else g_active < g_max
                if grant:
                    g_granted += 1
                    g_active += 1
                    if g_active > g_peak:
                        g_peak = g_active
                    if g_headroom is not None and g_active * g_excess > g_headroom:
                        g_trips.append(now)
                        if g_penalty_s > 0.0:
                            g_penalty_until = now + g_penalty_s
                            heappush(events, (g_penalty_until, 1, next(ctr), None))
                else:
                    g_denied += 1
                if now < g_penalty_until or g_active >= g_max:  # _update_cap
                    if g_cap_since is None:
                        g_cap_since = now
                elif g_cap_since is not None:
                    g_time_at_cap += now - g_cap_since
                    g_cap_since = None
            else:
                trips_before = governor.breaker_trips if grant_observing else 0
                grant = governor.acquire(now)
                while True:
                    reset_at = governor.pop_pending_reset()
                    if reset_at is None:
                        break
                    heappush(events, (reset_at, 1, next(ctr), None))
                if probe is not None:
                    probe.on_grant(now, grant)
                    if grant:
                        probe.on_in_flight_sprints(now, governor.active_grants)
                if trace is not None:
                    trace.add(
                        now,
                        "grant" if grant else "deny",
                        request_index=ridx,
                        device_id=device_ids[pos],
                        label=labels[pos],
                    )
                if grant_observing and governor.breaker_trips > trips_before:
                    if probe is not None:
                        probe.on_breaker_trip(now)
                    if trace is not None:
                        trace.add(now, "trip", detail=governor.active_excess_draw_w)
            allow = grant
        else:
            grant = False
            allow = allowed

        # SprintPacer.execute_at over a LinearReservoir, inlined: the same
        # float operations in the same order (the scalar twins of the
        # vector core's elementwise ops).
        st = stored[pos]
        x = st - drain_w[pos] * (start - clock[pos])
        after = x if x > 0.0 else 0.0
        h = capacity[pos] - after
        headroom = h if h > 0.0 else 0.0
        sp_t = s_dem / speedup[pos]
        d = excess_w[pos] * sp_t
        demand = d if d > 0.0 else 0.0
        if allow and demand <= headroom:
            sprinted = True
            fullness = 1.0
            response = sp_t
            deposit = demand
        elif (not allow) or refuse[pos] or headroom <= 0.0:
            sprinted = False
            fullness = 0.0
            response = s_dem
            deposit = 0.0
        else:
            fullness = headroom / demand
            sprinted = True
            response = fullness * sp_t + (1.0 - fullness) * s_dem
            deposit = headroom
        after2 = after + deposit
        end = start + response
        clock[pos] = end
        stored[pos] = after2
        served_n[pos] += 1
        if sprinted:
            sprints_n[pos] += 1
        busy_sec[pos] += response
        full_tot[pos] += fullness
        dep_tot[pos] += deposit
        drn_tot[pos] += st - after
        if after2 > peak_st[pos]:
            peak_st[pos] = after2
        last_arr[pos] = t_arr

        queueing = start - t_arr
        latency = queueing + response
        completed = t_arr + latency

        if grant:
            if sprinted:
                heappush(events, (completed, 0, next(ctr), None))
            elif greedy_inline:
                # GreedyGovernor.release(now, used=False), mirrored.
                g_active -= 1
                g_released += 1
                if now < g_penalty_until or g_active >= g_max:
                    if g_cap_since is None:
                        g_cap_since = now
                elif g_cap_since is not None:
                    g_time_at_cap += now - g_cap_since
                    g_cap_since = None
            else:
                governor.release(now, used=False)
                if probe is not None:
                    probe.on_in_flight_sprints(now, governor.active_grants)
                if trace is not None:
                    trace.add(
                        now,
                        "release",
                        request_index=ridx,
                        device_id=device_ids[pos],
                        detail=0.0,
                        label=labels[pos],
                    )

        served_count += 1
        if telemetry is not None:
            b_lat.append(latency)
            b_que.append(queueing)
            b_heat.append(after2)
            b_full.append(fullness)
            if sprinted:
                tele_sprints += 1
            if completed > dl_at:
                tele_missed += 1
            cap = capacity[pos]
            tmp = (
                ambient[pos] + (after2 / cap) * headroom_c[pos]
                if cap > 0.0
                else ambient[pos]
            )
            if tmp > tele_peak_t:
                tele_peak_t = tmp
            if t_arr < tele_first_a:
                tele_first_a = t_arr
            if completed > tele_last_c:
                tele_last_c = completed
            if len(b_lat) >= 4096:
                flush_telemetry()
        if need_objects:
            cap = capacity[pos]
            tmp = (
                ambient[pos] + (after2 / cap) * headroom_c[pos]
                if cap > 0.0
                else ambient[pos]
            )
            outcome = ServedRequest(
                request=req_obj,
                device_id=device_ids[pos],
                sprinted=sprinted,
                queueing_delay_s=queueing,
                service_time_s=response,
                stored_heat_before_j=after,
                stored_heat_after_j=after2,
                sprint_fullness=fullness,
                package_temperature_c=tmp,
                melt_fraction=0.0,
            )
            if keep:
                served.append(outcome)
            if probe is not None:
                probe.on_served(outcome)
            if trace is not None:
                trace.add(
                    completed,
                    "complete",
                    request_index=ridx,
                    device_id=device_ids[pos],
                    detail=latency,
                    label=labels[pos],
                )
        return end

    def emit_rejected(ent: tuple, now: float) -> None:
        nonlocal rejected_count
        rejected_count += 1
        if keep:
            rejected.append(ent[3])
        if telemetry is not None:
            telemetry.observe_rejected()
        if probe is not None:
            probe.on_rejected(now)
        if trace is not None:
            trace.add(now, "reject", request_index=ent[4])

    def emit_abandoned(ent: tuple, now: float) -> None:
        nonlocal abandoned_count
        abandoned_count += 1
        if keep:
            abandoned.append(ent[3])
        if telemetry is not None:
            telemetry.observe_abandoned()
        if probe is not None:
            probe.on_abandoned(now)
        if trace is not None:
            trace.add(now, "abandon", request_index=ent[4])

    def pump(
        t_limit: float,
        events=events,
        heappop=heappop,
        heappush=heappush,
        fifo=fifo,
        waiting=waiting,
        idle=idle,
        served_n=served_n,
        greedy_inline=greedy_inline,
    ) -> None:
        """Process every heap event due before an arrival at ``t_limit``.

        An event fires first iff its time is strictly earlier, or equal
        with kind < ARRIVAL (GRANT_RELEASE, BREAKER_RESET, DEVICE_FREE);
        a DEADLINE at the arrival instant loses, exactly as in the heap
        loop.  ``t_limit=inf`` drains the heap after the stream ends.
        """
        nonlocal last_s
        nonlocal g_active, g_penalty_until, g_cap_since, g_time_at_cap
        while events:
            ev = events[0]
            et = ev[0]
            if et > t_limit or (et == t_limit and ev[1] >= 3):
                break
            heappop(events)
            last_s = et
            kind = ev[1]
            if kind == 2:  # DEVICE_FREE
                pos = ev[3]
                ent = None
                while fifo:
                    token = fifo.popleft()
                    ent = waiting.pop(token, None)
                    if ent is not None:
                        break
                if ent is not None:
                    if probe is not None:
                        probe.on_queue_depth(et, len(waiting))
                    if trace is not None:
                        trace.add(
                            et,
                            "dispatch",
                            request_index=ent[4],
                            device_id=pos,
                            label=labels[pos],
                        )
                    end = serve_on(
                        pos, ent[0], ent[1], ent[2], et, ent[3], ent[4], et
                    )
                    heappush(events, (end, 2, next(ctr), pos))
                else:
                    heappush(idle, (served_n[pos], pos))
            elif kind == 0:  # GRANT_RELEASE
                if greedy_inline:
                    g_active -= 1
                    if et < g_penalty_until or g_active >= g_max:
                        if g_cap_since is None:
                            g_cap_since = et
                    elif g_cap_since is not None:
                        g_time_at_cap += et - g_cap_since
                        g_cap_since = None
                else:
                    governor.release(et)
                    if probe is not None:
                        probe.on_in_flight_sprints(et, governor.active_grants)
                    if trace is not None:
                        trace.add(et, "release")
            elif kind == 1:  # BREAKER_RESET
                if greedy_inline:
                    if et < g_penalty_until or g_active >= g_max:
                        if g_cap_since is None:
                            g_cap_since = et
                    elif g_cap_since is not None:
                        g_time_at_cap += et - g_cap_since
                        g_cap_since = None
                else:
                    governor.on_breaker_reset(et)
            else:  # DEADLINE
                ent = waiting.pop(ev[3], None)
                if ent is not None:
                    if probe is not None:
                        probe.on_queue_depth(et, len(waiting))
                    emit_abandoned(ent, et)

    previous_end = -np.inf
    for times, demands, requests, deadline_at, start_index in stream:
        count = times.size
        if count == 0:
            continue
        previous_end = _check_chunk_order(times, previous_end)
        t_l = times.tolist()
        d_l = demands.tolist()
        dl_l = deadline_at.tolist() if deadline_at is not None else None
        base = 0 if start_index is None else start_index
        for i in range(count):
            t = t_l[i]
            pump(t)
            last_s = t
            robj = requests[i] if requests is not None else None
            ridx = robj.index if robj is not None else base + i
            if probe is not None:
                probe.on_arrival(t)
            if trace is not None:
                trace.add(t, "arrival", request_index=ridx)
            dl_at = dl_l[i] if dl_l is not None else inf
            if central:
                if idle:
                    _, pos = heappop(idle)
                    if trace is not None:
                        trace.add(
                            t,
                            "dispatch",
                            request_index=ridx,
                            device_id=pos,
                            label=labels[pos],
                        )
                    end = serve_on(pos, t, d_l[i], dl_at, t, robj, ridx, t)
                    heappush(events, (end, 2, next(ctr), pos))
                elif queue_bound is not None and len(waiting) >= queue_bound:
                    emit_rejected((t, d_l[i], dl_at, robj, ridx), t)
                else:
                    token = next(ctr)
                    fifo.append(token)
                    waiting[token] = (t, d_l[i], dl_at, robj, ridx)
                    if probe is not None:
                        probe.on_queue_depth(t, len(waiting))
                    if dl_at != inf:
                        heappush(events, (dl_at, 4, next(ctr), token))
            else:  # governed immediate dispatch
                pos = int(rng.integers(n)) if random_policy else cursor % n
                cursor += 1
                if trace is not None:
                    trace.add(
                        t,
                        "dispatch",
                        request_index=ridx,
                        device_id=pos,
                        label=labels[pos],
                    )
                c = clock[pos]
                start = t if t > c else c
                serve_on(pos, t, d_l[i], dl_at, start, robj, ridx, t)
    pump(inf)

    if telemetry is not None:
        flush_telemetry()
    if greedy_inline:
        # Restore the mirrored ledger so finalize() reports it exactly.
        governor._active = g_active
        governor._granted = g_granted
        governor._denied = g_denied
        governor._released_unused = g_released
        governor._peak_active = g_peak
        governor._trips = g_trips
        governor._penalty_until = g_penalty_until
        governor._cap_since = g_cap_since
        governor._time_at_cap = g_time_at_cap
    state.clock = np.asarray(clock)
    state.stored = np.asarray(stored)
    state.served = np.asarray(served_n, dtype=np.int64)
    state.sprints = np.asarray(sprints_n, dtype=np.int64)
    state.busy_seconds = np.asarray(busy_sec)
    state.fullness_total = np.asarray(full_tot)
    state.deposited = np.asarray(dep_tot)
    state.drained = np.asarray(drn_tot)
    state.peak_stored = np.asarray(peak_st)
    state.last_arrival = np.asarray(last_arr)
    state.sync_back()
    return EngineResult(
        served=tuple(served),
        rejected=tuple(rejected),
        abandoned=tuple(abandoned),
        governor_stats=governor.finalize(last_s) if governed else None,
        final_time_s=last_s,
        served_count=served_count,
        rejected_count=rejected_count,
        abandoned_count=abandoned_count,
    )


def run_batched(
    engine: "ServingEngine",
    stream: Iterable[StreamChunk],
    rng: np.random.Generator,
) -> "EngineResult":
    """Run time-ordered request blocks through the batched cores.

    ``stream`` yields ``(times, demands, requests, deadline_at,
    start_index)`` columns; ``requests`` is only consulted when outcome
    objects are needed (kept samples, timeline probe, event trace) and
    ``deadline_at`` when deadlines matter (central queue, telemetry).  The
    caller guarantees the concatenated times are non-decreasing — arrival
    processes emit sorted streams and ``ServingEngine.run`` sorts — which
    is asserted cheaply per chunk.  Dispatches to the lockstep vector core
    for ungoverned immediate runs, and to the batch-replay event core for
    governed or central-queue runs.
    """
    governor = engine.governor
    governed = governor is not None and not governor.is_unlimited
    if engine.mode == "central_queue" or governed:
        return _run_event_core(engine, stream, rng)
    return _run_immediate_core(engine, stream, rng)
