"""Vectorized immediate-mode execution: the engine's numpy fast path.

The exact engine (:mod:`repro.traffic.engine`) resolves one heap event per
request in pure Python.  For the configurations where nothing *interesting*
can happen between arrivals — immediate dispatch under a precomputable
policy, no power governor gating sprints, every device pacing against the
closed-form :class:`~repro.core.thermal_backend.LinearReservoir`, and no
streaming observers watching individual events — the whole run collapses to
arithmetic that numpy can do in blocks:

* the device assignment sequence is known up front (``round_robin`` is
  ``(cursor + i) mod n``; ``random`` is one block draw of ``rng.integers``,
  bit-identical to the scalar per-request draws),
* each device's request chain is independent once assignments are fixed, so
  all devices advance in lockstep *rounds*: round ``k`` executes the
  ``k``-th request of every device that has one, as ~30 vectorized ops over
  the active-device axis,
* the linear-reservoir sprint decision (drain, headroom, full / partial /
  sustained, deposit) is elementwise ``max``/``where`` arithmetic whose
  float operations are exactly the scalar pacer's, so every latency, heat,
  and temperature matches the exact engine bit-for-bit — the equivalence
  suite locks this across the scenario matrix.

Configurations outside this envelope (central queues, governed sprints,
physics thermal backends, state-dependent policies like ``least_loaded``,
attached telemetry) keep the exact event loop: the engine's ``batched``
execution mode falls back honestly rather than approximate.  The
:func:`unsupported_reason` predicate is the single source of truth for that
envelope, and ``ServingEngine.last_run_fast_path`` reports which path a run
actually took.

Requests are consumed as ``(times, demands, requests)`` column blocks, so
the streaming entry point (``ServingEngine.run_blocks`` under
``keep_samples=False``) holds one chunk in memory regardless of horizon.

Usage — :func:`unsupported_reason` names exactly what keeps a
configuration on the exact loop:

>>> from repro.core.config import SystemConfig
>>> from repro.traffic.device import SprintDevice
>>> from repro.traffic.engine import DISPATCH_POLICIES, ServingEngine
>>> from repro.traffic.fastpath import unsupported_reason
>>> devices = [
...     SprintDevice(SystemConfig.paper_default(), device_id=i) for i in range(2)
... ]
>>> unsupported_reason(
...     ServingEngine(devices, DISPATCH_POLICIES["round_robin"], "round_robin")
... ) is None
True
>>> unsupported_reason(
...     ServingEngine(devices, DISPATCH_POLICIES["least_loaded"], "least_loaded")
... )
"policy 'least_loaded' depends on per-request fleet state"
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.thermal_backend import LinearReservoir
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.traffic.engine import EngineResult, ServingEngine

#: Immediate-mode policies whose assignment sequence is precomputable.
BATCHABLE_POLICIES = ("round_robin", "random")


def unsupported_reason(engine: "ServingEngine") -> str | None:
    """Why this engine configuration cannot take the vector fast path.

    Returns ``None`` when the fast path applies.  The conditions mirror the
    module docstring: anything that makes event *interleaving* matter —
    shared queues, grant handshakes, state-dependent dispatch, open-form
    thermal physics, per-event observers — forces the exact heap loop.
    """
    from repro.traffic.engine import DISPATCH_POLICIES

    if engine.mode != "immediate":
        return "central-queue dispatch serializes on shared-queue events"
    if engine.policy_name not in BATCHABLE_POLICIES:
        return (
            f"policy {engine.policy_name!r} depends on per-request fleet state"
        )
    if engine.dispatch is not DISPATCH_POLICIES[engine.policy_name]:
        return "custom dispatch callable must be consulted per request"
    if engine.governor is not None and not engine.governor.is_unlimited:
        return "governed sprinting requires the per-event grant handshake"
    if (
        engine.telemetry is not None
        or engine.probe is not None
        or engine.trace is not None
    ):
        return "streaming observers consume events one at a time"
    for device in engine.devices:
        if type(device.thermal_backend) is not LinearReservoir:
            return (
                f"thermal backend {device.thermal_backend.name!r} has no "
                "closed vector form"
            )
    return None


class _FleetState:
    """Columnar mirror of per-device pacer/reservoir state for one run."""

    def __init__(self, devices: Sequence[SprintDevice]) -> None:
        self.devices = devices
        n = len(devices)
        pacers = [d.pacer for d in devices]
        backends = [p.backend for p in pacers]
        self.device_ids = np.array([d.device_id for d in devices], dtype=np.int64)
        self.drain_w = np.array([b.drain_power_w for b in backends])
        self.excess_w = np.array(
            [p.config.sprint_power_w - p.drain_power_w for p in pacers]
        )
        self.speedup = np.array([p.sprint_speedup for p in pacers])
        self.capacity = np.array([b.capacity_j for b in backends])
        self.ambient = np.array([b.limits.ambient_c for b in backends])
        self.headroom_c = np.array([b.limits.headroom_c for b in backends])
        self.allow = np.array([d.sprint_enabled for d in devices], dtype=bool)
        self.refuse = np.array(
            [p.refuse_partial_sprints for p in pacers], dtype=bool
        )
        # Mutable state, synced back through absorb_batch() at the end.
        self.clock = np.array([p.busy_until_s for p in pacers])
        self.stored = np.array([b.stored_heat_j for b in backends])
        self.served = np.zeros(n, dtype=np.int64)
        self.sprints = np.zeros(n, dtype=np.int64)
        self.busy_seconds = np.zeros(n)
        self.fullness_total = np.zeros(n)
        self.deposited = np.zeros(n)
        self.drained = np.zeros(n)
        self.peak_stored = np.full(n, -np.inf)
        self.last_arrival = np.full(n, -np.inf)

    def sync_back(self) -> None:
        """Fold the run's aggregates into the live device objects.

        Counters and heat land exactly where the scalar path would have left
        them; per-device peaks use the linear backend's monotone
        heat-to-temperature map, so the run's hottest instant is the request
        with the most stored heat.
        """
        for pos, device in enumerate(self.devices):
            count = int(self.served[pos])
            if count == 0:
                continue
            peak_stored = float(self.peak_stored[pos])
            capacity = self.capacity[pos]
            if capacity > 0.0:
                peak_temp = float(
                    self.ambient[pos]
                    + (peak_stored / capacity) * self.headroom_c[pos]
                )
            else:
                peak_temp = float(self.ambient[pos])
            device.absorb_batch(
                served=count,
                busy_seconds=float(self.busy_seconds[pos]),
                sprints=int(self.sprints[pos]),
                fullness_total=float(self.fullness_total[pos]),
                clock_s=float(self.clock[pos]),
                last_arrival_s=float(self.last_arrival[pos]),
                stored_heat_j=float(self.stored[pos]),
                deposited_j=float(self.deposited[pos]),
                drained_j=float(self.drained[pos]),
                peak_stored_heat_j=peak_stored,
                peak_temperature_c=peak_temp,
            )


def _assignments(
    engine: "ServingEngine", count: int, cursor: int, rng: np.random.Generator
) -> np.ndarray:
    """Device position of each request in a chunk, matching the scalar policy."""
    n_devices = len(engine.devices)
    if engine.policy_name == "round_robin":
        return (cursor + np.arange(count, dtype=np.int64)) % n_devices
    # random: one block draw consumes the bit stream exactly like the
    # scalar loop's per-request rng.integers(n) calls.
    return rng.integers(n_devices, size=count)


def _advance_chunk(
    state: _FleetState,
    assign: np.ndarray,
    times: np.ndarray,
    demands: np.ndarray,
    keep: bool,
) -> tuple[np.ndarray, ...] | None:
    """Advance every device through its requests in this chunk.

    Requests for one device execute in arrival order; lockstep round ``k``
    processes the ``k``-th request of every device that has one.  Returns
    per-request output columns (in chunk order) when ``keep`` is set.
    """
    count = times.size
    order = np.argsort(assign, kind="stable")
    counts = np.bincount(assign, minlength=len(state.devices))
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))

    if keep:
        out_queueing = np.empty(count)
        out_response = np.empty(count)
        out_before = np.empty(count)
        out_after = np.empty(count)
        out_fullness = np.empty(count)
        out_temp = np.empty(count)
        out_sprinted = np.empty(count, dtype=bool)

    rounds = int(counts.max()) if count else 0
    for k in range(rounds):
        active = np.flatnonzero(counts > k)
        idx = order[offsets[active] + k]
        t_k = times[idx]
        s_k = demands[idx]

        clock_a = state.clock[active]
        stored_a = state.stored[active]
        start = np.maximum(t_k, clock_a)
        # Idle-gap drain, then the sprint decision — the exact elementwise
        # float ops of SprintPacer.execute_at over a LinearReservoir.
        after_drain = np.maximum(
            0.0, stored_a - state.drain_w[active] * (start - clock_a)
        )
        headroom = np.maximum(0.0, state.capacity[active] - after_drain)
        sprint_time = s_k / state.speedup[active]
        demand = np.maximum(0.0, state.excess_w[active] * sprint_time)
        allow = state.allow[active]
        full = allow & (demand <= headroom)
        partial = allow & ~full & ~state.refuse[active] & (headroom > 0.0)

        response = s_k.copy()
        fullness = np.zeros(active.size)
        deposit = np.zeros(active.size)
        response[full] = sprint_time[full]
        fullness[full] = 1.0
        deposit[full] = demand[full]
        if partial.any():
            frac = headroom[partial] / demand[partial]
            fullness[partial] = frac
            response[partial] = (
                frac * sprint_time[partial] + (1.0 - frac) * s_k[partial]
            )
            deposit[partial] = headroom[partial]
        stored_new = after_drain + deposit
        sprinted = full | partial

        state.clock[active] = start + response
        state.stored[active] = stored_new
        state.served[active] += 1
        state.sprints[active] += sprinted
        state.busy_seconds[active] += response
        state.fullness_total[active] += fullness
        state.deposited[active] += deposit
        state.drained[active] += stored_a - after_drain
        state.peak_stored[active] = np.maximum(state.peak_stored[active], stored_new)
        state.last_arrival[active] = t_k

        if keep:
            out_queueing[idx] = start - t_k
            out_response[idx] = response
            out_before[idx] = after_drain
            out_after[idx] = stored_new
            out_fullness[idx] = fullness
            out_sprinted[idx] = sprinted
            capacity = state.capacity[active]
            fill = np.divide(
                stored_new,
                capacity,
                out=np.zeros(active.size),
                where=capacity > 0.0,
            )
            out_temp[idx] = state.ambient[active] + fill * state.headroom_c[active]

    if not keep:
        return None
    return (
        out_queueing,
        out_response,
        out_before,
        out_after,
        out_fullness,
        out_temp,
        out_sprinted,
    )


def run_batched(
    engine: "ServingEngine",
    stream: Iterable[tuple[np.ndarray, np.ndarray, Sequence[Request] | None]],
    rng: np.random.Generator,
) -> "EngineResult":
    """Run time-ordered request blocks through the vector core.

    ``stream`` yields ``(times, demands, requests)`` columns; ``requests``
    is only consulted when the engine keeps samples (it becomes the
    ``ServedRequest.request`` back-references).  The caller guarantees the
    concatenated times are non-decreasing — arrival processes emit sorted
    streams and ``ServingEngine.run`` sorts — which is asserted cheaply per
    chunk.
    """
    from repro.traffic.engine import EngineResult

    state = _FleetState(engine.devices)
    keep = engine.keep_samples
    served: list[ServedRequest] = []
    served_count = 0
    cursor = 0
    last_s = 0.0
    previous_end = -np.inf

    for times, demands, requests in stream:
        count = times.size
        if count == 0:
            continue
        if times[0] < previous_end or np.any(np.diff(times) < 0):
            raise ValueError("batched execution needs time-ordered arrivals")
        previous_end = times[-1]
        assign = _assignments(engine, count, cursor, rng)
        cursor += count
        outputs = _advance_chunk(state, assign, times, demands, keep)
        served_count += count
        last_s = float(times[-1])
        if keep:
            assert requests is not None
            queueing, response, before, after, fullness, temp, sprinted = outputs
            device_ids = state.device_ids[assign]
            served.extend(
                ServedRequest(
                    request=requests[i],
                    device_id=int(device_ids[i]),
                    sprinted=bool(sprinted[i]),
                    queueing_delay_s=float(queueing[i]),
                    service_time_s=float(response[i]),
                    stored_heat_before_j=float(before[i]),
                    stored_heat_after_j=float(after[i]),
                    sprint_fullness=float(fullness[i]),
                    package_temperature_c=float(temp[i]),
                    melt_fraction=0.0,
                )
                for i in range(count)
            )

    state.sync_back()
    return EngineResult(
        served=tuple(served),
        rejected=(),
        abandoned=(),
        governor_stats=None,
        final_time_s=last_s,
        served_count=served_count,
        rejected_count=0,
        abandoned_count=0,
    )
