"""Replicated experiments: error bars and paired comparisons for fleet runs.

One stochastic replication of a fleet scenario produces a point estimate
with no notion of its own error; every headline number of the traffic
stack (p99 latency, SLO attainment, breaker trips) is a random variable
of the arrival and service draws.  This module is the measurement
discipline on top of the simulator:

* :class:`Scenario` — a frozen, picklable description of one fleet
  experiment (arrival process × service model × fleet configuration),
  the unit everything below replicates,
* :class:`ReplicationPlan` — scenario × replication count × pairing
  mode × base seed, with deterministic per-replication seed streams
  derived through :func:`repro.traffic.arrivals.seed_stream`,
* :func:`run_replications` — N independent replications (fanned across
  worker processes via the sweep's pool) reduced to per-metric
  mean / Student-t confidence intervals (:class:`ExperimentResult`),
* :func:`run_until` — sequential stopping: add replications until the
  target metric's CI half-width falls under a threshold,
* :func:`compare` — a paired baseline-vs-treatment experiment.  Under
  ``pairing="crn"`` (common random numbers) both arms of replication
  ``r`` consume *identical* arrival and service draws, so per-replication
  deltas cancel the shared traffic noise and the paired-difference CI is
  much tighter than independent seeding at the same replication budget —
  the standard variance-reduction technique for simulation comparisons.

Seed discipline
---------------
Replication ``r`` of an experiment draws its request stream from
``seed_stream(base_seed, REQUEST_DOMAIN, r, ...)`` and its dispatch RNG
from ``seed_stream(base_seed, DISPATCH_DOMAIN, r, ...)``.  Under CRN the
arm index is *excluded* from both keys, so every arm replays the same
draws; under independent pairing it is appended, so arms are decoupled.
The streams depend only on ``(base_seed, r)`` — never on worker count,
chunking, or how many replications were ultimately run — so sequential
stopping and multiprocessing are bit-identical to a serial run.

Quick start::

    from repro import SystemConfig
    from repro.traffic import (
        GammaService, PoissonArrivals, Scenario, compare, run_replications,
        ReplicationPlan,
    )

    scenario = Scenario(
        arrivals=PoissonArrivals(0.3), service=GammaService(5.0, cv=1.0),
        n_requests=200, n_devices=4, slo_s=2.0,
    )
    result = run_replications(ReplicationPlan(scenario, n_replications=16))
    print(result.estimate("p99_latency_s"))          # mean ± half-width

    duel = compare(
        scenario.with_options(sprint_enabled=False), scenario,
        n_replications=16,
    )
    print(duel.delta("p99_latency_s"))               # paired Δ with sign test

A fully deterministic scenario has no randomness to average over, so its
plan collapses to a single replication:

>>> from repro.traffic.arrivals import DeterministicArrivals
>>> from repro.traffic.experiments import ReplicationPlan, Scenario
>>> from repro.traffic.request import FixedService
>>> scenario = Scenario(
...     arrivals=DeterministicArrivals(30.0),
...     service=FixedService(5.0),
...     n_requests=4,
... )
>>> ReplicationPlan(scenario=scenario, n_replications=8).effective_replications
1
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    TraceArrivals,
    seed_stream,
)
from repro.traffic.engine import DISPATCH_POLICIES, EXECUTION_MODES, QUEUE_DISCIPLINES
from repro.traffic.fleet import FLEET_MODES, FleetResult, FleetSimulator, resolve_telemetry
from repro.traffic.fluid import FluidResult
from repro.traffic.governor import GovernorSpec
from repro.traffic.metrics import (
    MetricEstimate,
    PairedDelta,
    TrafficSummary,
    aggregate_summaries,
    mean_ci,
    paired_delta,
)
from repro.traffic.request import FixedService, Request, ServiceModel, generate_requests
from repro.traffic.sweep import PAIRING_MODES, pool_map
from repro.traffic.telemetry import (
    FleetTimeline,
    RunTelemetry,
    TelemetrySpec,
    TrafficTelemetry,
)
from repro.traffic.topology import TopologySpec

__all__ = [
    "ComparisonResult",
    "ExperimentResult",
    "ReplicationPlan",
    "Scenario",
    "compare",
    "run_replications",
    "run_until",
]

# Domain tags separating the seed universes of an experiment's streams.
# Appending a tag word keeps replication streams disjoint from the legacy
# single-run and sweep streams, which use shorter keys.
_REQUEST_DOMAIN = 11
_DISPATCH_DOMAIN = 13


@dataclass(frozen=True)
class Scenario:
    """A frozen fleet experiment: what is simulated, minus the seeds.

    The scenario pins everything except randomness — the arrival process,
    the service-demand model, the fleet and its dispatch/governance/thermal
    configuration — so a :class:`ReplicationPlan` can replay it under
    controlled seed streams.  It is hashable and picklable (worker-pool
    safe), and :meth:`with_options` derives treatment variants for paired
    comparisons without retyping the scenario.
    """

    arrivals: ArrivalProcess
    service: ServiceModel
    n_requests: int
    n_devices: int = 1
    policy: str = "least_loaded"
    mode: str = "immediate"
    discipline: str = "fifo"
    queue_bound: int | None = None
    governor: GovernorSpec | str = GovernorSpec()
    thermal: ThermalSpec | str = ThermalSpec()
    sprint_speedup: float = 10.0
    sprint_enabled: bool = True
    refuse_partial_sprints: bool = False
    deadline_s: float | None = None
    slo_s: float | None = None
    #: When False replications keep no per-request sample lists — memory
    #: stays flat over any horizon and summaries come from the streaming
    #: quantile sketch (within its documented rank-error bound).
    keep_samples: bool = True
    #: Streaming instruments each replication runs (see
    #: :func:`repro.traffic.fleet.resolve_telemetry` for the knob's
    #: semantics).  Replication telemetry lands in
    #: :attr:`ExperimentResult.telemetries` and merges across workers.
    telemetry: TelemetrySpec | bool | None = None
    #: Engine execution strategy for the discrete-event modes:
    #: ``"batched"`` (default — vectorized fast path where eligible,
    #: bit-identical to the event loop) or ``"exact"`` (always the scalar
    #: event loop).  Ignored by ``mode="fluid"``.
    engine: str = "batched"
    #: Hierarchical fleet shape (:class:`~repro.traffic.topology.TopologySpec`).
    #: When set, ``n_devices`` is taken from the topology (leave it at the
    #: default or set it to the matching total) and per-level budgets come
    #: from the spec's nodes, so ``governor`` must stay unlimited.
    topology: TopologySpec | None = None
    #: Worker processes a sharded (non-flat topology) replication fans its
    #: racks across.  Results are bit-identical for any value, so this is
    #: a speed knob, never a treatment variable.
    shard_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("a scenario needs at least one request")
        if self.topology is not None:
            if self.n_devices not in (1, self.topology.total_devices):
                raise ValueError(
                    f"n_devices={self.n_devices} conflicts with the "
                    f"topology's {self.topology.total_devices} devices; "
                    "leave n_devices unset"
                )
            object.__setattr__(self, "n_devices", self.topology.total_devices)
            if self.mode == "fluid":
                raise ValueError("fluid mode has no topology")
            governor = self.governor
            if isinstance(governor, str):
                governor = GovernorSpec(policy=governor)
            if governor.policy != "unlimited":
                raise ValueError(
                    "a topology scenario takes its budgets from the "
                    "topology spec; leave governor at 'unlimited'"
                )
        if self.shard_workers < 1:
            raise ValueError("shard worker count must be at least 1")
        if self.n_devices < 1:
            raise ValueError("a scenario needs at least one device")
        if self.policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.policy!r}; "
                f"available: {sorted(DISPATCH_POLICIES)}"
            )
        if self.mode not in FLEET_MODES:
            raise ValueError(
                f"unknown fleet mode {self.mode!r}; available: {FLEET_MODES}"
            )
        if self.engine not in EXECUTION_MODES:
            raise ValueError(
                f"unknown engine execution {self.engine!r}; "
                f"available: {EXECUTION_MODES}"
            )
        if self.discipline not in QUEUE_DISCIPLINES:
            raise ValueError(
                f"unknown queue discipline {self.discipline!r}; "
                f"available: {QUEUE_DISCIPLINES}"
            )
        # Normalise names to frozen specs so scenarios stay hashable and
        # equal whenever they mean the same experiment.
        if isinstance(self.governor, str):
            object.__setattr__(self, "governor", GovernorSpec(policy=self.governor))
        if isinstance(self.thermal, str):
            object.__setattr__(self, "thermal", ThermalSpec(backend=self.thermal))
        if self.mode == "fluid":
            # Fail at construction, not inside a worker process: the fluid
            # limit is ungoverned and instrument-free by construction.
            if self.governor.policy != "unlimited":
                raise ValueError(
                    "fluid mode is ungoverned; use the unlimited governor"
                )
            if self.queue_bound is not None:
                raise ValueError("fluid mode has no bounded central queue")
            if self.telemetry not in (None, False):
                raise ValueError(
                    "fluid mode carries no streaming instruments"
                )
        resolve_telemetry(self.telemetry, self.keep_samples)  # fail fast

    def with_options(self, **changes) -> "Scenario":
        """A treatment variant of this scenario (``dataclasses.replace``)."""
        return replace(self, **changes)

    @property
    def is_deterministic(self) -> bool:
        """True when replications cannot differ (no stochastic draw left).

        Deterministic arrivals (periodic or trace replay) with fixed
        service demands leave only the dispatch RNG, which is consumed
        solely by the ``random`` immediate-mode policy.  Replicating such
        a scenario is redundant; plans collapse it to one replication.
        """
        if not isinstance(self.arrivals, (DeterministicArrivals, TraceArrivals)):
            return False
        if not isinstance(self.service, FixedService):
            return False
        return not (self.mode == "immediate" and self.policy == "random")

    def requests(self, seed: int | np.random.SeedSequence) -> list[Request]:
        """Materialise the scenario's request stream under one seed."""
        return generate_requests(
            self.arrivals,
            self.service,
            self.n_requests,
            seed=seed,
            deadline_s=self.deadline_s,
        )

    def build_fleet(self, config: SystemConfig) -> FleetSimulator:
        """A fresh fleet simulator for this scenario on a platform."""
        return FleetSimulator(
            config,
            n_devices=self.n_devices,
            policy=self.policy,
            sprint_speedup=self.sprint_speedup,
            sprint_enabled=self.sprint_enabled,
            refuse_partial_sprints=self.refuse_partial_sprints,
            mode=self.mode,
            discipline=self.discipline,
            queue_bound=self.queue_bound,
            governor=self.governor,
            thermal=self.thermal,
            keep_samples=self.keep_samples,
            telemetry=self.telemetry,
            engine=self.engine,
            topology=self.topology,
            shard_workers=self.shard_workers,
        )

    def simulate(
        self,
        config: SystemConfig,
        request_seed: int | np.random.SeedSequence,
        run_seed: int | np.random.SeedSequence,
    ) -> FleetResult | FluidResult:
        """One full replication: generate requests, run the fleet."""
        return self.build_fleet(config).run(self.requests(request_seed), seed=run_seed)


@dataclass(frozen=True)
class ReplicationPlan:
    """Scenario × replication count × pairing mode × seed universe.

    The plan owns the seed discipline: :meth:`request_seed` and
    :meth:`run_seed` derive replication ``r``'s streams deterministically
    from ``(base_seed, domain, r)`` alone, so results never depend on
    worker count or on how many replications end up being run.  ``arm``
    distinguishes the sides of a paired comparison: under ``"crn"``
    pairing it is ignored (both arms replay identical draws — common
    random numbers), under ``"independent"`` it decouples them.
    """

    scenario: Scenario
    n_replications: int = 8
    pairing: str = "crn"
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_replications < 1:
            raise ValueError("a plan needs at least one replication")
        if self.pairing not in PAIRING_MODES:
            raise ValueError(
                f"unknown pairing mode {self.pairing!r}; available: {PAIRING_MODES}"
            )

    @property
    def effective_replications(self) -> int:
        """Replications actually worth running (1 for a deterministic scenario)."""
        return 1 if self.scenario.is_deterministic else self.n_replications

    def _stream(self, domain: int, replication: int, arm: int) -> np.random.SeedSequence:
        if replication < 0:
            raise ValueError("replication index must be non-negative")
        if arm < 0:
            raise ValueError("arm index must be non-negative")
        if self.pairing == "crn":
            return seed_stream(self.base_seed, domain, replication)
        return seed_stream(self.base_seed, domain, replication, 1 + arm)

    def request_seed(self, replication: int, arm: int = 0) -> np.random.SeedSequence:
        """Arrival/service stream of one replication (shared across CRN arms)."""
        return self._stream(_REQUEST_DOMAIN, replication, arm)

    def run_seed(self, replication: int, arm: int = 0) -> np.random.SeedSequence:
        """Dispatch-RNG stream of one replication (shared across CRN arms)."""
        return self._stream(_DISPATCH_DOMAIN, replication, arm)

    def with_replications(self, n: int) -> "ReplicationPlan":
        """The same plan at a different replication budget (seeds unchanged)."""
        return replace(self, n_replications=n)


def _replication_job(
    job: tuple[Scenario, SystemConfig, np.random.SeedSequence, np.random.SeedSequence],
) -> tuple[TrafficSummary, RunTelemetry | None]:
    """Module-level shim so the worker pool can pickle replication work.

    Returns the replication's summary *and* its telemetry bundle, so
    sketches and timelines stream back from worker processes and merge —
    fleet-wide tail quantiles never require shipping sample lists.
    """
    scenario, config, request_seed, run_seed = job
    result = scenario.simulate(config, request_seed, run_seed)
    return result.summary(slo_s=scenario.slo_s), result.telemetry


@dataclass(frozen=True)
class ExperimentResult:
    """All replications of one scenario, with CI-bearing aggregation."""

    plan: ReplicationPlan
    summaries: tuple[TrafficSummary, ...]
    #: Per-replication telemetry bundles, aligned with ``summaries``
    #: (``None`` entries for replications that ran without instruments).
    telemetries: tuple[RunTelemetry | None, ...] = ()

    @property
    def n_replications(self) -> int:
        """Replications actually run (1 for a collapsed deterministic plan)."""
        return len(self.summaries)

    def pooled_stream(self) -> TrafficTelemetry:
        """All replications' telemetry streams merged into one.

        The pooled latency sketch answers *aggregate* tail-quantile
        queries — "p99 over every request of every replication" — which
        per-replication summaries cannot express, in O(capacity) memory.
        """
        streams = [
            t.stream
            for t in self.telemetries
            if t is not None and t.stream is not None
        ]
        if not streams:
            raise ValueError(
                "no replication carried a telemetry stream; run the scenario "
                "with keep_samples=False or telemetry=TelemetrySpec()"
            )
        merged = TrafficTelemetry(sketch_capacity=streams[0].latency.capacity)
        for stream in streams:
            merged.merge(stream)
        return merged

    def pooled_quantile(self, q: float) -> float:
        """Aggregate latency quantile across every replication's requests."""
        return self.pooled_stream().latency.quantile(q)

    def merged_timeline(self) -> FleetTimeline:
        """All replications' fleet timelines merged window-by-window."""
        timelines = [
            t.timeline
            for t in self.telemetries
            if t is not None and t.timeline is not None
        ]
        if not timelines:
            raise ValueError(
                "no replication carried a timeline; set a timeline cadence "
                "on the scenario's TelemetrySpec"
            )
        merged = timelines[0]
        for timeline in timelines[1:]:
            merged = merged.merge(timeline)
        return merged

    def values(self, field: str) -> np.ndarray:
        """Per-replication values of one :class:`TrafficSummary` field."""
        values = [getattr(s, field) for s in self.summaries]
        if any(v is None for v in values):
            raise ValueError(
                f"field {field!r} is unset on at least one replication "
                "(set an SLO on the scenario to aggregate slo_attainment)"
            )
        return np.asarray(values, dtype=float)

    def estimate(
        self, field: str = "p99_latency_s", confidence: float = 0.95
    ) -> MetricEstimate:
        """Mean / CI half-width of one metric across replications.

        A collapsed deterministic scenario reports a zero-width interval
        (the value is exact by construction); a genuinely stochastic
        single-replication result reports an infinite half-width.
        """
        if self.n_replications == 1 and self.plan.scenario.is_deterministic:
            return MetricEstimate.exact(
                float(self.values(field)[0]), confidence=confidence
            )
        return mean_ci(self.values(field), confidence=confidence)

    def estimates(self, confidence: float = 0.95) -> dict[str, MetricEstimate]:
        """Mean / CI per aggregatable :class:`TrafficSummary` field."""
        if self.n_replications == 1 and self.plan.scenario.is_deterministic:
            return {
                field: MetricEstimate.exact(est.mean, confidence=confidence)
                for field, est in aggregate_summaries(
                    self.summaries, confidence=confidence
                ).items()
            }
        return aggregate_summaries(self.summaries, confidence=confidence)

    def format_report(
        self,
        fields: tuple[str, ...] = (
            "p50_latency_s",
            "p99_latency_s",
            "mean_latency_s",
            "throughput_rps",
            "sprint_fraction",
        ),
        confidence: float = 0.95,
    ) -> str:
        """One line per metric: ``name  mean ± half-width (CI, n)``."""
        width = max(len(f) for f in fields)
        return "\n".join(
            f"{field:>{width}}  {self.estimate(field, confidence)}" for field in fields
        )


def run_replications(
    plan: ReplicationPlan,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> ExperimentResult:
    """Run a plan's replications, optionally fanned across processes.

    Reuses the sweep's worker pool (:func:`repro.traffic.sweep.pool_map`),
    and is bit-identical for any worker count because every replication's
    seed streams derive from the plan alone.  A deterministic scenario
    collapses to a single replication (see
    :attr:`ReplicationPlan.effective_replications`).
    """
    config = config or SystemConfig.paper_default()
    jobs = [
        (plan.scenario, config, plan.request_seed(r), plan.run_seed(r))
        for r in range(plan.effective_replications)
    ]
    outcomes = pool_map(_replication_job, jobs, workers)
    return ExperimentResult(
        plan=plan,
        summaries=tuple(summary for summary, _ in outcomes),
        telemetries=tuple(telemetry for _, telemetry in outcomes),
    )


def run_until(
    plan: ReplicationPlan,
    target_half_width: float,
    metric: str = "p99_latency_s",
    config: SystemConfig | None = None,
    workers: int = 1,
    batch: int | None = None,
    max_replications: int = 64,
    confidence: float = 0.95,
) -> ExperimentResult:
    """Sequential stopping: replicate until the CI is tight enough.

    Starts from the plan's replication count (at least two — one
    replication has no measurable width), then adds ``batch`` replications
    at a time until the ``metric`` CI half-width falls to
    ``target_half_width`` or ``max_replications`` is reached.  Replication
    ``r``'s streams depend only on ``(base_seed, r)``, so the result is
    bit-identical to a fixed-count run of the same final size — stopping
    early never changes what was measured, only how much.
    """
    if target_half_width <= 0:
        raise ValueError("target half-width must be positive")
    if max_replications < 2:
        raise ValueError("sequential stopping needs max_replications >= 2")
    config = config or SystemConfig.paper_default()
    if plan.scenario.is_deterministic:
        return run_replications(plan, config=config, workers=workers)
    batch = max(1, workers if batch is None else batch)
    n = min(max(2, plan.n_replications), max_replications)
    summaries: list[TrafficSummary] = []
    telemetries: list[RunTelemetry | None] = []
    while True:
        jobs = [
            (plan.scenario, config, plan.request_seed(r), plan.run_seed(r))
            for r in range(len(summaries), n)
        ]
        for summary, telemetry in pool_map(_replication_job, jobs, workers):
            summaries.append(summary)
            telemetries.append(telemetry)
        result = ExperimentResult(
            plan=plan.with_replications(len(summaries)),
            summaries=tuple(summaries),
            telemetries=tuple(telemetries),
        )
        if result.estimate(metric, confidence).half_width <= target_half_width:
            return result
        if n >= max_replications:
            return result
        n = min(n + batch, max_replications)


@dataclass(frozen=True)
class ComparisonResult:
    """Baseline and treatment experiments, paired replication by replication."""

    baseline: ExperimentResult
    treatment: ExperimentResult

    @property
    def pairing(self) -> str:
        """Seeding mode the two arms ran under (``"crn"`` or ``"independent"``)."""
        return self.baseline.plan.pairing

    @property
    def n_replications(self) -> int:
        """Replications per arm."""
        return self.baseline.n_replications

    def delta(
        self, field: str = "p99_latency_s", confidence: float = 0.95
    ) -> PairedDelta:
        """Treatment-minus-baseline CI and sign test for one metric."""
        return paired_delta(
            self.baseline.values(field), self.treatment.values(field), confidence
        )

    def format_report(
        self,
        fields: tuple[str, ...] = ("p50_latency_s", "p99_latency_s", "mean_latency_s"),
        confidence: float = 0.95,
    ) -> str:
        """One line per metric: the paired delta with its CI and sign test."""
        width = max(len(f) for f in fields)
        return "\n".join(
            f"{field:>{width}}  {self.delta(field, confidence)}" for field in fields
        )


def compare(
    baseline: Scenario,
    treatment: Scenario,
    n_replications: int = 8,
    pairing: str = "crn",
    base_seed: int = 0,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> ComparisonResult:
    """Run a paired baseline-vs-treatment experiment.

    Under ``pairing="crn"`` both arms of replication ``r`` replay identical
    arrival and service draws, so the paired deltas measure only the
    configuration difference — the common-random-numbers variance
    reduction.  ``pairing="independent"`` seeds the arms separately (the
    noisy classical design, kept for measuring how much CRN buys).  The
    deterministic-scenario collapse applies only when *both* arms are
    deterministic, since pairing needs arms of equal length.
    """
    config = config or SystemConfig.paper_default()
    base_plan = ReplicationPlan(
        scenario=baseline,
        n_replications=n_replications,
        pairing=pairing,
        base_seed=base_seed,
    )
    treat_plan = replace(base_plan, scenario=treatment)
    if baseline.is_deterministic and treatment.is_deterministic:
        n = 1
    else:
        n = n_replications
    jobs = [
        (plan.scenario, config, plan.request_seed(r, arm), plan.run_seed(r, arm))
        for arm, plan in enumerate((base_plan, treat_plan))
        for r in range(n)
    ]
    outcomes = pool_map(_replication_job, jobs, workers)
    summaries = [summary for summary, _ in outcomes]
    telemetries = [telemetry for _, telemetry in outcomes]
    return ComparisonResult(
        baseline=ExperimentResult(
            plan=base_plan,
            summaries=tuple(summaries[:n]),
            telemetries=tuple(telemetries[:n]),
        ),
        treatment=ExperimentResult(
            plan=treat_plan,
            summaries=tuple(summaries[n:]),
            telemetries=tuple(telemetries[n:]),
        ),
    )
