"""Fleet sprint governor: coordinated sprinting under a shared power budget.

The paper's capacitance argument is device-local: thermal mass lets one chip
briefly exceed its sustainable power.  A rack replays the same argument one
level up — the provisioned supply (and its breaker) is sized for the fleet's
sustained draw plus some headroom, so *concurrent* sprints across devices
share a budget exactly the way one chip's sprints share a heat reservoir.
This module is that shared budget: a :class:`SprintGovernor` issues **grants**
for sprints, the serving engine acquires one before a device may run a
request sprinted and releases it when the device frees, and four policies
decide who gets to sprint:

* ``unlimited`` — every sprint is granted and nothing is tracked; the engine
  bypasses the governor entirely, so results are bit-identical to an
  ungoverned fleet (locked by regression tests).
* ``greedy`` — first-come grants up to ``max_concurrent_sprints``.  Greedy is
  breaker-oblivious: given a ``trip_headroom_w``, it will happily grant past
  the trip point and trip the breaker.
* ``token_bucket`` — a sustained-rate cap with burst credit: tokens refill at
  ``sprint_rate_hz`` up to ``burst_sprints``, one token per sprint.  This is
  the paper's capacitance argument at rack scale — the bucket *is* the
  electrical/thermal slack of the room, spent in bursts and repaid at the
  sustainable rate.
* ``cooperative_threshold`` — a sprint is granted only when the projected
  fleet excess draw (including the new sprint) stays at or under the trip
  point, so a cooperative fleet never trips the breaker that an identically
  loaded greedy fleet does.

The breaker
-----------
Any governed policy may carry a ``trip_headroom_w`` trip point: whenever the
*actual* granted excess draw exceeds it, the breaker trips.  The model does
not cut power to sprints already in flight (their outcomes are committed);
instead a trip opens a recovery window of ``penalty_s`` seconds during which
every grant is denied, forcing fleet-wide non-sprint operation — the serving
analogue of waiting for the breaker to be reset.  Trips, denials, released
grants, and time spent at the cap are all reported in :class:`GovernorStats`.

Grant semantics
---------------
A grant reserves breaker headroom from the instant the request is dispatched
until the device frees (the engine releases it on the request's completion
event).  In immediate dispatch mode a request bound to a busy device holds
its grant while queueing — a conservative reservation, like capacity
reservations in real admission control.  A grant whose request ends up not
sprinting (the device's own thermal reservoir was empty, or the device has
sprinting disabled) is released back immediately — concurrency policies
return the slot, the token bucket refunds the token — and counted in
``grants_released_unused``, so budget never leaks.

Usage — two greedy slots: the third concurrent sprint is denied, and the
run's ledger records both outcomes:

>>> from repro.traffic.governor import GreedyGovernor
>>> gov = GreedyGovernor(excess_power_w=10.0, max_concurrent_sprints=2)
>>> gov.acquire(0.0), gov.acquire(0.0), gov.acquire(0.0)
(True, True, False)
>>> gov.release(1.0)
>>> stats = gov.finalize(10.0)
>>> stats.sprints_granted, stats.sprints_denied
(2, 1)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SystemConfig

__all__ = [
    "GOVERNOR_POLICIES",
    "CooperativeThresholdGovernor",
    "GovernorSpec",
    "GovernorStats",
    "GreedyGovernor",
    "SprintGovernor",
    "TokenBucketGovernor",
    "UnlimitedGovernor",
]

#: Governance policies a :class:`GovernorSpec` can name.
GOVERNOR_POLICIES = ("unlimited", "greedy", "token_bucket", "cooperative_threshold")

#: Tolerance for token-bucket float drift: a bucket within this of a whole
#: token grants, so refill arithmetic cannot starve an exactly-repaid bucket.
_TOKEN_EPS = 1e-9


@dataclass(frozen=True)
class GovernorStats:
    """What one governed run did with its shared power budget.

    ``time_at_cap_s`` is the total simulated time during which the governor
    could not have issued a grant — at its concurrency cap or trip point,
    inside a post-trip penalty window, or (token bucket) with less than one
    token in the bucket.  It is the rack-scale analogue of a device's
    exhausted thermal reservoir: high values mean the provisioned budget,
    not the devices, is what limits sprinting.
    """

    policy: str
    #: Per-sprint excess draw above sustained operation (W), from the config.
    excess_power_w: float
    sprints_granted: int
    sprints_denied: int
    #: Grants returned unused because the granted request did not sprint
    #: (device thermally exhausted or sprint-disabled) — budget that never
    #: translated into draw, released back at the grant instant.
    grants_released_unused: int
    breaker_trips: int
    #: Instants at which the breaker tripped, in time order.
    trip_times_s: tuple[float, ...]
    time_at_cap_s: float
    peak_concurrent_sprints: int

    @property
    def peak_excess_draw_w(self) -> float:
        """Highest granted excess draw the run ever reached."""
        return self.peak_concurrent_sprints * self.excess_power_w


class SprintGovernor:
    """Base grant-accounting machinery shared by every policy.

    Subclasses implement :meth:`_decide` (grant or deny one sprint request
    at an instant) and :meth:`_saturated` (whether a request at an instant
    would be denied — used for ``time_at_cap_s`` bookkeeping).  The engine
    drives the protocol: :meth:`acquire` before a request may sprint,
    :meth:`release` when its device frees (or immediately, if the grant went
    unused), :meth:`pop_pending_reset` after each acquire so a breaker trip
    can schedule its recovery event, and :meth:`finalize` once the event
    heap drains.

    Acquire/release timestamps must be non-decreasing — the engine calls
    them in event order, which guarantees it.
    """

    name = "base"
    is_unlimited = False
    #: Whether the batched engine core can replay this policy's grant
    #: decisions exactly (see :mod:`repro.traffic.fastpath`).  The batch
    #: core drives the real governor object at the exact event timestamps,
    #: which is exact for purely event-driven policies; a policy whose
    #: decisions depend on state the batch core cannot reproduce must
    #: override this with False to stay on the exact loop.
    supports_batched_replay = True

    def __init__(
        self,
        excess_power_w: float,
        trip_headroom_w: float | None = None,
        penalty_s: float = 0.0,
    ) -> None:
        if excess_power_w < 0:
            raise ValueError("per-sprint excess power must be non-negative")
        if trip_headroom_w is not None and trip_headroom_w <= 0:
            raise ValueError("breaker trip headroom must be positive (or None)")
        if penalty_s < 0:
            raise ValueError("breaker penalty must be non-negative")
        self.excess_power_w = excess_power_w
        self.trip_headroom_w = trip_headroom_w
        self.penalty_s = penalty_s
        self.reset()

    # -- state ------------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all grants, trips, and accounting (a fresh run)."""
        self._active = 0
        self._granted = 0
        self._denied = 0
        self._released_unused = 0
        self._trips: list[float] = []
        self._penalty_until = -math.inf
        self._pending_reset: float | None = None
        self._cap_since: float | None = None
        self._time_at_cap = 0.0
        self._peak_active = 0

    @property
    def active_grants(self) -> int:
        """Sprint grants currently held (0 once a run's events drain)."""
        return self._active

    @property
    def active_excess_draw_w(self) -> float:
        """Excess fleet draw currently reserved by held grants."""
        return self._active * self.excess_power_w

    @property
    def breaker_trips(self) -> int:
        """Breaker trips so far."""
        return len(self._trips)

    # -- the grant protocol -----------------------------------------------------------

    def acquire(self, now_s: float) -> bool:
        """Request a sprint grant at ``now_s``; True iff granted.

        A granted sprint that pushes the actual excess draw past the trip
        point trips the breaker: the sprint itself proceeds (greedy policies
        are breaker-oblivious by design), but a ``penalty_s`` recovery
        window opens during which every further grant is denied.
        """
        granted = self._decide(now_s)
        if granted:
            self._granted += 1
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)
            if (
                self.trip_headroom_w is not None
                and self.active_excess_draw_w > self.trip_headroom_w
            ):
                self._trip(now_s)
        else:
            self._denied += 1
        self._update_cap(now_s)
        return granted

    def release(self, now_s: float, used: bool = True) -> None:
        """Return one grant (the device freed, or the grant went unused)."""
        if self._active <= 0:
            raise RuntimeError("release without a matching grant")
        self._active -= 1
        if not used:
            self._released_unused += 1
        self._update_cap(now_s)

    def would_deny(self, now_s: float) -> bool:
        """Non-binding probe: would :meth:`acquire` at ``now_s`` be denied?

        Nothing is granted, denied, or counted — the cascade protocol in
        :mod:`repro.traffic.topology` probes every level of a governor
        chain with this before committing the grant at all of them, so a
        parent-level refusal never leaves a child holding a phantom grant.
        """
        return self._saturated(now_s)

    def count_denial(self, now_s: float) -> None:
        """Record a denial this governor caused but did not itself decide.

        Used by the hierarchical cascade: when :meth:`would_deny` was True
        and the grant was therefore never attempted, the blocking level
        still owns the denial in its ledger.
        """
        self._denied += 1
        self._update_cap(now_s)

    def pop_pending_reset(self) -> float | None:
        """Instant of a just-tripped breaker's recovery, once, else None.

        The engine calls this after every :meth:`acquire` and schedules a
        breaker-reset event at the returned time, so the penalty window
        closes at its exact end even if no request arrives for a while.
        """
        at, self._pending_reset = self._pending_reset, None
        return at

    def on_breaker_reset(self, now_s: float) -> None:
        """The penalty window ended; close at-cap bookkeeping exactly here."""
        self._update_cap(now_s)

    def finalize(self, end_s: float) -> GovernorStats:
        """Close open accounting intervals at ``end_s`` and report the run."""
        self._close(end_s)
        return GovernorStats(
            policy=self.name,
            excess_power_w=self.excess_power_w,
            sprints_granted=self._granted,
            sprints_denied=self._denied,
            grants_released_unused=self._released_unused,
            breaker_trips=len(self._trips),
            trip_times_s=tuple(self._trips),
            time_at_cap_s=self._time_at_cap,
            peak_concurrent_sprints=self._peak_active,
        )

    # -- policy hooks -----------------------------------------------------------------

    def _decide(self, now_s: float) -> bool:
        raise NotImplementedError

    def _saturated(self, now_s: float) -> bool:
        """Would a grant request at ``now_s`` be denied?"""
        raise NotImplementedError

    # -- shared machinery -------------------------------------------------------------

    def _in_penalty(self, now_s: float) -> bool:
        return now_s < self._penalty_until

    def _trip(self, now_s: float) -> None:
        self._trips.append(now_s)
        if self.penalty_s > 0:
            self._penalty_until = now_s + self.penalty_s
            self._pending_reset = self._penalty_until

    def _update_cap(self, now_s: float) -> None:
        if self._saturated(now_s):
            if self._cap_since is None:
                self._cap_since = now_s
        elif self._cap_since is not None:
            self._time_at_cap += now_s - self._cap_since
            self._cap_since = None

    def _close(self, end_s: float) -> None:
        if self._cap_since is not None:
            self._time_at_cap += max(0.0, end_s - self._cap_since)
            self._cap_since = None


class UnlimitedGovernor(SprintGovernor):
    """Every sprint granted, nothing governed — today's behaviour.

    The engine recognises ``is_unlimited`` and skips the grant handshake
    entirely, so an unlimited-governed fleet is *bit-identical* to an
    ungoverned one (no extra events, no float-path changes).  The class
    still answers the protocol for callers that drive it directly.
    """

    name = "unlimited"
    is_unlimited = True

    def __init__(self, excess_power_w: float = 0.0) -> None:
        super().__init__(excess_power_w)

    def _decide(self, now_s: float) -> bool:
        return True

    def _saturated(self, now_s: float) -> bool:
        return False


class GreedyGovernor(SprintGovernor):
    """First-come grants up to a fixed number of concurrent sprints.

    Greedy never looks at the breaker before granting: with
    ``max_concurrent_sprints`` provisioned above the trip point it *will*
    trip, which is exactly the failure mode
    :class:`CooperativeThresholdGovernor` exists to avoid.
    """

    name = "greedy"

    def __init__(
        self,
        excess_power_w: float,
        max_concurrent_sprints: int,
        trip_headroom_w: float | None = None,
        penalty_s: float = 0.0,
    ) -> None:
        if max_concurrent_sprints < 1:
            raise ValueError("greedy needs at least one concurrent sprint slot")
        super().__init__(excess_power_w, trip_headroom_w, penalty_s)
        self.max_concurrent_sprints = max_concurrent_sprints

    def _decide(self, now_s: float) -> bool:
        if self._in_penalty(now_s):
            return False
        return self._active < self.max_concurrent_sprints

    def _saturated(self, now_s: float) -> bool:
        return self._in_penalty(now_s) or self._active >= self.max_concurrent_sprints


class CooperativeThresholdGovernor(SprintGovernor):
    """Sprint only when the projected fleet draw stays under the trip point.

    Grants are capped so the *projected* excess draw — held grants plus the
    new sprint — never exceeds ``trip_headroom_w``, so a cooperative fleet
    avoids the breaker trips a greedy fleet incurs at the same offered
    load.  The penalty machinery is still armed (a trip would open a
    ``penalty_s`` recovery window), but the threshold check makes the
    governor's own grants unable to cause one.
    """

    name = "cooperative_threshold"

    def __init__(
        self,
        excess_power_w: float,
        trip_headroom_w: float,
        penalty_s: float = 0.0,
    ) -> None:
        super().__init__(excess_power_w, trip_headroom_w, penalty_s)

    def _projected_draw_w(self) -> float:
        return (self._active + 1) * self.excess_power_w

    def _decide(self, now_s: float) -> bool:
        if self._in_penalty(now_s):
            return False
        return self._projected_draw_w() <= self.trip_headroom_w

    def _saturated(self, now_s: float) -> bool:
        return self._in_penalty(now_s) or self._projected_draw_w() > self.trip_headroom_w


class TokenBucketGovernor(SprintGovernor):
    """Sustained-rate sprint cap with burst credit (capacitance at rack scale).

    The bucket starts full at ``burst_sprints`` tokens (the rack's stored
    slack), refills continuously at ``sprint_rate_hz`` (the sustainable
    sprint rate the provisioning can repay), and each grant spends one
    token.  A grant released *unused* (the granted request never sprinted)
    refunds its token, so budget does not leak here any more than it does
    for the concurrency-counting policies.  ``time_at_cap_s`` counts the
    analytically exact span during which a grant would have been denied —
    less than one token in the bucket or a breaker penalty window, as a
    union, never double-counted — including between events, since the
    refill instant is deterministic.  Identical request streams give
    identical grants: the bucket holds no randomness.
    """

    name = "token_bucket"
    #: Continuous refill-on-decide credit makes every grant depend on real
    #: elapsed time between decisions; the batched core keeps this policy
    #: on the exact loop rather than certify the replay exact.
    supports_batched_replay = False

    def __init__(
        self,
        excess_power_w: float,
        sprint_rate_hz: float,
        burst_sprints: float,
        trip_headroom_w: float | None = None,
        penalty_s: float = 0.0,
    ) -> None:
        if sprint_rate_hz <= 0:
            raise ValueError("sustained sprint rate must be positive")
        if burst_sprints < 1:
            raise ValueError("burst capacity must cover at least one sprint")
        self.sprint_rate_hz = sprint_rate_hz
        self.burst_sprints = burst_sprints
        super().__init__(excess_power_w, trip_headroom_w, penalty_s)

    def reset(self) -> None:
        super().reset()
        self._tokens = self.burst_sprints
        self._last_refill_s = 0.0
        #: Open blocked interval: denial guaranteed over [_cap_from, _cap_until).
        self._cap_from: float | None = None
        self._cap_until = 0.0

    def release(self, now_s: float, used: bool = True) -> None:
        if not used and self._active > 0:
            # Refund the token: the grant never turned into sprint draw.
            self._refill(now_s)
            self._tokens = min(self.burst_sprints, self._tokens + 1.0)
        super().release(now_s, used)

    def _refill(self, now_s: float) -> None:
        self._tokens = min(
            self.burst_sprints,
            self._tokens + self.sprint_rate_hz * (now_s - self._last_refill_s),
        )
        self._last_refill_s = now_s

    def _decide(self, now_s: float) -> bool:
        self._refill(now_s)
        if self._in_penalty(now_s):
            return False
        if self._tokens < 1.0 - _TOKEN_EPS:
            return False
        self._tokens -= 1.0
        return True

    def _saturated(self, now_s: float) -> bool:
        return self._in_penalty(now_s) or self._tokens < 1.0 - _TOKEN_EPS

    def would_deny(self, now_s: float) -> bool:
        # The bucket must be refilled to ``now_s`` before the token check,
        # exactly as _decide does; refilling is idempotent at a fixed time.
        self._refill(now_s)
        return super().would_deny(now_s)

    def _advance_cap(self, now_s: float) -> None:
        """Settle the open blocked interval up to ``now_s`` (or its known end)."""
        if self._cap_from is not None:
            end = min(now_s, self._cap_until)
            if end > self._cap_from:
                self._time_at_cap += end - self._cap_from
            self._cap_from = None if now_s >= self._cap_until else now_s

    def _update_cap(self, now_s: float) -> None:
        # The bucket's denial horizon is known analytically: the later of
        # the penalty end and the instant the bucket refills to one token.
        # Tracking it as one interval keeps overlapping penalty and
        # exhaustion spans from being counted twice.
        self._refill(now_s)
        self._advance_cap(now_s)
        horizon = now_s
        if self._in_penalty(now_s):
            horizon = max(horizon, self._penalty_until)
        if self._tokens < 1.0 - _TOKEN_EPS:
            recovery = now_s + (1.0 - self._tokens) / self.sprint_rate_hz
            horizon = max(horizon, recovery)
        if horizon > now_s:
            if self._cap_from is None:
                self._cap_from = now_s
            self._cap_until = horizon
        else:
            # No longer blocked (e.g. a refunded token); the settled time up
            # to now is already accumulated.
            self._cap_from = None

    def _close(self, end_s: float) -> None:
        self._advance_cap(end_s)


@dataclass(frozen=True)
class GovernorSpec:
    """A governance policy plus its knobs, independent of any platform.

    The spec is the sweep-friendly form of a governor: frozen (hashable, so
    it can sit on a grid axis and cross process boundaries) and built into
    a live :class:`SprintGovernor` against a concrete
    :class:`~repro.core.config.SystemConfig`, which supplies the per-sprint
    excess draw ``sprint_power_w - sustainable_power_w``.

    Knobs by policy (all others must stay unset):

    * ``unlimited`` — none.
    * ``greedy`` — ``max_concurrent_sprints`` (required);
      ``trip_headroom_w``/``penalty_s`` arm the breaker it ignores.
    * ``token_bucket`` — ``sprint_rate_hz`` and ``burst_sprints``
      (required); the breaker knobs are optional.
    * ``cooperative_threshold`` — ``trip_headroom_w`` (required) and
      ``penalty_s``.

    Policy names accept hyphens (``"token-bucket"``) and are normalised to
    the underscore form.
    """

    policy: str = "unlimited"
    max_concurrent_sprints: int | None = None
    sprint_rate_hz: float | None = None
    burst_sprints: float | None = None
    trip_headroom_w: float | None = None
    penalty_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", self.policy.replace("-", "_"))
        if self.policy not in GOVERNOR_POLICIES:
            raise ValueError(
                f"unknown governor policy {self.policy!r}; "
                f"available: {GOVERNOR_POLICIES}"
            )
        if self.penalty_s < 0:
            raise ValueError("breaker penalty must be non-negative")
        if self.trip_headroom_w is not None and self.trip_headroom_w <= 0:
            raise ValueError("breaker trip headroom must be positive (or None)")
        if self.policy == "unlimited":
            self._forbid(
                "max_concurrent_sprints",
                "sprint_rate_hz",
                "burst_sprints",
                "trip_headroom_w",
            )
        elif self.policy == "greedy":
            if self.max_concurrent_sprints is None or self.max_concurrent_sprints < 1:
                raise ValueError("greedy needs max_concurrent_sprints >= 1")
            self._forbid("sprint_rate_hz", "burst_sprints")
        elif self.policy == "token_bucket":
            if self.sprint_rate_hz is None or self.sprint_rate_hz <= 0:
                raise ValueError("token_bucket needs a positive sprint_rate_hz")
            if self.burst_sprints is None or self.burst_sprints < 1:
                raise ValueError("token_bucket needs burst_sprints >= 1")
            self._forbid("max_concurrent_sprints")
        else:  # cooperative_threshold
            if self.trip_headroom_w is None:
                raise ValueError("cooperative_threshold needs trip_headroom_w")
            self._forbid("max_concurrent_sprints", "sprint_rate_hz", "burst_sprints")

    def _forbid(self, *knobs: str) -> None:
        set_knobs = [k for k in knobs if getattr(self, k) is not None]
        if set_knobs:
            raise ValueError(f"{self.policy} governor does not take {set_knobs}")

    # -- constructors -----------------------------------------------------------------

    @classmethod
    def unlimited(cls) -> "GovernorSpec":
        return cls()

    @classmethod
    def greedy(
        cls,
        max_concurrent_sprints: int,
        trip_headroom_w: float | None = None,
        penalty_s: float = 0.0,
    ) -> "GovernorSpec":
        return cls(
            policy="greedy",
            max_concurrent_sprints=max_concurrent_sprints,
            trip_headroom_w=trip_headroom_w,
            penalty_s=penalty_s,
        )

    @classmethod
    def token_bucket(cls, sprint_rate_hz: float, burst_sprints: float) -> "GovernorSpec":
        return cls(
            policy="token_bucket",
            sprint_rate_hz=sprint_rate_hz,
            burst_sprints=burst_sprints,
        )

    @classmethod
    def cooperative(cls, trip_headroom_w: float, penalty_s: float = 0.0) -> "GovernorSpec":
        return cls(
            policy="cooperative_threshold",
            trip_headroom_w=trip_headroom_w,
            penalty_s=penalty_s,
        )

    # -- use --------------------------------------------------------------------------

    @property
    def label(self) -> str:
        """Compact form for sweep tables, e.g. ``greedy[4]`` or ``coop[60W]``."""
        if self.policy == "greedy":
            breaker = (
                "" if self.trip_headroom_w is None else f"!{self.trip_headroom_w:g}W"
            )
            return f"greedy[{self.max_concurrent_sprints}{breaker}]"
        if self.policy == "token_bucket":
            return f"token[{self.sprint_rate_hz:g}/s+{self.burst_sprints:g}]"
        if self.policy == "cooperative_threshold":
            return f"coop[{self.trip_headroom_w:g}W]"
        return "unlimited"

    def build(self, config: SystemConfig) -> SprintGovernor:
        """Instantiate the governor for a concrete platform."""
        excess_w = max(0.0, config.sprint_power_w - config.sustainable_power_w)
        if self.policy == "greedy":
            return GreedyGovernor(
                excess_w,
                max_concurrent_sprints=self.max_concurrent_sprints,
                trip_headroom_w=self.trip_headroom_w,
                penalty_s=self.penalty_s,
            )
        if self.policy == "token_bucket":
            return TokenBucketGovernor(
                excess_w,
                sprint_rate_hz=self.sprint_rate_hz,
                burst_sprints=self.burst_sprints,
                trip_headroom_w=self.trip_headroom_w,
                penalty_s=self.penalty_s,
            )
        if self.policy == "cooperative_threshold":
            return CooperativeThresholdGovernor(
                excess_w,
                trip_headroom_w=self.trip_headroom_w,
                penalty_s=self.penalty_s,
            )
        return UnlimitedGovernor(excess_w)
