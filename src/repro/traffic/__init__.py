"""Sprint-aware fleet serving under stochastic request load.

The paper evaluates one device running one task; this package asks the
question the paper's motivation implies: what happens when a *fleet* of
sprint-capable devices serves a *stream* of requests whose arrivals are
bursty, diurnal, or measured from a trace?  It is organised as a pipeline:

* :mod:`repro.traffic.arrivals` — seeded stochastic arrival processes
  (deterministic, Poisson, bursty on-off MMPP, diurnal, trace-driven),
* :mod:`repro.traffic.request` — the request model and service-demand
  samplers, including draws from the Table 1 kernel suite,
* :mod:`repro.traffic.device` — a serving wrapper around the sprint
  pacing model, so consecutive requests share one thermal budget whose
  physics is a pluggable backend
  (:class:`~repro.core.thermal_backend.ThermalSpec`: linear
  rule-of-thumb, RC cooling, or PCM enthalpy with melt telemetry),
* :mod:`repro.traffic.engine` — the heap-based discrete-event core:
  arrival/device-free/deadline plus grant-release/breaker-reset events,
  immediate and central-queue dispatch modes, bounded queues with
  rejection, deadline abandonment, and an O(log n) least-loaded device
  index,
* :mod:`repro.traffic.governor` — the fleet power-budget governor:
  sprints acquire grants from a shared budget (unlimited, greedy,
  token-bucket, or cooperative-threshold policies) with breaker-trip
  modelling, so racks cannot sprint past their provisioned supply,
* :mod:`repro.traffic.fleet` — the fleet simulator built on the engine,
  with round-robin, least-loaded, thermal-aware and random dispatch,
* :mod:`repro.traffic.metrics` — p50/p95/p99 latency, SLO attainment,
  sprint fraction, throughput, lifecycle (rejected/abandoned/
  deadline-miss) and sprint-governance (granted/denied/trips/time-at-cap)
  summaries,
* :mod:`repro.traffic.telemetry` — streaming observability: fixed-memory
  mergeable quantile sketches (deterministic KLL-style compaction),
  windowed fleet timelines (queue depth, in-flight sprints, granted
  power, thermal peaks), and ring-buffered structured event traces,
* :mod:`repro.traffic.topology` — hierarchical rack/row/datacenter
  power topologies: each level carries its own budget and breaker, and
  a sprint grant must clear *every* ancestor budget (the grant cascade),
* :mod:`repro.traffic.shard` — sharded parallel execution of a
  topology: each rack becomes an independent engine job fanned over a
  process pool, with pre-planned arrivals and per-window budget slices
  so results are bit-identical for any worker count,
* :mod:`repro.traffic.sweep` — a multiprocessing scenario sweep over
  policy × rate × fleet × discipline × queue-bound × governor × thermal
  × topology grids with deterministic seeding and a replication axis,
* :mod:`repro.traffic.experiments` — the replicated-experiment layer:
  frozen scenarios replayed N times under controlled seed streams, with
  per-metric confidence intervals, common-random-numbers paired
  comparisons (variance reduction), and CI-driven sequential stopping.

Quick start:

>>> from repro import SystemConfig
>>> from repro.traffic import FleetSimulator, PoissonArrivals, FixedService
>>> from repro.traffic import generate_requests
>>> requests = generate_requests(
...     PoissonArrivals(rate_hz=0.2), FixedService(5.0), n=50, seed=42
... )
>>> fleet = FleetSimulator(SystemConfig.paper_default(), n_devices=4)
>>> result = fleet.run(requests)
>>> result.summary(slo_s=2.0).request_count
50
"""

from repro.core.thermal_backend import (
    THERMAL_BACKENDS,
    LinearReservoir,
    PcmReservoir,
    RCCooling,
    ThermalBackend,
    ThermalSpec,
)
from repro.traffic.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    seed_stream,
)
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.experiments import (
    ComparisonResult,
    ExperimentResult,
    ReplicationPlan,
    Scenario,
    compare,
    run_replications,
    run_until,
)
from repro.traffic.engine import (
    DISPATCH_MODES,
    DISPATCH_POLICIES,
    EXECUTION_MODES,
    QUEUE_DISCIPLINES,
    DispatchFn,
    EngineResult,
    LeastLoadedIndex,
    ServingEngine,
)
from repro.traffic.fleet import (
    FLEET_MODES,
    DeviceStats,
    FleetResult,
    FleetSimulator,
    resolve_telemetry,
)
from repro.traffic.fluid import (
    FLUID_ACCURACY_CONTRACT,
    FluidFleetModel,
    FluidResult,
)
from repro.traffic.governor import (
    GOVERNOR_POLICIES,
    CooperativeThresholdGovernor,
    GovernorSpec,
    GovernorStats,
    GreedyGovernor,
    SprintGovernor,
    TokenBucketGovernor,
    UnlimitedGovernor,
)
from repro.traffic.metrics import (
    SUMMARY_STAT_FIELDS,
    MetricEstimate,
    PairedDelta,
    TrafficSummary,
    aggregate_summaries,
    batch_means_ci,
    latency_percentiles,
    mean_ci,
    paired_delta,
    sign_test_p,
    slo_attainment,
    student_t_cdf,
    student_t_ppf,
    summarize,
)
from repro.traffic.request import (
    FixedService,
    GammaService,
    LognormalService,
    Request,
    RequestBlock,
    ServiceModel,
    SuiteService,
    generate_request_blocks,
    generate_requests,
)
from repro.traffic.sweep import (
    ARRIVAL_KINDS,
    PAIRING_MODES,
    SWEEP_DISCIPLINES,
    CellResult,
    SweepCell,
    SweepResult,
    SweepSpec,
    cell_is_deterministic,
    expand_cells,
    pool_map,
    run_cell,
    run_sweep,
)
from repro.traffic.shard import ShardPlan, plan_shards, run_sharded
from repro.traffic.telemetry import (
    TRACE_KINDS,
    EventTrace,
    FleetTimeline,
    QuantileSketch,
    RunTelemetry,
    StreamingMoments,
    TelemetrySpec,
    TimelineProbe,
    TraceRecord,
    TrafficTelemetry,
)
from repro.traffic.topology import (
    LEVELS,
    TOPOLOGY_DISPATCH,
    CascadeGovernor,
    RackSpec,
    RowSpec,
    TopologySpec,
    TopologyStats,
    apportion_slots,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "CellResult",
    "CascadeGovernor",
    "ComparisonResult",
    "CooperativeThresholdGovernor",
    "DISPATCH_MODES",
    "DISPATCH_POLICIES",
    "DeterministicArrivals",
    "DeviceStats",
    "DispatchFn",
    "DiurnalArrivals",
    "EXECUTION_MODES",
    "EngineResult",
    "EventTrace",
    "ExperimentResult",
    "FLEET_MODES",
    "FLUID_ACCURACY_CONTRACT",
    "FixedService",
    "FleetResult",
    "FleetSimulator",
    "FleetTimeline",
    "FluidFleetModel",
    "FluidResult",
    "GOVERNOR_POLICIES",
    "GammaService",
    "GovernorSpec",
    "GovernorStats",
    "GreedyGovernor",
    "LEVELS",
    "LeastLoadedIndex",
    "LinearReservoir",
    "LognormalService",
    "MMPPArrivals",
    "MetricEstimate",
    "PAIRING_MODES",
    "PairedDelta",
    "PcmReservoir",
    "PoissonArrivals",
    "QUEUE_DISCIPLINES",
    "QuantileSketch",
    "RCCooling",
    "RackSpec",
    "ReplicationPlan",
    "Request",
    "RequestBlock",
    "RowSpec",
    "RunTelemetry",
    "SUMMARY_STAT_FIELDS",
    "SWEEP_DISCIPLINES",
    "Scenario",
    "ServedRequest",
    "ServiceModel",
    "ServingEngine",
    "ShardPlan",
    "SprintDevice",
    "SprintGovernor",
    "StreamingMoments",
    "SuiteService",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "THERMAL_BACKENDS",
    "TOPOLOGY_DISPATCH",
    "TRACE_KINDS",
    "TelemetrySpec",
    "ThermalBackend",
    "ThermalSpec",
    "TimelineProbe",
    "TokenBucketGovernor",
    "TopologySpec",
    "TopologyStats",
    "TraceArrivals",
    "TraceRecord",
    "TrafficSummary",
    "TrafficTelemetry",
    "UnlimitedGovernor",
    "aggregate_summaries",
    "apportion_slots",
    "batch_means_ci",
    "cell_is_deterministic",
    "compare",
    "expand_cells",
    "generate_request_blocks",
    "generate_requests",
    "latency_percentiles",
    "mean_ci",
    "paired_delta",
    "plan_shards",
    "pool_map",
    "resolve_telemetry",
    "run_cell",
    "run_replications",
    "run_sharded",
    "run_sweep",
    "run_until",
    "seed_stream",
    "sign_test_p",
    "slo_attainment",
    "student_t_cdf",
    "student_t_ppf",
    "summarize",
]
