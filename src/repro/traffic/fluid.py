"""Calibrated fluid (mean-field) approximation of a sprinting fleet.

The exact engine (:mod:`repro.traffic.engine`) and its vectorized fast
path (:mod:`repro.traffic.fastpath`) simulate every request.  At fleet
scales where even that is too slow — parameter scans over tens of
millions of requests — the interesting quantities (throughput, mean and
tail latency under load, sprint fraction, reservoir trajectory) are
well approximated by a deterministic fluid limit: the fleet becomes a
work-conserving pool of ``N`` servers draining a continuous backlog,
and the thermal state becomes one *representative* per-device reservoir
advanced bin by bin.

:class:`FluidFleetModel` integrates that limit over time bins:

* Arrivals are binned on a uniform grid over the arrival horizon
  (``max(32, min(4096, n // 4))`` bins, so resolution grows with the
  stream but the integration loop stays trivially short).
* Within a bin, the sprint decision is made once for the *average*
  device: the bin's aggregate sprint-heat demand per device is compared
  against the representative reservoir's headroom, yielding a fullness
  ``f`` in [0, 1] exactly mirroring the pacer's full / partial / refuse
  branches (:meth:`repro.core.pacing.SprintPacer.task_arrival`).
* Request latencies come from the deterministic fluid queue: a request
  arriving when the fleet holds ``W`` machine-seconds of backlog waits
  ``W / N``, with the backlog advanced continuously within the bin
  (work arrived earlier in the bin minus capacity already spent).
* The representative reservoir deposits the realised sprint heat and
  drains over the bin's idle fraction, so any
  :class:`~repro.core.thermal_backend.ThermalBackend` (linear, RC,
  PCM) supplies the cooling physics.

The approximation is *calibrated*, not asserted: the accuracy contract
in :data:`FLUID_ACCURACY_CONTRACT` states the relative error bands the
fluid mode is tested to hold against the exact engine under CRN-paired
replications (:func:`repro.traffic.experiments.compare`), on the
reference regime it is intended for — many devices, light per-device
load, stochastic arrivals (the capacity-planning question: "how much
fleet does this demand need?").  Outside that regime the limit's known
deficiency applies: a deterministic fluid has no stochastic queueing,
so under moderate-to-heavy load it reproduces throughput and the
sprint/thermal budget arithmetic but *understates* waiting-time metrics
— use the exact engine (or its bit-identical batched fast path) when
tail latency under load is the question.

Usage — the model consumes arrival/demand columns directly (no Request
objects, no RNG):

>>> import numpy as np
>>> from repro.core.config import SystemConfig
>>> from repro.traffic.fluid import FluidFleetModel
>>> model = FluidFleetModel(SystemConfig.paper_default(), n_devices=2)
>>> result = model.run(np.array([0.0, 30.0, 60.0, 90.0]), np.full(4, 5.0))
>>> summary = result.summary()
>>> summary.request_count, summary.sprint_fraction
(4, 1.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.metrics import (
    TrafficSummary,
    build_summary,
    latency_percentiles,
    slo_attainment,
    validate_slo,
)

__all__ = [
    "FLUID_ACCURACY_CONTRACT",
    "FluidFleetModel",
    "FluidResult",
]

#: Relative error bands the fluid mode is tested to hold against the
#: exact engine, per :class:`~repro.traffic.metrics.TrafficSummary`
#: field: ``|fluid - exact| <= band * |exact| + CI half-width`` on
#: CRN-paired replications of the **reference regime** — Poisson
#: arrivals, at least 8 devices, at least 50 requests per device, and
#: per-device sustained utilisation at or below ~0.25 (the
#: capacity-planning regime fluid models are built for).  Throughput
#: holds its band at any load against the work-conserving exact system
#: (central-queue dispatch) — immediate dispatch adds per-device queue
#: imbalance at overload that the pooled fluid deliberately has none of;
#: the latency and sprint fields hold theirs only in the reference
#: regime, because the deterministic limit has no stochastic queueing —
#: under moderate-to-heavy load it *understates* waiting, by design.
#: Fields not listed (max latency, per-request thermal trajectories)
#: carry no accuracy claim: the mean-field reservoir is a bin-averaged
#: representative device, not a per-deposit spike record.
FLUID_ACCURACY_CONTRACT: dict[str, float] = {
    "throughput_rps": 0.05,
    "mean_latency_s": 0.15,
    "p50_latency_s": 0.15,
    "p99_latency_s": 0.25,
    "sprint_fraction": 0.10,
    "mean_sprint_fullness": 0.10,
}


@dataclass(frozen=True)
class FluidResult:
    """Outcome of one fluid-mode run.

    Duck-compatible with :class:`repro.traffic.fleet.FleetResult` where
    the replication and sweep layers need it (:meth:`summary`,
    :attr:`telemetry`, the lifecycle counts), while storing per-request
    results as flat float arrays instead of object tuples — a fluid run
    over ten million requests holds a few hundred megabytes of arrays,
    not tens of gigabytes of ``ServedRequest`` objects.
    """

    #: Per-request arrays, all aligned in arrival (== request-index) order.
    arrival_s: np.ndarray
    latencies_s: np.ndarray
    queueing_s: np.ndarray
    sprint_fullness: np.ndarray
    sprinted: np.ndarray
    #: Representative-reservoir trajectory sampled at each request's bin.
    stored_heat_j: np.ndarray
    temperature_c: np.ndarray
    n_devices: int = 1
    policy: str = "fluid"
    deadline_at_s: np.ndarray | None = None
    peak_melt_fraction: float = 0.0
    final_event_s: float = 0.0
    #: Fluid runs carry no streaming instruments (the arrays above are
    #: already the full trajectory) and no grant ledger.
    telemetry: None = None
    governor_stats: None = None
    rejected_count: int = 0
    abandoned_count: int = 0
    _summary_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def served_count(self) -> int:
        """Every request is served — the fluid queue never rejects."""
        return int(self.latencies_s.size)

    @property
    def request_count(self) -> int:
        return int(self.latencies_s.size)

    @property
    def completions_s(self) -> np.ndarray:
        """Absolute completion instants, in arrival order."""
        return self.arrival_s + self.latencies_s

    @property
    def horizon_s(self) -> float:
        """Instant by which every request's fate had resolved."""
        if self.latencies_s.size == 0:
            return self.final_event_s
        return max(self.final_event_s, float(self.completions_s.max()))

    @property
    def deadline_miss_count(self) -> int:
        if self.deadline_at_s is None or self.latencies_s.size == 0:
            return 0
        return int(np.count_nonzero(self.completions_s > self.deadline_at_s))

    def summary(self, slo_s: float | None = None) -> TrafficSummary:
        """Aggregate serving metrics (cached per SLO).

        ``telemetry_source == "fluid"`` marks the provenance: the numbers
        are the deterministic fluid limit, accurate within
        :data:`FLUID_ACCURACY_CONTRACT` on the reference regime, not an
        exact simulation.
        """
        validate_slo(slo_s)
        if slo_s not in self._summary_cache:
            if self.latencies_s.size == 0:
                self._summary_cache[slo_s] = build_summary(
                    source="fluid", slo_s=slo_s, slo_attainment=None
                )
            else:
                latencies = self.latencies_s
                p50, p95, p99 = latency_percentiles(latencies)
                makespan = float(self.completions_s.max() - self.arrival_s.min())
                self._summary_cache[slo_s] = build_summary(
                    source="fluid",
                    request_count=int(latencies.size),
                    makespan_s=makespan,
                    throughput_rps=(
                        latencies.size / makespan if makespan > 0 else 0.0
                    ),
                    mean_latency_s=float(latencies.mean()),
                    p50_latency_s=p50,
                    p95_latency_s=p95,
                    p99_latency_s=p99,
                    max_latency_s=float(latencies.max()),
                    mean_queueing_s=float(self.queueing_s.mean()),
                    sprint_fraction=float(self.sprinted.mean()),
                    mean_sprint_fullness=float(self.sprint_fullness.mean()),
                    peak_stored_heat_j=float(self.stored_heat_j.max()),
                    mean_stored_heat_j=float(self.stored_heat_j.mean()),
                    peak_temperature_c=float(self.temperature_c.max()),
                    peak_melt_fraction=self.peak_melt_fraction,
                    slo_s=slo_s,
                    slo_attainment=(
                        None if slo_s is None else slo_attainment(latencies, slo_s)
                    ),
                    deadline_miss_count=self.deadline_miss_count,
                )
        return self._summary_cache[slo_s]


class FluidFleetModel:
    """Deterministic fluid integrator for a sprint-capable fleet.

    Parameters mirror :class:`repro.traffic.fleet.FleetSimulator` where
    they are meaningful in the fluid limit; dispatch policy, queue
    discipline, and power governance are not (the fluid queue is
    work-conserving across the whole pool and ungoverned by
    construction), which :class:`~repro.traffic.fleet.FleetSimulator`
    enforces before delegating here.
    """

    #: Bin-count bounds of the uniform integration grid.
    MIN_BINS = 32
    MAX_BINS = 4096

    def __init__(
        self,
        config: SystemConfig,
        n_devices: int,
        sprint_speedup: float = 10.0,
        sprint_enabled: bool = True,
        refuse_partial_sprints: bool = False,
        thermal: str | ThermalSpec = "linear",
    ) -> None:
        if n_devices < 1:
            raise ValueError("a fleet needs at least one device")
        if sprint_speedup < 1.0:
            raise ValueError("sprint speedup must be at least 1x")
        if isinstance(thermal, str):
            thermal = ThermalSpec(backend=thermal)
        if not isinstance(thermal, ThermalSpec):
            raise TypeError(
                "thermal must be a backend name or a ThermalSpec, "
                f"not {type(thermal).__name__}"
            )
        self.config = config
        self.n_devices = n_devices
        self.sprint_speedup = sprint_speedup
        self.sprint_enabled = sprint_enabled
        self.refuse_partial_sprints = refuse_partial_sprints
        self.thermal_spec = thermal
        thermal.build(config)  # validate the spec eagerly

    @property
    def excess_power_w(self) -> float:
        """Sprint heat rate above what the package dissipates (pacer's)."""
        return self.config.sprint_power_w - self.config.sustainable_power_w

    def _bin_count(self, n: int, span_s: float) -> int:
        if span_s <= 0.0:
            return 1
        return max(self.MIN_BINS, min(self.MAX_BINS, n // 4))

    def run(
        self,
        arrival_s: np.ndarray,
        sustained_time_s: np.ndarray,
        deadline_at_s: np.ndarray | None = None,
    ) -> FluidResult:
        """Integrate the fluid limit over one request stream.

        ``arrival_s`` must be sorted ascending (the engine's contract);
        ``sustained_time_s`` aligns with it.  The run is deterministic —
        no RNG is consumed — so replicated experiments over fluid arms
        measure only the stream's randomness.
        """
        arrival = np.ascontiguousarray(arrival_s, dtype=float)
        sustained = np.ascontiguousarray(sustained_time_s, dtype=float)
        if arrival.ndim != 1 or arrival.shape != sustained.shape:
            raise ValueError("arrival and sustained arrays must be 1-D and aligned")
        if arrival.size and np.any(np.diff(arrival) < 0):
            raise ValueError("arrivals must be sorted by arrival time")
        if np.any(sustained < 0):
            raise ValueError("sustained service times must be non-negative")
        backend = self.thermal_spec.build(config=self.config)
        n = arrival.size
        if n == 0:
            empty = np.empty(0)
            return FluidResult(
                arrival_s=empty,
                latencies_s=empty,
                queueing_s=empty,
                sprint_fullness=empty,
                sprinted=np.empty(0, dtype=bool),
                stored_heat_j=empty,
                temperature_c=empty,
                n_devices=self.n_devices,
            )

        t0, t_end = float(arrival[0]), float(arrival[-1])
        n_bins = self._bin_count(n, t_end - t0)
        edges = np.linspace(t0, t_end, n_bins + 1)
        # Arrivals are sorted, so each bin owns a contiguous slice; the
        # last bin is closed on the right (t_end lands inside it).
        starts = np.searchsorted(arrival, edges[:-1], side="left")
        ends = np.append(starts[1:], n)

        queueing = np.zeros(n)
        latency = np.zeros(n)
        fullness = np.zeros(n)
        sprinted = np.zeros(n, dtype=bool)
        stored = np.zeros(n)
        temperature = np.zeros(n)

        n_dev = float(self.n_devices)
        speedup = self.sprint_speedup
        excess_w = self.excess_power_w
        backlog = 0.0  # machine-seconds of unfinished work across the fleet
        peak_melt = backend.melt_fraction
        for i in range(n_bins):
            lo, hi = int(starts[i]), int(ends[i])
            dt = float(edges[i + 1] - edges[i])
            backlog_before = backlog
            exec_sum = 0.0
            if hi > lo:
                s = sustained[lo:hi]
                s_sum = float(s.sum())
                # One sprint decision for the average device of this bin,
                # mirroring the pacer's full / partial / refuse branches.
                demand_pd = excess_w * (s_sum / speedup) / n_dev
                headroom = backend.headroom_j
                if not self.sprint_enabled or demand_pd <= 0.0:
                    f = 0.0
                elif demand_pd <= headroom:
                    f = 1.0
                elif self.refuse_partial_sprints or headroom <= 0.0:
                    f = 0.0
                else:
                    f = headroom / demand_pd
                exec_times = s * (f / speedup + (1.0 - f))
                exec_sum = float(exec_times.sum())
                # Deterministic fluid queue: backlog seen by request j is
                # what stood at the bin edge, plus work arrived earlier in
                # the bin, minus the capacity the fleet spent meanwhile.
                arrived_before = np.concatenate(((0.0,), np.cumsum(exec_times)[:-1]))
                elapsed = arrival[lo:hi] - edges[i]
                seen = np.maximum(
                    0.0, backlog_before + arrived_before - n_dev * elapsed
                )
                queueing[lo:hi] = seen / n_dev
                latency[lo:hi] = queueing[lo:hi] + exec_times
                if f > 0.0:
                    active = s > 0.0
                    fullness[lo:hi] = np.where(active, f, 0.0)
                    sprinted[lo:hi] = active
                    backend.deposit(f * demand_pd)
            stored[lo:hi] = backend.stored_heat_j
            temperature[lo:hi] = backend.temperature_c
            if backend.melt_fraction > peak_melt:
                peak_melt = backend.melt_fraction
            backlog = max(0.0, backlog_before + exec_sum - n_dev * dt)
            idle_per_device = max(0.0, dt - (backlog_before + exec_sum) / n_dev)
            if idle_per_device > 0.0:
                backend.drain(idle_per_device)

        return FluidResult(
            arrival_s=arrival,
            latencies_s=latency,
            queueing_s=queueing,
            sprint_fullness=fullness,
            sprinted=sprinted,
            stored_heat_j=stored,
            temperature_c=temperature,
            n_devices=self.n_devices,
            deadline_at_s=deadline_at_s,
            peak_melt_fraction=peak_melt,
            final_event_s=t_end,
        )
