"""Requests: what the fleet serves, and how their compute demand is drawn.

A :class:`Request` is one unit of user-facing work — a vision kernel run on
one input — reduced to the quantity the pacing model needs: the time the
task would take on a single sustained core.  Service models turn a random
stream into concrete demands:

* :class:`FixedService` — every request costs the same (the paper's
  five-second canonical task),
* :class:`LognormalService` — heavy-tailed demands around a median, the
  usual shape of interactive request sizes,
* :class:`SuiteService` — demands drawn from the Table 1 kernel suite at
  its input-size classes (:mod:`repro.workloads`), so a request literally
  is "sobel on a class-C image" with the back-of-envelope single-core time
  of that workload descriptor.

:func:`generate_requests` zips an arrival process with a service model
under a single seed, split with :class:`numpy.random.SeedSequence` so the
arrival stream and the demand stream are independent but both reproducible.

Usage:

>>> from repro.traffic.arrivals import DeterministicArrivals
>>> from repro.traffic.request import FixedService, generate_requests
>>> reqs = generate_requests(
...     DeterministicArrivals(5.0), FixedService(5.0), n=3, seed=0
... )
>>> [(r.index, r.arrival_s, r.sustained_time_s) for r in reqs]
[(0, 0.0, 5.0), (1, 5.0, 5.0), (2, 10.0, 5.0)]
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.traffic.arrivals import DEFAULT_CHUNK, ArrivalProcess


@dataclass(frozen=True)
class Request:
    """One unit of work arriving at the fleet."""

    index: int
    arrival_s: float
    #: Single-core sustained execution time — the pacing model's currency.
    sustained_time_s: float
    kernel: str = ""
    input_label: str = ""
    #: Optional latency budget, relative to arrival.  A central-queue engine
    #: abandons the request if it has not *started* by the deadline; a served
    #: request that *completes* past it counts as a deadline miss.  ``None``
    #: means the request waits forever and never misses.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.sustained_time_s <= 0:
            raise ValueError("sustained time must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive (or None)")

    @property
    def deadline_at_s(self) -> float:
        """Absolute deadline instant (``inf`` when no deadline is set)."""
        if self.deadline_s is None:
            return float("inf")
        return self.arrival_s + self.deadline_s


class ServiceModel(ABC):
    """Draws per-request compute demands."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> list[tuple[float, str, str]]:
        """Return ``n`` tuples of (sustained seconds, kernel, input label)."""

    def sample_block(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, tuple[str, ...] | str, tuple[str, ...] | str]:
        """Array form of :meth:`sample`: (demands, kernels, input labels).

        Demands come back as a float array; kernels and labels are either a
        single string (when uniform across the block) or one string per
        request.  Successive calls on one generator concatenate to the same
        draw stream as a single whole-``n`` call — the property tests lock
        this per model — so chunked request generation stays bit-identical
        to :func:`generate_requests`.
        """
        draws = self.sample(n, rng)
        demands = np.array([d[0] for d in draws], dtype=float)
        return demands, tuple(d[1] for d in draws), tuple(d[2] for d in draws)


@dataclass(frozen=True)
class FixedService(ServiceModel):
    """Every request takes the same sustained single-core time."""

    sustained_time_s: float
    kernel: str = "fixed"
    input_label: str = ""

    def __post_init__(self) -> None:
        if self.sustained_time_s <= 0:
            raise ValueError("sustained time must be positive")

    def sample(self, n: int, rng: np.random.Generator) -> list[tuple[float, str, str]]:
        return [(self.sustained_time_s, self.kernel, self.input_label)] * n

    def sample_block(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, str, str]:
        return np.full(n, self.sustained_time_s), self.kernel, self.input_label


@dataclass(frozen=True)
class GammaService(ServiceModel):
    """Gamma-distributed demands with a given mean and coefficient of variation.

    ``cv = 0`` degenerates to :class:`FixedService`; ``cv = 1`` is
    exponential; larger values give burstier request sizes.  The gamma
    family keeps draws strictly positive for any cv.
    """

    mean_s: float
    cv: float = 0.5
    kernel: str = "gamma"

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ValueError("mean service time must be positive")
        if self.cv < 0:
            raise ValueError("coefficient of variation must be non-negative")

    def sample(self, n: int, rng: np.random.Generator) -> list[tuple[float, str, str]]:
        if self.cv == 0:
            draws = np.full(n, self.mean_s)
        else:
            shape = 1.0 / (self.cv * self.cv)
            draws = rng.gamma(shape, self.mean_s / shape, size=n)
            # For large cv the tiny shape parameter makes exact-0.0 draws
            # possible; clamp so every request stays a valid positive task.
            draws = np.maximum(draws, np.finfo(float).tiny)
        return [(float(d), self.kernel, "") for d in draws]

    def sample_block(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, str, str]:
        if self.cv == 0:
            return np.full(n, self.mean_s), self.kernel, ""
        shape = 1.0 / (self.cv * self.cv)
        draws = rng.gamma(shape, self.mean_s / shape, size=n)
        return np.maximum(draws, np.finfo(float).tiny), self.kernel, ""


@dataclass(frozen=True)
class LognormalService(ServiceModel):
    """Lognormal demands: heavy-tailed around ``median_s`` with shape ``sigma``."""

    median_s: float
    sigma: float = 0.5
    kernel: str = "lognormal"

    def __post_init__(self) -> None:
        if self.median_s <= 0:
            raise ValueError("median service time must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, n: int, rng: np.random.Generator) -> list[tuple[float, str, str]]:
        draws = self.median_s * np.exp(self.sigma * rng.standard_normal(n))
        return [(float(d), self.kernel, "") for d in draws]

    def sample_block(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, str, str]:
        return self.median_s * np.exp(self.sigma * rng.standard_normal(n)), self.kernel, ""


@dataclass
class SuiteService(ServiceModel):
    """Demands drawn from the Table 1 kernel suite's input-size classes.

    Each request picks a (kernel, input class) uniformly — or by the given
    weights — from the suite and costs that workload's back-of-envelope
    single-core time at ``frequency_hz``
    (:meth:`~repro.workloads.descriptor.WorkloadDescriptor.single_core_seconds`).
    The suite table is built once and reused, so sampling is cheap
    (eagerly at construction when ``weights`` are given, so a mismatched
    length fails fast; lazily on first sample otherwise).
    """

    frequency_hz: float = 1e9
    kernels: tuple[str, ...] | None = None
    weights: tuple[float, ...] | None = None
    _table: list[tuple[float, str, str]] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.weights is not None:
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise ValueError("weights must be non-negative with a positive sum")
            self._entries()  # build the table now so a wrong length fails fast

    def _entries(self) -> list[tuple[float, str, str]]:
        if not self._table:
            from repro.workloads import kernel_suite

            suite = kernel_suite()
            names = self.kernels or tuple(sorted(suite))
            for name in names:
                family = suite[name]
                for label in family.input_labels:
                    workload = family.workload(label)
                    seconds = workload.single_core_seconds(self.frequency_hz)
                    self._table.append((seconds, name, label))
        if self.weights is not None and len(self.weights) != len(self._table):
            raise ValueError(
                f"{len(self._table)} suite entries but {len(self.weights)} weights"
            )
        return self._table

    def sample(self, n: int, rng: np.random.Generator) -> list[tuple[float, str, str]]:
        entries = self._entries()
        probabilities = None
        if self.weights is not None:
            total = sum(self.weights)
            probabilities = [w / total for w in self.weights]
        picks = rng.choice(len(entries), size=n, p=probabilities)
        return [entries[int(i)] for i in picks]

    def sample_block(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, tuple[str, ...], tuple[str, ...]]:
        chosen = self.sample(n, rng)
        demands = np.array([c[0] for c in chosen], dtype=float)
        return demands, tuple(c[1] for c in chosen), tuple(c[2] for c in chosen)


@dataclass(frozen=True)
class RequestBlock:
    """A contiguous chunk of the request stream in columnar (array) form.

    The batched engine path consumes these directly; :meth:`to_requests`
    materialises the equivalent :class:`Request` objects, bit-identical to
    what :func:`generate_requests` builds for the same indices.  Kernels and
    input labels are a single string when uniform across the block, or one
    entry per request otherwise.
    """

    start_index: int
    arrival_s: np.ndarray
    sustained_time_s: np.ndarray
    kernels: tuple[str, ...] | str = ""
    input_labels: tuple[str, ...] | str = ""
    deadline_s: float | None = None

    def __len__(self) -> int:
        return self.arrival_s.size

    def kernel_at(self, i: int) -> str:
        """Kernel name of request ``i`` within the block."""
        return self.kernels if isinstance(self.kernels, str) else self.kernels[i]

    def label_at(self, i: int) -> str:
        """Input label of request ``i`` within the block."""
        return (
            self.input_labels
            if isinstance(self.input_labels, str)
            else self.input_labels[i]
        )

    def to_requests(self) -> list[Request]:
        """Materialise the block as :class:`Request` objects."""
        times = self.arrival_s
        demands = self.sustained_time_s
        return [
            Request(
                index=self.start_index + i,
                arrival_s=float(times[i]),
                sustained_time_s=float(demands[i]),
                kernel=self.kernel_at(i),
                input_label=self.label_at(i),
                deadline_s=self.deadline_s,
            )
            for i in range(times.size)
        ]


def generate_request_blocks(
    arrivals: ArrivalProcess,
    service: ServiceModel,
    n: int,
    seed: int | np.random.SeedSequence = 0,
    deadline_s: float | None = None,
    chunk_size: int = DEFAULT_CHUNK,
):
    """Stream the :func:`generate_requests` stream as :class:`RequestBlock`s.

    Same seed-splitting discipline as :func:`generate_requests` — one child
    stream for arrivals, one for service demands — and the arrival/service
    block draws are locked bit-identical to their scalar forms, so
    concatenating the yielded blocks reproduces ``generate_requests(...)``
    exactly while holding only ``chunk_size`` requests in memory at a time.
    """
    if n < 1:
        raise ValueError("at least one request is required")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    arrival_seq, service_seq = root.spawn(2)
    arrival_rng = np.random.default_rng(arrival_seq)
    service_rng = np.random.default_rng(service_seq)

    def blocks():
        start = 0
        for times in arrivals.sample_blocks(n, arrival_rng, chunk_size):
            demands, kernels, labels = service.sample_block(times.size, service_rng)
            yield RequestBlock(start, times, demands, kernels, labels, deadline_s)
            start += times.size

    return blocks()


def generate_requests(
    arrivals: ArrivalProcess,
    service: ServiceModel,
    n: int,
    seed: int | np.random.SeedSequence = 0,
    deadline_s: float | None = None,
) -> list[Request]:
    """Materialise ``n`` requests from an arrival process and a service model.

    The seed is split into independent child streams for arrivals and
    service demands, so the same seed always yields the same requests and
    changing the service model never perturbs the arrival times.
    ``deadline_s`` attaches the same relative latency budget to every
    request (``None`` leaves them deadline-free).
    """
    if n < 1:
        raise ValueError("at least one request is required")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    arrival_seq, service_seq = root.spawn(2)
    times = arrivals.sample(n, np.random.default_rng(arrival_seq))
    demands = service.sample(n, np.random.default_rng(service_seq))
    return [
        Request(
            index=i,
            arrival_s=float(times[i]),
            sustained_time_s=demands[i][0],
            kernel=demands[i][1],
            input_label=demands[i][2],
            deadline_s=deadline_s,
        )
        for i in range(n)
    ]
