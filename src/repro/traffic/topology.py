"""Hierarchical fleet topology: device → rack → row → datacenter budgets.

The paper's capacitance argument nests.  One chip's sprints share a heat
reservoir; one rack's sprints share a provisioned supply (the PR 3
governor); and a real datacenter stacks more of the same — each rack hangs
off a row-level busway, each row off the datacenter feed, and every level
has its own budget and its own breaker.  This module is that tree:

* :class:`TopologySpec` — a frozen devices → racks → rows → datacenter
  description.  Each node carries a
  :class:`~repro.traffic.governor.GovernorSpec` (budget + breaker model);
  racks can also override per-device knobs (``sprint_enabled``,
  ``sprint_speedup``, ``thermal``), so heterogeneous fleets — sprint-capable
  racks next to many-core sustained-only ones — are one spec.
* :class:`CascadeGovernor` — the PR 3 acquire/release grant protocol
  generalised to parent delegation.  A sprint grant must clear *every*
  level over the device (rack, then row, then datacenter); the cascade
  probes all levels non-destructively (``would_deny``) before committing
  the grant at all of them, so a parent-level refusal never leaves a child
  holding a phantom grant, and each blocking level owns its denial in its
  own ledger.
* :class:`TopologyStats` — the per-level ledger of a topology run: one
  :class:`~repro.traffic.governor.GovernorStats` per governed node plus
  per-level denial/trip rollups.
* The windowed slice machinery (:class:`SlicedGovernor`,
  :func:`apportion_slots`, :func:`slice_schedules`) that
  :mod:`repro.traffic.shard` uses to run racks in parallel: parent budgets
  are carved into per-rack slices that rebalance at conservative window
  barriers, in proportion to each rack's offered sprint demand.

Usage::

    >>> from repro.traffic.topology import TopologySpec
    >>> from repro.traffic.governor import GovernorSpec
    >>> topo = TopologySpec.uniform(
    ...     n_rows=2, racks_per_row=2, devices_per_rack=4,
    ...     rack_governor=GovernorSpec.greedy(2),
    ...     row_governor=GovernorSpec.greedy(3),
    ... )
    >>> topo.total_devices
    16
    >>> topo.rack_paths
    ('row0/rack0', 'row0/rack1', 'row1/rack0', 'row1/rack1')
    >>> topo.device_labels()[:2]
    ('row0/rack0/dev0', 'row0/rack0/dev1')
    >>> TopologySpec.flat(8).is_flat
    True
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.governor import GovernorSpec, GovernorStats, SprintGovernor

__all__ = [
    "LEVELS",
    "TOPOLOGY_DISPATCH",
    "CascadeGovernor",
    "RackSpec",
    "RowSpec",
    "SlicedGovernor",
    "TopologySpec",
    "TopologyStats",
    "apportion_slots",
    "merge_governor_stats",
    "slice_schedules",
]

#: Budget levels of the tree, leaf to root.
LEVELS = ("rack", "row", "datacenter")

#: Rack-selection policies a topology fleet can dispatch with.
#: ``rack_round_robin`` stripes arrivals across racks in proportion to
#: their device counts; ``least_loaded_rack`` weights each rack by its
#: estimated free capacity in the window (offered work drained at the
#: rack's sustained rate) with a preference for racks that still have
#: sprint/budget headroom.
TOPOLOGY_DISPATCH = ("rack_round_robin", "least_loaded_rack")

#: Parent-level governor policies whose capacity can be carved into exact
#: per-rack slices (slots or watts).  ``token_bucket`` budgets are
#: rate-based and do not partition exactly across shards, so they are
#: rejected at row/datacenter level.
_SLICEABLE = ("unlimited", "greedy", "cooperative_threshold")


@dataclass(frozen=True)
class RackSpec:
    """One rack: a device group under one rack-level budget.

    Device knobs default to ``None`` = inherit whatever the fleet-level
    call passes; explicit values override it, which is how heterogeneous
    fleets mix sprint-capable racks with many-core sustained-only ones.
    """

    n_devices: int
    governor: GovernorSpec = field(default_factory=GovernorSpec)
    sprint_enabled: bool | None = None
    sprint_speedup: float | None = None
    thermal: ThermalSpec | str | None = None

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("a rack needs at least one device")
        if isinstance(self.thermal, str):
            object.__setattr__(self, "thermal", ThermalSpec(backend=self.thermal))

    def device_knobs(
        self,
        sprint_enabled: bool,
        sprint_speedup: float,
        thermal: ThermalSpec,
    ) -> tuple[bool, float, ThermalSpec]:
        """Resolve this rack's device knobs against the fleet defaults."""
        return (
            sprint_enabled if self.sprint_enabled is None else self.sprint_enabled,
            sprint_speedup if self.sprint_speedup is None else self.sprint_speedup,
            thermal if self.thermal is None else self.thermal,
        )


@dataclass(frozen=True)
class RowSpec:
    """One row: racks sharing a row-level busway budget."""

    racks: tuple[RackSpec, ...]
    governor: GovernorSpec = field(default_factory=GovernorSpec)

    def __post_init__(self) -> None:
        if not self.racks:
            raise ValueError("a row needs at least one rack")
        if self.governor.policy not in _SLICEABLE:
            raise ValueError(
                f"row budgets must use one of {_SLICEABLE} — "
                f"{self.governor.policy!r} does not partition exactly "
                "across shards"
            )

    @property
    def n_devices(self) -> int:
        return sum(rack.n_devices for rack in self.racks)


@dataclass(frozen=True)
class TopologySpec:
    """The frozen tree: rows of racks under one datacenter budget.

    ``window_s`` is the conservative synchronisation window of a sharded
    run: parent (row/datacenter) budget slices are fixed within a window
    and rebalance at its boundary.  ``dispatch`` selects the rack-level
    dispatch policy (:data:`TOPOLOGY_DISPATCH`); devices within a rack are
    still dispatched by the fleet's own per-device policy.
    """

    rows: tuple[RowSpec, ...]
    governor: GovernorSpec = field(default_factory=GovernorSpec)
    window_s: float = 60.0
    dispatch: str = "least_loaded_rack"

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("a topology needs at least one row")
        if self.window_s <= 0:
            raise ValueError("the synchronisation window must be positive")
        if self.dispatch not in TOPOLOGY_DISPATCH:
            raise ValueError(
                f"unknown topology dispatch {self.dispatch!r}; "
                f"available: {TOPOLOGY_DISPATCH}"
            )
        if self.governor.policy not in _SLICEABLE:
            raise ValueError(
                f"datacenter budgets must use one of {_SLICEABLE} — "
                f"{self.governor.policy!r} does not partition exactly "
                "across shards"
            )

    # -- constructors -------------------------------------------------------------------

    @classmethod
    def flat(cls, n_devices: int, governor: GovernorSpec | str = "unlimited") -> "TopologySpec":
        """One row, one rack, no parent budgets — the regression-locked default.

        A flat topology is exactly the pre-topology fleet: the rack's
        governor is the fleet governor and no cascade or sharding engages.
        """
        if isinstance(governor, str):
            governor = GovernorSpec(policy=governor)
        return cls(rows=(RowSpec(racks=(RackSpec(n_devices, governor=governor),)),))

    @classmethod
    def uniform(
        cls,
        n_rows: int,
        racks_per_row: int,
        devices_per_rack: int,
        rack_governor: GovernorSpec | str = "unlimited",
        row_governor: GovernorSpec | str = "unlimited",
        datacenter_governor: GovernorSpec | str = "unlimited",
        window_s: float = 60.0,
        dispatch: str = "least_loaded_rack",
    ) -> "TopologySpec":
        """A homogeneous ``n_rows × racks_per_row × devices_per_rack`` tree."""
        if isinstance(rack_governor, str):
            rack_governor = GovernorSpec(policy=rack_governor)
        if isinstance(row_governor, str):
            row_governor = GovernorSpec(policy=row_governor)
        if isinstance(datacenter_governor, str):
            datacenter_governor = GovernorSpec(policy=datacenter_governor)
        row = RowSpec(
            racks=tuple(
                RackSpec(devices_per_rack, governor=rack_governor)
                for _ in range(racks_per_row)
            ),
            governor=row_governor,
        )
        return cls(
            rows=tuple(row for _ in range(n_rows)),
            governor=datacenter_governor,
            window_s=window_s,
            dispatch=dispatch,
        )

    # -- shape --------------------------------------------------------------------------

    @property
    def total_devices(self) -> int:
        return sum(row.n_devices for row in self.rows)

    @property
    def n_racks(self) -> int:
        return sum(len(row.racks) for row in self.rows)

    @property
    def is_flat(self) -> bool:
        """True when the tree is one ungoverned-parents rack — no cascade.

        Flat topologies run on the plain single-engine path bit-identically
        to a fleet constructed without a topology (the rack's governor
        becomes the fleet governor).
        """
        return (
            len(self.rows) == 1
            and len(self.rows[0].racks) == 1
            and self.rows[0].governor.policy == "unlimited"
            and self.governor.policy == "unlimited"
        )

    def iter_racks(self) -> Iterator[tuple[int, int, str, RackSpec]]:
        """Yield ``(row_index, rack_index_in_row, path, rack)`` in tree order."""
        for r, row in enumerate(self.rows):
            for k, rack in enumerate(row.racks):
                yield r, k, f"row{r}/rack{k}", rack

    @property
    def rack_paths(self) -> tuple[str, ...]:
        """Stable hierarchical rack ids, in tree order."""
        return tuple(path for _, _, path, _ in self.iter_racks())

    def device_labels(self) -> tuple[str, ...]:
        """Stable hierarchical device ids (``row0/rack2/dev5``), tree order."""
        labels: list[str] = []
        for _, _, path, rack in self.iter_racks():
            labels.extend(f"{path}/dev{i}" for i in range(rack.n_devices))
        return tuple(labels)

    def row_of_rack(self) -> tuple[int, ...]:
        """Row index of each rack, in tree order."""
        return tuple(r for r, _, _, _ in self.iter_racks())

    def validate_devices(self, n_devices: int | None) -> int:
        """Check a fleet-level device count against the tree, return the total."""
        total = self.total_devices
        if n_devices is not None and n_devices != total:
            raise ValueError(
                f"n_devices={n_devices} does not match the topology's "
                f"{total} devices; omit n_devices or fix the spec"
            )
        return total


# -- grant cascade ---------------------------------------------------------------------


class CascadeGovernor(SprintGovernor):
    """The grant protocol generalised to parent delegation.

    One cascade fronts a chain of live governors leaf → root (rack, row,
    datacenter).  :meth:`acquire` first probes every level with
    ``would_deny`` — a non-binding check — and only when all levels are
    clear commits the grant at each of them, so the levels' ledgers never
    see a half-granted sprint.  When any level blocks, each blocking level
    records the denial in its own ledger (that is the per-level accounting
    :class:`TopologyStats` reports) and the cascade denies.

    Releases and breaker resets fan out to every level; pending breaker
    resets from *all* levels queue up and pop earliest-first (the engine
    drains them in a loop).  The cascade is itself a
    :class:`~repro.traffic.governor.SprintGovernor`, so the serving engine
    drives it exactly like a flat one.
    """

    name = "cascade"

    def __init__(self, levels: Sequence[tuple[str, SprintGovernor]]) -> None:
        if not levels:
            raise ValueError("a cascade needs at least one level")
        self.levels = tuple(levels)
        self._resets: list[float] = []
        excess = max(g.excess_power_w for _, g in self.levels)
        super().__init__(excess)

    @property
    def is_unlimited(self) -> bool:  # type: ignore[override]
        """The engine bypasses the cascade only when every level would."""
        return all(g.is_unlimited for _, g in self.levels)

    @property
    def supports_batched_replay(self) -> bool:  # type: ignore[override]
        """A cascade replays exactly only when every level does."""
        return all(
            getattr(g, "supports_batched_replay", False) for _, g in self.levels
        )

    def reset(self) -> None:
        super().reset()
        self._resets = []
        for _, governor in self.levels:
            governor.reset()

    # -- the protocol -------------------------------------------------------------------

    def acquire(self, now_s: float) -> bool:
        blocked = [g for _, g in self.levels if g.would_deny(now_s)]
        if blocked:
            for governor in blocked:
                governor.count_denial(now_s)
            self._denied += 1
            self._update_cap(now_s)
            return False
        for _, governor in self.levels:
            if not governor.acquire(now_s):  # pragma: no cover - probe guarantees
                raise RuntimeError(
                    f"{governor.name} denied after a clear would_deny probe"
                )
            self._collect_reset(governor)
        self._granted += 1
        self._active += 1
        self._peak_active = max(self._peak_active, self._active)
        self._update_cap(now_s)
        return True

    def release(self, now_s: float, used: bool = True) -> None:
        for _, governor in self.levels:
            governor.release(now_s, used=used)
        super().release(now_s, used=used)

    def pop_pending_reset(self) -> float | None:
        if self._resets:
            return heapq.heappop(self._resets)
        return None

    def on_breaker_reset(self, now_s: float) -> None:
        for _, governor in self.levels:
            governor.on_breaker_reset(now_s)
        super().on_breaker_reset(now_s)

    @property
    def breaker_trips(self) -> int:  # type: ignore[override]
        """Breaker trips across every level of the chain."""
        return sum(g.breaker_trips for _, g in self.levels)

    def finalize(self, end_s: float) -> GovernorStats:
        """The cascade's own aggregate ledger (per-level stats via
        :meth:`finalize_levels`)."""
        trips: list[float] = []
        for _, governor in self.levels:
            governor._close(end_s)
            trips.extend(governor._trips)
        self._close(end_s)
        return GovernorStats(
            policy=self.name,
            excess_power_w=self.excess_power_w,
            sprints_granted=self._granted,
            sprints_denied=self._denied,
            grants_released_unused=self._released_unused,
            breaker_trips=len(trips),
            trip_times_s=tuple(sorted(trips)),
            time_at_cap_s=self._time_at_cap,
            peak_concurrent_sprints=self._peak_active,
        )

    def finalize_levels(self, end_s: float) -> dict[str, GovernorStats]:
        """Per-level ledgers keyed by level name, closed at ``end_s``."""
        return {name: governor.finalize(end_s) for name, governor in self.levels}

    # -- internals ----------------------------------------------------------------------

    def _collect_reset(self, governor: SprintGovernor) -> None:
        while (at := governor.pop_pending_reset()) is not None:
            heapq.heappush(self._resets, at)

    def _decide(self, now_s: float) -> bool:  # pragma: no cover - acquire overridden
        return not self._saturated(now_s)

    def _saturated(self, now_s: float) -> bool:
        return any(g.would_deny(now_s) for _, g in self.levels)


# -- windowed parent slices ------------------------------------------------------------


class SlicedGovernor(SprintGovernor):
    """One shard's per-window slice of a parent (row/datacenter) budget.

    A sharded run cannot let every rack contend on one live parent
    governor — racks simulate concurrently, out of global event order.
    Instead the parent's capacity is carved into per-rack slices that are
    constant within each synchronisation window and rebalance at the
    barriers (:func:`slice_schedules`).  A slice enforces, per window,
    either a concurrency cap (``slot_caps``, from a greedy parent) or a
    projected-draw threshold (``headroom_caps_w``, from a cooperative
    parent), plus the parent breaker scaled to the slice's share
    (``trip_caps_w``).  Merging every slice's ledger back
    (:func:`merge_governor_stats`) yields the parent level's accounting.
    """

    def __init__(
        self,
        name: str,
        excess_power_w: float,
        window_s: float,
        slot_caps: np.ndarray | None = None,
        headroom_caps_w: np.ndarray | None = None,
        trip_caps_w: np.ndarray | None = None,
        penalty_s: float = 0.0,
    ) -> None:
        if slot_caps is None and headroom_caps_w is None:
            raise ValueError("a slice needs slot caps or headroom caps")
        self.name = name
        self.window_s = window_s
        self.slot_caps = slot_caps
        self.headroom_caps_w = headroom_caps_w
        self.trip_caps_w = trip_caps_w
        super().__init__(excess_power_w, trip_headroom_w=None, penalty_s=penalty_s)

    def _window(self, now_s: float) -> int:
        caps = self.slot_caps if self.slot_caps is not None else self.headroom_caps_w
        return min(len(caps) - 1, max(0, int(now_s // self.window_s)))

    def acquire(self, now_s: float) -> bool:
        if self.trip_caps_w is not None:
            # The slice's share of the parent breaker this window; the base
            # trip check then fires when the slice's own draw exceeds it.
            cap = float(self.trip_caps_w[self._window(now_s)])
            self.trip_headroom_w = cap if cap > 0 else None
        return super().acquire(now_s)

    def _decide(self, now_s: float) -> bool:
        return not self._saturated(now_s)

    def _saturated(self, now_s: float) -> bool:
        if self._in_penalty(now_s):
            return True
        w = self._window(now_s)
        if self.slot_caps is not None and self._active >= int(self.slot_caps[w]):
            return True
        if self.headroom_caps_w is not None:
            projected = (self._active + 1) * self.excess_power_w
            if projected > float(self.headroom_caps_w[w]):
                return True
        return False


def apportion_slots(total: int, weights: np.ndarray) -> np.ndarray:
    """Split ``total`` integer slots by ``weights``, conserving the total.

    Largest-remainder apportionment with index-order tie-breaking: exact,
    deterministic, and never over-allocates — ``result.sum() == total``
    whenever any weight is positive, so per-window slices can never grant
    more concurrent sprints than the parent budget holds.

    >>> apportion_slots(5, np.array([1.0, 1.0, 1.0]))
    array([2, 2, 1])
    >>> apportion_slots(4, np.array([0.0, 0.0]))
    array([2, 2])
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        return np.zeros(0, dtype=np.int64)
    if total <= 0:
        return np.zeros(weights.size, dtype=np.int64)
    mass = weights.sum()
    if mass <= 0:
        weights = np.ones_like(weights)
        mass = weights.sum()
    exact = total * weights / mass
    base = np.floor(exact).astype(np.int64)
    leftover = total - int(base.sum())
    if leftover > 0:
        remainders = exact - base
        # Stable largest-remainder: ties go to the lower index.
        order = np.lexsort((np.arange(weights.size), -remainders))
        base[order[:leftover]] += 1
    return base


def slice_schedules(
    topology: TopologySpec,
    config: SystemConfig,
    demand: np.ndarray,
) -> tuple[list[SprintGovernor | None], list[SprintGovernor | None]]:
    """Build each rack's row- and datacenter-slice governors.

    ``demand`` is the per-window offered sprint demand of every rack —
    shape ``(n_windows, n_racks)``, typically the count of arrivals
    assigned to sprint-capable racks (:mod:`repro.traffic.shard` computes
    it during rack dispatch).  For every window the parent capacity is
    divided among its children in proportion to their demand: greedy slots
    by largest-remainder apportionment (exactly conserving the parent
    cap), cooperative headroom watts by direct proportion.  Racks under an
    unlimited parent get ``None`` for that level.
    """
    demand = np.asarray(demand, dtype=float)
    if demand.ndim != 2 or demand.shape[1] != topology.n_racks:
        raise ValueError("demand must be (n_windows, n_racks)")
    n_windows = demand.shape[0]
    excess_w = max(0.0, config.sprint_power_w - config.sustainable_power_w)
    row_of = np.array(topology.row_of_rack())
    racks = list(topology.iter_racks())

    def shares(members: np.ndarray) -> np.ndarray:
        """Per-window demand fractions over one parent's children."""
        sub = demand[:, members]
        mass = sub.sum(axis=1, keepdims=True)
        flat = np.full_like(sub, 1.0 / max(1, sub.shape[1]))
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(mass > 0, sub / np.where(mass > 0, mass, 1.0), flat)
        return frac

    def build(
        spec: GovernorSpec,
        name: str,
        member_share: np.ndarray,
        member_demand: np.ndarray,
        members: np.ndarray,
    ) -> list[SprintGovernor | None]:
        if spec.policy == "unlimited":
            return [None] * members.size
        slices: list[SprintGovernor | None] = []
        if spec.policy == "greedy":
            caps = np.vstack(
                [
                    apportion_slots(spec.max_concurrent_sprints, member_demand[w])
                    for w in range(n_windows)
                ]
            )
        for j in range(members.size):
            trip = None
            if spec.trip_headroom_w is not None:
                trip = spec.trip_headroom_w * member_share[:, j]
            if spec.policy == "greedy":
                slices.append(
                    SlicedGovernor(
                        name,
                        excess_w,
                        topology.window_s,
                        slot_caps=caps[:, j],
                        trip_caps_w=trip,
                        penalty_s=spec.penalty_s,
                    )
                )
            else:  # cooperative_threshold
                headroom = spec.trip_headroom_w * member_share[:, j]
                slices.append(
                    SlicedGovernor(
                        name,
                        excess_w,
                        topology.window_s,
                        headroom_caps_w=headroom,
                        trip_caps_w=headroom,
                        penalty_s=spec.penalty_s,
                    )
                )
        return slices

    row_slices: list[SprintGovernor | None] = [None] * topology.n_racks
    for r, row in enumerate(topology.rows):
        members = np.flatnonzero(row_of == r)
        built = build(
            row.governor, "row", shares(members), demand[:, members], members
        )
        for j, g in zip(members, built):
            row_slices[j] = g

    all_members = np.arange(topology.n_racks)
    dc_slices = build(
        topology.governor,
        "datacenter",
        shares(all_members),
        demand,
        all_members,
    )
    assert len(racks) == topology.n_racks
    return row_slices, dc_slices


# -- the ledger ------------------------------------------------------------------------


def merge_governor_stats(
    stats: Sequence[GovernorStats], policy: str | None = None
) -> GovernorStats:
    """Combine per-shard ledgers of one budget level into a single view.

    Counters and trips add; trip instants merge in time order.
    ``peak_concurrent_sprints`` sums the shard peaks — an upper bound on
    the level's true simultaneous peak, since shard peaks need not
    coincide — and ``time_at_cap_s`` takes the maximum over shards (the
    most-saturated slice's span, a lower bound on the level's own).
    """
    if not stats:
        raise ValueError("nothing to merge")
    return GovernorStats(
        policy=policy if policy is not None else stats[0].policy,
        excess_power_w=max(s.excess_power_w for s in stats),
        sprints_granted=sum(s.sprints_granted for s in stats),
        sprints_denied=sum(s.sprints_denied for s in stats),
        grants_released_unused=sum(s.grants_released_unused for s in stats),
        breaker_trips=sum(s.breaker_trips for s in stats),
        trip_times_s=tuple(sorted(t for s in stats for t in s.trip_times_s)),
        time_at_cap_s=max(s.time_at_cap_s for s in stats),
        peak_concurrent_sprints=sum(s.peak_concurrent_sprints for s in stats),
    )


@dataclass(frozen=True)
class TopologyStats:
    """Per-level grant ledger of one topology run.

    ``racks``/``rows`` align with the spec's tree order (``rack_paths`` /
    row index); entries are ``None`` where that node's budget is
    unlimited (nothing to account).  ``overall`` is the cascade-level
    aggregate — one entry per attempted sprint, however many levels it
    had to clear — and is what a topology run reports as its
    :attr:`~repro.traffic.fleet.FleetResult.governor_stats`.
    """

    overall: GovernorStats
    racks: tuple[GovernorStats | None, ...]
    rows: tuple[GovernorStats | None, ...]
    datacenter: GovernorStats | None
    rack_paths: tuple[str, ...]

    def denied_by_level(self) -> dict[str, int]:
        """Sprint denials attributable to each level's budget."""
        return {
            "rack": sum(s.sprints_denied for s in self.racks if s is not None),
            "row": sum(s.sprints_denied for s in self.rows if s is not None),
            "datacenter": (
                0 if self.datacenter is None else self.datacenter.sprints_denied
            ),
        }

    def trips_by_level(self) -> dict[str, int]:
        """Breaker trips at each level."""
        return {
            "rack": sum(s.breaker_trips for s in self.racks if s is not None),
            "row": sum(s.breaker_trips for s in self.rows if s is not None),
            "datacenter": (
                0 if self.datacenter is None else self.datacenter.breaker_trips
            ),
        }

    def for_rack(self, path: str) -> GovernorStats | None:
        """One rack's ledger by hierarchical path."""
        return self.racks[self.rack_paths.index(path)]


def build_cascade(
    topology: TopologySpec,
    config: SystemConfig,
    rack_index: int,
    row_slice: SprintGovernor | None,
    dc_slice: SprintGovernor | None,
) -> CascadeGovernor:
    """One rack's grant chain: its own governor plus its parent slices."""
    rack = list(topology.iter_racks())[rack_index][3]
    levels: list[tuple[str, SprintGovernor]] = [
        ("rack", rack.governor.build(config))
    ]
    if row_slice is not None:
        levels.append(("row", row_slice))
    if dc_slice is not None:
        levels.append(("datacenter", dc_slice))
    return CascadeGovernor(levels)
