"""Latency and throughput summaries for fleet runs.

The paper argues sprinting buys *responsiveness*; at fleet scale that claim
lives in the tail of the latency distribution.  This module reduces a list
of :class:`~repro.traffic.device.ServedRequest` to the numbers a serving
team actually watches: median and tail latency percentiles, the fraction of
requests meeting a latency SLO, the fraction that sprinted, delivered
throughput over the run's makespan — and, for central-queue runs with a
request lifecycle, how many requests were rejected at admission, abandoned
in the queue, or served past their deadline.  Power-governed runs
additionally report the grant ledger (sprints granted and denied, breaker
trips, time at the budget cap) from the run's
:class:`~repro.traffic.governor.GovernorStats`.

Thermal telemetry from the devices' pacing backends
(:mod:`repro.core.thermal_backend`) is summarised too: peak and mean
stored heat across all served requests, the peak package temperature, and
the peak PCM melt fraction — under the ``pcm`` backend a peak melt
fraction pinned near 1.0 means the fleet is serving off the far edge of
the Figure 4 plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traffic.device import ServedRequest
from repro.traffic.governor import GovernorStats


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate serving metrics for one fleet run.

    An empty run (no served requests) is valid and reports zeros
    throughout, so sweeps over sparse arrival processes never crash.
    """

    request_count: int
    makespan_s: float
    throughput_rps: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    mean_queueing_s: float
    #: Fraction of requests that sprinted at all (partial sprints included).
    sprint_fraction: float
    #: Mean realised fraction of the achievable sprint speedup — unlike
    #: ``sprint_fraction`` this distinguishes a thermally exhausted fleet
    #: (many barely-partial sprints) from a healthy one.
    mean_sprint_fullness: float = 0.0
    slo_s: float | None = None
    slo_attainment: float | None = None
    #: Lifecycle counts (central-queue runs): arrivals bounced by a full
    #: bounded queue, queued requests abandoned at their deadline, and
    #: served requests that completed past their deadline.
    rejected_count: int = 0
    abandoned_count: int = 0
    deadline_miss_count: int = 0
    #: Thermal telemetry over all served requests, from the devices'
    #: pacing backends: stored heat right after each request (peak and
    #: mean), the hottest package temperature reported, and the largest
    #: PCM melt fraction reached (0 unless the fleet paces with ``pcm``).
    peak_stored_heat_j: float = 0.0
    mean_stored_heat_j: float = 0.0
    peak_temperature_c: float = 0.0
    peak_melt_fraction: float = 0.0
    #: Power-governance ledger (governed runs; ``unlimited`` reports the
    #: defaults): the policy that gated sprints, grants issued and denied,
    #: breaker trips, and total time the shared budget was exhausted.
    governor_policy: str | None = None
    sprints_granted: int = 0
    sprints_denied: int = 0
    breaker_trips: int = 0
    time_at_cap_s: float = 0.0

    @property
    def sprint_denial_fraction(self) -> float:
        """Denied fraction of all sprint-grant requests (0.0 if none made)."""
        attempts = self.sprints_granted + self.sprints_denied
        if attempts == 0:
            return 0.0
        return self.sprints_denied / attempts

    @property
    def offered_count(self) -> int:
        """Every request that reached the frontend, whatever its fate."""
        return self.request_count + self.rejected_count + self.abandoned_count

    @property
    def deadline_miss_fraction(self) -> float:
        """Deadline misses among *served* requests (0.0 for an empty run)."""
        if self.request_count == 0:
            return 0.0
        return self.deadline_miss_count / self.request_count


def latency_percentiles(
    latencies_s: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> tuple[float, ...]:
    """Linear-interpolated latency percentiles (numpy's default method)."""
    values = np.asarray(latencies_s, dtype=float)
    if values.size == 0:
        raise ValueError("at least one latency is required")
    return tuple(float(p) for p in np.percentile(values, percentiles))


def slo_attainment(
    latencies_s: Sequence[float] | np.ndarray, slo_s: float
) -> float:
    """Fraction of requests with latency at or below the SLO."""
    if slo_s <= 0:
        raise ValueError("SLO must be positive")
    values = np.asarray(latencies_s, dtype=float)
    if values.size == 0:
        raise ValueError("at least one latency is required")
    return float(np.mean(values <= slo_s))


def _governor_fields(stats: GovernorStats | None) -> dict:
    if stats is None:
        return {}
    return dict(
        governor_policy=stats.policy,
        sprints_granted=stats.sprints_granted,
        sprints_denied=stats.sprints_denied,
        breaker_trips=stats.breaker_trips,
        time_at_cap_s=stats.time_at_cap_s,
    )


def summarize(
    served: Sequence[ServedRequest],
    slo_s: float | None = None,
    rejected_count: int = 0,
    abandoned_count: int = 0,
    governor_stats: GovernorStats | None = None,
) -> TrafficSummary:
    """Reduce a fleet run to its serving metrics.

    An empty ``served`` sequence yields an all-zero summary rather than
    raising, and a zero makespan (conceivable only for hand-built
    instantaneous requests) reports zero throughput rather than ``inf``.
    ``governor_stats`` (from a power-governed run) fills the grant-ledger
    fields; ``None`` leaves them at their ungoverned defaults.
    """
    if not served:
        return TrafficSummary(
            request_count=0,
            makespan_s=0.0,
            throughput_rps=0.0,
            mean_latency_s=0.0,
            p50_latency_s=0.0,
            p95_latency_s=0.0,
            p99_latency_s=0.0,
            max_latency_s=0.0,
            mean_queueing_s=0.0,
            sprint_fraction=0.0,
            mean_sprint_fullness=0.0,
            slo_s=slo_s,
            slo_attainment=None,
            rejected_count=rejected_count,
            abandoned_count=abandoned_count,
            **_governor_fields(governor_stats),
        )
    latencies = np.array([s.latency_s for s in served])
    queueing = np.array([s.queueing_delay_s for s in served])
    arrivals = np.array([s.request.arrival_s for s in served])
    completions = np.array([s.completed_at_s for s in served])
    stored_heat = np.array([s.stored_heat_after_j for s in served])
    p50, p95, p99 = latency_percentiles(latencies)
    makespan = float(completions.max() - arrivals.min())
    return TrafficSummary(
        request_count=len(served),
        makespan_s=makespan,
        throughput_rps=len(served) / makespan if makespan > 0 else 0.0,
        mean_latency_s=float(latencies.mean()),
        p50_latency_s=p50,
        p95_latency_s=p95,
        p99_latency_s=p99,
        max_latency_s=float(latencies.max()),
        mean_queueing_s=float(queueing.mean()),
        sprint_fraction=float(np.mean([s.sprinted for s in served])),
        mean_sprint_fullness=float(np.mean([s.sprint_fullness for s in served])),
        peak_stored_heat_j=float(stored_heat.max()),
        mean_stored_heat_j=float(stored_heat.mean()),
        peak_temperature_c=max(s.package_temperature_c for s in served),
        peak_melt_fraction=max(s.melt_fraction for s in served),
        slo_s=slo_s,
        slo_attainment=None if slo_s is None else slo_attainment(latencies, slo_s),
        rejected_count=rejected_count,
        abandoned_count=abandoned_count,
        deadline_miss_count=sum(1 for s in served if s.missed_deadline),
        **_governor_fields(governor_stats),
    )
