"""Latency and throughput summaries for fleet runs.

The paper argues sprinting buys *responsiveness*; at fleet scale that claim
lives in the tail of the latency distribution.  This module reduces a list
of :class:`~repro.traffic.device.ServedRequest` to the numbers a serving
team actually watches: median and tail latency percentiles, the fraction of
requests meeting a latency SLO, the fraction that sprinted, and delivered
throughput over the run's makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traffic.device import ServedRequest


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate serving metrics for one fleet run."""

    request_count: int
    makespan_s: float
    throughput_rps: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    mean_queueing_s: float
    #: Fraction of requests that sprinted at all (partial sprints included).
    sprint_fraction: float
    #: Mean realised fraction of the achievable sprint speedup — unlike
    #: ``sprint_fraction`` this distinguishes a thermally exhausted fleet
    #: (many barely-partial sprints) from a healthy one.
    mean_sprint_fullness: float = 0.0
    slo_s: float | None = None
    slo_attainment: float | None = None


def latency_percentiles(
    latencies_s: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> tuple[float, ...]:
    """Linear-interpolated latency percentiles (numpy's default method)."""
    values = np.asarray(latencies_s, dtype=float)
    if values.size == 0:
        raise ValueError("at least one latency is required")
    return tuple(float(p) for p in np.percentile(values, percentiles))


def slo_attainment(
    latencies_s: Sequence[float] | np.ndarray, slo_s: float
) -> float:
    """Fraction of requests with latency at or below the SLO."""
    if slo_s <= 0:
        raise ValueError("SLO must be positive")
    values = np.asarray(latencies_s, dtype=float)
    if values.size == 0:
        raise ValueError("at least one latency is required")
    return float(np.mean(values <= slo_s))


def summarize(
    served: Sequence[ServedRequest], slo_s: float | None = None
) -> TrafficSummary:
    """Reduce a fleet run to its serving metrics."""
    if not served:
        raise ValueError("cannot summarise an empty run")
    latencies = np.array([s.latency_s for s in served])
    queueing = np.array([s.queueing_delay_s for s in served])
    arrivals = np.array([s.request.arrival_s for s in served])
    completions = np.array([s.completed_at_s for s in served])
    p50, p95, p99 = latency_percentiles(latencies)
    makespan = float(completions.max() - arrivals.min())
    return TrafficSummary(
        request_count=len(served),
        makespan_s=makespan,
        throughput_rps=len(served) / makespan if makespan > 0 else float("inf"),
        mean_latency_s=float(latencies.mean()),
        p50_latency_s=p50,
        p95_latency_s=p95,
        p99_latency_s=p99,
        max_latency_s=float(latencies.max()),
        mean_queueing_s=float(queueing.mean()),
        sprint_fraction=float(np.mean([s.sprinted for s in served])),
        mean_sprint_fullness=float(np.mean([s.sprint_fullness for s in served])),
        slo_s=slo_s,
        slo_attainment=None if slo_s is None else slo_attainment(latencies, slo_s),
    )
