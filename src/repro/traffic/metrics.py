"""Latency and throughput summaries for fleet runs.

The paper argues sprinting buys *responsiveness*; at fleet scale that claim
lives in the tail of the latency distribution.  This module reduces a list
of :class:`~repro.traffic.device.ServedRequest` to the numbers a serving
team actually watches: median and tail latency percentiles, the fraction of
requests meeting a latency SLO, the fraction that sprinted, delivered
throughput over the run's makespan — and, for central-queue runs with a
request lifecycle, how many requests were rejected at admission, abandoned
in the queue, or served past their deadline.  Power-governed runs
additionally report the grant ledger (sprints granted and denied, breaker
trips, time at the budget cap) from the run's
:class:`~repro.traffic.governor.GovernorStats`.

Thermal telemetry from the devices' pacing backends
(:mod:`repro.core.thermal_backend`) is summarised too: peak and mean
stored heat across all served requests, the peak package temperature, and
the peak PCM melt fraction — under the ``pcm`` backend a peak melt
fraction pinned near 1.0 means the fleet is serving off the far edge of
the Figure 4 plateau.

Usage:

>>> from repro.traffic.metrics import latency_percentiles, slo_attainment
>>> latency_percentiles([1.0, 2.0, 3.0, 4.0], percentiles=(50.0,))
(2.5,)
>>> slo_attainment([1.0, 2.0, 3.0, 4.0], slo_s=2.0)
0.5
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traffic.device import ServedRequest
from repro.traffic.governor import GovernorStats


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate serving metrics for one fleet run.

    An empty run (no served requests) is valid and reports zeros
    throughout, so sweeps over sparse arrival processes never crash.
    """

    request_count: int
    makespan_s: float
    throughput_rps: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    mean_queueing_s: float
    #: Fraction of requests that sprinted at all (partial sprints included).
    sprint_fraction: float
    #: Mean realised fraction of the achievable sprint speedup — unlike
    #: ``sprint_fraction`` this distinguishes a thermally exhausted fleet
    #: (many barely-partial sprints) from a healthy one.
    mean_sprint_fullness: float = 0.0
    slo_s: float | None = None
    slo_attainment: float | None = None
    #: Lifecycle counts (central-queue runs): arrivals bounced by a full
    #: bounded queue, queued requests abandoned at their deadline, and
    #: served requests that completed past their deadline.
    rejected_count: int = 0
    abandoned_count: int = 0
    deadline_miss_count: int = 0
    #: Thermal telemetry over all served requests, from the devices'
    #: pacing backends: stored heat right after each request (peak and
    #: mean), the hottest package temperature reported, and the largest
    #: PCM melt fraction reached (0 unless the fleet paces with ``pcm``).
    peak_stored_heat_j: float = 0.0
    mean_stored_heat_j: float = 0.0
    peak_temperature_c: float = 0.0
    peak_melt_fraction: float = 0.0
    #: Power-governance ledger (governed runs; ``unlimited`` reports the
    #: defaults): the policy that gated sprints, grants issued and denied,
    #: breaker trips, and total time the shared budget was exhausted.
    governor_policy: str | None = None
    sprints_granted: int = 0
    sprints_denied: int = 0
    breaker_trips: int = 0
    time_at_cap_s: float = 0.0
    #: Where the latency statistics came from: ``"samples"`` when computed
    #: exactly from a materialised per-request list, ``"sketch"`` when
    #: streamed through a fixed-memory quantile sketch
    #: (:class:`repro.traffic.telemetry.TrafficTelemetry`).
    telemetry_source: str = "samples"
    #: Normalised rank-error bound of the percentile/SLO fields when
    #: ``telemetry_source == "sketch"`` (``None`` for exact summaries).
    sketch_rank_error: float | None = None

    @property
    def sprint_denial_fraction(self) -> float:
        """Denied fraction of all sprint-grant requests (0.0 if none made)."""
        attempts = self.sprints_granted + self.sprints_denied
        if attempts == 0:
            return 0.0
        return self.sprints_denied / attempts

    @property
    def offered_count(self) -> int:
        """Every request that reached the frontend, whatever its fate."""
        return self.request_count + self.rejected_count + self.abandoned_count

    @property
    def deadline_miss_fraction(self) -> float:
        """Deadline misses among *served* requests (0.0 for an empty run)."""
        if self.request_count == 0:
            return 0.0
        return self.deadline_miss_count / self.request_count

    def to_dict(self) -> dict:
        """Plain-JSON form (used by golden regression fixtures and reports)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSummary":
        """Rebuild a summary from its :meth:`to_dict` form (exact round-trip)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TrafficSummary fields: {sorted(unknown)}")
        return cls(**data)


def validate_latencies(
    latencies_s: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Coerce latencies to a float array, rejecting an empty input.

    The single validation gate for every sample-based latency reduction
    (:func:`latency_percentiles`, :func:`slo_attainment`), so the
    "at least one latency" contract lives in exactly one place.
    """
    values = np.asarray(latencies_s, dtype=float)
    if values.size == 0:
        raise ValueError("at least one latency is required")
    return values


def validate_slo(slo_s: float | None) -> None:
    """Reject a non-positive SLO (``None`` means no SLO and is fine)."""
    if slo_s is not None and slo_s <= 0:
        raise ValueError("SLO must be positive")


def latency_percentiles(
    latencies_s: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> tuple[float, ...]:
    """Linear-interpolated latency percentiles (numpy's default method)."""
    values = validate_latencies(latencies_s)
    return tuple(float(p) for p in np.percentile(values, percentiles))


def slo_attainment(
    latencies_s: Sequence[float] | np.ndarray, slo_s: float
) -> float:
    """Fraction of requests with latency at or below the SLO."""
    validate_slo(slo_s)
    values = validate_latencies(latencies_s)
    return float(np.mean(values <= slo_s))


# -- replication statistics ---------------------------------------------------------
#
# The experiment layer (:mod:`repro.traffic.experiments`) reduces N
# replications of a scenario to per-metric mean / confidence-interval
# estimates and paired-difference tests.  The Student-t machinery is
# implemented here from first principles (regularised incomplete beta via
# the Numerical Recipes continued fraction, quantile by bisection) so the
# package keeps its numpy-only dependency surface.

#: TrafficSummary fields the experiment layer aggregates across
#: replications.  ``slo_attainment`` is included but skipped per-experiment
#: when no SLO was set (the field is then None on every replication).
SUMMARY_STAT_FIELDS: tuple[str, ...] = (
    "request_count",
    "makespan_s",
    "throughput_rps",
    "mean_latency_s",
    "p50_latency_s",
    "p95_latency_s",
    "p99_latency_s",
    "max_latency_s",
    "mean_queueing_s",
    "sprint_fraction",
    "mean_sprint_fullness",
    "slo_attainment",
    "rejected_count",
    "abandoned_count",
    "deadline_miss_count",
    "peak_stored_heat_j",
    "mean_stored_heat_j",
    "peak_temperature_c",
    "peak_melt_fraction",
    "sprints_granted",
    "sprints_denied",
    "breaker_trips",
    "time_at_cap_s",
)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz's continued fraction for the incomplete beta (NR ``betacf``)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-15:
            break
    return h


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), exact to ~1e-14 for the (a, b) ranges the t CDF needs."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast only on one side of the mean;
    # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if t == 0.0:
        return 0.5
    tail = 0.5 * _regularized_incomplete_beta(df / 2.0, 0.5, df / (df + t * t))
    return 1.0 - tail if t > 0 else tail


def student_t_ppf(p: float, df: float) -> float:
    """Quantile (inverse CDF) of Student's t, by bisection on the CDF.

    Deterministic and accurate to ~1e-10, which is far below the Monte
    Carlo noise of any replication count the CIs are built from.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("quantile probability must be in (0, 1)")
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -student_t_ppf(1.0 - p, df)
    hi = 1.0
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class MetricEstimate:
    """A replication-averaged metric with its confidence interval.

    ``half_width`` is the Student-t confidence half-width of the mean:
    ``t_{(1+confidence)/2, n-1} * stddev / sqrt(n)``.  A single
    replication cannot bound its own error, so ``n == 1`` reports an
    infinite half-width — except for estimates built by
    :meth:`MetricEstimate.exact`, which assert the scenario was
    deterministic (zero-width by construction, not by measurement).
    """

    n: int
    mean: float
    stddev: float
    half_width: float
    confidence: float = 0.95

    @property
    def ci_low(self) -> float:
        """Lower edge of the confidence interval."""
        return self.mean - self.half_width

    @property
    def ci_high(self) -> float:
        """Upper edge of the confidence interval."""
        return self.mean + self.half_width

    @classmethod
    def exact(cls, value: float, confidence: float = 0.95) -> "MetricEstimate":
        """A deterministic metric: known exactly from one replication."""
        return cls(n=1, mean=float(value), stddev=0.0, half_width=0.0, confidence=confidence)

    def __str__(self) -> str:
        if math.isinf(self.half_width):
            return f"{self.mean:.4g} ± ? (n=1)"
        return (
            f"{self.mean:.4g} ± {self.half_width:.2g} "
            f"({self.confidence * 100:.0f}% CI, n={self.n})"
        )


def mean_ci(
    values: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> MetricEstimate:
    """Student-t confidence interval of the mean of i.i.d. replications.

    ``n == 1`` yields an infinite half-width (one replication bounds
    nothing); identical values yield a zero half-width.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("at least one value is required")
    n = int(data.size)
    mean = float(data.mean())
    if n == 1:
        return MetricEstimate(
            n=1, mean=mean, stddev=0.0, half_width=math.inf, confidence=confidence
        )
    stddev = float(data.std(ddof=1))
    if stddev == 0.0:
        half = 0.0
    else:
        half = student_t_ppf(0.5 * (1.0 + confidence), n - 1) * stddev / math.sqrt(n)
    return MetricEstimate(
        n=n, mean=mean, stddev=stddev, half_width=half, confidence=confidence
    )


def batch_means_ci(
    series: Sequence[float] | np.ndarray,
    n_batches: int = 10,
    confidence: float = 0.95,
) -> MetricEstimate:
    """Batch-means confidence interval for a (possibly correlated) series.

    The classic single-run output-analysis method: split the series into
    ``n_batches`` contiguous batches, average each, and treat the batch
    means as approximately independent draws — valid when batches are much
    longer than the series' correlation length.  A remainder that does not
    divide evenly is dropped from the *front* of the series (the transient
    end of a simulation run, so trimming doubles as warmup deletion).
    """
    if n_batches < 2:
        raise ValueError("batch means need at least two batches")
    data = np.asarray(series, dtype=float)
    if data.size < n_batches:
        raise ValueError(
            f"series of {data.size} values cannot fill {n_batches} batches"
        )
    batch_len = data.size // n_batches
    trimmed = data[data.size - n_batches * batch_len :]
    batches = trimmed.reshape(n_batches, batch_len).mean(axis=1)
    return mean_ci(batches, confidence=confidence)


def sign_test_p(n_positive: int, n_negative: int) -> float:
    """Exact two-sided sign-test p-value (ties excluded by the caller).

    Under the null hypothesis of no systematic difference, each non-zero
    paired delta is positive with probability one half; the p-value is the
    doubled binomial tail of the rarer sign.  No deltas at all (every pair
    tied) is maximally uninformative: p = 1.
    """
    if n_positive < 0 or n_negative < 0:
        raise ValueError("sign counts must be non-negative")
    n = n_positive + n_negative
    if n == 0:
        return 1.0
    k = min(n_positive, n_negative)
    tail = sum(math.comb(n, i) for i in range(k + 1)) * 0.5**n
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class PairedDelta:
    """Treatment-minus-baseline difference over paired replications.

    Under common-random-numbers pairing the two arms of replication ``r``
    consumed identical stochastic draws, so the per-replication deltas
    cancel the shared arrival/service noise and their CI is (often much)
    tighter than the difference of two independent CIs.  ``sign_test_p``
    is the exact two-sided sign test over the non-zero deltas — a
    distribution-free check that does not lean on the t assumptions.
    """

    n: int
    mean_delta: float
    stddev: float
    half_width: float
    confidence: float = 0.95
    n_positive: int = 0
    n_negative: int = 0
    sign_test_p: float = 1.0

    @property
    def ci_low(self) -> float:
        """Lower edge of the delta's confidence interval."""
        return self.mean_delta - self.half_width

    @property
    def ci_high(self) -> float:
        """Upper edge of the delta's confidence interval."""
        return self.mean_delta + self.half_width

    @property
    def significant(self) -> bool:
        """True when the CI excludes zero (no difference is implausible)."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def __str__(self) -> str:
        return (
            f"Δ {self.mean_delta:+.4g} ± {self.half_width:.2g} "
            f"({self.confidence * 100:.0f}% CI, n={self.n}, "
            f"sign test p={self.sign_test_p:.3g})"
        )


def paired_delta(
    baseline: Sequence[float] | np.ndarray,
    treatment: Sequence[float] | np.ndarray,
    confidence: float = 0.95,
) -> PairedDelta:
    """Reduce paired per-replication values to a treatment-minus-baseline CI."""
    base = np.asarray(baseline, dtype=float)
    treat = np.asarray(treatment, dtype=float)
    if base.size != treat.size:
        raise ValueError(
            f"paired arms must match: {base.size} baseline vs {treat.size} treatment"
        )
    deltas = treat - base
    estimate = mean_ci(deltas, confidence=confidence)
    positive = int(np.sum(deltas > 0))
    negative = int(np.sum(deltas < 0))
    return PairedDelta(
        n=estimate.n,
        mean_delta=estimate.mean,
        stddev=estimate.stddev,
        half_width=estimate.half_width,
        confidence=confidence,
        n_positive=positive,
        n_negative=negative,
        sign_test_p=sign_test_p(positive, negative),
    )


def aggregate_summaries(
    summaries: Sequence[TrafficSummary], confidence: float = 0.95
) -> dict[str, MetricEstimate]:
    """Mean/CI/half-width per :data:`SUMMARY_STAT_FIELDS` field.

    Fields that are ``None`` on any replication (``slo_attainment`` without
    an SLO, or on an empty run) are skipped rather than poisoning the rest.
    """
    if not summaries:
        raise ValueError("at least one replication summary is required")
    estimates: dict[str, MetricEstimate] = {}
    for field in SUMMARY_STAT_FIELDS:
        values = [getattr(s, field) for s in summaries]
        if any(v is None for v in values):
            continue
        estimates[field] = mean_ci(values, confidence=confidence)
    return estimates


def _governor_fields(stats: GovernorStats | None) -> dict:
    if stats is None:
        return {}
    return dict(
        governor_policy=stats.policy,
        sprints_granted=stats.sprints_granted,
        sprints_denied=stats.sprints_denied,
        breaker_trips=stats.breaker_trips,
        time_at_cap_s=stats.time_at_cap_s,
    )


def build_summary(
    source: str = "samples",
    rank_error: float | None = None,
    governor_stats: GovernorStats | None = None,
    **fields,
) -> TrafficSummary:
    """Construct a :class:`TrafficSummary` with all-zero defaults.

    The shared assembly point of the exact (:func:`summarize`) and
    sketch-backed (:meth:`repro.traffic.telemetry.TrafficTelemetry.summarize`)
    paths: omitted fields default to the empty-run zeros, ``source`` and
    ``rank_error`` fill the telemetry provenance fields, and
    ``governor_stats`` expands into the grant-ledger fields.
    """
    values = dict(
        request_count=0,
        makespan_s=0.0,
        throughput_rps=0.0,
        mean_latency_s=0.0,
        p50_latency_s=0.0,
        p95_latency_s=0.0,
        p99_latency_s=0.0,
        max_latency_s=0.0,
        mean_queueing_s=0.0,
        sprint_fraction=0.0,
        telemetry_source=source,
        sketch_rank_error=rank_error,
    )
    values.update(fields)
    values.update(_governor_fields(governor_stats))
    return TrafficSummary(**values)


def summarize(
    served: Sequence[ServedRequest],
    slo_s: float | None = None,
    rejected_count: int = 0,
    abandoned_count: int = 0,
    governor_stats: GovernorStats | None = None,
) -> TrafficSummary:
    """Reduce a fleet run to its serving metrics.

    An empty ``served`` sequence yields an all-zero summary rather than
    raising, and a zero makespan (conceivable only for hand-built
    instantaneous requests) reports zero throughput rather than ``inf``.
    ``governor_stats`` (from a power-governed run) fills the grant-ledger
    fields; ``None`` leaves them at their ungoverned defaults.

    This is the exact, sample-based path (``telemetry_source ==
    "samples"``); long-horizon runs that kept no samples summarise
    through the sketch instead
    (:meth:`repro.traffic.telemetry.TrafficTelemetry.summarize`).
    """
    validate_slo(slo_s)
    if not served:
        return build_summary(
            slo_s=slo_s,
            slo_attainment=None,
            rejected_count=rejected_count,
            abandoned_count=abandoned_count,
            governor_stats=governor_stats,
        )
    latencies = np.array([s.latency_s for s in served])
    queueing = np.array([s.queueing_delay_s for s in served])
    arrivals = np.array([s.request.arrival_s for s in served])
    completions = np.array([s.completed_at_s for s in served])
    stored_heat = np.array([s.stored_heat_after_j for s in served])
    p50, p95, p99 = latency_percentiles(latencies)
    makespan = float(completions.max() - arrivals.min())
    return TrafficSummary(
        request_count=len(served),
        makespan_s=makespan,
        throughput_rps=len(served) / makespan if makespan > 0 else 0.0,
        mean_latency_s=float(latencies.mean()),
        p50_latency_s=p50,
        p95_latency_s=p95,
        p99_latency_s=p99,
        max_latency_s=float(latencies.max()),
        mean_queueing_s=float(queueing.mean()),
        sprint_fraction=float(np.mean([s.sprinted for s in served])),
        mean_sprint_fullness=float(np.mean([s.sprint_fullness for s in served])),
        peak_stored_heat_j=float(stored_heat.max()),
        mean_stored_heat_j=float(stored_heat.mean()),
        peak_temperature_c=max(s.package_temperature_c for s in served),
        peak_melt_fraction=max(s.melt_fraction for s in served),
        slo_s=slo_s,
        slo_attainment=None if slo_s is None else slo_attainment(latencies, slo_s),
        rejected_count=rejected_count,
        abandoned_count=abandoned_count,
        deadline_miss_count=sum(1 for s in served if s.missed_deadline),
        **_governor_fields(governor_stats),
    )
